#include "la/gemm.h"

#include <cstddef>

#define SUBREC_GEMM_NS gemm_generic
#include "la/gemm_kernel.h"  // NOLINT(build/include)
#undef SUBREC_GEMM_NS

namespace subrec::la::internal {

void GemmRowRangeGeneric(const double* a, size_t lda, const double* b,
                         size_t ldb, double* c, size_t ldc, size_t row0,
                         size_t row_end, size_t k, size_t n) {
  gemm_generic::GemmRowBlock(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

}  // namespace subrec::la::internal
