#ifndef SUBREC_LA_ANN_KERNEL_H_
#define SUBREC_LA_ANN_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace subrec::la {

namespace internal {

/// Batched maximum-inner-product distance kernel for the ANN graph walk:
/// out[i] = <query, slab row nodes[i]> for `count` scattered rows of a
/// row-major slab (row width `dim`).
///
/// Determinism contract (the ANN analogue of the serve GEMM's): every
/// output element accumulates its dim products in ascending-d order, one
/// separate multiply then add per step — exactly la::Dot's rounding
/// sequence. The vector TUs put one *candidate* per lane (never splitting
/// one dot product across lanes, which would reorder the summation), so
/// all ISAs produce identical bits and HnswIndex distances never depend on
/// the host CPU. Like the serve kernels, every TU is compiled with
/// -ffp-contract=off and never -mfma: a fused multiply-add rounds once
/// where the oracle rounds twice.
void AnnDotBatchGeneric(const double* query, const double* slab, size_t dim,
                        const int32_t* nodes, size_t count, double* out);
void AnnDotBatchAvx2(const double* query, const double* slab, size_t dim,
                     const int32_t* nodes, size_t count, double* out);
void AnnDotBatchAvx512(const double* query, const double* slab, size_t dim,
                       const int32_t* nodes, size_t count, double* out);

/// True when the AVX2 ANN TU was compiled with -mavx2 AND the running CPU
/// reports it (no FMA requirement: the ANN kernels never fuse).
bool AnnKernelAvx2Available();

/// Same contract for the AVX-512F ANN TU.
bool AnnKernelAvx512Available();

}  // namespace internal

/// out[i] = inner product of `query` with row nodes[i] of the row-major
/// `slab` (row width `dim`), for i in [0, count). Dispatches once per
/// process to the widest ANN kernel the CPU supports; bit-identical to
/// la::Dot(query, slab + nodes[i] * dim, dim) on every ISA.
void AnnDotBatch(const double* query, const double* slab, size_t dim,
                 const int32_t* nodes, size_t count, double* out);

}  // namespace subrec::la

#endif  // SUBREC_LA_ANN_KERNEL_H_
