// Compiled with -mavx2 -mfma on x86-64 GNU/Clang builds (see
// src/CMakeLists.txt); anywhere else it degrades to the generic kernel
// and GemmAvx2Available() reports false so nothing dispatches here.

#include "la/gemm.h"

#include <cstddef>

#if defined(__AVX2__) && defined(__FMA__)

#define SUBREC_GEMM_NS gemm_avx2
#include "la/gemm_kernel.h"  // NOLINT(build/include)
#undef SUBREC_GEMM_NS

namespace subrec::la::internal {

void GemmRowRangeAvx2(const double* a, size_t lda, const double* b,
                      size_t ldb, double* c, size_t ldc, size_t row0,
                      size_t row_end, size_t k, size_t n) {
  gemm_avx2::GemmRowBlock(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

bool GemmAvx2Available() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

}  // namespace subrec::la::internal

#else  // !(__AVX2__ && __FMA__)

namespace subrec::la::internal {

void GemmRowRangeAvx2(const double* a, size_t lda, const double* b,
                      size_t ldb, double* c, size_t ldc, size_t row0,
                      size_t row_end, size_t k, size_t n) {
  GemmRowRangeGeneric(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

bool GemmAvx2Available() { return false; }

}  // namespace subrec::la::internal

#endif
