// AVX-512F ANN distance TU: compiled with -mavx512f -ffp-contract=off on
// x86-64 GNU/Clang builds (src/CMakeLists.txt). -mavx512f alone enables
// FMA instructions and GCC contracts by default, so pinning contraction
// off is what keeps this TU bit-identical to the generic kernel and the
// scalar la::Dot oracle — eight candidates per step, each lane still a
// separate multiply then add in ascending-d order. Anywhere else this TU
// degrades to the generic kernel and AnnKernelAvx512Available() is false.

#include "la/ann_kernel.h"

#include <cstddef>

#if (defined(__GNUC__) || defined(__clang__)) && defined(__AVX512F__)

#define SUBREC_ANN_NS ann_avx512
#include "la/ann_kernel_impl.h"  // NOLINT(build/include)
#undef SUBREC_ANN_NS

namespace subrec::la::internal {

void AnnDotBatchAvx512(const double* query, const double* slab, size_t dim,
                       const int32_t* nodes, size_t count, double* out) {
  ann_avx512::DotBatch(query, slab, dim, nodes, count, out);
}

bool AnnKernelAvx512Available() {
  return __builtin_cpu_supports("avx512f");
}

}  // namespace subrec::la::internal

#else  // !__AVX512F__

namespace subrec::la::internal {

void AnnDotBatchAvx512(const double* query, const double* slab, size_t dim,
                       const int32_t* nodes, size_t count, double* out) {
  AnnDotBatchGeneric(query, slab, dim, nodes, count, out);
}

bool AnnKernelAvx512Available() { return false; }

}  // namespace subrec::la::internal

#endif
