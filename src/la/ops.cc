#include "la/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "la/gemm.h"
#include "par/parallel.h"

namespace subrec::la {
namespace {

// Relaxed atomic so the tsan build stays clean when worker threads read the
// flag; it is only ever flipped between fits, never during one.
std::atomic<bool> g_legacy_kernel_mode{false};

}  // namespace

void SetLegacyKernelMode(bool on) {
  g_legacy_kernel_mode.store(on, std::memory_order_relaxed);
}

bool LegacyKernelMode() {
  return g_legacy_kernel_mode.load(std::memory_order_relaxed);
}

namespace {

// Size routing for the three matmul entry points, in units of m*n*k.
// Below kGemmBlockedMinWork the original scalar loops run — the autodiff
// tapes issue thousands of tiny products and those must stay bit-identical
// to the seed code (and free of dispatch overhead). At or above it the
// register-tiled kernel takes over, and from kGemmParallelMinWork the row
// blocks are spread over the par runtime. Chunk grain is derived from the
// problem shape only, so the split is the same for every thread count.
constexpr size_t kGemmBlockedMinWork = size_t{32} * 1024;
constexpr size_t kGemmParallelMinWork = size_t{1} << 21;
constexpr size_t kGemmChunkWork = size_t{1} << 18;

using GemmFn = void (*)(const double*, size_t, const double*, size_t, double*,
                        size_t, size_t, size_t, size_t, size_t);

GemmFn ActiveGemm() {
  // The legacy pin (the AVX2 ceiling the library shipped with) exists so
  // bench/train_step can price the pre-rewrite compute path in one binary.
  // All kernels produce identical bits; see gemm_kernel.h.
  static const GemmFn legacy_fn = internal::GemmAvx2Available()
                                      ? internal::GemmRowRangeAvx2
                                      : internal::GemmRowRangeGeneric;
  static const GemmFn best_fn = internal::GemmAvx512Available()
                                    ? internal::GemmRowRangeAvx512
                                    : legacy_fn;
  return LegacyKernelMode() ? legacy_fn : best_fn;
}

// Blocked path body shared by MatMul and the transposed wrappers. `c` must
// be zero-initialized; all dims are >= 1 here (work >= kGemmBlockedMinWork).
void BlockedGemm(const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  const size_t work = m * n * k;
  const GemmFn fn = ActiveGemm();
  const size_t blocks = (m + internal::kGemmMr - 1) / internal::kGemmMr;
  size_t grain = blocks;  // single chunk -> runs inline on the caller
  if (work >= kGemmParallelMinWork) {
    const size_t block_work = internal::kGemmMr * n * k;
    grain = std::clamp<size_t>(kGemmChunkWork / std::max<size_t>(block_work, 1),
                               1, blocks);
  }
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c->data();
  par::ParallelFor(blocks, grain, [&](size_t b0, size_t b1) {
    fn(pa, k, pb, n, pc, n, b0 * internal::kGemmMr,
       std::min(m, b1 * internal::kGemmMr), k, n);
  });
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SUBREC_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  out->ResizeZero(a.rows(), b.cols());
  if (a.rows() * a.cols() * b.cols() >= kGemmBlockedMinWork) {
    BlockedGemm(a, b, out);
    return;
  }
  // ikj loop order: streams over b and c rows for cache friendliness.
  for (size_t i = 0; i < a.rows(); ++i) {
    double* crow = out->row_data(i);
    const double* arow = a.row_data(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulInto(a, b, &c);
  return c;
}

namespace {

// Per-thread buffer for the transposed copy the blocked branches feed the
// streaming kernel. The matrices involved are often right at the allocator's
// mmap threshold (128 x 128 doubles = 128 KiB), where a fresh allocation per
// call means mmap/munmap plus page faults; reusing one slab per thread makes
// the transpose pure memory traffic. Contents are fully overwritten each
// call, so results are unchanged.
Matrix& TransposeScratch() {
  static thread_local Matrix scratch;
  return scratch;
}

}  // namespace

void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SUBREC_CHECK_EQ(a.rows(), b.rows()) << "MatMulTransA shape mismatch";
  if (a.rows() * a.cols() * b.cols() >= kGemmBlockedMinWork) {
    // One cheap O(k*m) transpose buys the blocked kernel's row layout.
    if (LegacyKernelMode()) {
      // Pre-rewrite behavior: a fresh transposed copy per call.
      const Matrix at = Transpose(a);
      MatMulInto(at, b, out);
      return;
    }
    Matrix& at = TransposeScratch();
    TransposeInto(a, &at);
    MatMulInto(at, b, out);
    return;
  }
  out->ResizeZero(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_data(k);
    const double* brow = b.row_data(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = out->row_data(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransAInto(a, b, &c);
  return c;
}

void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SUBREC_CHECK_EQ(a.cols(), b.cols()) << "MatMulTransB shape mismatch";
  if (a.rows() * a.cols() * b.rows() >= kGemmBlockedMinWork) {
    // The dot-product form below defeats vectorization (FP reductions
    // can't be reassociated); transposing B recovers the streaming kernel.
    if (LegacyKernelMode()) {
      const Matrix bt = Transpose(b);
      MatMulInto(a, bt, out);
      return;
    }
    Matrix& bt = TransposeScratch();
    TransposeInto(b, &bt);
    MatMulInto(a, bt, out);
    return;
  }
  out->ResizeZero(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double* crow = out->row_data(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_data(j);
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransBInto(a, b, &c);
  return c;
}

void TransposeInto(const Matrix& a, Matrix* out) {
  if (LegacyKernelMode()) {
    // Pre-rewrite form: zero-filled destination, straight double loop.
    out->ResizeZero(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
      for (size_t j = 0; j < a.cols(); ++j) (*out)(j, i) = a(i, j);
    return;
  }
  // Every entry is written below, so skip ResizeZero's memset. Blocking
  // keeps the column-strided writes inside a cache-resident tile; element
  // order is irrelevant for pure moves, so results are unchanged.
  out->ResizeOverwrite(a.cols(), a.rows());
  constexpr size_t kB = 32;
  const size_t m = a.rows();
  const size_t n = a.cols();
  for (size_t ib = 0; ib < m; ib += kB) {
    const size_t ie = std::min(m, ib + kB);
    for (size_t jb = 0; jb < n; jb += kB) {
      const size_t je = std::min(n, jb + kB);
      for (size_t i = ib; i < ie; ++i) {
        const double* ar = a.row_data(i);
        for (size_t j = jb; j < je; ++j) (*out)(j, i) = ar[j];
      }
    }
  }
}

Matrix Transpose(const Matrix& a) {
  Matrix t;
  TransposeInto(a, &t);
  return t;
}

void AddInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SUBREC_CHECK(a.SameShape(b));
  out->CopyFrom(a);
  for (size_t i = 0; i < out->size(); ++i) (*out)[i] += b[i];
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c;
  AddInto(a, b, &c);
  return c;
}

void SubInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SUBREC_CHECK(a.SameShape(b));
  out->CopyFrom(a);
  for (size_t i = 0; i < out->size(); ++i) (*out)[i] -= b[i];
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c;
  SubInto(a, b, &c);
  return c;
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SUBREC_CHECK(a.SameShape(b));
  out->CopyFrom(a);
  for (size_t i = 0; i < out->size(); ++i) (*out)[i] *= b[i];
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix c;
  HadamardInto(a, b, &c);
  return c;
}

void Axpy(double alpha, const Matrix& b, Matrix& a) {
  SUBREC_CHECK(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

void ScaleInto(const Matrix& a, double alpha, Matrix* out) {
  out->CopyFrom(a);
  for (size_t i = 0; i < out->size(); ++i) (*out)[i] *= alpha;
}

Matrix Scale(const Matrix& a, double alpha) {
  Matrix c;
  ScaleInto(a, alpha, &c);
  return c;
}

void AddRowBroadcastInto(const Matrix& a, const Matrix& bias, Matrix* out) {
  SUBREC_CHECK_EQ(bias.rows(), 1u);
  SUBREC_CHECK_EQ(bias.cols(), a.cols());
  out->CopyFrom(a);
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) (*out)(i, j) += bias(0, j);
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  Matrix c;
  AddRowBroadcastInto(a, bias, &c);
  return c;
}

void TanhInto(const Matrix& a, Matrix* out) {
  out->CopyFrom(a);
  for (size_t i = 0; i < out->size(); ++i) (*out)[i] = std::tanh((*out)[i]);
}

Matrix Tanh(const Matrix& a) {
  Matrix c;
  TanhInto(a, &c);
  return c;
}

void SigmoidInto(const Matrix& a, Matrix* out) {
  out->CopyFrom(a);
  for (size_t i = 0; i < out->size(); ++i)
    (*out)[i] = 1.0 / (1.0 + std::exp(-(*out)[i]));
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c;
  SigmoidInto(a, &c);
  return c;
}

void ReluInto(const Matrix& a, Matrix* out) {
  out->CopyFrom(a);
  for (size_t i = 0; i < out->size(); ++i)
    (*out)[i] = (*out)[i] > 0.0 ? (*out)[i] : 0.0;
}

Matrix Relu(const Matrix& a) {
  Matrix c;
  ReluInto(a, &c);
  return c;
}

Matrix Exp(const Matrix& a) {
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] = std::exp(c[i]);
  return c;
}

void RowSoftmaxInto(const Matrix& a, Matrix* out) {
  out->CopyFrom(a);
  // A 0-column matrix has no row[0] to seed the max scan with; every row
  // is an empty softmax, so the copy is already the answer.
  if (a.cols() == 0) return;
  for (size_t i = 0; i < a.rows(); ++i) {
    double* row = out->row_data(i);
    double mx = row[0];
    for (size_t j = 1; j < a.cols(); ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    for (size_t j = 0; j < a.cols(); ++j) row[j] /= sum;
  }
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix c;
  RowSoftmaxInto(a, &c);
  return c;
}

double Sum(const Matrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

void ColMeanInto(const Matrix& a, Matrix* out) {
  SUBREC_CHECK_GT(a.rows(), 0u);
  out->ResizeZero(1, a.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) (*out)(0, j) += a(i, j);
  for (size_t j = 0; j < a.cols(); ++j)
    (*out)(0, j) /= static_cast<double>(a.rows());
}

Matrix ColMean(const Matrix& a) {
  Matrix m;
  ColMeanInto(a, &m);
  return m;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  return Dot(a.data(), b.data(), a.size());
}

double Dot(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void NormalizeL2(std::vector<double>& a) {
  const double n = Norm2(a);
  if (n == 0.0) return;
  for (double& v : a) v /= n;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = Norm2(a), nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void AxpyVec(double alpha, const std::vector<double>& b,
             std::vector<double>& a) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

std::vector<size_t> TopKIndices(const std::vector<double>& scores, size_t k) {
  k = std::min(k, scores.size());
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

void SoftmaxInPlace(std::vector<double>& v) {
  SUBREC_CHECK(!v.empty());
  double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

Matrix StackRows(const std::vector<std::vector<double>>& rows) {
  SUBREC_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) m.SetRow(i, rows[i]);
  return m;
}

}  // namespace subrec::la
