#include "la/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/gemm.h"
#include "par/parallel.h"

namespace subrec::la {
namespace {

// Size routing for the three matmul entry points, in units of m*n*k.
// Below kGemmBlockedMinWork the original scalar loops run — the autodiff
// tapes issue thousands of tiny products and those must stay bit-identical
// to the seed code (and free of dispatch overhead). At or above it the
// register-tiled kernel takes over, and from kGemmParallelMinWork the row
// blocks are spread over the par runtime. Chunk grain is derived from the
// problem shape only, so the split is the same for every thread count.
constexpr size_t kGemmBlockedMinWork = size_t{32} * 1024;
constexpr size_t kGemmParallelMinWork = size_t{1} << 21;
constexpr size_t kGemmChunkWork = size_t{1} << 18;

using GemmFn = void (*)(const double*, size_t, const double*, size_t, double*,
                        size_t, size_t, size_t, size_t, size_t);

GemmFn ActiveGemm() {
  static const GemmFn fn = internal::GemmAvx2Available()
                               ? internal::GemmRowRangeAvx2
                               : internal::GemmRowRangeGeneric;
  return fn;
}

// Blocked path body shared by MatMul and the transposed wrappers. `c` must
// be zero-initialized; all dims are >= 1 here (work >= kGemmBlockedMinWork).
void BlockedGemm(const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  const size_t work = m * n * k;
  const GemmFn fn = ActiveGemm();
  const size_t blocks = (m + internal::kGemmMr - 1) / internal::kGemmMr;
  size_t grain = blocks;  // single chunk -> runs inline on the caller
  if (work >= kGemmParallelMinWork) {
    const size_t block_work = internal::kGemmMr * n * k;
    grain = std::clamp<size_t>(kGemmChunkWork / std::max<size_t>(block_work, 1),
                               1, blocks);
  }
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c->data();
  par::ParallelFor(blocks, grain, [&](size_t b0, size_t b1) {
    fn(pa, k, pb, n, pc, n, b0 * internal::kGemmMr,
       std::min(m, b1 * internal::kGemmMr), k, n);
  });
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SUBREC_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  Matrix c(a.rows(), b.cols());
  if (a.rows() * a.cols() * b.cols() >= kGemmBlockedMinWork) {
    BlockedGemm(a, b, &c);
    return c;
  }
  // ikj loop order: streams over b and c rows for cache friendliness.
  for (size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.row_data(i);
    const double* arow = a.row_data(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  SUBREC_CHECK_EQ(a.rows(), b.rows()) << "MatMulTransA shape mismatch";
  if (a.rows() * a.cols() * b.cols() >= kGemmBlockedMinWork) {
    // One cheap O(k*m) transpose buys the blocked kernel's row layout.
    return MatMul(Transpose(a), b);
  }
  Matrix c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_data(k);
    const double* brow = b.row_data(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row_data(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  SUBREC_CHECK_EQ(a.cols(), b.cols()) << "MatMulTransB shape mismatch";
  if (a.rows() * a.cols() * b.rows() >= kGemmBlockedMinWork) {
    // The dot-product form below defeats vectorization (FP reductions
    // can't be reassociated); transposing B recovers the streaming kernel.
    return MatMul(a, Transpose(b));
  }
  Matrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_data(j);
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  SUBREC_CHECK(a.SameShape(b));
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] += b[i];
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  SUBREC_CHECK(a.SameShape(b));
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] -= b[i];
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  SUBREC_CHECK(a.SameShape(b));
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] *= b[i];
  return c;
}

void Axpy(double alpha, const Matrix& b, Matrix& a) {
  SUBREC_CHECK(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

Matrix Scale(const Matrix& a, double alpha) {
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] *= alpha;
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  SUBREC_CHECK_EQ(bias.rows(), 1u);
  SUBREC_CHECK_EQ(bias.cols(), a.cols());
  Matrix c = a;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) c(i, j) += bias(0, j);
  return c;
}

Matrix Tanh(const Matrix& a) {
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] = std::tanh(c[i]);
  return c;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] = 1.0 / (1.0 + std::exp(-c[i]));
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] = c[i] > 0.0 ? c[i] : 0.0;
  return c;
}

Matrix Exp(const Matrix& a) {
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] = std::exp(c[i]);
  return c;
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix c = a;
  // A 0-column matrix has no row[0] to seed the max scan with; every row
  // is an empty softmax, so the copy is already the answer.
  if (a.cols() == 0) return c;
  for (size_t i = 0; i < a.rows(); ++i) {
    double* row = c.row_data(i);
    double mx = row[0];
    for (size_t j = 1; j < a.cols(); ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    for (size_t j = 0; j < a.cols(); ++j) row[j] /= sum;
  }
  return c;
}

double Sum(const Matrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

Matrix ColMean(const Matrix& a) {
  SUBREC_CHECK_GT(a.rows(), 0u);
  Matrix m(1, a.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) m(0, j) += a(i, j);
  for (size_t j = 0; j < a.cols(); ++j) m(0, j) /= static_cast<double>(a.rows());
  return m;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void NormalizeL2(std::vector<double>& a) {
  const double n = Norm2(a);
  if (n == 0.0) return;
  for (double& v : a) v /= n;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = Norm2(a), nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void AxpyVec(double alpha, const std::vector<double>& b,
             std::vector<double>& a) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

std::vector<size_t> TopKIndices(const std::vector<double>& scores, size_t k) {
  k = std::min(k, scores.size());
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

void SoftmaxInPlace(std::vector<double>& v) {
  SUBREC_CHECK(!v.empty());
  double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

Matrix StackRows(const std::vector<std::vector<double>>& rows) {
  SUBREC_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) m.SetRow(i, rows[i]);
  return m;
}

}  // namespace subrec::la
