#ifndef SUBREC_LA_GEMM_KERNEL_H_
#define SUBREC_LA_GEMM_KERNEL_H_

// Textual kernel body shared by the per-ISA GEMM translation units. Each
// TU defines SUBREC_GEMM_NS to a unique namespace before including this
// header, then gets the identical source compiled under its own ISA flags
// (gemm.cc: baseline; gemm_avx2.cc: -mavx2 -mfma; gemm_avx512.cc:
// -mavx512f -mfma). There are no intrinsics — the tile is expressed with
// GNU vector types sized to the TU's widest native vector (a plain scalar
// path covers non-GNU toolchains). The vector width only changes how the
// kNr columns of a tile row are grouped into registers; it never changes
// any element's multiply-add sequence, so all three TUs produce identical
// bits.

#include <algorithm>
#include <cstddef>

#ifndef SUBREC_GEMM_NS
#error "define SUBREC_GEMM_NS before including la/gemm_kernel.h"
#endif

namespace subrec::la::internal {
namespace SUBREC_GEMM_NS {

// 4 x kNr register tile: 8 vector accumulators (two per row) stay live
// across the whole k loop, so C traffic happens once per tile instead of
// once per k step, and each loaded B vector serves four output rows.
// Every C(i,j) element — tile or edge path — receives its k products
// strictly in ascending-k order, one (possibly fused) multiply-add at a
// time, which makes the result independent of how rows are grouped or
// split across threads, and independent of the tile width kNr (which is
// why the AVX-512 TU may use a wider tile and still match the others
// bit for bit). kMr is fixed at 4 everywhere: it defines the row-split
// grid the parallel driver uses.
inline constexpr size_t kMr = 4;
#if (defined(__GNUC__) || defined(__clang__)) && defined(__AVX512F__)
inline constexpr size_t kNr = 16;  // two 8-lane vectors per tile row
#else
inline constexpr size_t kNr = 8;  // two 4-lane vectors (or scalar) per row
#endif

// The vector-typed tiles need their vectors to be a native ABI type, so
// each width is only compiled into TUs built with the matching ISA
// (passing them around without it draws -Wpsabi and would be emulated
// anyway). Each TU picks the widest tile its flags allow; other TUs keep
// the scalar tile: they are the fallback for pre-AVX2 hardware, where the
// cache blocking still pays but peak FLOPs are not the point.
#if (defined(__GNUC__) || defined(__clang__)) && defined(__AVX512F__)

// 4x16 tile out of 8-lane vectors: same shape as the AVX2 tile — two
// vector accumulators per row, eight independent FMA chains (enough to
// cover FMA latency on two ports) — just twice as wide. Per element the
// math is unchanged: one (possibly fused) multiply-add per k step, in
// ascending-k order — FMA rounds per lane, so lane grouping is invisible.
typedef double Vec8 __attribute__((vector_size(64)));

inline Vec8 LoadVec8(const double* p) {
  Vec8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreVec8(double* p, Vec8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline Vec8 Splat8(double x) { return Vec8{x, x, x, x, x, x, x, x}; }

inline void GemmTile(const double* a, size_t lda, const double* b,
                     size_t ldb, double* c, size_t ldc, size_t i, size_t j,
                     size_t k) {
  double* cr0 = c + (i + 0) * ldc + j;
  double* cr1 = c + (i + 1) * ldc + j;
  double* cr2 = c + (i + 2) * ldc + j;
  double* cr3 = c + (i + 3) * ldc + j;
  Vec8 c00 = LoadVec8(cr0), c01 = LoadVec8(cr0 + 8);
  Vec8 c10 = LoadVec8(cr1), c11 = LoadVec8(cr1 + 8);
  Vec8 c20 = LoadVec8(cr2), c21 = LoadVec8(cr2 + 8);
  Vec8 c30 = LoadVec8(cr3), c31 = LoadVec8(cr3 + 8);
  const double* a0 = a + (i + 0) * lda;
  const double* a1 = a + (i + 1) * lda;
  const double* a2 = a + (i + 2) * lda;
  const double* a3 = a + (i + 3) * lda;
  for (size_t p = 0; p < k; ++p) {
    const double* bp = b + p * ldb + j;
    const Vec8 b0 = LoadVec8(bp);
    const Vec8 b1 = LoadVec8(bp + 8);
    const Vec8 w0 = Splat8(a0[p]);
    const Vec8 w1 = Splat8(a1[p]);
    const Vec8 w2 = Splat8(a2[p]);
    const Vec8 w3 = Splat8(a3[p]);
    c00 += w0 * b0;
    c01 += w0 * b1;
    c10 += w1 * b0;
    c11 += w1 * b1;
    c20 += w2 * b0;
    c21 += w2 * b1;
    c30 += w3 * b0;
    c31 += w3 * b1;
  }
  StoreVec8(cr0, c00);
  StoreVec8(cr0 + 8, c01);
  StoreVec8(cr1, c10);
  StoreVec8(cr1 + 8, c11);
  StoreVec8(cr2, c20);
  StoreVec8(cr2 + 8, c21);
  StoreVec8(cr3, c30);
  StoreVec8(cr3 + 8, c31);
}

#elif (defined(__GNUC__) || defined(__clang__)) && defined(__AVX__)

typedef double Vec4 __attribute__((vector_size(32)));

inline Vec4 LoadVec4(const double* p) {
  Vec4 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreVec4(double* p, Vec4 v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline Vec4 Splat4(double x) { return Vec4{x, x, x, x}; }

inline void GemmTile(const double* a, size_t lda, const double* b,
                     size_t ldb, double* c, size_t ldc, size_t i, size_t j,
                     size_t k) {
  double* cr0 = c + (i + 0) * ldc + j;
  double* cr1 = c + (i + 1) * ldc + j;
  double* cr2 = c + (i + 2) * ldc + j;
  double* cr3 = c + (i + 3) * ldc + j;
  Vec4 c00 = LoadVec4(cr0), c01 = LoadVec4(cr0 + 4);
  Vec4 c10 = LoadVec4(cr1), c11 = LoadVec4(cr1 + 4);
  Vec4 c20 = LoadVec4(cr2), c21 = LoadVec4(cr2 + 4);
  Vec4 c30 = LoadVec4(cr3), c31 = LoadVec4(cr3 + 4);
  const double* a0 = a + (i + 0) * lda;
  const double* a1 = a + (i + 1) * lda;
  const double* a2 = a + (i + 2) * lda;
  const double* a3 = a + (i + 3) * lda;
  for (size_t p = 0; p < k; ++p) {
    const double* bp = b + p * ldb + j;
    const Vec4 b0 = LoadVec4(bp);
    const Vec4 b1 = LoadVec4(bp + 4);
    const Vec4 w0 = Splat4(a0[p]);
    const Vec4 w1 = Splat4(a1[p]);
    const Vec4 w2 = Splat4(a2[p]);
    const Vec4 w3 = Splat4(a3[p]);
    c00 += w0 * b0;
    c01 += w0 * b1;
    c10 += w1 * b0;
    c11 += w1 * b1;
    c20 += w2 * b0;
    c21 += w2 * b1;
    c30 += w3 * b0;
    c31 += w3 * b1;
  }
  StoreVec4(cr0, c00);
  StoreVec4(cr0 + 4, c01);
  StoreVec4(cr1, c10);
  StoreVec4(cr1 + 4, c11);
  StoreVec4(cr2, c20);
  StoreVec4(cr2 + 4, c21);
  StoreVec4(cr3, c30);
  StoreVec4(cr3 + 4, c31);
}

#else  // scalar fallback: same tile, plain arrays

inline void GemmTile(const double* a, size_t lda, const double* b,
                     size_t ldb, double* c, size_t ldc, size_t i, size_t j,
                     size_t k) {
  double acc[kMr][kNr];
  for (size_t r = 0; r < kMr; ++r)
    for (size_t q = 0; q < kNr; ++q) acc[r][q] = c[(i + r) * ldc + j + q];
  for (size_t p = 0; p < k; ++p) {
    const double* bp = b + p * ldb + j;
    for (size_t r = 0; r < kMr; ++r) {
      const double w = a[(i + r) * lda + p];
      for (size_t q = 0; q < kNr; ++q) acc[r][q] += w * bp[q];
    }
  }
  for (size_t r = 0; r < kMr; ++r)
    for (size_t q = 0; q < kNr; ++q) c[(i + r) * ldc + j + q] = acc[r][q];
}

#endif

inline void GemmRowBlock(const double* a, size_t lda, const double* b,
                         size_t ldb, double* c, size_t ldc, size_t row0,
                         size_t row_end, size_t k, size_t n) {
  for (size_t i = row0; i < row_end; i += kMr) {
    const size_t mr = std::min(kMr, row_end - i);
    for (size_t j = 0; j < n; j += kNr) {
      const size_t nr = std::min(kNr, n - j);
      if (mr == kMr && nr == kNr) {
        GemmTile(a, lda, b, ldb, c, ldc, i, j, k);
      } else {
        // Edge tiles: same ascending-k single multiply-add per element.
        for (size_t r = 0; r < mr; ++r) {
          const double* ar = a + (i + r) * lda;
          double* cr = c + (i + r) * ldc + j;
          for (size_t q = 0; q < nr; ++q) {
            double s = cr[q];
            for (size_t p = 0; p < k; ++p) s += ar[p] * b[p * ldb + j + q];
            cr[q] = s;
          }
        }
      }
    }
  }
}

}  // namespace SUBREC_GEMM_NS
}  // namespace subrec::la::internal

#endif  // SUBREC_LA_GEMM_KERNEL_H_
