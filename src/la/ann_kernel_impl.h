#ifndef SUBREC_LA_ANN_KERNEL_IMPL_H_
#define SUBREC_LA_ANN_KERNEL_IMPL_H_

// Textual kernel body shared by the per-ISA ANN distance translation units
// (the same scheme as la/gemm_kernel.h). Each TU defines SUBREC_ANN_NS to a
// unique namespace before including this header, then gets the identical
// source compiled under its own ISA flags — ann_kernel.cc: baseline;
// ann_kernel_avx2.cc: -mavx2; ann_kernel_avx512.cc: -mavx512f; all three
// with -ffp-contract=off and never -mfma.
//
// Layout: one CANDIDATE per vector lane. A group of L candidate rows is
// walked in ascending-d order, so each lane performs the exact
// separate-multiply-then-add sequence the scalar loop (la::Dot) performs
// for that candidate. Lane grouping never splits a single dot product
// across lanes — splitting would reorder the summation and change low
// bits. The vector width therefore only changes how many candidates
// advance per step, never any output element's value.
//
// The inner loop walks d in blocks of L: one contiguous vector load per
// candidate row, an L x L in-register transpose, then L
// broadcast-multiply-add steps in ascending d. The obvious alternative —
// gathering the d-th element of every row each step — issues L scalar
// loads plus inserts per multiply-add and measures SLOWER than the plain
// scalar loop (out-of-order cores already overlap independent scalar dot
// chains); the transpose form reaches the same element layout with wide
// loads and ~3 shuffles per multiply-add and is what actually beats it.
// Batches run the widest block that fits, then narrower ones: under
// AVX-512 a count-13 batch goes 8 + 4 + 1, so beam-search batches between
// 4 and 7 — common at M=16 — still vectorize instead of falling scalar.

#include <cstddef>
#include <cstdint>

#ifndef SUBREC_ANN_NS
#error "define SUBREC_ANN_NS before including la/ann_kernel_impl.h"
#endif

// __builtin_shufflevector: clang always; GCC since 12. Without it there is
// no portable lane permute, so the whole vector path falls away.
#if (defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 12)) && \
    defined(__AVX__)
#define SUBREC_ANN_VECTOR_OK 1
#else
#define SUBREC_ANN_VECTOR_OK 0
#endif

namespace subrec::la::internal {
namespace SUBREC_ANN_NS {

#if SUBREC_ANN_VECTOR_OK

typedef double Vec4 __attribute__((vector_size(32)));

/// 4x4 transpose so t[c][l] = r[l][c]: two butterfly stages, 8 shuffles.
/// A pure lane permutation — no arithmetic, so no rounding anywhere.
inline void Transpose(const Vec4* r, Vec4* t) {
  const Vec4 a0 = __builtin_shufflevector(r[0], r[1], 0, 4, 2, 6);
  const Vec4 a1 = __builtin_shufflevector(r[0], r[1], 1, 5, 3, 7);
  const Vec4 a2 = __builtin_shufflevector(r[2], r[3], 0, 4, 2, 6);
  const Vec4 a3 = __builtin_shufflevector(r[2], r[3], 1, 5, 3, 7);
  t[0] = __builtin_shufflevector(a0, a2, 0, 1, 4, 5);
  t[1] = __builtin_shufflevector(a1, a3, 0, 1, 4, 5);
  t[2] = __builtin_shufflevector(a0, a2, 2, 3, 6, 7);
  t[3] = __builtin_shufflevector(a1, a3, 2, 3, 6, 7);
}

#if defined(__AVX512F__)

typedef double Vec8 __attribute__((vector_size(64)));

/// 8x8 transpose: three butterfly stages, 24 shuffles.
inline void Transpose(const Vec8* r, Vec8* t) {
  const Vec8 a0 = __builtin_shufflevector(r[0], r[1], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a1 = __builtin_shufflevector(r[0], r[1], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 a2 = __builtin_shufflevector(r[2], r[3], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a3 = __builtin_shufflevector(r[2], r[3], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 a4 = __builtin_shufflevector(r[4], r[5], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a5 = __builtin_shufflevector(r[4], r[5], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 a6 = __builtin_shufflevector(r[6], r[7], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a7 = __builtin_shufflevector(r[6], r[7], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 b0 = __builtin_shufflevector(a0, a2, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b1 = __builtin_shufflevector(a1, a3, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b2 = __builtin_shufflevector(a0, a2, 2, 3, 10, 11, 6, 7, 14, 15);
  const Vec8 b3 = __builtin_shufflevector(a1, a3, 2, 3, 10, 11, 6, 7, 14, 15);
  const Vec8 b4 = __builtin_shufflevector(a4, a6, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b5 = __builtin_shufflevector(a5, a7, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b6 = __builtin_shufflevector(a4, a6, 2, 3, 10, 11, 6, 7, 14, 15);
  const Vec8 b7 = __builtin_shufflevector(a5, a7, 2, 3, 10, 11, 6, 7, 14, 15);
  t[0] = __builtin_shufflevector(b0, b4, 0, 1, 2, 3, 8, 9, 10, 11);
  t[1] = __builtin_shufflevector(b1, b5, 0, 1, 2, 3, 8, 9, 10, 11);
  t[2] = __builtin_shufflevector(b2, b6, 0, 1, 2, 3, 8, 9, 10, 11);
  t[3] = __builtin_shufflevector(b3, b7, 0, 1, 2, 3, 8, 9, 10, 11);
  t[4] = __builtin_shufflevector(b0, b4, 4, 5, 6, 7, 12, 13, 14, 15);
  t[5] = __builtin_shufflevector(b1, b5, 4, 5, 6, 7, 12, 13, 14, 15);
  t[6] = __builtin_shufflevector(b2, b6, 4, 5, 6, 7, 12, 13, 14, 15);
  t[7] = __builtin_shufflevector(b3, b7, 4, 5, 6, 7, 12, 13, 14, 15);
}

#endif  // __AVX512F__

/// L candidates' inner products, one per lane, d ascending in blocks of L
/// with a scalar continuation for the dim % L tail.
template <typename Vec, size_t L>
inline void DotBlock(const double* query, size_t dim,
                     const double* const* rows, double* out) {
  Vec acc = {};
  size_t d = 0;
  for (; d + L <= dim; d += L) {
    Vec r[L];
    for (size_t l = 0; l < L; ++l) {
      // Unaligned contiguous load of rows[l][d .. d+L-1].
      __builtin_memcpy(&r[l], rows[l] + d, sizeof(Vec));
    }
    Vec t[L];
    Transpose(r, t);
    for (size_t j = 0; j < L; ++j) {
      Vec q = {};
      for (size_t l = 0; l < L; ++l) q[l] = query[d + j];
      acc += q * t[j];  // -ffp-contract=off: separate multiply, then add.
    }
  }
  for (size_t l = 0; l < L; ++l) {
    double a = acc[l];
    for (size_t dt = d; dt < dim; ++dt) a += query[dt] * rows[l][dt];
    out[l] = a;
  }
}

#endif  // SUBREC_ANN_VECTOR_OK

/// One candidate's inner product, the oracle sequence itself: ascending-d,
/// separate multiply then add. Both the batch tail and the scalar TU use it.
inline double DotOne(const double* query, const double* row, size_t dim) {
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) acc += query[d] * row[d];
  return acc;
}

inline void DotBatch(const double* query, const double* slab, size_t dim,
                     const int32_t* nodes, size_t count, double* out) {
  size_t i = 0;
#if SUBREC_ANN_VECTOR_OK
#if defined(__AVX512F__)
  for (; i + 8 <= count; i += 8) {
    const double* rows[8];
    for (size_t l = 0; l < 8; ++l)
      rows[l] = slab + static_cast<size_t>(nodes[i + l]) * dim;
    // Touch the next block's rows while this one computes: the rows are
    // scattered across a slab far bigger than L2, so the first line of
    // each is a cache miss the hardware prefetcher can't predict. One
    // block of compute is enough slack to hide it.
    if (i + 16 <= count) {
      for (size_t l = 0; l < 8; ++l)
        __builtin_prefetch(slab + static_cast<size_t>(nodes[i + 8 + l]) * dim);
    }
    DotBlock<Vec8, 8>(query, dim, rows, out + i);
  }
#endif
  for (; i + 4 <= count; i += 4) {
    const double* rows[4];
    for (size_t l = 0; l < 4; ++l)
      rows[l] = slab + static_cast<size_t>(nodes[i + l]) * dim;
    if (i + 8 <= count) {
      for (size_t l = 0; l < 4; ++l)
        __builtin_prefetch(slab + static_cast<size_t>(nodes[i + 4 + l]) * dim);
    }
    DotBlock<Vec4, 4>(query, dim, rows, out + i);
  }
#endif
  for (; i < count; ++i)
    out[i] = DotOne(query, slab + static_cast<size_t>(nodes[i]) * dim, dim);
}

}  // namespace SUBREC_ANN_NS
}  // namespace subrec::la::internal

#undef SUBREC_ANN_VECTOR_OK

#endif  // SUBREC_LA_ANN_KERNEL_IMPL_H_
