// Compiled with -mavx512f -mfma on x86-64 GNU/Clang builds (see
// src/CMakeLists.txt); anywhere else it degrades to the AVX2 kernel (which
// itself degrades to generic) and GemmAvx512Available() reports false so
// nothing dispatches here. Bit-for-bit identical to the AVX2 kernel: the
// wider vectors only regroup the lanes of a tile row, every element still
// sees one fused multiply-add per k step in ascending-k order.

#include "la/gemm.h"

#include <cstddef>

#if defined(__AVX512F__) && defined(__FMA__)

#define SUBREC_GEMM_NS gemm_avx512
#include "la/gemm_kernel.h"  // NOLINT(build/include)
#undef SUBREC_GEMM_NS

namespace subrec::la::internal {

void GemmRowRangeAvx512(const double* a, size_t lda, const double* b,
                        size_t ldb, double* c, size_t ldc, size_t row0,
                        size_t row_end, size_t k, size_t n) {
  gemm_avx512::GemmRowBlock(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

bool GemmAvx512Available() {
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma");
}

}  // namespace subrec::la::internal

#else  // !(__AVX512F__ && __FMA__)

namespace subrec::la::internal {

void GemmRowRangeAvx512(const double* a, size_t lda, const double* b,
                        size_t ldb, double* c, size_t ldc, size_t row0,
                        size_t row_end, size_t k, size_t n) {
  GemmRowRangeAvx2(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

bool GemmAvx512Available() { return false; }

}  // namespace subrec::la::internal

#endif
