#include "la/score_math.h"

namespace subrec::la {

// 2^(j/128), j = 0..127, each entry correctly rounded to double. Generated
// offline from 60-digit decimal arithmetic (Python `decimal`), so no host
// libm rounding leaks into the table. Hex literals are exact by
// construction.
const double kScoreExpTable[128] = {
    0x1.0000000000000p+0, 0x1.0163da9fb3335p+0, 0x1.02c9a3e778061p+0,
    0x1.04315e86e7f85p+0, 0x1.059b0d3158574p+0, 0x1.0706b29ddf6dep+0,
    0x1.0874518759bc8p+0, 0x1.09e3ecac6f383p+0, 0x1.0b5586cf9890fp+0,
    0x1.0cc922b7247f7p+0, 0x1.0e3ec32d3d1a2p+0, 0x1.0fb66affed31bp+0,
    0x1.11301d0125b51p+0, 0x1.12abdc06c31ccp+0, 0x1.1429aaea92de0p+0,
    0x1.15a98c8a58e51p+0, 0x1.172b83c7d517bp+0, 0x1.18af9388c8deap+0,
    0x1.1a35beb6fcb75p+0, 0x1.1bbe084045cd4p+0, 0x1.1d4873168b9aap+0,
    0x1.1ed5022fcd91dp+0, 0x1.2063b88628cd6p+0, 0x1.21f49917ddc96p+0,
    0x1.2387a6e756238p+0, 0x1.251ce4fb2a63fp+0, 0x1.26b4565e27cddp+0,
    0x1.284dfe1f56381p+0, 0x1.29e9df51fdee1p+0, 0x1.2b87fd0dad990p+0,
    0x1.2d285a6e4030bp+0, 0x1.2ecafa93e2f56p+0, 0x1.306fe0a31b715p+0,
    0x1.32170fc4cd831p+0, 0x1.33c08b26416ffp+0, 0x1.356c55f929ff1p+0,
    0x1.371a7373aa9cbp+0, 0x1.38cae6d05d866p+0, 0x1.3a7db34e59ff7p+0,
    0x1.3c32dc313a8e5p+0, 0x1.3dea64c123422p+0, 0x1.3fa4504ac801cp+0,
    0x1.4160a21f72e2ap+0, 0x1.431f5d950a897p+0, 0x1.44e086061892dp+0,
    0x1.46a41ed1d0057p+0, 0x1.486a2b5c13cd0p+0, 0x1.4a32af0d7d3dep+0,
    0x1.4bfdad5362a27p+0, 0x1.4dcb299fddd0dp+0, 0x1.4f9b2769d2ca7p+0,
    0x1.516daa2cf6642p+0, 0x1.5342b569d4f82p+0, 0x1.551a4ca5d920fp+0,
    0x1.56f4736b527dap+0, 0x1.58d12d497c7fdp+0, 0x1.5ab07dd485429p+0,
    0x1.5c9268a5946b7p+0, 0x1.5e76f15ad2148p+0, 0x1.605e1b976dc09p+0,
    0x1.6247eb03a5585p+0, 0x1.6434634ccc320p+0, 0x1.6623882552225p+0,
    0x1.68155d44ca973p+0, 0x1.6a09e667f3bcdp+0, 0x1.6c012750bdabfp+0,
    0x1.6dfb23c651a2fp+0, 0x1.6ff7df9519484p+0, 0x1.71f75e8ec5f74p+0,
    0x1.73f9a48a58174p+0, 0x1.75feb564267c9p+0, 0x1.780694fde5d3fp+0,
    0x1.7a11473eb0187p+0, 0x1.7c1ed0130c132p+0, 0x1.7e2f336cf4e62p+0,
    0x1.80427543e1a12p+0, 0x1.82589994cce13p+0, 0x1.8471a4623c7adp+0,
    0x1.868d99b4492edp+0, 0x1.88ac7d98a6699p+0, 0x1.8ace5422aa0dbp+0,
    0x1.8cf3216b5448cp+0, 0x1.8f1ae99157736p+0, 0x1.9145b0b91ffc6p+0,
    0x1.93737b0cdc5e5p+0, 0x1.95a44cbc8520fp+0, 0x1.97d829fde4e50p+0,
    0x1.9a0f170ca07bap+0, 0x1.9c49182a3f090p+0, 0x1.9e86319e32323p+0,
    0x1.a0c667b5de565p+0, 0x1.a309bec4a2d33p+0, 0x1.a5503b23e255dp+0,
    0x1.a799e1330b358p+0, 0x1.a9e6b5579fdbfp+0, 0x1.ac36bbfd3f37ap+0,
    0x1.ae89f995ad3adp+0, 0x1.b0e07298db666p+0, 0x1.b33a2b84f15fbp+0,
    0x1.b59728de5593ap+0, 0x1.b7f76f2fb5e47p+0, 0x1.ba5b030a1064ap+0,
    0x1.bcc1e904bc1d2p+0, 0x1.bf2c25bd71e09p+0, 0x1.c199bdd85529cp+0,
    0x1.c40ab5fffd07ap+0, 0x1.c67f12e57d14bp+0, 0x1.c8f6d9406e7b5p+0,
    0x1.cb720dcef9069p+0, 0x1.cdf0b555dc3fap+0, 0x1.d072d4a07897cp+0,
    0x1.d2f87080d89f2p+0, 0x1.d5818dcfba487p+0, 0x1.d80e316c98398p+0,
    0x1.da9e603db3285p+0, 0x1.dd321f301b460p+0, 0x1.dfc97337b9b5fp+0,
    0x1.e264614f5a129p+0, 0x1.e502ee78b3ff6p+0, 0x1.e7a51fbc74c83p+0,
    0x1.ea4afa2a490dap+0, 0x1.ecf482d8e67f1p+0, 0x1.efa1bee615a27p+0,
    0x1.f252b376bba97p+0, 0x1.f50765b6e4540p+0, 0x1.f7bfdad9cbe14p+0,
    0x1.fa7c1819e90d8p+0, 0x1.fd3c22b8f71f1p+0,
};

}  // namespace subrec::la
