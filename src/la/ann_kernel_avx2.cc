// AVX2 ANN distance TU: compiled with -mavx2 -ffp-contract=off on x86-64
// GNU/Clang builds (src/CMakeLists.txt) — note NO -mfma. One candidate per
// lane with contraction off means every lane runs the scalar oracle's
// separate multiply-then-add sequence; the wider vectors only let four
// candidates advance per step. Anywhere else this TU degrades to the
// generic kernel and AnnKernelAvx2Available() reports false.

#include "la/ann_kernel.h"

#include <cstddef>

#if (defined(__GNUC__) || defined(__clang__)) && defined(__AVX2__)

#define SUBREC_ANN_NS ann_avx2
#include "la/ann_kernel_impl.h"  // NOLINT(build/include)
#undef SUBREC_ANN_NS

namespace subrec::la::internal {

void AnnDotBatchAvx2(const double* query, const double* slab, size_t dim,
                     const int32_t* nodes, size_t count, double* out) {
  ann_avx2::DotBatch(query, slab, dim, nodes, count, out);
}

bool AnnKernelAvx2Available() { return __builtin_cpu_supports("avx2"); }

}  // namespace subrec::la::internal

#else  // !__AVX2__

namespace subrec::la::internal {

void AnnDotBatchAvx2(const double* query, const double* slab, size_t dim,
                     const int32_t* nodes, size_t count, double* out) {
  AnnDotBatchGeneric(query, slab, dim, nodes, count, out);
}

bool AnnKernelAvx2Available() { return false; }

}  // namespace subrec::la::internal

#endif
