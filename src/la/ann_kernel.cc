// Baseline ANN distance TU plus the runtime dispatcher. Compiled with
// -ffp-contract=off (src/CMakeLists.txt) like every serve-path kernel: the
// batched distances must stay bit-identical to the scalar la::Dot loop the
// HNSW determinism contract is defined against — see ann_kernel_impl.h.

#include "la/ann_kernel.h"

#include <cstddef>

#define SUBREC_ANN_NS ann_generic
#include "la/ann_kernel_impl.h"  // NOLINT(build/include)
#undef SUBREC_ANN_NS

namespace subrec::la {
namespace internal {

void AnnDotBatchGeneric(const double* query, const double* slab, size_t dim,
                        const int32_t* nodes, size_t count, double* out) {
  ann_generic::DotBatch(query, slab, dim, nodes, count, out);
}

}  // namespace internal

namespace {

using DotBatchFn = void (*)(const double*, const double*, size_t,
                            const int32_t*, size_t, double*);

DotBatchFn PickDotBatch() {
  if (internal::AnnKernelAvx512Available())
    return internal::AnnDotBatchAvx512;
  if (internal::AnnKernelAvx2Available()) return internal::AnnDotBatchAvx2;
  return internal::AnnDotBatchGeneric;
}

}  // namespace

void AnnDotBatch(const double* query, const double* slab, size_t dim,
                 const int32_t* nodes, size_t count, double* out) {
  static const DotBatchFn fn = PickDotBatch();
  fn(query, slab, dim, nodes, count, out);
}

}  // namespace subrec::la
