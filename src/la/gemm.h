#ifndef SUBREC_LA_GEMM_H_
#define SUBREC_LA_GEMM_H_

#include <cstddef>

namespace subrec::la::internal {

/// Row height of the register tile; row-range parallel splits are made in
/// units of kGemmMr rows so the tile grid is a function of the matrix
/// shape alone (never of the thread count).
inline constexpr size_t kGemmMr = 4;

/// Accumulates C[row0..row_end) += A * B on row-major buffers with leading
/// dimensions lda/ldb/ldc (A is m x k, B is k x n, C is m x n). Both
/// variants run the exact same per-element floating-point sequence — each
/// C(i,j) accumulates its k products in ascending-k order — so the result
/// is identical whether a row lands in a full register tile or in an edge
/// loop, and therefore identical for any row-range split.
///
/// The three symbols are the same kernel compiled for different ISAs: the
/// generic one with the project-wide baseline flags, the Avx2 one with
/// -mavx2 -mfma, the Avx512 one with -mavx512f -mfma (each falls back to
/// the next-narrower kernel when the toolchain or target lacks its ISA).
/// Pick via GemmAvx512Available()/GemmAvx2Available() once per process.
void GemmRowRangeGeneric(const double* a, size_t lda, const double* b,
                         size_t ldb, double* c, size_t ldc, size_t row0,
                         size_t row_end, size_t k, size_t n);
void GemmRowRangeAvx2(const double* a, size_t lda, const double* b,
                      size_t ldb, double* c, size_t ldc, size_t row0,
                      size_t row_end, size_t k, size_t n);
void GemmRowRangeAvx512(const double* a, size_t lda, const double* b,
                        size_t ldb, double* c, size_t ldc, size_t row0,
                        size_t row_end, size_t k, size_t n);

/// True when the AVX2+FMA translation unit was compiled with those ISAs
/// AND the running CPU reports them.
bool GemmAvx2Available();

/// Same contract for the AVX-512F translation unit.
bool GemmAvx512Available();

}  // namespace subrec::la::internal

#endif  // SUBREC_LA_GEMM_H_
