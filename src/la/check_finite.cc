#include "la/check_finite.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "la/matrix.h"

namespace subrec::la {

bool AllFinite(const Matrix& m) {
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m[i])) return false;
  }
  return true;
}

bool AllFinite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

void CheckFinite(const Matrix& m, const char* label) {
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m[i])) {
      const size_t r = m.cols() > 0 ? i / m.cols() : 0;
      const size_t c = m.cols() > 0 ? i % m.cols() : 0;
      SUBREC_CHECK(false) << "non-finite value in " << label << ": entry ("
                          << r << "," << c << ") = " << m[i] << " of "
                          << m.rows() << "x" << m.cols();
    }
  }
}

void CheckFinite(const std::vector<double>& v, const char* label) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      SUBREC_CHECK(false) << "non-finite value in " << label << ": entry ["
                          << i << "] = " << v[i] << " of " << v.size();
    }
  }
}

void CheckFinite(double x, const char* label) {
  if (!std::isfinite(x)) {
    SUBREC_CHECK(false) << "non-finite value in " << label << ": " << x;
  }
}

}  // namespace subrec::la
