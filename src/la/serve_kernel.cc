// Baseline serve-kernel TU plus the runtime dispatcher. Compiled with the
// project-wide flags and -ffp-contract=off (src/CMakeLists.txt): the serve
// kernels must never fuse a multiply-add, or the batched logits would
// diverge from the scalar per-pair oracle — see serve_kernel.h.

#include "la/serve_kernel.h"

#include <cstddef>

#include "la/score_math.h"

#define SUBREC_GEMM_NS serve_generic
#include "la/gemm_kernel.h"  // NOLINT(build/include)
#undef SUBREC_GEMM_NS

namespace subrec::la {
namespace internal {

void ServeGemmRowBlockGeneric(const double* a, size_t lda, const double* b,
                              size_t ldb, double* c, size_t ldc, size_t row0,
                              size_t row_end, size_t k, size_t n) {
  serve_generic::GemmRowBlock(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

void ServeSigmoidMeanColumnsGeneric(const double* logits, size_t ld,
                                    size_t m, size_t n, double denom,
                                    double* out) {
  for (size_t j = 0; j < n; ++j) out[j] = 0.0;
  for (size_t p = 0; p < m; ++p) {
    const double* row = logits + p * ld;
    for (size_t j = 0; j < n; ++j) out[j] += ScoreSigmoid(row[j]);
  }
  if (m == 0) return;
  for (size_t j = 0; j < n; ++j) out[j] /= denom;
}

}  // namespace internal

namespace {

using GemmFn = void (*)(const double*, size_t, const double*, size_t,
                        double*, size_t, size_t, size_t, size_t, size_t);
using EpilogueFn = void (*)(const double*, size_t, size_t, size_t, double,
                            double*);

GemmFn PickGemm() {
  if (internal::ServeKernelAvx512Available())
    return internal::ServeGemmRowBlockAvx512;
  if (internal::ServeKernelAvx2Available())
    return internal::ServeGemmRowBlockAvx2;
  return internal::ServeGemmRowBlockGeneric;
}

EpilogueFn PickEpilogue() {
  if (internal::ServeKernelAvx512Available())
    return internal::ServeSigmoidMeanColumnsAvx512;
  if (internal::ServeKernelAvx2Available())
    return internal::ServeSigmoidMeanColumnsAvx2;
  return internal::ServeSigmoidMeanColumnsGeneric;
}

}  // namespace

void ServeGemm(const double* a, size_t lda, const double* b, size_t ldb,
               double* c, size_t ldc, size_t m, size_t k, size_t n) {
  static const GemmFn fn = PickGemm();
  for (size_t i = 0; i < m; ++i) {
    double* row = c + i * ldc;
    for (size_t j = 0; j < n; ++j) row[j] = 0.0;
  }
  fn(a, lda, b, ldb, c, ldc, 0, m, k, n);
}

void ServeSigmoidMeanColumns(const double* logits, size_t ld, size_t m,
                             size_t n, double denom, double* out) {
  static const EpilogueFn fn = PickEpilogue();
  fn(logits, ld, m, n, denom, out);
}

void ServeGatherTranspose(const double* slab, size_t k, const int32_t* ids,
                          size_t count, double* bt) {
  for (size_t i = 0; i < count; ++i) {
    const double* row = slab + static_cast<size_t>(ids[i]) * k;
    for (size_t d = 0; d < k; ++d) bt[d * count + i] = row[d];
  }
}

}  // namespace subrec::la
