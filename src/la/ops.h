#ifndef SUBREC_LA_OPS_H_
#define SUBREC_LA_OPS_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"

namespace subrec::la {

/// Benchmark A/B switch: when on, the matmul entry points run the kernel
/// selection and scratch strategy the library shipped before the
/// zero-allocation tape rewrite (AVX2 kernel ceiling, fresh transposed
/// copies instead of per-thread scratch). Results are bit-identical either
/// way; only memory traffic and ISA width differ. Flipped between runs by
/// autodiff::SetTapeLegacyMode — not meant to be toggled while matmuls are
/// in flight on other threads.
void SetLegacyKernelMode(bool on);
bool LegacyKernelMode();

/// C = A * B. Shapes must agree (A: m x k, B: k x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B (A: k x m, B: k x n -> C: m x n).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T (A: m x k, B: n x k -> C: m x n).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Transposed copy.
Matrix Transpose(const Matrix& a);

// --- destination-passing variants ------------------------------------
//
// Each XInto(args, out) computes exactly what X(args) returns — the same
// floating-point sequence, element for element — but writes into `out`,
// resizing it capacity-preservingly so a steady-state caller (the autodiff
// tape's node arena) reuses one heap block instead of allocating per call.
// `out` must not alias any input.

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out);
void TransposeInto(const Matrix& a, Matrix* out);
void AddInto(const Matrix& a, const Matrix& b, Matrix* out);
void SubInto(const Matrix& a, const Matrix& b, Matrix* out);
void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out);
void ScaleInto(const Matrix& a, double alpha, Matrix* out);
void AddRowBroadcastInto(const Matrix& a, const Matrix& bias, Matrix* out);
void TanhInto(const Matrix& a, Matrix* out);
void SigmoidInto(const Matrix& a, Matrix* out);
void ReluInto(const Matrix& a, Matrix* out);
void RowSoftmaxInto(const Matrix& a, Matrix* out);
void ColMeanInto(const Matrix& a, Matrix* out);

/// Elementwise sum / difference / product; shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// a += alpha * b (shapes must match).
void Axpy(double alpha, const Matrix& b, Matrix& a);

/// Scaled copy.
Matrix Scale(const Matrix& a, double alpha);

/// Adds row-vector `bias` (1 x n) to every row of `a` (m x n).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias);

/// Elementwise maps.
Matrix Tanh(const Matrix& a);
Matrix Sigmoid(const Matrix& a);
Matrix Relu(const Matrix& a);
Matrix Exp(const Matrix& a);

/// Numerically stable softmax applied to each row independently.
Matrix RowSoftmax(const Matrix& a);

/// Sum of all entries.
double Sum(const Matrix& a);

/// 1 x cols row of column means.
Matrix ColMean(const Matrix& a);

/// Dot product of two equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Dot product over raw spans — the same single definition the vector
/// overload forwards to, so callers holding contiguous matrix rows (the
/// frozen scorer) get bit-identical results by construction. Plain
/// ascending multiply-add; never auto-vectorized into a reassociated
/// reduction (that needs -fassociative-math, which this project never
/// enables).
double Dot(const double* a, const double* b, size_t n);

/// L2 norm of a vector.
double Norm2(const std::vector<double>& a);

/// Scales `a` in place to unit L2 norm (no-op on the zero vector).
void NormalizeL2(std::vector<double>& a);

/// Euclidean distance between two equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Cosine similarity in [-1,1]; 0 if either vector is zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a += alpha * b for flat vectors.
void AxpyVec(double alpha, const std::vector<double>& b,
             std::vector<double>& a);

/// Indices of the k largest values of `scores`, descending (stable on ties
/// by smaller index first). k is clamped to scores.size().
std::vector<size_t> TopKIndices(const std::vector<double>& scores, size_t k);

/// Numerically stable in-place softmax of a flat vector.
void SoftmaxInPlace(std::vector<double>& v);

/// Stacks equal-length vectors as the rows of a matrix.
Matrix StackRows(const std::vector<std::vector<double>>& rows);

}  // namespace subrec::la

#endif  // SUBREC_LA_OPS_H_
