#include "la/matrix.h"

#include "common/string_util.h"

namespace subrec::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SUBREC_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Random(size_t rows, size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m[i] = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, Rng& rng,
                              double stddev) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m[i] = rng.Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& v) {
  Matrix m(1, v.size());
  for (size_t i = 0; i < v.size(); ++i) m[i] = v[i];
  return m;
}

Matrix Matrix::ColVector(const std::vector<double>& v) {
  Matrix m(v.size(), 1);
  for (size_t i = 0; i < v.size(); ++i) m[i] = v[i];
  return m;
}

std::vector<double> Matrix::RowToVector(size_t r) const {
  SUBREC_CHECK_LT(r, rows_);
  return std::vector<double>(row_data(r), row_data(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& v) {
  SUBREC_CHECK_LT(r, rows_);
  SUBREC_CHECK_EQ(v.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::Reshape(size_t rows, size_t cols) {
  SUBREC_CHECK_EQ(rows * cols, data_.size());
  rows_ = rows;
  cols_ = cols;
}

std::string Matrix::ToString(int precision) const {
  std::string out = "[";
  for (size_t r = 0; r < rows_; ++r) {
    out += r == 0 ? "[" : " [";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += FormatDouble((*this)(r, c), precision);
    }
    out += r + 1 == rows_ ? "]" : "]\n";
  }
  out += "]";
  return out;
}

}  // namespace subrec::la
