// AVX2 serve-kernel TU: compiled with -mavx2 -ffp-contract=off on x86-64
// GNU/Clang builds (src/CMakeLists.txt) — note NO -mfma, unlike
// gemm_avx2.cc. With contraction off every multiply and add rounds
// separately in ascending-k order, so this TU is bit-identical to the
// generic serve kernel and to the scalar la::Dot oracle; the wider
// vectors only regroup lanes. Anywhere else it degrades to the generic
// kernel and ServeKernelAvx2Available() reports false.

#include "la/serve_kernel.h"

#include <cstddef>

#include "la/score_math.h"

#if (defined(__GNUC__) || defined(__clang__)) && defined(__AVX2__)

#define SUBREC_GEMM_NS serve_avx2
#include "la/gemm_kernel.h"  // NOLINT(build/include)
#undef SUBREC_GEMM_NS

namespace subrec::la::internal {

void ServeGemmRowBlockAvx2(const double* a, size_t lda, const double* b,
                           size_t ldb, double* c, size_t ldc, size_t row0,
                           size_t row_end, size_t k, size_t n) {
  serve_avx2::GemmRowBlock(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

void ServeSigmoidMeanColumnsAvx2(const double* logits, size_t ld, size_t m,
                                 size_t n, double denom, double* out) {
  // Same source as the generic epilogue: ScoreSigmoid is element-wise and
  // contraction is off, so auto-vectorization under -mavx2 cannot change
  // any element's bits — only how many columns are processed per iteration.
  for (size_t j = 0; j < n; ++j) out[j] = 0.0;
  for (size_t p = 0; p < m; ++p) {
    const double* row = logits + p * ld;
    for (size_t j = 0; j < n; ++j) out[j] += ScoreSigmoid(row[j]);
  }
  if (m == 0) return;
  for (size_t j = 0; j < n; ++j) out[j] /= denom;
}

bool ServeKernelAvx2Available() { return __builtin_cpu_supports("avx2"); }

}  // namespace subrec::la::internal

#else  // !__AVX2__

namespace subrec::la::internal {

void ServeGemmRowBlockAvx2(const double* a, size_t lda, const double* b,
                           size_t ldb, double* c, size_t ldc, size_t row0,
                           size_t row_end, size_t k, size_t n) {
  ServeGemmRowBlockGeneric(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

void ServeSigmoidMeanColumnsAvx2(const double* logits, size_t ld, size_t m,
                                 size_t n, double denom, double* out) {
  ServeSigmoidMeanColumnsGeneric(logits, ld, m, n, denom, out);
}

bool ServeKernelAvx2Available() { return false; }

}  // namespace subrec::la::internal

#endif
