// AVX-512F serve-kernel TU: compiled with -mavx512f -ffp-contract=off on
// x86-64 GNU/Clang builds (src/CMakeLists.txt) — note NO -mfma and
// contraction explicitly off: -mavx512f by itself enables 512-bit FMA
// instructions and GCC's default contraction mode would fuse the kernel's
// multiply-adds, silently breaking bit-equality with the scalar oracle.
// With contraction off this TU is bit-identical to the AVX2 and generic
// serve kernels; the 8-lane vectors only regroup tile columns. Anywhere
// else it degrades to the AVX2 kernel (which itself degrades to generic)
// and ServeKernelAvx512Available() reports false.

#include "la/serve_kernel.h"

#include <cstddef>

#include "la/score_math.h"

#if (defined(__GNUC__) || defined(__clang__)) && defined(__AVX512F__)

#define SUBREC_GEMM_NS serve_avx512
#include "la/gemm_kernel.h"  // NOLINT(build/include)
#undef SUBREC_GEMM_NS

namespace subrec::la::internal {

void ServeGemmRowBlockAvx512(const double* a, size_t lda, const double* b,
                             size_t ldb, double* c, size_t ldc, size_t row0,
                             size_t row_end, size_t k, size_t n) {
  serve_avx512::GemmRowBlock(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

void ServeSigmoidMeanColumnsAvx512(const double* logits, size_t ld, size_t m,
                                   size_t n, double denom, double* out) {
  // Same source as the generic epilogue: ScoreSigmoid is element-wise and
  // contraction is off, so auto-vectorization under -mavx512f (8-wide with
  // gathered table loads) cannot change any element's bits.
  for (size_t j = 0; j < n; ++j) out[j] = 0.0;
  for (size_t p = 0; p < m; ++p) {
    const double* row = logits + p * ld;
    for (size_t j = 0; j < n; ++j) out[j] += ScoreSigmoid(row[j]);
  }
  if (m == 0) return;
  for (size_t j = 0; j < n; ++j) out[j] /= denom;
}

bool ServeKernelAvx512Available() {
  return __builtin_cpu_supports("avx512f");
}

}  // namespace subrec::la::internal

#else  // !__AVX512F__

namespace subrec::la::internal {

void ServeGemmRowBlockAvx512(const double* a, size_t lda, const double* b,
                             size_t ldb, double* c, size_t ldc, size_t row0,
                             size_t row_end, size_t k, size_t n) {
  ServeGemmRowBlockAvx2(a, lda, b, ldb, c, ldc, row0, row_end, k, n);
}

void ServeSigmoidMeanColumnsAvx512(const double* logits, size_t ld, size_t m,
                                   size_t n, double denom, double* out) {
  ServeSigmoidMeanColumnsAvx2(logits, ld, m, n, denom, out);
}

bool ServeKernelAvx512Available() { return false; }

}  // namespace subrec::la::internal

#endif
