#ifndef SUBREC_LA_MATRIX_H_
#define SUBREC_LA_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace subrec::la {

/// Dense row-major matrix of doubles. The single numeric container used by
/// the autodiff engine, the clustering code and the recommenders. Vectors
/// are represented as 1xN or Nx1 matrices or as std::vector<double> where a
/// flat view is more natural.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix m = {{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Entries i.i.d. Uniform(lo, hi).
  static Matrix Random(size_t rows, size_t cols, Rng& rng, double lo = -1.0,
                       double hi = 1.0);

  /// Entries i.i.d. Normal(0, stddev).
  static Matrix RandomGaussian(size_t rows, size_t cols, Rng& rng,
                               double stddev = 1.0);

  /// 1 x v.size() row vector wrapping a copy of `v`.
  static Matrix RowVector(const std::vector<double>& v);

  /// v.size() x 1 column vector wrapping a copy of `v`.
  static Matrix ColVector(const std::vector<double>& v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    SUBREC_CHECK(r < rows_ && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    SUBREC_CHECK(r < rows_ && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }

  /// Flat element access (row-major). Bounds-checked in debug builds only:
  /// this is the innermost-loop access path, so release builds stay raw.
  double& operator[](size_t i) {
    SUBREC_DCHECK_LT(i, data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    SUBREC_DCHECK_LT(i, data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_data(size_t r) {
    SUBREC_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* row_data(size_t r) const {
    SUBREC_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r into a std::vector.
  std::vector<double> RowToVector(size_t r) const;

  /// Overwrites row r from `v` (sizes must match).
  void SetRow(size_t r, const std::vector<double>& v);

  void Fill(double v) { data_.assign(data_.size(), v); }

  /// Reshape preserving the flat contents; total size must be unchanged.
  void Reshape(size_t rows, size_t cols);

  /// Resizes to rows x cols with every entry zeroed, reusing the existing
  /// heap allocation whenever capacity suffices. The storage primitive of
  /// the autodiff arena: a matrix that is ResizeZero'd to the same shape
  /// every pass allocates only once.
  void ResizeZero(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Resizes to rows x cols without clearing retained entries (grown
  /// entries are zero); only for callers that overwrite every entry, like
  /// TransposeInto. In the steady state (same shape as last pass) this is
  /// free where ResizeZero pays a full memset.
  void ResizeOverwrite(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Copies shape and contents from `src`, reusing this matrix's
  /// allocation when capacity suffices (unlike operator=, which may give
  /// up the buffer to copy-and-swap).
  void CopyFrom(const Matrix& src) {
    rows_ = src.rows_;
    cols_ = src.cols_;
    data_.assign(src.data_.begin(), src.data_.end());
  }

  /// Becomes the empty 0x0 matrix but keeps the heap allocation so a later
  /// ResizeZero/CopyFrom to a similar shape is allocation-free.
  void ClearKeepCapacity() {
    rows_ = 0;
    cols_ = 0;
    data_.clear();
  }

  /// Entries currently reserved on the heap (>= size()).
  size_t capacity() const { return data_.capacity(); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Human-readable dump (small matrices only; used in tests/logging).
  std::string ToString(int precision = 4) const;

  /// Shape and element-wise equality (IEEE ==, so NaN entries never
  /// compare equal — matching what the nested-vector representation the
  /// snapshot structs used to hold would have said).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }
  friend bool operator!=(const Matrix& a, const Matrix& b) {
    return !(a == b);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace subrec::la

#endif  // SUBREC_LA_MATRIX_H_
