#ifndef SUBREC_LA_CHECK_FINITE_H_
#define SUBREC_LA_CHECK_FINITE_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"

namespace subrec::la {

/// True when every entry of `m` is finite (no NaN / +-inf).
bool AllFinite(const Matrix& m);
bool AllFinite(const std::vector<double>& v);

/// Aborts with `label` and the position/value of the first non-finite entry.
/// The label should name the tensor at its producer ("Adam step value",
/// "GMM means after M-step") so a poisoned pipeline is caught at the joint
/// that produced the bad value, not thousands of ops downstream.
void CheckFinite(const Matrix& m, const char* label);
void CheckFinite(const std::vector<double>& v, const char* label);
void CheckFinite(double x, const char* label);

}  // namespace subrec::la

/// Numeric-sanity guards at hot pipeline joints (optimizer steps, autodiff
/// backward, GMM E/M, SEM loss, NPRec propagation). Compiled in when the
/// CMake option SUBREC_NUMERIC_CHECKS is ON (the default for dev and
/// sanitizer builds); the `release` preset compiles them out so production
/// binaries pay nothing.
#if defined(SUBREC_NUMERIC_CHECKS) && SUBREC_NUMERIC_CHECKS
#define SUBREC_CHECK_FINITE(value, label) \
  ::subrec::la::CheckFinite((value), (label))
#else
#define SUBREC_CHECK_FINITE(value, label) \
  static_cast<void>(sizeof((value), (label), 0))
#endif

#endif  // SUBREC_LA_CHECK_FINITE_H_
