#ifndef SUBREC_LA_SCORE_MATH_H_
#define SUBREC_LA_SCORE_MATH_H_

#include <cstdint>

namespace subrec::la {

/// 2^(j/128) for j in [0, 128), correctly rounded to double. The constants
/// were generated offline with arbitrary-precision decimal arithmetic (60
/// digits), not with the host libm, so the table is identical on every
/// build host. Defined in score_math.cc.
extern const double kScoreExpTable[128];

namespace score_math_internal {

inline double BitsToDouble(uint64_t b) {
  double d;
  __builtin_memcpy(&d, &b, sizeof(d));
  return d;
}

inline uint64_t DoubleToBits(double d) {
  uint64_t b;
  __builtin_memcpy(&b, &d, sizeof(b));
  return b;
}

}  // namespace score_math_internal

/// Deterministic replacement for std::exp on the scoring path.
///
/// std::exp dispatches into libm, whose result can change across libc
/// versions and whose vectorized variants (libmvec) round differently from
/// the scalar entry point — either would silently break the frozen-vs-live
/// and batch-vs-pairwise bit-equality gates. ScoreExp is a fixed,
/// branch-free instruction sequence owned by this repo: clamp, reduce
/// against a 128-entry 2^(j/128) table with a Cody-Waite split of
/// ln2/128, a degree-5 polynomial on the ~[-ln2/256, ln2/256] residual,
/// then an exact power-of-two scale built from exponent bits. Every step
/// is a per-element IEEE double op, so a compiler that auto-vectorizes a
/// loop of ScoreExp calls produces bit-identical lanes (provided FMA
/// contraction is off in that translation unit — see the serve kernel
/// TUs' -ffp-contract=off).
///
/// Accuracy: within ~1 ulp of correctly rounded over the clamp range
/// (validated against std::exp in la_test). Arguments are clamped to
/// [-708, 708]; e^±708 is a normal double, so the clamp keeps the whole
/// pipeline (including the 2^e scale) in normal range with no inf/NaN
/// special-casing. Callers feed finite dot products; a NaN argument gives
/// an unspecified (finite) result rather than NaN.
inline double ScoreExp(double x) {
  using score_math_internal::BitsToDouble;
  using score_math_internal::DoubleToBits;
  constexpr double kClamp = 708.0;
  constexpr double kInvLn2N = 0x1.71547652b82fep+7;  // 128/ln2
  constexpr double kMagic = 0x1.8p52;                // 1.5 * 2^52
  constexpr double kC1 = 0x1.62e4200000000p-8;       // ln2/128, high 21 bits
  constexpr double kC2 = 0x1.fdf473de6af28p-29;      // ln2/128 - kC1
  constexpr double kP2 = 0x1.0000000000000p-1;       // 1/2
  constexpr double kP3 = 0x1.5555555555555p-3;       // 1/6
  constexpr double kP4 = 0x1.5555555555555p-5;       // 1/24
  constexpr double kP5 = 0x1.1111111111111p-7;       // 1/120
  x = x > kClamp ? kClamp : x;
  x = x < -kClamp ? -kClamp : x;
  // Round x * 128/ln2 to the nearest integer n via the shift trick: adding
  // 1.5*2^52 forces the sum into [2^52, 2^53), where the mantissa's low
  // bits are exactly the two's-complement integer. |n| < 2^18, so the
  // round-trip is exact and nd == (double)n.
  const double t = x * kInvLn2N;
  const double shifted = t + kMagic;
  const int64_t n = static_cast<int64_t>(DoubleToBits(shifted)) -
                    static_cast<int64_t>(INT64_C(0x4338000000000000));
  const double nd = shifted - kMagic;
  // Cody-Waite residual u = x - n*ln2/128. n has <= 18 significant bits
  // and kC1 has 21, so nd*kC1 is exact; the subtraction cancels without
  // error and kC2 restores the discarded low bits of ln2/128.
  const double u = (x - nd * kC1) - nd * kC2;
  // e^u for |u| <= ln2/256 + rounding: degree-5 Horner, error < 2^-60.
  double p = kP5;
  p = p * u + kP4;
  p = p * u + kP3;
  p = p * u + kP2;
  p = p * u + 1.0;
  p = p * u + 1.0;
  const int64_t e = n >> 7;  // arithmetic shift: floor(n/128)
  const int64_t j = n & 127;
  // 2^e as bits: e in [-1022, 1022] under the clamp, always normal, and a
  // power-of-two multiply is exact.
  const double scale =
      BitsToDouble(static_cast<uint64_t>(e + 1023) << 52);
  return (kScoreExpTable[j] * p) * scale;
}

/// The serving-score squash 1/(1 + e^-x), built on ScoreExp so pairwise
/// and batched scorers (and the live NPRec scorer the snapshot was frozen
/// from) agree bit for bit. Saturates to exactly 1.0 for x >= ~745 and to
/// a tiny normal/subnormal for very negative x — same shape as the libm
/// version it replaces.
inline double ScoreSigmoid(double x) { return 1.0 / (1.0 + ScoreExp(-x)); }

}  // namespace subrec::la

#endif  // SUBREC_LA_SCORE_MATH_H_
