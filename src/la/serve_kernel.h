#ifndef SUBREC_LA_SERVE_KERNEL_H_
#define SUBREC_LA_SERVE_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace subrec::la {

namespace internal {

/// The serving-path GEMM: the same textual kernel as la/gemm.cc
/// (la/gemm_kernel.h), but compiled WITHOUT -mfma and with
/// -ffp-contract=off in every serve TU. Training wants FMA throughput;
/// serving wants bit-equality against the scalar per-pair oracle
/// (la::Dot), whose multiply and add round separately — a fused
/// multiply-add rounds once and produces different low bits. Without
/// contraction every C(i,j) element accumulates its k products as a
/// separate multiply then add, in ascending-k order: exactly la::Dot's
/// sequence, so the batched logits match the pairwise logits bit for bit
/// on every ISA. (-ffp-contract=off matters even without -mfma: -mavx512f
/// alone enables FMA instructions and GCC contracts by default.)
void ServeGemmRowBlockGeneric(const double* a, size_t lda, const double* b,
                              size_t ldb, double* c, size_t ldc, size_t row0,
                              size_t row_end, size_t k, size_t n);
void ServeGemmRowBlockAvx2(const double* a, size_t lda, const double* b,
                           size_t ldb, double* c, size_t ldc, size_t row0,
                           size_t row_end, size_t k, size_t n);
void ServeGemmRowBlockAvx512(const double* a, size_t lda, const double* b,
                             size_t ldb, double* c, size_t ldc, size_t row0,
                             size_t row_end, size_t k, size_t n);

/// Fused scoring epilogue over one logit tile: for each column j,
///   out[j] = (sum over rows p ascending of ScoreSigmoid(logits[p][j]))
///            / denom.
/// The profile sum runs in ascending-p order per column — the oracle's
/// order — and the sigmoid is la::ScoreSigmoid, a branch-free per-element
/// sequence, so the compiler may vectorize across columns (it does, with
/// gathers for the exp table) without changing any element's bits.
void ServeSigmoidMeanColumnsGeneric(const double* logits, size_t ld,
                                    size_t m, size_t n, double denom,
                                    double* out);
void ServeSigmoidMeanColumnsAvx2(const double* logits, size_t ld, size_t m,
                                 size_t n, double denom, double* out);
void ServeSigmoidMeanColumnsAvx512(const double* logits, size_t ld, size_t m,
                                   size_t n, double denom, double* out);

/// True when the AVX2 serve TU was compiled with -mavx2 AND the running
/// CPU reports it (no FMA requirement: the serve kernels never fuse).
bool ServeKernelAvx2Available();

/// Same contract for the AVX-512F serve TU.
bool ServeKernelAvx512Available();

}  // namespace internal

/// C (m x n, leading dim ldc) = A (m x k, lda) * B (k x n, ldb), zeroing C
/// first. Row-major raw buffers; dispatches once per process to the widest
/// serve kernel the CPU supports. Bit-exact against computing each C(i,j)
/// as la::Dot of A's row i and B's column j, on every ISA.
void ServeGemm(const double* a, size_t lda, const double* b, size_t ldb,
               double* c, size_t ldc, size_t m, size_t k, size_t n);

/// Scoring epilogue (see ServeSigmoidMeanColumns* above): column means of
/// the sigmoid-squashed logit tile, profile rows accumulated in ascending
/// order, divided by `denom` (the profile size — division, not reciprocal
/// multiply, to match the oracle). m == 0 writes zeros.
void ServeSigmoidMeanColumns(const double* logits, size_t ld, size_t m,
                             size_t n, double denom, double* out);

/// Gathers `count` rows of the row-major slab (row width k) into a
/// transposed tile: bt[d * count + i] = slab[ids[i] * k + d]. Pure data
/// movement — no rounding — so it needs no ISA dispatch for determinism.
void ServeGatherTranspose(const double* slab, size_t k, const int32_t* ids,
                          size_t count, double* bt);

}  // namespace subrec::la

#endif  // SUBREC_LA_SERVE_KERNEL_H_
