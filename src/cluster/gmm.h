#ifndef SUBREC_CLUSTER_GMM_H_
#define SUBREC_CLUSTER_GMM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "la/matrix.h"

namespace subrec::cluster {

struct GmmOptions {
  int num_components = 2;
  int max_iterations = 100;
  /// Stop when the mean log-likelihood improves by less than this.
  double tolerance = 1e-5;
  /// Variance floor for numerical stability.
  double min_variance = 1e-6;
  uint64_t seed = 5;
};

/// Diagonal-covariance Gaussian mixture fitted by EM, initialized from
/// k-means++. The clustering method of Sec. III-C ("Gaussian mixture
/// clustering ... number of clusters set by BIC" [31]).
class GaussianMixture {
 public:
  explicit GaussianMixture(GmmOptions options = {});

  /// Fits to the rows of `data`. Returns InvalidArgument when there are
  /// fewer points than components.
  Status Fit(const la::Matrix& data);

  bool fitted() const { return fitted_; }
  int num_components() const { return options_.num_components; }
  size_t dim() const { return means_.cols(); }

  /// Per-row most likely component.
  std::vector<int> Predict(const la::Matrix& data) const;

  /// Per-row responsibilities (n x k).
  la::Matrix PredictProba(const la::Matrix& data) const;

  /// Total log-likelihood of `data` under the fitted model.
  double LogLikelihood(const la::Matrix& data) const;

  /// Bayesian information criterion: -2 logL + params * ln(n). Lower is
  /// better.
  double Bic(const la::Matrix& data) const;

  /// Free-parameter count: k-1 weights + k*d means + k*d variances.
  size_t NumParameters() const;

  const la::Matrix& means() const { return means_; }
  const la::Matrix& variances() const { return variances_; }
  const std::vector<double>& weights() const { return weights_; }
  int iterations() const { return iterations_; }

 private:
  /// Row i, component c log density + log weight.
  double LogJoint(const la::Matrix& data, size_t i, size_t c) const;

  GmmOptions options_;
  bool fitted_ = false;
  la::Matrix means_;      // k x d
  la::Matrix variances_;  // k x d (diagonal)
  std::vector<double> weights_;
  int iterations_ = 0;
};

/// Fits mixtures with k in [min_components, max_components] and returns the
/// one with the lowest BIC (the paper's mclust-style model selection).
Result<GaussianMixture> FitGmmWithBic(const la::Matrix& data,
                                      int min_components, int max_components,
                                      GmmOptions base_options = {});

}  // namespace subrec::cluster

#endif  // SUBREC_CLUSTER_GMM_H_
