#include "cluster/tsne.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"

namespace subrec::cluster {
namespace {

// Fixed row grain for the per-point loops: the chunk grid depends on n
// only, so results are bit-identical for every thread count.
constexpr size_t kRowGrain = 32;

/// Row-conditional affinities p_{j|i} with bandwidth tuned so the row
/// entropy matches log(perplexity).
void ComputeRowAffinities(const la::Matrix& sqdist, size_t i,
                          double perplexity, std::vector<double>& p_row) {
  const size_t n = sqdist.rows();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
  for (int attempt = 0; attempt < 64; ++attempt) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      p_row[j] = (j == i) ? 0.0 : std::exp(-beta * sqdist(i, j));
      sum += p_row[j];
    }
    if (sum <= 1e-300) {
      beta_hi = beta;
      beta = (beta_lo + beta) / 2.0;
      continue;
    }
    double entropy = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (p_row[j] <= 0.0) continue;
      const double pj = p_row[j] / sum;
      entropy -= pj * std::log(pj);
    }
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) {
      for (size_t j = 0; j < n; ++j) p_row[j] /= sum;
      return;
    }
    if (diff > 0) {  // entropy too high -> sharpen -> larger beta
      beta_lo = beta;
      beta = beta_hi >= 1e12 ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta_lo + beta) / 2.0;
    }
  }
  // Normalize with the final beta even if not fully converged.
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) {
    p_row[j] = (j == i) ? 0.0 : std::exp(-beta * sqdist(i, j));
    sum += p_row[j];
  }
  if (sum <= 0.0) sum = 1.0;
  for (size_t j = 0; j < n; ++j) p_row[j] /= sum;
}

}  // namespace

Result<la::Matrix> Tsne(const la::Matrix& data, const TsneOptions& options) {
  const size_t n = data.rows();
  if (n < 4) return Status::InvalidArgument("Tsne: need at least 4 points");
  if (options.output_dim <= 0)
    return Status::InvalidArgument("Tsne: output_dim must be positive");
  const double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);

  // Pairwise squared distances in input space.
  la::Matrix sqdist(n, n);
  la::Matrix p(n, n);
  {
    SUBREC_TRACE_SPAN("tsne/affinities");
    par::ParallelFor(n, kRowGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          double s = 0.0;
          for (size_t c = 0; c < data.cols(); ++c) {
            const double diff = data(i, c) - data(j, c);
            s += diff * diff;
          }
          sqdist(i, j) = s;
          sqdist(j, i) = s;
        }
      }
    });

    // Symmetrized affinities P: the bandwidth search is per-row.
    par::ParallelFor(n, kRowGrain, [&](size_t begin, size_t end) {
      std::vector<double> row(n);
      for (size_t i = begin; i < end; ++i) {
        ComputeRowAffinities(sqdist, i, perplexity, row);
        for (size_t j = 0; j < n; ++j) p(i, j) = row[j];
      }
    });
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double v = (p(i, j) + p(j, i)) / (2.0 * static_cast<double>(n));
        p(i, j) = std::max(v, 1e-12);
        p(j, i) = p(i, j);
      }
      p(i, i) = 1e-12;
    }
  }

  // Gradient descent on the embedding.
  const size_t od = static_cast<size_t>(options.output_dim);
  Rng rng(options.seed);
  la::Matrix y = la::Matrix::RandomGaussian(n, od, rng, 1e-2);
  la::Matrix velocity(n, od);
  la::Matrix grad(n, od);
  la::Matrix q(n, n);

  static obs::Counter* const iterations =
      obs::MetricsRegistry::Global().GetCounter("tsne.iterations");
  for (int iter = 0; iter < options.iterations; ++iter) {
    SUBREC_TRACE_SPAN("tsne/iteration");
    iterations->Increment();
    const double exaggeration =
        iter < options.exaggeration_iters ? options.exaggeration : 1.0;
    // Student-t low-dim affinities. Each row's weight total goes into a
    // buffer; the grand total is then summed in row order so it does not
    // depend on the thread count.
    std::vector<double> row_w(n, 0.0);
    par::ParallelFor(n, kRowGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        double wsum = 0.0;
        for (size_t j = i + 1; j < n; ++j) {
          double s = 0.0;
          for (size_t c = 0; c < od; ++c) {
            const double diff = y(i, c) - y(j, c);
            s += diff * diff;
          }
          const double w = 1.0 / (1.0 + s);
          q(i, j) = w;
          q(j, i) = w;
          wsum += 2.0 * w;
        }
        row_w[i] = wsum;
        q(i, i) = 0.0;
      }
    });
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) q_sum += row_w[i];
    q_sum = std::max(q_sum, 1e-300);

    grad.Fill(0.0);
    par::ParallelFor(n, kRowGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const double w = q(i, j);
          const double mult =
              4.0 * (exaggeration * p(i, j) - w / q_sum) * w;
          for (size_t c = 0; c < od; ++c)
            grad(i, c) += mult * (y(i, c) - y(j, c));
        }
      }
    });
    const double momentum = iter < 100 ? options.initial_momentum
                                       : options.final_momentum;
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < od; ++c) {
        velocity(i, c) =
            momentum * velocity(i, c) - options.learning_rate * grad(i, c);
        y(i, c) += velocity(i, c);
      }
    }
    // Re-center.
    for (size_t c = 0; c < od; ++c) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += y(i, c);
      mean /= static_cast<double>(n);
      for (size_t i = 0; i < n; ++i) y(i, c) -= mean;
    }
  }
  return y;
}

}  // namespace subrec::cluster
