#include "cluster/bic.h"

#include <cmath>

namespace subrec::cluster {

double BayesianInformationCriterion(double log_likelihood,
                                    size_t num_parameters, size_t n) {
  return -2.0 * log_likelihood +
         static_cast<double>(num_parameters) * std::log(static_cast<double>(n));
}

double AkaikeInformationCriterion(double log_likelihood,
                                  size_t num_parameters) {
  return -2.0 * log_likelihood + 2.0 * static_cast<double>(num_parameters);
}

}  // namespace subrec::cluster
