#ifndef SUBREC_CLUSTER_KMEANS_H_
#define SUBREC_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "la/matrix.h"

namespace subrec::cluster {

struct KMeansOptions {
  int num_clusters = 2;
  int max_iterations = 100;
  /// Stop when the relative inertia improvement falls below this.
  double tolerance = 1e-6;
  uint64_t seed = 3;
};

struct KMeansResult {
  la::Matrix centroids;          // k x d
  std::vector<int> assignments;  // one per data row
  double inertia = 0.0;          // sum of squared distances to centroids
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. Rows of `data` are points.
/// Also used to initialize the Gaussian mixture EM. Returns InvalidArgument
/// when there are fewer points than clusters.
Result<KMeansResult> KMeans(const la::Matrix& data,
                            const KMeansOptions& options);

}  // namespace subrec::cluster

#endif  // SUBREC_CLUSTER_KMEANS_H_
