#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace subrec::cluster {
namespace {

double SquaredDistance(const double* a, const double* b, size_t d) {
  double s = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    s += diff * diff;
  }
  return s;
}

}  // namespace

Result<KMeansResult> KMeans(const la::Matrix& data,
                            const KMeansOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = static_cast<size_t>(options.num_clusters);
  if (options.num_clusters <= 0)
    return Status::InvalidArgument("KMeans: num_clusters must be positive");
  if (n < k)
    return Status::InvalidArgument("KMeans: fewer points than clusters");

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = la::Matrix(k, d);

  // k-means++ seeding.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  size_t first = rng.UniformInt(n);
  for (size_t j = 0; j < d; ++j) result.centroids(0, j) = data(first, j);
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      const double dist = SquaredDistance(data.row_data(i),
                                          result.centroids.row_data(c - 1), d);
      min_dist[i] = std::min(min_dist[i], dist);
    }
    const size_t chosen = rng.Categorical(min_dist);
    for (size_t j = 0; j < d; ++j)
      result.centroids(c, j) = data(chosen, j);
  }

  result.assignments.assign(n, -1);
  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assign.
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double dist =
            SquaredDistance(data.row_data(i), result.centroids.row_data(c), d);
        if (dist < best) {
          best = dist;
          best_c = static_cast<int>(c);
        }
      }
      result.assignments[i] = best_c;
      inertia += best;
    }
    // Update.
    la::Matrix sums(k, d);
    std::vector<int64_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(result.assignments[i]);
      for (size_t j = 0; j < d; ++j) sums(c, j) += data(i, j);
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        const size_t pick = rng.UniformInt(n);
        for (size_t j = 0; j < d; ++j) result.centroids(c, j) = data(pick, j);
      } else {
        for (size_t j = 0; j < d; ++j)
          result.centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
      }
    }
    result.inertia = inertia;
    result.iterations = iter + 1;
    if (prev_inertia - inertia <= options.tolerance * std::max(prev_inertia, 1.0))
      break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace subrec::cluster
