#ifndef SUBREC_CLUSTER_BIC_H_
#define SUBREC_CLUSTER_BIC_H_

#include <cstddef>

namespace subrec::cluster {

/// Bayesian information criterion for a model with `num_parameters` free
/// parameters, `log_likelihood` at the optimum and `n` observations:
/// BIC = -2 logL + p ln n. Lower is better (Schwarz; the paper's [31]).
double BayesianInformationCriterion(double log_likelihood,
                                    size_t num_parameters, size_t n);

/// Akaike information criterion: AIC = -2 logL + 2p (provided for
/// sensitivity checks against the BIC-selected cluster counts).
double AkaikeInformationCriterion(double log_likelihood,
                                  size_t num_parameters);

}  // namespace subrec::cluster

#endif  // SUBREC_CLUSTER_BIC_H_
