#ifndef SUBREC_CLUSTER_TSNE_H_
#define SUBREC_CLUSTER_TSNE_H_

#include <cstdint>

#include "common/result.h"
#include "la/matrix.h"

namespace subrec::cluster {

struct TsneOptions {
  int output_dim = 2;
  double perplexity = 20.0;
  int iterations = 400;
  double learning_rate = 100.0;
  /// Early-exaggeration factor applied for the first `exaggeration_iters`.
  double exaggeration = 4.0;
  int exaggeration_iters = 80;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  uint64_t seed = 9;
};

/// Exact (O(n^2)) t-SNE (van der Maaten & Hinton [50]) — used to produce
/// the 2-D coordinates of Fig. 3 (cluster plots) and Fig. 5 (author/paper
/// embedding maps). Perplexity is calibrated per point with a binary search
/// on the Gaussian bandwidth. Returns a rows(data) x output_dim matrix.
Result<la::Matrix> Tsne(const la::Matrix& data, const TsneOptions& options);

}  // namespace subrec::cluster

#endif  // SUBREC_CLUSTER_TSNE_H_
