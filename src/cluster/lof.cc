#include "cluster/gmm.h"
#include "cluster/lof.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"

namespace subrec::cluster {
namespace {

// Fixed chunk grain for the per-point loops; every output below is
// indexed by the point, so chunking only spreads the work — no
// accumulation order changes with the thread count.
constexpr size_t kPointGrain = 32;

}  // namespace

Result<std::vector<double>> LocalOutlierFactor(const la::Matrix& data, int k) {
  SUBREC_TRACE_SPAN("lof/score");
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter("lof.calls");
  calls->Increment();
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (k <= 0) return Status::InvalidArgument("LOF: k must be positive");
  if (n <= static_cast<size_t>(k))
    return Status::InvalidArgument("LOF: need more points than neighbors");

  // Pairwise distances.
  la::Matrix dist(n, n);
  {
    SUBREC_TRACE_SPAN("lof/pairwise_distances");
    // Each (i, j) pair is computed exactly once and writes two distinct
    // cells, so the upper-triangle rows can be chunked freely.
    par::ParallelFor(n, kPointGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          double s = 0.0;
          for (size_t c = 0; c < d; ++c) {
            const double diff = data(i, c) - data(j, c);
            s += diff * diff;
          }
          const double dv = std::sqrt(s);
          dist(i, j) = dv;
          dist(j, i) = dv;
        }
      }
    });
  }

  // k nearest neighbors and k-distance for each point.
  const size_t ks = static_cast<size_t>(k);
  std::vector<std::vector<size_t>> neighbors(n);
  std::vector<double> k_distance(n);
  {
    SUBREC_TRACE_SPAN("lof/knn");
    par::ParallelFor(n, kPointGrain, [&](size_t begin, size_t end) {
      std::vector<size_t> order;
      order.reserve(n - 1);
      for (size_t i = begin; i < end; ++i) {
        order.clear();
        for (size_t j = 0; j < n; ++j)
          if (j != i) order.push_back(j);
        std::nth_element(order.begin(),
                         order.begin() + static_cast<long>(ks - 1),
                         order.end(), [&](size_t a, size_t b) {
                           return dist(i, a) < dist(i, b);
                         });
        neighbors[i].assign(order.begin(),
                            order.begin() + static_cast<long>(ks));
        k_distance[i] = 0.0;
        for (size_t nb : neighbors[i])
          k_distance[i] = std::max(k_distance[i], dist(i, nb));
      }
    });
  }

  SUBREC_TRACE_SPAN("lof/density");

  // Local reachability density.
  std::vector<double> lrd(n);
  par::ParallelFor(n, kPointGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double reach_sum = 0.0;
      for (size_t nb : neighbors[i])
        reach_sum += std::max(k_distance[nb], dist(i, nb));
      lrd[i] = reach_sum > 0.0
                   ? static_cast<double>(ks) / reach_sum
                   : 1e12;  // duplicate points: effectively infinite density
    }
  });

  // LOF: mean neighbor lrd over own lrd.
  std::vector<double> lof(n);
  par::ParallelFor(n, kPointGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double sum = 0.0;
      for (size_t nb : neighbors[i]) sum += lrd[nb];
      lof[i] = sum / (static_cast<double>(ks) * lrd[i]);
    }
  });
  return lof;
}

Result<std::vector<double>> ClusteredLocalOutlierFactor(const la::Matrix& data,
                                                        int k,
                                                        int min_components,
                                                        int max_components) {
  const size_t n = data.rows();
  if (n < 8)
    return Status::InvalidArgument("ClusteredLOF: need at least 8 points");
  auto gmm = FitGmmWithBic(data, min_components, max_components);
  if (!gmm.ok()) return gmm.status();
  const std::vector<int> assignment = gmm.value().Predict(data);

  std::vector<double> scores(n, 1.0);
  for (int c = 0; c < gmm.value().num_components(); ++c) {
    std::vector<size_t> members;
    for (size_t i = 0; i < n; ++i)
      if (assignment[i] == c) members.push_back(i);
    if (members.size() < 3) continue;  // no density evidence
    la::Matrix sub(members.size(), data.cols());
    for (size_t i = 0; i < members.size(); ++i)
      for (size_t j = 0; j < data.cols(); ++j) sub(i, j) = data(members[i], j);
    const int kk = std::min<int>(k, static_cast<int>(members.size()) - 1);
    auto lof = LocalOutlierFactor(sub, kk);
    if (!lof.ok()) return lof.status();
    for (size_t i = 0; i < members.size(); ++i)
      scores[members[i]] = lof.value()[i];
  }
  return scores;
}

std::vector<double> MinMaxNormalize(const std::vector<double>& values) {
  if (values.empty()) return {};
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it, mx = *mx_it;
  std::vector<double> out(values.size(), 0.0);
  if (mx - mn <= 0.0) return out;
  for (size_t i = 0; i < values.size(); ++i)
    out[i] = (values[i] - mn) / (mx - mn);
  return out;
}

}  // namespace subrec::cluster
