#ifndef SUBREC_CLUSTER_LOF_H_
#define SUBREC_CLUSTER_LOF_H_

#include <vector>

#include "common/result.h"
#include "la/matrix.h"

namespace subrec::cluster {

/// Local Outlier Factor (Breunig et al. [32]) with Euclidean distances and
/// `k` neighbors. Rows of `data` are points; higher scores mean more
/// outlying — in SEM, more *different* from the comparison papers.
/// O(n^2) distance computation; fine at experiment scale (n <= a few
/// thousand). Returns InvalidArgument when n <= k.
Result<std::vector<double>> LocalOutlierFactor(const la::Matrix& data, int k);

/// Min-max normalization to [0,1] (constant input maps to all zeros) —
/// the "normalized LOF value" axis of Fig. 3.
std::vector<double> MinMaxNormalize(const std::vector<double>& values);

/// The paper's Sec. III-C procedure: Gaussian-mixture cluster the
/// embeddings (components chosen by BIC), then compute LOF *within each
/// cluster* — "select the closely related papers using the subspace
/// embeddings" — so a paper's outlierness is measured against its own
/// research neighborhood rather than the whole mixed corpus. Clusters too
/// small for `k` neighbors shrink k; singleton/pair clusters score 1
/// (no evidence of difference).
Result<std::vector<double>> ClusteredLocalOutlierFactor(
    const la::Matrix& data, int k, int min_components = 2,
    int max_components = 8);

}  // namespace subrec::cluster

#endif  // SUBREC_CLUSTER_LOF_H_
