#include "cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "common/check.h"
#include "la/check_finite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"

namespace subrec::cluster {
namespace {

constexpr double kLogTwoPi = 1.8378770664093454835606594728112;

// Rows per parallel chunk in the per-point loops (E-step, Predict*). A
// fixed grain keeps the chunk grid a function of n alone, so per-chunk
// work is identical for every thread count.
constexpr size_t kRowGrain = 64;

double LogSumExp(const std::vector<double>& v) {
  const double mx = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(mx)) return mx;
  double s = 0.0;
  for (double x : v) s += std::exp(x - mx);
  return mx + std::log(s);
}

}  // namespace

GaussianMixture::GaussianMixture(GmmOptions options) : options_(options) {
  SUBREC_CHECK_GT(options_.num_components, 0);
}

double GaussianMixture::LogJoint(const la::Matrix& data, size_t i,
                                 size_t c) const {
  const size_t d = data.cols();
  double log_det = 0.0;
  double quad = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double var = variances_(c, j);
    const double diff = data(i, j) - means_(c, j);
    log_det += std::log(var);
    quad += diff * diff / var;
  }
  return std::log(weights_[c]) -
         0.5 * (static_cast<double>(d) * kLogTwoPi + log_det + quad);
}

Status GaussianMixture::Fit(const la::Matrix& data) {
  SUBREC_TRACE_SPAN("gmm/fit");
  static obs::Counter* const fits =
      obs::MetricsRegistry::Global().GetCounter("gmm.fits");
  static obs::Counter* const iters =
      obs::MetricsRegistry::Global().GetCounter("gmm.iterations");
  fits->Increment();
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = static_cast<size_t>(options_.num_components);
  if (n < k)
    return Status::InvalidArgument("GaussianMixture: fewer points than components");

  // Initialize from k-means.
  KMeansOptions km_options;
  km_options.num_clusters = options_.num_components;
  km_options.seed = options_.seed;
  auto km = KMeans(data, km_options);
  if (!km.ok()) return km.status();

  means_ = km.value().centroids;
  variances_ = la::Matrix(k, d, 1.0);
  weights_.assign(k, 1.0 / static_cast<double>(k));
  // Per-cluster variance from k-means assignments.
  {
    std::vector<int64_t> counts(k, 0);
    la::Matrix ss(k, d);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(km.value().assignments[i]);
      ++counts[c];
      for (size_t j = 0; j < d; ++j) {
        const double diff = data(i, j) - means_(c, j);
        ss(c, j) += diff * diff;
      }
    }
    for (size_t c = 0; c < k; ++c) {
      weights_[c] = std::max(static_cast<double>(counts[c]), 1.0) /
                    static_cast<double>(n);
      for (size_t j = 0; j < d; ++j) {
        variances_(c, j) =
            counts[c] > 1
                ? std::max(ss(c, j) / static_cast<double>(counts[c]),
                           options_.min_variance)
                : 1.0;
      }
    }
    // Renormalize weights after the max() clamp.
    double total = 0.0;
    for (double w : weights_) total += w;
    for (double& w : weights_) w /= total;
  }

  fitted_ = true;  // LogJoint needs the flag off-path; safe to set now.
  double prev_avg_ll = -std::numeric_limits<double>::max();
  la::Matrix resp(n, k);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // E-step: rows are independent given the frozen parameters. Each row's
    // log-likelihood lands in a buffer and is summed serially in row order
    // afterwards, reproducing the sequential accumulation bit for bit.
    double total_ll = 0.0;
    {
      SUBREC_TRACE_SPAN("gmm/e_step");
      std::vector<double> row_ll(n);
      par::ParallelFor(n, kRowGrain, [&](size_t begin, size_t end) {
        std::vector<double> joint(k);
        for (size_t i = begin; i < end; ++i) {
          for (size_t c = 0; c < k; ++c) joint[c] = LogJoint(data, i, c);
          const double lse = LogSumExp(joint);
          row_ll[i] = lse;
          for (size_t c = 0; c < k; ++c) resp(i, c) = std::exp(joint[c] - lse);
        }
      });
      for (size_t i = 0; i < n; ++i) total_ll += row_ll[i];
    }
    // M-step: each component owns its weight/mean/variance rows, so the
    // per-component accumulations parallelize without changing any order.
    SUBREC_TRACE_SPAN("gmm/m_step");
    par::ParallelFor(k, 1, [&](size_t c_begin, size_t c_end) {
      for (size_t c = c_begin; c < c_end; ++c) {
        double nc = 0.0;
        for (size_t i = 0; i < n; ++i) nc += resp(i, c);
        nc = std::max(nc, 1e-10);
        weights_[c] = nc / static_cast<double>(n);
        for (size_t j = 0; j < d; ++j) {
          double mean = 0.0;
          for (size_t i = 0; i < n; ++i) mean += resp(i, c) * data(i, j);
          mean /= nc;
          means_(c, j) = mean;
        }
        for (size_t j = 0; j < d; ++j) {
          double var = 0.0;
          for (size_t i = 0; i < n; ++i) {
            const double diff = data(i, j) - means_(c, j);
            var += resp(i, c) * diff * diff;
          }
          variances_(c, j) = std::max(var / nc, options_.min_variance);
        }
      }
    });
    SUBREC_CHECK_FINITE(means_, "GMM means after M-step");
    SUBREC_CHECK_FINITE(variances_, "GMM variances after M-step");
    iterations_ = iter + 1;
    iters->Increment();
    const double avg_ll = total_ll / static_cast<double>(n);
    SUBREC_CHECK_FINITE(avg_ll, "GMM E-step average log-likelihood");
    if (avg_ll - prev_avg_ll < options_.tolerance && iter > 0) break;
    prev_avg_ll = avg_ll;
  }
  return Status::Ok();
}

std::vector<int> GaussianMixture::Predict(const la::Matrix& data) const {
  SUBREC_CHECK(fitted_);
  std::vector<int> out(data.rows());
  const size_t k = static_cast<size_t>(options_.num_components);
  par::ParallelFor(data.rows(), kRowGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double best = -std::numeric_limits<double>::max();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double lj = LogJoint(data, i, c);
        if (lj > best) {
          best = lj;
          best_c = static_cast<int>(c);
        }
      }
      out[i] = best_c;
    }
  });
  return out;
}

la::Matrix GaussianMixture::PredictProba(const la::Matrix& data) const {
  SUBREC_CHECK(fitted_);
  const size_t k = static_cast<size_t>(options_.num_components);
  la::Matrix resp(data.rows(), k);
  par::ParallelFor(data.rows(), kRowGrain, [&](size_t begin, size_t end) {
    std::vector<double> joint(k);
    for (size_t i = begin; i < end; ++i) {
      for (size_t c = 0; c < k; ++c) joint[c] = LogJoint(data, i, c);
      const double lse = LogSumExp(joint);
      for (size_t c = 0; c < k; ++c) resp(i, c) = std::exp(joint[c] - lse);
    }
  });
  return resp;
}

double GaussianMixture::LogLikelihood(const la::Matrix& data) const {
  SUBREC_CHECK(fitted_);
  const size_t k = static_cast<size_t>(options_.num_components);
  // Buffer-then-ordered-sum keeps the total bit-identical to the serial
  // row-order accumulation regardless of thread count.
  std::vector<double> row_ll(data.rows());
  par::ParallelFor(data.rows(), kRowGrain, [&](size_t begin, size_t end) {
    std::vector<double> joint(k);
    for (size_t i = begin; i < end; ++i) {
      for (size_t c = 0; c < k; ++c) joint[c] = LogJoint(data, i, c);
      row_ll[i] = LogSumExp(joint);
    }
  });
  double total = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) total += row_ll[i];
  return total;
}

size_t GaussianMixture::NumParameters() const {
  const size_t k = static_cast<size_t>(options_.num_components);
  const size_t d = means_.cols();
  return (k - 1) + k * d + k * d;
}

double GaussianMixture::Bic(const la::Matrix& data) const {
  const double n = static_cast<double>(data.rows());
  return -2.0 * LogLikelihood(data) +
         static_cast<double>(NumParameters()) * std::log(n);
}

Result<GaussianMixture> FitGmmWithBic(const la::Matrix& data,
                                      int min_components, int max_components,
                                      GmmOptions base_options) {
  if (min_components <= 0 || max_components < min_components)
    return Status::InvalidArgument("FitGmmWithBic: bad component range");
  bool found = false;
  double best_bic = std::numeric_limits<double>::max();
  GaussianMixture best;
  for (int k = min_components; k <= max_components; ++k) {
    GmmOptions options = base_options;
    options.num_components = k;
    GaussianMixture gmm(options);
    if (!gmm.Fit(data).ok()) continue;
    const double bic = gmm.Bic(data);
    if (bic < best_bic) {
      best_bic = bic;
      best = gmm;
      found = true;
    }
  }
  if (!found)
    return Status::InvalidArgument("FitGmmWithBic: no component count fit");
  return best;
}

}  // namespace subrec::cluster
