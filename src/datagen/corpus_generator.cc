#include "datagen/corpus_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace subrec::datagen {
namespace {

/// A research team: authors sharing focus topics within one discipline.
struct Team {
  int discipline = 0;
  std::vector<int> focus_topics;
  std::vector<corpus::AuthorId> members;
};

}  // namespace

Result<GeneratedDataset> GenerateCorpus(const CorpusGeneratorOptions& options) {
  if (options.disciplines.empty())
    return Status::InvalidArgument("GenerateCorpus: no disciplines");
  if (options.num_authors < options.team_size)
    return Status::InvalidArgument("GenerateCorpus: too few authors");
  if (options.end_year < options.start_year)
    return Status::InvalidArgument("GenerateCorpus: bad year range");
  if (options.min_authors_per_paper < 1 ||
      options.max_authors_per_paper < options.min_authors_per_paper)
    return Status::InvalidArgument("GenerateCorpus: bad author count range");

  Rng rng(options.seed);
  GeneratedDataset out;
  out.disciplines = options.disciplines;
  corpus::Corpus& corpus = out.corpus;

  const int num_disciplines = static_cast<int>(options.disciplines.size());
  int max_topics = 1;
  for (const auto& d : options.disciplines)
    max_topics = std::max(max_topics, d.num_topics);
  corpus.num_topics = max_topics;
  for (const auto& d : options.disciplines)
    corpus.discipline_names.push_back(d.name);

  SyntheticVocabulary vocab(num_disciplines, max_topics);
  AbstractGenerator abstracts(options.abstract_options);
  CitationModel citations(options.citation_options);

  // Category tree: root -> discipline -> topic leaves.
  if (options.include_ccs) {
    out.topic_ccs_node.resize(static_cast<size_t>(num_disciplines));
    for (int d = 0; d < num_disciplines; ++d) {
      const int dn = out.ccs.AddNode(options.disciplines[static_cast<size_t>(d)].name,
                                     out.ccs.root());
      for (int t = 0; t < options.disciplines[static_cast<size_t>(d)].num_topics;
           ++t) {
        out.topic_ccs_node[static_cast<size_t>(d)].push_back(
            out.ccs.AddNode("topic" + std::to_string(t), dn));
      }
    }
    corpus.num_ccs_nodes = static_cast<int>(out.ccs.size());
  }

  // Venues with prestige.
  if (options.include_venues) {
    corpus.num_venues = num_disciplines * options.venues_per_discipline;
    for (int v = 0; v < corpus.num_venues; ++v)
      out.venue_prestige.push_back(rng.Uniform(0.8, 1.5));
  }
  corpus.num_affiliations =
      options.include_affiliations ? options.num_affiliations : 0;

  // Authors and teams.
  std::vector<Team> teams;
  corpus.authors.resize(static_cast<size_t>(options.num_authors));
  for (int a = 0; a < options.num_authors; ++a) {
    corpus::Author& author = corpus.authors[static_cast<size_t>(a)];
    author.id = a;
    author.name = "author" + std::to_string(a);
    author.affiliation =
        corpus.num_affiliations > 0
            ? static_cast<int>(rng.UniformInt(
                  static_cast<uint64_t>(corpus.num_affiliations)))
            : -1;
    author.authority = std::exp(rng.Gaussian(0.0, 0.4));
    if (a % options.team_size == 0) {
      Team team;
      team.discipline = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(num_disciplines)));
      const int nt =
          options.disciplines[static_cast<size_t>(team.discipline)].num_topics;
      team.focus_topics.push_back(
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(nt))));
      team.focus_topics.push_back(
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(nt))));
      teams.push_back(team);
    }
    teams.back().members.push_back(a);
    // Interests over this discipline's topic range (generator-side truth).
    const Team& team = teams.back();
    const int nt =
        options.disciplines[static_cast<size_t>(team.discipline)].num_topics;
    author.interests.assign(static_cast<size_t>(nt), 0.1);
    for (int t : team.focus_topics)
      author.interests[static_cast<size_t>(t)] += 1.0;
  }

  // Teams per discipline, for cross-team sampling.
  std::vector<std::vector<size_t>> discipline_teams(
      static_cast<size_t>(num_disciplines));
  for (size_t t = 0; t < teams.size(); ++t)
    discipline_teams[static_cast<size_t>(teams[t].discipline)].push_back(t);
  for (int d = 0; d < num_disciplines; ++d) {
    if (discipline_teams[static_cast<size_t>(d)].empty())
      return Status::InvalidArgument(
          "GenerateCorpus: discipline without any team; increase num_authors");
  }

  // Citation habit state: each team habitually cites its own members and
  // the authors it has cited repeatedly. The favored set is thresholded
  // and capped so habits stay selective instead of saturating to "everyone
  // we ever cited".
  constexpr int kHabitMinCount = 3;
  constexpr size_t kHabitMaxAuthors = 25;
  std::vector<std::unordered_map<corpus::AuthorId, int>> team_citee_counts(
      teams.size());
  auto favored_of = [&](size_t team_index) {
    std::unordered_set<corpus::AuthorId> favored(
        teams[team_index].members.begin(), teams[team_index].members.end());
    std::vector<std::pair<int, corpus::AuthorId>> ranked;
    for (const auto& [author, count] : team_citee_counts[team_index])
      if (count >= kHabitMinCount) ranked.emplace_back(count, author);
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < ranked.size() && i < kHabitMaxAuthors; ++i)
      favored.insert(ranked[i].second);
    return favored;
  };

  // Papers, year by year.
  std::vector<int> in_degree;
  corpus::PaperId next_id = 0;
  for (int year = options.start_year; year <= options.end_year; ++year) {
    for (int i = 0; i < options.papers_per_year; ++i) {
      corpus::Paper paper;
      paper.id = next_id++;
      paper.year = year;
      paper.discipline = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(num_disciplines)));
      const DisciplineSpec& spec =
          options.disciplines[static_cast<size_t>(paper.discipline)];

      // Team and authors.
      const auto& dteams = discipline_teams[static_cast<size_t>(paper.discipline)];
      const size_t team_index = dteams[rng.UniformInt(dteams.size())];
      const Team& team = teams[team_index];
      const int n_authors =
          options.min_authors_per_paper +
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
              options.max_authors_per_paper - options.min_authors_per_paper +
              1)));
      std::vector<size_t> picks = rng.SampleWithoutReplacement(
          team.members.size(),
          std::min(static_cast<size_t>(n_authors), team.members.size()));
      for (size_t p : picks) paper.authors.push_back(team.members[p]);
      if (rng.Bernoulli(options.cross_team_prob) && dteams.size() > 1) {
        const Team& other = teams[dteams[rng.UniformInt(dteams.size())]];
        const corpus::AuthorId extra =
            other.members[rng.UniformInt(other.members.size())];
        if (std::find(paper.authors.begin(), paper.authors.end(), extra) ==
            paper.authors.end())
          paper.authors.push_back(extra);
      }

      // Topic: team focus most of the time.
      if (rng.Bernoulli(0.8)) {
        paper.topic =
            team.focus_topics[rng.UniformInt(team.focus_topics.size())];
      } else {
        paper.topic = static_cast<int>(
            rng.UniformInt(static_cast<uint64_t>(spec.num_topics)));
      }

      // Latent innovation.
      for (int k = 0; k < 3; ++k)
        paper.latent_innovation[static_cast<size_t>(k)] =
            rng.Gamma(options.innovation_shape, options.innovation_scale);

      // Venue: innovative papers skew to prestigious venues.
      if (options.include_venues) {
        std::vector<double> w(static_cast<size_t>(options.venues_per_discipline));
        double total_z = 0.0;
        for (double z : paper.latent_innovation) total_z += z;
        for (int v = 0; v < options.venues_per_discipline; ++v) {
          const int venue = paper.discipline * options.venues_per_discipline + v;
          // Mild prestige pull only: a strong pull would launder total
          // innovation through the venue and blur the per-subspace
          // citation signal.
          w[static_cast<size_t>(v)] =
              std::exp(0.4 * out.venue_prestige[static_cast<size_t>(venue)] *
                       std::min(total_z, 3.0));
        }
        paper.venue = paper.discipline * options.venues_per_discipline +
                      static_cast<int>(rng.Categorical(w));
      }

      // CCS path.
      if (options.include_ccs) {
        const int leaf = out.topic_ccs_node[static_cast<size_t>(paper.discipline)]
                                           [static_cast<size_t>(paper.topic)];
        paper.ccs_path = out.ccs.PathFromRoot(leaf);
      }

      // Keywords.
      if (options.include_keywords) {
        const auto& pool = vocab.TopicKeywords(paper.discipline, paper.topic);
        std::vector<size_t> kw = rng.SampleWithoutReplacement(
            pool.size(), std::min(pool.size(),
                                  static_cast<size_t>(options.keywords_per_paper)));
        for (size_t j : kw) paper.keywords.push_back(pool[j]);
      }

      // Abstract.
      paper.abstract_sentences =
          abstracts.Generate(vocab, paper.discipline, paper.topic,
                             paper.latent_innovation, paper.id, rng);
      paper.title = "paper " + std::to_string(paper.id) + " on " +
                    vocab.TopicWords(paper.discipline, paper.topic)[0];

      // References, habit-biased toward the team's usual citees.
      const int n_refs = 1 + rng.Poisson(options.mean_references - 1.0);
      const std::unordered_set<corpus::AuthorId> favored =
          favored_of(team_index);
      paper.references = citations.SelectReferences(
          corpus, options.disciplines, in_degree, paper.discipline,
          paper.topic, n_refs, rng, &favored);
      for (corpus::PaperId ref : paper.references) {
        ++in_degree[static_cast<size_t>(ref)];
        for (corpus::AuthorId a :
             corpus.papers[static_cast<size_t>(ref)].authors)
          ++team_citee_counts[team_index][a];
      }

      for (corpus::AuthorId a : paper.authors)
        corpus.authors[static_cast<size_t>(a)].papers.push_back(paper.id);
      corpus.papers.push_back(std::move(paper));
      in_degree.push_back(0);
    }
  }

  // Final citation metadata at the horizon (= end_year).
  for (corpus::Paper& paper : corpus.papers) {
    const DisciplineSpec& spec =
        options.disciplines[static_cast<size_t>(paper.discipline)];
    const double prestige =
        (options.include_venues && paper.venue >= 0)
            ? out.venue_prestige[static_cast<size_t>(paper.venue)]
            : 1.0;
    double authority = 0.0;
    for (corpus::AuthorId a : paper.authors)
      authority += corpus.authors[static_cast<size_t>(a)].authority;
    authority = paper.authors.empty()
                    ? 1.0
                    : authority / static_cast<double>(paper.authors.size());
    paper.citation_count = citations.FinalCitationCount(
        paper, spec, in_degree[static_cast<size_t>(paper.id)], prestige,
        authority, options.end_year, rng);
  }
  return out;
}

}  // namespace subrec::datagen
