#ifndef SUBREC_DATAGEN_DISCIPLINE_H_
#define SUBREC_DATAGEN_DISCIPLINE_H_

#include <array>
#include <string>
#include <vector>

namespace subrec::datagen {

/// Generator-side description of one scientific discipline. The key lever
/// is `innovation_sensitivity` beta: expected citations scale with
/// exp(sum_k beta_k * z_k) where z is a paper's latent per-subspace
/// innovation. Disciplines valuing different subspaces is exactly the
/// phenomenon Tab. I / Fig. 3 measure ("papers with innovative model
/// design in computer science tend to obtain high citations ... pharmacy
/// pays more attention to groundbreaking results, and social science tends
/// to novel research methods").
struct DisciplineSpec {
  std::string name;
  /// (beta_background, beta_method, beta_result).
  std::array<double, 3> innovation_sensitivity = {0.5, 0.5, 0.5};
  int num_topics = 8;
  /// Baseline citation intensity of an average paper.
  double base_citation_rate = 2.0;
};

/// The paper's Scopus selection: computer science (methods & results
/// valued), medicine/pharmacy (results valued), sociology (background &
/// methods valued).
std::vector<DisciplineSpec> ScopusDisciplines();

/// The ACM-dataset topics of Tab. II as one CS discipline whose topics are
/// the four CCS fields analyzed there.
std::vector<DisciplineSpec> AcmDisciplines();

/// Deterministic synthetic token pools: per-(discipline, topic) content
/// words, per-discipline jargon, shared academic filler, per-role cue
/// phrases and per-topic keyword pools. All ids are stable strings, so the
/// hashed encoder and word2vec see a consistent lexicon.
class SyntheticVocabulary {
 public:
  SyntheticVocabulary(int num_disciplines, int max_topics,
                      int words_per_topic = 60, int words_per_discipline = 40,
                      int keywords_per_topic = 12);

  const std::vector<std::string>& TopicWords(int discipline, int topic) const;
  const std::vector<std::string>& DisciplineWords(int discipline) const;
  const std::vector<std::string>& GeneralWords() const;
  const std::vector<std::string>& CuePhrases(int role) const;
  const std::vector<std::string>& TopicKeywords(int discipline,
                                                int topic) const;

  int num_disciplines() const { return num_disciplines_; }
  int max_topics() const { return max_topics_; }

 private:
  int num_disciplines_;
  int max_topics_;
  std::vector<std::vector<std::vector<std::string>>> topic_words_;
  std::vector<std::vector<std::string>> discipline_words_;
  std::vector<std::string> general_words_;
  std::vector<std::vector<std::string>> cue_phrases_;  // per role
  std::vector<std::vector<std::vector<std::string>>> topic_keywords_;
};

}  // namespace subrec::datagen

#endif  // SUBREC_DATAGEN_DISCIPLINE_H_
