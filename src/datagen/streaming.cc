#include "datagen/streaming.h"

#include <cmath>
#include <utility>

#include "common/rng.h"

namespace subrec::datagen {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Stream seed for paper `i`: a function of (corpus seed, id) only — this
/// is the whole batch-size-independence argument.
uint64_t PaperSeed(uint64_t corpus_seed, size_t i) {
  return SplitMix64(corpus_seed ^ SplitMix64(static_cast<uint64_t>(i)));
}

}  // namespace

StreamingCorpusOptions AnnRecallPreset(AnnCorpusScale scale, uint64_t seed) {
  StreamingCorpusOptions options;
  options.seed = seed;
  switch (scale) {
    case AnnCorpusScale::kSmoke:
      options.papers_per_year = 400;  // 4e3 papers, 2e3 in the new pool.
      break;
    case AnnCorpusScale::kFull:
      options.papers_per_year = 10000;  // 1e5 papers, 5e4 in the new pool.
      break;
    case AnnCorpusScale::kXl:
      options.papers_per_year = 100000;  // 1e6 papers, 5e5 in the new pool.
      break;
  }
  return options;
}

StreamingCorpusGenerator::StreamingCorpusGenerator(
    const StreamingCorpusOptions& options)
    : options_(options) {
  const int years = options_.end_year - options_.start_year + 1;
  num_papers_ = static_cast<size_t>(years) *
                static_cast<size_t>(options_.papers_per_year);
  num_topics_ = options_.num_disciplines * options_.topics_per_discipline;
  const size_t dim = options_.embedding_dim;
  interest_centers_.resize(static_cast<size_t>(num_topics_) * dim);
  influence_centers_.resize(static_cast<size_t>(num_topics_) * dim);
  // Centers drawn once from the corpus seed. Influence centers lean on the
  // interest center of the same topic, so a profile averaged from a
  // topic's interest vectors retrieves that topic's influence vectors —
  // the structure recall@N is measured against.
  Rng rng(options_.seed);
  const double unit = 1.0 / std::sqrt(static_cast<double>(dim));
  for (size_t j = 0; j < interest_centers_.size(); ++j) {
    interest_centers_[j] = rng.Gaussian(0.0, unit);
    influence_centers_[j] =
        interest_centers_[j] + rng.Gaussian(0.0, 0.25 * unit);
  }
}

Result<StreamingCorpusGenerator> StreamingCorpusGenerator::Create(
    const StreamingCorpusOptions& options) {
  if (options.end_year < options.start_year)
    return Status::InvalidArgument("streaming corpus: empty year range");
  if (options.papers_per_year <= 0)
    return Status::InvalidArgument(
        "streaming corpus: papers_per_year must be positive");
  if (options.num_disciplines <= 0 || options.topics_per_discipline <= 0)
    return Status::InvalidArgument(
        "streaming corpus: need at least one discipline and topic");
  if (options.embedding_dim == 0)
    return Status::InvalidArgument("streaming corpus: dim must be positive");
  return StreamingCorpusGenerator(options);
}

StreamedPaper StreamingCorpusGenerator::PaperAt(size_t i) const {
  const size_t dim = options_.embedding_dim;
  StreamedPaper paper;
  paper.id = static_cast<int32_t>(i);
  paper.year = options_.start_year +
               static_cast<int32_t>(i / static_cast<size_t>(
                                            options_.papers_per_year));
  Rng rng(PaperSeed(options_.seed, i));
  paper.topic =
      static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(num_topics_)));
  paper.discipline = paper.topic / options_.topics_per_discipline;
  const double* interest_center =
      interest_centers_.data() + static_cast<size_t>(paper.topic) * dim;
  const double* influence_center =
      influence_centers_.data() + static_cast<size_t>(paper.topic) * dim;
  // Lognormal magnitude on influence only: papers differ in reach, which
  // keeps maximum-inner-product retrieval from degenerating into cosine.
  const double reach = std::exp(rng.Gaussian(0.0, options_.influence_sigma));
  paper.interest.resize(dim);
  paper.influence.resize(dim);
  const double unit = 1.0 / std::sqrt(static_cast<double>(dim));
  for (size_t d = 0; d < dim; ++d) {
    paper.interest[d] =
        interest_center[d] + rng.Gaussian(0.0, options_.topic_spread * unit);
    paper.influence[d] =
        reach * (influence_center[d] +
                 rng.Gaussian(0.0, options_.topic_spread * unit));
  }
  return paper;
}

size_t StreamingCorpusGenerator::NextBatch(size_t max_papers,
                                           std::vector<StreamedPaper>* out) {
  out->clear();
  const size_t count = std::min(max_papers, num_papers_ - next_);
  out->reserve(count);
  for (size_t j = 0; j < count; ++j) out->push_back(PaperAt(next_ + j));
  next_ += count;
  return count;
}

}  // namespace subrec::datagen
