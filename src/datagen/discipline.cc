#include "datagen/discipline.h"

#include "common/check.h"

namespace subrec::datagen {

std::vector<DisciplineSpec> ScopusDisciplines() {
  std::vector<DisciplineSpec> specs(3);
  specs[0].name = "Computer Science";
  specs[0].innovation_sensitivity = {0.20, 1.30, 0.70};
  specs[0].num_topics = 8;
  specs[0].base_citation_rate = 2.5;
  specs[1].name = "Medicine";
  specs[1].innovation_sensitivity = {0.20, 0.30, 1.30};
  specs[1].num_topics = 8;
  specs[1].base_citation_rate = 3.0;
  specs[2].name = "Sociology";
  specs[2].innovation_sensitivity = {0.90, 1.00, 0.20};
  specs[2].num_topics = 8;
  specs[2].base_citation_rate = 1.8;
  return specs;
}

std::vector<DisciplineSpec> AcmDisciplines() {
  // One CS discipline with many CCS subfields; topics 0-3 play the four
  // Tab. II fields (Information Systems, Theory of Computation, General
  // Literature, Hardware).
  std::vector<DisciplineSpec> specs(1);
  specs[0].name = "Computer Science";
  specs[0].innovation_sensitivity = {0.30, 1.20, 0.70};
  specs[0].num_topics = 12;
  specs[0].base_citation_rate = 2.5;
  return specs;
}

namespace {

std::vector<std::string> MakeGeneralWords() {
  return {"analysis",   "system",     "model",     "framework", "approach",
          "evaluation", "study",      "technique", "algorithm", "problem",
          "solution",   "design",     "process",   "structure", "function",
          "measure",    "quality",    "impact",    "knowledge", "information"};
}

std::vector<std::vector<std::string>> MakeCuePhrases() {
  return {
      // background
      {"in recent years", "prior studies have shown", "existing literature suggests",
       "the growing importance of", "background research indicates",
       "a long standing challenge is", "motivated by recent advances"},
      // method
      {"we propose a novel", "our approach introduces", "this paper presents",
       "the proposed method combines", "we design and implement",
       "our model leverages", "we formulate the task as"},
      // result
      {"experiments show that", "results demonstrate significant",
       "our evaluation reveals", "empirical findings indicate",
       "performance improves over baselines", "the proposed method achieves",
       "ablation confirms the contribution"},
  };
}

}  // namespace

SyntheticVocabulary::SyntheticVocabulary(int num_disciplines, int max_topics,
                                         int words_per_topic,
                                         int words_per_discipline,
                                         int keywords_per_topic)
    : num_disciplines_(num_disciplines), max_topics_(max_topics) {
  SUBREC_CHECK_GT(num_disciplines, 0);
  SUBREC_CHECK_GT(max_topics, 0);
  topic_words_.resize(static_cast<size_t>(num_disciplines));
  topic_keywords_.resize(static_cast<size_t>(num_disciplines));
  discipline_words_.resize(static_cast<size_t>(num_disciplines));
  for (int d = 0; d < num_disciplines; ++d) {
    auto& dw = discipline_words_[static_cast<size_t>(d)];
    for (int w = 0; w < words_per_discipline; ++w)
      dw.push_back("disc" + std::to_string(d) + "jargon" + std::to_string(w));
    topic_words_[static_cast<size_t>(d)].resize(static_cast<size_t>(max_topics));
    topic_keywords_[static_cast<size_t>(d)].resize(
        static_cast<size_t>(max_topics));
    for (int t = 0; t < max_topics; ++t) {
      auto& tw = topic_words_[static_cast<size_t>(d)][static_cast<size_t>(t)];
      for (int w = 0; w < words_per_topic; ++w)
        tw.push_back("d" + std::to_string(d) + "t" + std::to_string(t) +
                     "term" + std::to_string(w));
      auto& kw =
          topic_keywords_[static_cast<size_t>(d)][static_cast<size_t>(t)];
      for (int w = 0; w < keywords_per_topic; ++w)
        kw.push_back("kw" + std::to_string(d) + "x" + std::to_string(t) + "n" +
                     std::to_string(w));
    }
  }
  general_words_ = MakeGeneralWords();
  cue_phrases_ = MakeCuePhrases();
}

const std::vector<std::string>& SyntheticVocabulary::TopicWords(
    int discipline, int topic) const {
  SUBREC_CHECK(discipline >= 0 && discipline < num_disciplines_);
  SUBREC_CHECK(topic >= 0 && topic < max_topics_);
  return topic_words_[static_cast<size_t>(discipline)]
                     [static_cast<size_t>(topic)];
}

const std::vector<std::string>& SyntheticVocabulary::DisciplineWords(
    int discipline) const {
  SUBREC_CHECK(discipline >= 0 && discipline < num_disciplines_);
  return discipline_words_[static_cast<size_t>(discipline)];
}

const std::vector<std::string>& SyntheticVocabulary::GeneralWords() const {
  return general_words_;
}

const std::vector<std::string>& SyntheticVocabulary::CuePhrases(
    int role) const {
  SUBREC_CHECK(role >= 0 && role < 3);
  return cue_phrases_[static_cast<size_t>(role)];
}

const std::vector<std::string>& SyntheticVocabulary::TopicKeywords(
    int discipline, int topic) const {
  SUBREC_CHECK(discipline >= 0 && discipline < num_disciplines_);
  SUBREC_CHECK(topic >= 0 && topic < max_topics_);
  return topic_keywords_[static_cast<size_t>(discipline)]
                        [static_cast<size_t>(topic)];
}

}  // namespace subrec::datagen
