#ifndef SUBREC_DATAGEN_CORPUS_GENERATOR_H_
#define SUBREC_DATAGEN_CORPUS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "corpus/types.h"
#include "datagen/abstract_generator.h"
#include "datagen/citation_model.h"
#include "datagen/discipline.h"
#include "rules/ccs_tree.h"

namespace subrec::datagen {

struct CorpusGeneratorOptions {
  std::vector<DisciplineSpec> disciplines = ScopusDisciplines();
  int start_year = 2008;
  int end_year = 2017;
  int papers_per_year = 250;
  int num_authors = 300;
  /// Authors are grouped into research teams of this size; teams share
  /// focus topics, which produces the co-author clustering of Fig. 5.
  int team_size = 4;
  /// Probability a paper adds one author from a different team.
  double cross_team_prob = 0.15;
  int min_authors_per_paper = 1;
  int max_authors_per_paper = 4;
  int venues_per_discipline = 3;
  int num_affiliations = 25;
  double mean_references = 10.0;
  int keywords_per_paper = 4;
  /// Latent per-subspace innovation z_k ~ Gamma(shape, scale).
  double innovation_shape = 1.6;
  double innovation_scale = 0.45;
  AbstractGeneratorOptions abstract_options;
  CitationModelOptions citation_options;
  /// Attribute switches (the patent preset turns most of these off).
  bool include_venues = true;
  bool include_keywords = true;
  bool include_affiliations = true;
  bool include_ccs = true;
  uint64_t seed = 1234;
};

/// A generated dataset: the corpus plus the category tree and generator
/// metadata the experiments need.
struct GeneratedDataset {
  corpus::Corpus corpus;
  rules::CcsTree ccs;
  std::vector<DisciplineSpec> disciplines;
  /// ccs node id of each (discipline, topic) leaf; empty when !include_ccs.
  std::vector<std::vector<int>> topic_ccs_node;
  /// Venue prestige multipliers, by venue index.
  std::vector<double> venue_prestige;
};

/// Runs the generative model described in DESIGN.md. Deterministic given
/// options.seed. Returns InvalidArgument for degenerate configurations.
Result<GeneratedDataset> GenerateCorpus(const CorpusGeneratorOptions& options);

}  // namespace subrec::datagen

#endif  // SUBREC_DATAGEN_CORPUS_GENERATOR_H_
