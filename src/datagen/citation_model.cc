#include "datagen/citation_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace subrec::datagen {

CitationModel::CitationModel(CitationModelOptions options)
    : options_(options) {}

double CitationModel::InnovationFactor(const corpus::Paper& paper,
                                       const DisciplineSpec& spec) const {
  double weighted = 0.0;
  for (int k = 0; k < 3; ++k) {
    weighted += spec.innovation_sensitivity[static_cast<size_t>(k)] *
                paper.latent_innovation[static_cast<size_t>(k)];
  }
  return std::exp(options_.innovation_boost * weighted);
}

std::vector<corpus::PaperId> CitationModel::SelectReferences(
    const corpus::Corpus& corpus, const std::vector<DisciplineSpec>& specs,
    const std::vector<int>& in_degree, int discipline, int topic, int count,
    Rng& rng,
    const std::unordered_set<corpus::AuthorId>* favored_authors) const {
  const size_t n = corpus.papers.size();
  SUBREC_CHECK_EQ(in_degree.size(), n);
  if (n == 0 || count <= 0) return {};

  std::vector<double> weights(n);
  const int current_year =
      corpus.papers.empty() ? 0 : corpus.papers.back().year;
  for (size_t i = 0; i < n; ++i) {
    const corpus::Paper& cand = corpus.papers[i];
    double rel = options_.relevance_other;
    if (cand.discipline == discipline) {
      rel = cand.topic == topic ? options_.relevance_same_topic
                                : options_.relevance_same_discipline;
    }
    const double pref =
        1.0 + options_.preferential_weight * static_cast<double>(in_degree[i]);
    const double age = static_cast<double>(std::max(current_year - cand.year, 0));
    const double recency =
        std::exp(-age * 0.6931471805599453 / options_.recency_half_life);
    const double innov =
        InnovationFactor(cand, specs[static_cast<size_t>(cand.discipline)]);
    double habit = 1.0;
    if (favored_authors != nullptr) {
      for (corpus::AuthorId a : cand.authors) {
        if (favored_authors->count(a) > 0) {
          habit = options_.habit_boost;
          break;
        }
      }
    }
    weights[i] = rel * pref * recency * innov * habit;
  }

  std::vector<corpus::PaperId> refs;
  std::unordered_set<corpus::PaperId> seen;
  const int max_refs = static_cast<int>(std::min<size_t>(n, static_cast<size_t>(count)));
  int attempts = 0;
  while (static_cast<int>(refs.size()) < max_refs && attempts < 20 * count) {
    ++attempts;
    const size_t pick = rng.Categorical(weights);
    const corpus::PaperId id = corpus.papers[pick].id;
    if (seen.insert(id).second) {
      refs.push_back(id);
      weights[pick] = 0.0;
    }
  }
  return refs;
}

int CitationModel::FinalCitationCount(const corpus::Paper& paper,
                                      const DisciplineSpec& spec,
                                      int in_degree, double venue_prestige,
                                      double author_authority,
                                      int horizon_year, Rng& rng) const {
  const double age =
      std::max(static_cast<double>(horizon_year - paper.year), 0.0);
  const double lambda = options_.external_scale * spec.base_citation_rate *
                        InnovationFactor(paper, spec) * venue_prestige *
                        author_authority * (0.5 + 0.5 * age);
  return in_degree + rng.Poisson(lambda);
}

}  // namespace subrec::datagen
