#ifndef SUBREC_DATAGEN_SPLIT_H_
#define SUBREC_DATAGEN_SPLIT_H_

#include <vector>

#include "corpus/types.h"

namespace subrec::datagen {

/// Year-based split of Sec. IV-E: papers published in or before `year`
/// train the models; papers after `year` are the "new papers" under test.
struct YearSplit {
  std::vector<corpus::PaperId> train;
  std::vector<corpus::PaperId> test;
  int split_year = 0;
};

YearSplit SplitByYear(const corpus::Corpus& corpus, int year);

/// Papers of one discipline within the given inclusive year range.
std::vector<corpus::PaperId> PapersOfDiscipline(const corpus::Corpus& corpus,
                                                int discipline, int min_year,
                                                int max_year);

/// Authors with at least `min_train_papers` papers in/before `year` AND at
/// least one post-`year` paper citing a post-`year` paper (so there is
/// recommendation ground truth) — the experiment users of Sec. IV-E.
std::vector<corpus::AuthorId> SelectUsers(const corpus::Corpus& corpus,
                                          int year, int min_train_papers);

/// The post-`year` papers a user's post-`year` publications cite — the
/// recommendation ground truth set for that user.
std::vector<corpus::PaperId> HeldOutCitations(const corpus::Corpus& corpus,
                                              corpus::AuthorId user, int year);

}  // namespace subrec::datagen

#endif  // SUBREC_DATAGEN_SPLIT_H_
