#ifndef SUBREC_DATAGEN_ABSTRACT_GENERATOR_H_
#define SUBREC_DATAGEN_ABSTRACT_GENERATOR_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/types.h"
#include "datagen/discipline.h"

namespace subrec::datagen {

struct AbstractGeneratorOptions {
  /// Expected sentences per role; role count = 1 + Poisson(mean - 1).
  /// Default 2.0 gives ~6 sentences per abstract (paper: ACM averages
  /// 6.34).
  double mean_sentences_per_role = 2.0;
  int min_content_tokens = 8;
  int max_content_tokens = 14;
  /// Probability the leading cue phrase matches the sentence role (the
  /// remainder injects label noise, which the CRF must absorb).
  double cue_fidelity = 0.92;
  /// Expected paper-unique "novel" tokens injected into a role-k sentence
  /// per unit of innovation z_k. This is the causal hook: innovation in a
  /// subspace produces lexical novelty in exactly that subspace's
  /// sentences, which the encoders turn into embedding distance.
  double novel_token_rate = 12.0;
  /// Probability of borrowing a token from a random other topic per unit
  /// z_k (cross-topic recombination, a second innovation signature).
  double borrow_rate = 1.5;
  /// Skew of topic-word sampling: word ranks are drawn as
  /// floor(V * u^skew), so higher skew concentrates sentences on the head
  /// of the topic vocabulary (Zipf-like). Shared head words keep
  /// same-topic papers lexically close, which is what lets the novelty
  /// injected above stand out against the within-topic baseline.
  double topic_word_skew = 3.0;
};

/// Generates role-labeled abstract sentences for one paper following the
/// canonical background -> method -> result narrative (Sec. III-A.4).
class AbstractGenerator {
 public:
  explicit AbstractGenerator(AbstractGeneratorOptions options = {});

  std::vector<corpus::Sentence> Generate(
      const SyntheticVocabulary& vocab, int discipline, int topic,
      const std::array<double, 3>& innovation, corpus::PaperId paper_id,
      Rng& rng) const;

  const AbstractGeneratorOptions& options() const { return options_; }

 private:
  corpus::Sentence MakeSentence(const SyntheticVocabulary& vocab,
                                int discipline, int topic, int role,
                                double innovation,
                                const std::vector<std::string>& novel_pool,
                                Rng& rng) const;

  AbstractGeneratorOptions options_;
};

}  // namespace subrec::datagen

#endif  // SUBREC_DATAGEN_ABSTRACT_GENERATOR_H_
