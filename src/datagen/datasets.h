#ifndef SUBREC_DATAGEN_DATASETS_H_
#define SUBREC_DATAGEN_DATASETS_H_

#include <cstdint>

#include "datagen/corpus_generator.h"

namespace subrec::datagen {

/// Scale knob for presets: benches use kSmall for tractable runtimes,
/// examples/tests use kTiny, kMedium is the stress preset.
enum class DatasetScale { kTiny, kSmall, kMedium };

/// ACM-like preset (Tab. III row 1, laptop scale): one CS discipline whose
/// 4 topics are the Tab. II CCS fields, full attribute set, years 2008-17.
CorpusGeneratorOptions AcmLikeOptions(DatasetScale scale, uint64_t seed);

/// Scopus-like preset: 3 disciplines (CS / Medicine / Sociology) with the
/// discipline-specific innovation sensitivities of Sec. III, no
/// affiliations (Tab. III: Scopus lacks them).
CorpusGeneratorOptions ScopusLikeOptions(DatasetScale scale, uint64_t seed);

/// PubMedRCT-like preset: medicine only, longer abstracts (the paper: 11.5
/// sentences on average) with gold sentence roles — the labeler's training
/// corpus.
CorpusGeneratorOptions PubmedRctLikeOptions(DatasetScale scale, uint64_t seed);

/// US-patent-like preset (Sec. IV-I, Tab. III): authors + citations only —
/// no venues, keywords, CCS or affiliations — the low-resource
/// reusability setting of Fig. 6.
CorpusGeneratorOptions PatentLikeOptions(DatasetScale scale, uint64_t seed);

}  // namespace subrec::datagen

#endif  // SUBREC_DATAGEN_DATASETS_H_
