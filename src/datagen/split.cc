#include "datagen/split.h"

#include <algorithm>
#include <unordered_set>

namespace subrec::datagen {

YearSplit SplitByYear(const corpus::Corpus& corpus, int year) {
  YearSplit split;
  split.split_year = year;
  for (const corpus::Paper& p : corpus.papers) {
    if (p.year <= year) {
      split.train.push_back(p.id);
    } else {
      split.test.push_back(p.id);
    }
  }
  return split;
}

std::vector<corpus::PaperId> PapersOfDiscipline(const corpus::Corpus& corpus,
                                                int discipline, int min_year,
                                                int max_year) {
  std::vector<corpus::PaperId> out;
  for (const corpus::Paper& p : corpus.papers) {
    if (p.discipline == discipline && p.year >= min_year && p.year <= max_year)
      out.push_back(p.id);
  }
  return out;
}

std::vector<corpus::PaperId> HeldOutCitations(const corpus::Corpus& corpus,
                                              corpus::AuthorId user,
                                              int year) {
  std::unordered_set<corpus::PaperId> cited;
  for (corpus::PaperId pid : corpus.author(user).papers) {
    const corpus::Paper& p = corpus.paper(pid);
    if (p.year <= year) continue;
    for (corpus::PaperId ref : p.references) {
      if (corpus.paper(ref).year > year) cited.insert(ref);
    }
  }
  std::vector<corpus::PaperId> out(cited.begin(), cited.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<corpus::AuthorId> SelectUsers(const corpus::Corpus& corpus,
                                          int year, int min_train_papers) {
  std::vector<corpus::AuthorId> users;
  for (const corpus::Author& a : corpus.authors) {
    int train_papers = 0;
    for (corpus::PaperId pid : a.papers)
      if (corpus.paper(pid).year <= year) ++train_papers;
    if (train_papers < min_train_papers) continue;
    if (HeldOutCitations(corpus, a.id, year).empty()) continue;
    users.push_back(a.id);
  }
  return users;
}

}  // namespace subrec::datagen
