#ifndef SUBREC_DATAGEN_STREAMING_H_
#define SUBREC_DATAGEN_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace subrec::datagen {

/// Parameters for the streaming embedding-corpus generator. The defaults
/// are the bench/ann_recall smoke scale; AnnRecallPreset() below holds the
/// named presets (including the 1e5-paper headline run).
struct StreamingCorpusOptions {
  int start_year = 2008;
  int end_year = 2017;
  int papers_per_year = 400;
  int num_disciplines = 3;
  int topics_per_discipline = 8;
  size_t embedding_dim = 48;
  /// Within-topic Gaussian spread around the topic center. Smaller means
  /// tighter clusters (easier retrieval); the default keeps plenty of
  /// overlap between adjacent topics.
  double topic_spread = 0.35;
  /// Lognormal sigma of the per-paper influence magnitude: varies vector
  /// norms so maximum-inner-product search is not just cosine search.
  double influence_sigma = 0.25;
  uint64_t seed = 1234;
};

/// Named scales for bench/ann_recall. kSmoke is the CI gate; kFull is the
/// 1e5-paper headline run from the ISSUE acceptance criteria; kXl is the
/// 1e6-paper scale target (5e5 in the new pool, ~2-3 GB peak for the
/// vector slab plus both indexes — documented in EXPERIMENTS.md, never run
/// in CI).
enum class AnnCorpusScale { kSmoke, kFull, kXl };
StreamingCorpusOptions AnnRecallPreset(AnnCorpusScale scale, uint64_t seed);

/// One generated paper with the two embeddings the serving path scores
/// with (interest ~ what the paper cites, influence ~ how it projects to
/// readers; same-topic papers have high interest-influence inner product).
struct StreamedPaper {
  int32_t id = 0;
  int32_t year = 0;
  int32_t discipline = 0;
  int32_t topic = 0;
  std::vector<double> interest;
  std::vector<double> influence;
};

/// Streams a synthetic embedding corpus in (year, id) order without ever
/// materializing it: peak memory is O(batch + topics * dim), so the
/// 1e5-paper preset runs in a few MB where GenerateCorpus would need the
/// whole corpus resident.
///
/// Determinism contract: paper `i` is a pure function of (options, i) —
/// its generator stream is seeded from hash(seed, i), never from the
/// position of `i` within a batch. Reading the corpus in one batch or in
/// hundreds yields identical papers (datagen_test locks this in), and
/// PaperAt gives random access under the same guarantee.
class StreamingCorpusGenerator {
 public:
  /// InvalidArgument for degenerate configurations (empty year range,
  /// non-positive counts, zero dim).
  static Result<StreamingCorpusGenerator> Create(
      const StreamingCorpusOptions& options);

  const StreamingCorpusOptions& options() const { return options_; }
  size_t num_papers() const { return num_papers_; }
  int num_topics() const { return num_topics_; }
  /// Midpoint split: papers in years > split_year() are the "new papers"
  /// retrieval pool (about half the corpus), the rest are profile history.
  /// Years are emitted oldest-first and ids ascend with year, so the new
  /// papers form one contiguous id suffix.
  int32_t split_year() const {
    return (options_.start_year + options_.end_year) / 2;
  }

  /// Random access: the paper with id `i`, i in [0, num_papers()).
  StreamedPaper PaperAt(size_t i) const;

  /// Appends the next `max_papers` papers (fewer at the end of the
  /// stream) to `out` in ascending id order and returns how many were
  /// produced; 0 means the stream is exhausted. `out` is cleared first.
  size_t NextBatch(size_t max_papers, std::vector<StreamedPaper>* out);

  /// Rewinds the stream to paper 0.
  void Reset() { next_ = 0; }

 private:
  explicit StreamingCorpusGenerator(const StreamingCorpusOptions& options);

  StreamingCorpusOptions options_;
  size_t num_papers_ = 0;
  int num_topics_ = 0;
  size_t next_ = 0;
  /// Topic centers for both embedding roles, row-major num_topics x dim —
  /// the only state that scales with anything, and it scales with topic
  /// count, not corpus size.
  std::vector<double> interest_centers_;
  std::vector<double> influence_centers_;
};

}  // namespace subrec::datagen

#endif  // SUBREC_DATAGEN_STREAMING_H_
