#include "datagen/abstract_generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace subrec::datagen {

AbstractGenerator::AbstractGenerator(AbstractGeneratorOptions options)
    : options_(options) {
  SUBREC_CHECK_GE(options_.mean_sentences_per_role, 1.0);
  SUBREC_CHECK_LE(options_.min_content_tokens, options_.max_content_tokens);
}

corpus::Sentence AbstractGenerator::MakeSentence(
    const SyntheticVocabulary& vocab, int discipline, int topic, int role,
    double innovation, const std::vector<std::string>& novel_pool,
    Rng& rng) const {
  std::string text;
  // Leading cue phrase; occasionally from the wrong role (labeler noise).
  int cue_role = role;
  if (!rng.Bernoulli(options_.cue_fidelity))
    cue_role = static_cast<int>(rng.UniformInt(3));
  const auto& cues = vocab.CuePhrases(cue_role);
  text += cues[rng.UniformInt(cues.size())];

  const int n_tokens =
      options_.min_content_tokens +
      static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
          options_.max_content_tokens - options_.min_content_tokens + 1)));
  const auto& topic_words = vocab.TopicWords(discipline, topic);
  const auto& disc_words = vocab.DisciplineWords(discipline);
  const auto& general = vocab.GeneralWords();
  auto skewed_index = [&](size_t size) {
    const double u = rng.UniformDouble();
    const double frac = std::pow(u, options_.topic_word_skew);
    return std::min(size - 1, static_cast<size_t>(frac * static_cast<double>(size)));
  };
  for (int i = 0; i < n_tokens; ++i) {
    text += ' ';
    const double u = rng.UniformDouble();
    if (u < 0.62) {
      text += topic_words[skewed_index(topic_words.size())];
    } else if (u < 0.82) {
      text += disc_words[skewed_index(disc_words.size())];
    } else {
      text += general[rng.UniformInt(general.size())];
    }
  }

  // Innovation signatures: the paper's own novel terminology (a new
  // technique/finding gets named and then repeated, concentrating encoder
  // weight on it) plus cross-topic borrowings, both confined to this
  // sentence's role.
  if (!novel_pool.empty()) {
    // Superlinear at the low end (z^2/(z+0.5)): barely-innovative papers
    // usually coin nothing, so embedding displacement tracks z instead of
    // saturating after the first novel term.
    const double lambda = options_.novel_token_rate * innovation * innovation /
                          (innovation + 0.5);
    const int novel = rng.Poisson(lambda);
    for (int i = 0; i < novel; ++i) {
      text += ' ';
      text += novel_pool[rng.UniformInt(novel_pool.size())];
    }
  }
  const int borrowed = rng.Poisson(options_.borrow_rate * innovation);
  for (int i = 0; i < borrowed; ++i) {
    const int other_topic = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(vocab.max_topics())));
    const auto& other = vocab.TopicWords(discipline, other_topic);
    text += ' ';
    text += other[rng.UniformInt(other.size())];
  }
  text += '.';
  corpus::Sentence s;
  s.text = std::move(text);
  s.role = role;
  return s;
}

std::vector<corpus::Sentence> AbstractGenerator::Generate(
    const SyntheticVocabulary& vocab, int discipline, int topic,
    const std::array<double, 3>& innovation, corpus::PaperId paper_id,
    Rng& rng) const {
  std::vector<corpus::Sentence> sentences;
  for (int role = 0; role < 3; ++role) {
    const double z = innovation[static_cast<size_t>(role)];
    // The paper coins a few new terms per innovative subspace and reuses
    // them across that subspace's sentences.
    std::vector<std::string> novel_pool;
    const int pool_size = z > 0.0 ? 1 + rng.Poisson(z) : 0;
    for (int j = 0; j < pool_size; ++j) {
      novel_pool.push_back("p" + std::to_string(paper_id) + "r" +
                           std::to_string(role) + "n" + std::to_string(j));
    }
    const int count =
        1 + rng.Poisson(options_.mean_sentences_per_role - 1.0);
    for (int i = 0; i < count; ++i) {
      sentences.push_back(
          MakeSentence(vocab, discipline, topic, role, z, novel_pool, rng));
    }
  }
  return sentences;
}

}  // namespace subrec::datagen
