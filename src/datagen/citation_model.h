#ifndef SUBREC_DATAGEN_CITATION_MODEL_H_
#define SUBREC_DATAGEN_CITATION_MODEL_H_

#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "corpus/types.h"
#include "datagen/discipline.h"

namespace subrec::datagen {

struct CitationModelOptions {
  /// Relevance multipliers by relationship of the citing and cited papers.
  double relevance_same_topic = 12.0;
  double relevance_same_discipline = 2.0;
  double relevance_other = 0.25;
  /// Preferential-attachment weight on the cited paper's in-degree so far.
  double preferential_weight = 0.6;
  /// Recency half-life in years.
  double recency_half_life = 2.5;
  /// Citability boost per unit of discipline-weighted innovation: cited
  /// papers are drawn with weight exp(boost * sum_k beta_k z_k). This is
  /// what makes subspace innovation causally drive citations.
  double innovation_boost = 1.0;
  /// Citation-habit multiplier: papers written by authors the citing team
  /// has cited before (or by the team itself) are this much more likely to
  /// be cited again. Persistent citation habits are what make a user's
  /// future citations predictable from their history (the signal every
  /// recommender exploits; cf. the paper's Fig. 5 discussion of "excellent
  /// and consistent citation patterns").
  double habit_boost = 6.0;
  /// Scale of out-of-corpus citations added to the realized in-degree.
  double external_scale = 3.0;
};

/// The citation process of the synthetic corpus: reference selection for
/// new papers (relevance x authority x recency x innovation x habit) and
/// the final citation-count metadata (in-corpus in-degree + external mass
/// with the same innovation weighting).
class CitationModel {
 public:
  explicit CitationModel(CitationModelOptions options = {});

  /// Samples `count` distinct references for a paper of (discipline, topic)
  /// from the already-generated prefix corpus. `in_degree` is the running
  /// in-corpus citation tally, aligned with corpus.papers.
  /// `favored_authors` (optional) are the citing team's habitual citees;
  /// papers they authored get the habit boost.
  std::vector<corpus::PaperId> SelectReferences(
      const corpus::Corpus& corpus, const std::vector<DisciplineSpec>& specs,
      const std::vector<int>& in_degree, int discipline, int topic, int count,
      Rng& rng,
      const std::unordered_set<corpus::AuthorId>* favored_authors = nullptr)
      const;

  /// Final citation metadata: realized in-degree plus Poisson external
  /// citations growing with innovation, venue prestige, author authority
  /// and paper age at the horizon.
  int FinalCitationCount(const corpus::Paper& paper,
                         const DisciplineSpec& spec, int in_degree,
                         double venue_prestige, double author_authority,
                         int horizon_year, Rng& rng) const;

  const CitationModelOptions& options() const { return options_; }

 private:
  /// exp(boost * beta . z) citability factor of a candidate cited paper.
  double InnovationFactor(const corpus::Paper& paper,
                          const DisciplineSpec& spec) const;

  CitationModelOptions options_;
};

}  // namespace subrec::datagen

#endif  // SUBREC_DATAGEN_CITATION_MODEL_H_
