#include "datagen/datasets.h"

namespace subrec::datagen {
namespace {

void ApplyScale(DatasetScale scale, CorpusGeneratorOptions* options) {
  switch (scale) {
    case DatasetScale::kTiny:
      options->papers_per_year = 40;
      options->num_authors = 60;
      options->mean_references = 5.0;
      break;
    case DatasetScale::kSmall:
      options->papers_per_year = 150;
      options->num_authors = 200;
      break;
    case DatasetScale::kMedium:
      options->papers_per_year = 400;
      options->num_authors = 500;
      break;
  }
}

}  // namespace

CorpusGeneratorOptions AcmLikeOptions(DatasetScale scale, uint64_t seed) {
  CorpusGeneratorOptions options;
  options.disciplines = AcmDisciplines();
  options.start_year = 2008;
  options.end_year = 2017;
  options.seed = seed;
  ApplyScale(scale, &options);
  return options;
}

CorpusGeneratorOptions ScopusLikeOptions(DatasetScale scale, uint64_t seed) {
  CorpusGeneratorOptions options;
  options.disciplines = ScopusDisciplines();
  options.start_year = 2008;
  options.end_year = 2017;
  options.include_affiliations = false;  // Tab. III: Scopus lacks units.
  options.seed = seed;
  ApplyScale(scale, &options);
  return options;
}

CorpusGeneratorOptions PubmedRctLikeOptions(DatasetScale scale,
                                            uint64_t seed) {
  CorpusGeneratorOptions options;
  DisciplineSpec medicine;
  medicine.name = "Medicine";
  medicine.innovation_sensitivity = {0.30, 0.35, 1.15};
  medicine.num_topics = 8;
  medicine.base_citation_rate = 3.0;
  options.disciplines = {medicine};
  // Longer abstracts: PubMedRCT averages 11.5 sentences.
  options.abstract_options.mean_sentences_per_role = 3.8;
  options.seed = seed;
  ApplyScale(scale, &options);
  return options;
}

CorpusGeneratorOptions PatentLikeOptions(DatasetScale scale, uint64_t seed) {
  CorpusGeneratorOptions options;
  DisciplineSpec tech;
  tech.name = "Technology";
  tech.innovation_sensitivity = {0.4, 0.9, 0.9};
  tech.num_topics = 6;
  tech.base_citation_rate = 1.5;
  options.disciplines = {tech};
  options.include_venues = false;
  options.include_keywords = false;
  options.include_affiliations = false;
  options.include_ccs = false;
  options.start_year = 2013;
  options.end_year = 2017;
  options.seed = seed;
  ApplyScale(scale, &options);
  return options;
}

}  // namespace subrec::datagen
