#include "par/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"

namespace subrec::par {
namespace {

/// Set while the thread is executing chunks of some region; nested
/// ParallelFor calls observe it and run inline instead of re-entering the
/// pool (which could deadlock: every worker waiting on child regions).
thread_local bool tls_in_region = false;

struct RegionFlag {
  bool prev;
  RegionFlag() : prev(tls_in_region) { tls_in_region = true; }
  ~RegionFlag() { tls_in_region = prev; }
};

/// Lazily built process-wide pool. The pool holds NumThreads()-1 workers;
/// the thread that opens a region participates as the final lane. The
/// pool is only torn down / resized between regions (active_regions == 0),
/// so a raw pointer handed to an open region stays valid until release.
struct Runtime {
  std::mutex mu;
  size_t override_threads = 0;  // 0 = env/hardware resolution
  size_t pool_threads = 0;      // team size the current pool was built for
  size_t active_regions = 0;
  std::unique_ptr<ThreadPool> pool;
};

Runtime& GlobalRuntime() {
  static Runtime runtime;
  return runtime;
}

size_t EnvThreads() {
  const char* env = std::getenv("SUBREC_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 0;
  return static_cast<size_t>(v);
}

ThreadPool* AcquirePool(size_t team_size) {
  Runtime& rt = GlobalRuntime();
  std::lock_guard<std::mutex> lock(rt.mu);
  if (rt.pool != nullptr && rt.pool_threads != team_size &&
      rt.active_regions == 0) {
    rt.pool.reset();  // workers are idle between regions; join is cheap
  }
  if (rt.pool == nullptr) {
    rt.pool = std::make_unique<ThreadPool>(team_size - 1);
    rt.pool_threads = team_size;
  }
  ++rt.active_regions;
  return rt.pool.get();
}

void ReleasePool() {
  Runtime& rt = GlobalRuntime();
  std::lock_guard<std::mutex> lock(rt.mu);
  SUBREC_CHECK_GT(rt.active_regions, 0u);
  --rt.active_regions;
}

/// Shared per-region scoreboard. Chunks are claimed from an atomic ticket
/// counter; the ticket IS the chunk index, so the begin/end a body sees
/// never depends on which thread claimed it.
struct RegionState {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t grain = 0;
  size_t chunks = 0;
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex mu;
  std::condition_variable cv;
  size_t helpers_done = 0;
  size_t first_error_chunk = std::numeric_limits<size_t>::max();
  std::exception_ptr error;
};

void DrainChunks(RegionState* s) {
  RegionFlag flag;
  for (;;) {
    const size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s->chunks || s->abort.load(std::memory_order_relaxed)) return;
    const size_t begin = c * s->grain;
    const size_t end = std::min(s->n, begin + s->grain);
    try {
      (*s->body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(s->mu);
      if (c < s->first_error_chunk) {
        s->first_error_chunk = c;
        s->error = std::current_exception();
      }
      s->abort.store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace

size_t HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? size_t{1} : static_cast<size_t>(hc);
}

size_t NumThreads() {
  // Env is read once: the knob is a process-start setting, and caching it
  // keeps NumThreads() cheap enough to call per region.
  static const size_t env_default = EnvThreads();
  Runtime& rt = GlobalRuntime();
  std::lock_guard<std::mutex> lock(rt.mu);
  if (rt.override_threads > 0) return rt.override_threads;
  return env_default > 0 ? env_default : HardwareThreads();
}

size_t SetNumThreads(size_t n) {
  Runtime& rt = GlobalRuntime();
  std::lock_guard<std::mutex> lock(rt.mu);
  const size_t prev = rt.override_threads;
  rt.override_threads = n;
  return prev;
}

bool InParallelRegion() { return tls_in_region; }

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t g = grain == 0 ? size_t{1} : grain;
  const size_t chunks = (n + g - 1) / g;
  const size_t threads = NumThreads();
  if (threads <= 1 || chunks <= 1 || tls_in_region) {
    RegionFlag flag;
    for (size_t c = 0; c < chunks; ++c) body(c * g, std::min(n, c * g + g));
    return;
  }

  static obs::Counter* const regions =
      obs::MetricsRegistry::Global().GetCounter("par.regions");
  static obs::Counter* const chunk_count =
      obs::MetricsRegistry::Global().GetCounter("par.chunks");
  regions->Increment();
  chunk_count->Increment(static_cast<int64_t>(chunks));

  RegionState state;
  state.body = &body;
  state.n = n;
  state.grain = g;
  state.chunks = chunks;

  ThreadPool* pool = AcquirePool(threads);
  // The caller is one lane of the team, so at most chunks-1 helpers can
  // ever do useful work.
  const size_t helpers = std::min(pool->num_threads(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([&state] {
      DrainChunks(&state);
      std::lock_guard<std::mutex> lock(state.mu);
      ++state.helpers_done;
      state.cv.notify_all();
    });
  }
  DrainChunks(&state);
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&state, helpers] {
      return state.helpers_done == helpers;
    });
  }
  ReleasePool();
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace subrec::par
