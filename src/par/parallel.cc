#include "par/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"

namespace subrec::par {
namespace {

/// Set while the thread is executing chunks of some region; nested
/// ParallelFor calls observe it and run inline instead of re-entering the
/// pool (which could deadlock: every worker waiting on child regions).
thread_local bool tls_in_region = false;

struct RegionFlag {
  bool prev;
  RegionFlag() : prev(tls_in_region) { tls_in_region = true; }
  ~RegionFlag() { tls_in_region = prev; }
};

/// Lazily built process-wide pool. The pool holds NumThreads()-1 workers;
/// the thread that opens a region participates as the final lane. The
/// pool is only torn down / resized between regions (active_regions == 0),
/// so a raw pointer handed to an open region stays valid until release.
struct Runtime {
  common::Mutex mu;
  // 0 = env/hardware resolution
  size_t override_threads SUBREC_GUARDED_BY(mu) = 0;
  // Team size the current pool was built for.
  size_t pool_threads SUBREC_GUARDED_BY(mu) = 0;
  size_t active_regions SUBREC_GUARDED_BY(mu) = 0;
  std::unique_ptr<ThreadPool> pool SUBREC_GUARDED_BY(mu);
};

Runtime& GlobalRuntime() {
  static Runtime runtime;
  return runtime;
}

size_t EnvThreads() {
  const char* env = std::getenv("SUBREC_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 0;
  return static_cast<size_t>(v);
}

ThreadPool* AcquirePool(size_t team_size) {
  Runtime& rt = GlobalRuntime();
  common::MutexLock lock(&rt.mu);
  if (rt.pool != nullptr && rt.pool_threads != team_size &&
      rt.active_regions == 0) {
    rt.pool.reset();  // workers are idle between regions; join is cheap
  }
  if (rt.pool == nullptr) {
    rt.pool = std::make_unique<ThreadPool>(team_size - 1);
    rt.pool_threads = team_size;
  }
  ++rt.active_regions;
  return rt.pool.get();
}

void ReleasePool() {
  Runtime& rt = GlobalRuntime();
  common::MutexLock lock(&rt.mu);
  SUBREC_CHECK_GT(rt.active_regions, 0u);
  --rt.active_regions;
}

/// Shared per-region scoreboard. Chunks are claimed from an atomic ticket
/// counter; the ticket IS the chunk index, so the begin/end a body sees
/// never depends on which thread claimed it.
struct RegionState {
  // The geometry fields are set by the opening thread before any helper is
  // submitted and are read-only while the region runs.
  const std::function<void(size_t, size_t)>* body
      SUBREC_UNGUARDED("immutable once helpers start") = nullptr;
  size_t n SUBREC_UNGUARDED("immutable once helpers start") = 0;
  size_t grain SUBREC_UNGUARDED("immutable once helpers start") = 0;
  size_t chunks SUBREC_UNGUARDED("immutable once helpers start") = 0;
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  common::Mutex mu;
  common::CondVar cv;
  size_t helpers_done SUBREC_GUARDED_BY(mu) = 0;
  size_t first_error_chunk SUBREC_GUARDED_BY(mu) =
      std::numeric_limits<size_t>::max();
  std::exception_ptr error SUBREC_GUARDED_BY(mu);
};

void DrainChunks(RegionState* s) {
  RegionFlag flag;
  for (;;) {
    const size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s->chunks || s->abort.load(std::memory_order_relaxed)) return;
    const size_t begin = c * s->grain;
    const size_t end = std::min(s->n, begin + s->grain);
    try {
      (*s->body)(begin, end);
    } catch (...) {
      common::MutexLock lock(&s->mu);
      if (c < s->first_error_chunk) {
        s->first_error_chunk = c;
        s->error = std::current_exception();
      }
      s->abort.store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace

size_t HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? size_t{1} : static_cast<size_t>(hc);
}

size_t NumThreads() {
  // Env is read once: the knob is a process-start setting, and caching it
  // keeps NumThreads() cheap enough to call per region.
  static const size_t env_default = EnvThreads();
  Runtime& rt = GlobalRuntime();
  common::MutexLock lock(&rt.mu);
  if (rt.override_threads > 0) return rt.override_threads;
  return env_default > 0 ? env_default : HardwareThreads();
}

size_t SetNumThreads(size_t n) {
  Runtime& rt = GlobalRuntime();
  common::MutexLock lock(&rt.mu);
  const size_t prev = rt.override_threads;
  rt.override_threads = n;
  return prev;
}

bool InParallelRegion() { return tls_in_region; }

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t g = grain == 0 ? size_t{1} : grain;
  const size_t chunks = (n + g - 1) / g;
  const size_t threads = NumThreads();
  if (threads <= 1 || chunks <= 1 || tls_in_region) {
    RegionFlag flag;
    for (size_t c = 0; c < chunks; ++c) body(c * g, std::min(n, c * g + g));
    return;
  }

  static obs::Counter* const regions =
      obs::MetricsRegistry::Global().GetCounter("par.regions");
  static obs::Counter* const chunk_count =
      obs::MetricsRegistry::Global().GetCounter("par.chunks");
  regions->Increment();
  chunk_count->Increment(static_cast<int64_t>(chunks));

  RegionState state;
  state.body = &body;
  state.n = n;
  state.grain = g;
  state.chunks = chunks;

  ThreadPool* pool = AcquirePool(threads);
  // The caller is one lane of the team, so at most chunks-1 helpers can
  // ever do useful work.
  const size_t helpers = std::min(pool->num_threads(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([&state] {
      DrainChunks(&state);
      common::MutexLock lock(&state.mu);
      ++state.helpers_done;
      state.cv.NotifyAll();
    });
  }
  DrainChunks(&state);
  std::exception_ptr error;
  {
    common::MutexLock lock(&state.mu);
    while (state.helpers_done != helpers) state.cv.Wait(&state.mu);
    // Copy out under the lock: once every helper has checked in the field
    // is final, but the read still belongs inside the mutex's protocol.
    error = state.error;
  }
  ReleasePool();
  if (error) std::rethrow_exception(error);
}

}  // namespace subrec::par
