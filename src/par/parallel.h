#ifndef SUBREC_PAR_PARALLEL_H_
#define SUBREC_PAR_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace subrec::par {

/// Thread count the process-wide runtime will use for parallel regions.
/// Resolution order: SetNumThreads override (if non-zero), then the
/// SUBREC_NUM_THREADS environment variable (read once, first call wins),
/// then std::thread::hardware_concurrency(). Always >= 1; a value of 1
/// means every region runs inline on the calling thread and no pool is
/// ever spun up.
size_t NumThreads();

/// hardware_concurrency() clamped to >= 1.
size_t HardwareThreads();

/// Overrides NumThreads() process-wide; `n == 0` clears the override and
/// falls back to env/hardware resolution. Returns the previous override
/// (0 if none was set). Takes effect for regions started afterwards.
size_t SetNumThreads(size_t n);

/// True while the calling thread is executing inside a ParallelFor body.
/// Nested regions run inline on the calling thread (no pool re-entry).
bool InParallelRegion();

/// RAII thread-count override for tests and benchmarks.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) : prev_(SetNumThreads(n)) {}
  ~ScopedNumThreads() { SetNumThreads(prev_); }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  size_t prev_;
};

/// Runs body(begin, end) over [0, n) split into deterministic static
/// chunks. The chunk boundaries are a function of n and grain ONLY —
/// chunk c covers [c*grain, min(n, (c+1)*grain)) — never of the thread
/// count, so any per-chunk side effects land in the same places
/// regardless of SUBREC_NUM_THREADS. Chunks execute concurrently (in
/// unspecified order) on the shared pool; with 1 thread, a single chunk,
/// or when called from inside another region, everything runs inline in
/// ascending chunk order on the calling thread.
///
/// If a body throws, no new chunks are started, the exception from the
/// lowest-indexed failing chunk is rethrown on the caller, and chunks
/// already running are allowed to finish first.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Deterministic parallel reduction: map(begin, end) produces one partial
/// per chunk (same chunk grid as ParallelFor), and partials are combined
/// serially in ascending chunk order as
///   acc = combine(acc, partial[0]); acc = combine(acc, partial[1]); ...
/// starting from `init`. Because both the chunk grid and the combination
/// order are independent of the thread count, floating-point results are
/// bit-identical for any SUBREC_NUM_THREADS.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t n, size_t grain, T init, const MapFn& map,
                 const CombineFn& combine) {
  if (n == 0) return init;
  const size_t g = grain == 0 ? size_t{1} : grain;
  const size_t chunks = (n + g - 1) / g;
  std::vector<T> partials(chunks, init);
  ParallelFor(n, g, [&partials, g, &map](size_t begin, size_t end) {
    partials[begin / g] = map(begin, end);
  });
  T acc = std::move(init);
  for (size_t c = 0; c < chunks; ++c)
    acc = combine(std::move(acc), std::move(partials[c]));
  return acc;
}

}  // namespace subrec::par

#endif  // SUBREC_PAR_PARALLEL_H_
