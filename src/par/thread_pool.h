#ifndef SUBREC_PAR_THREAD_POOL_H_
#define SUBREC_PAR_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec::par {

/// Bounded worker pool over one shared FIFO queue (deliberately simple: no
/// work stealing, no priorities). Workers block on a condition variable —
/// never a sleep loop. Destruction (or Shutdown) drains every queued task,
/// then joins; tasks submitted through Submit must not throw, while
/// SubmitWithResult wraps the callable in a packaged_task so an exception
/// lands in the returned future instead of killing a worker.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget task. Must not be called after Shutdown.
  void Submit(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result (or its exception).
  template <typename F>
  auto SubmitWithResult(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr because std::function requires copyable callables.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Submit([task]() { (*task)(); });
    return result;
  }

  /// Drains the queue, joins every worker. Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently waiting (excludes tasks being executed).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::deque<std::function<void()>> queue_ SUBREC_GUARDED_BY(mu_);
  std::vector<std::thread> workers_
      SUBREC_UNGUARDED("written only by the constructor; joined by the one "
                       "thread that wins the shutdown_ flag race");
  bool shutdown_ SUBREC_GUARDED_BY(mu_) = false;
};

}  // namespace subrec::par

#endif  // SUBREC_PAR_THREAD_POOL_H_
