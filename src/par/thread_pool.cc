#include "par/thread_pool.h"

#include "common/check.h"

namespace subrec::par {

ThreadPool::ThreadPool(size_t num_threads) {
  SUBREC_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  SUBREC_CHECK(task != nullptr);
  {
    common::MutexLock lock(&mu_);
    SUBREC_CHECK(!shutdown_) << "ThreadPool::Submit after Shutdown";
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::Shutdown() {
  {
    common::MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::QueueDepth() const {
  common::MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // submitted future completes.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace subrec::par
