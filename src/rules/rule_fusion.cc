#include "rules/rule_fusion.h"

#include <cmath>

#include "common/check.h"

namespace subrec::rules {

RuleFusion::RuleFusion(int num_subspaces) : num_subspaces_(num_subspaces) {
  SUBREC_CHECK_GT(num_subspaces_, 0);
  const size_t k = static_cast<size_t>(num_subspaces_);
  mean_.assign(kNumExpertRules, std::vector<double>(k, 0.0));
  stddev_.assign(kNumExpertRules, std::vector<double>(k, 1.0));
  weights_.assign(
      k, std::vector<double>(kNumExpertRules,
                             1.0 / static_cast<double>(kNumExpertRules)));
}

Status RuleFusion::FitNormalization(
    const std::vector<std::vector<std::vector<double>>>& score_samples) {
  if (score_samples.empty())
    return Status::InvalidArgument("RuleFusion: empty calibration sample");
  const size_t k = static_cast<size_t>(num_subspaces_);
  for (int r = 0; r < kNumExpertRules; ++r) {
    for (size_t s = 0; s < k; ++s) {
      double sum = 0.0, sum2 = 0.0;
      for (const auto& sample : score_samples) {
        SUBREC_CHECK_EQ(sample.size(), static_cast<size_t>(kNumExpertRules));
        const double v = sample[static_cast<size_t>(r)][s];
        sum += v;
        sum2 += v * v;
      }
      const double n = static_cast<double>(score_samples.size());
      const double mean = sum / n;
      const double var = std::max(sum2 / n - mean * mean, 0.0);
      mean_[static_cast<size_t>(r)][s] = mean;
      stddev_[static_cast<size_t>(r)][s] = var > 1e-12 ? std::sqrt(var) : 1.0;
    }
  }
  normalized_ = true;
  return Status::Ok();
}

Status RuleFusion::SetWeights(int k, const std::vector<double>& weights) {
  if (k < 0 || k >= num_subspaces_)
    return Status::InvalidArgument("RuleFusion: subspace out of range");
  if (weights.size() != static_cast<size_t>(kNumExpertRules))
    return Status::InvalidArgument("RuleFusion: need one weight per rule");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      return Status::InvalidArgument("RuleFusion: negative weight");
    total += w;
  }
  if (total <= 0.0)
    return Status::InvalidArgument("RuleFusion: all-zero weights");
  auto& dst = weights_[static_cast<size_t>(k)];
  for (size_t i = 0; i < dst.size(); ++i) dst[i] = weights[i] / total;
  return Status::Ok();
}

double RuleFusion::Fuse(const std::vector<std::vector<double>>& scores,
                        int k) const {
  SUBREC_CHECK(k >= 0 && k < num_subspaces_);
  SUBREC_CHECK_EQ(scores.size(), static_cast<size_t>(kNumExpertRules));
  const size_t sk = static_cast<size_t>(k);
  double fused = 0.0;
  for (int r = 0; r < kNumExpertRules; ++r) {
    const size_t sr = static_cast<size_t>(r);
    const double z = (scores[sr][sk] - mean_[sr][sk]) / stddev_[sr][sk];
    fused += weights_[sk][sr] * z;
  }
  return fused;
}

std::vector<double> RuleFusion::FuseAll(
    const std::vector<std::vector<double>>& scores) const {
  std::vector<double> out(static_cast<size_t>(num_subspaces_));
  for (int k = 0; k < num_subspaces_; ++k)
    out[static_cast<size_t>(k)] = Fuse(scores, k);
  return out;
}

const std::vector<double>& RuleFusion::weights(int k) const {
  SUBREC_CHECK(k >= 0 && k < num_subspaces_);
  return weights_[static_cast<size_t>(k)];
}

}  // namespace subrec::rules
