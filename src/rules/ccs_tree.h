#ifndef SUBREC_RULES_CCS_TREE_H_
#define SUBREC_RULES_CCS_TREE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace subrec::rules {

/// Hierarchically organized classification system (the paper's HCS, e.g.
/// ACM CCS). Nodes are added top-down; node 0 is the root (level 0).
class CcsTree {
 public:
  CcsTree();

  /// Adds a child of `parent` (which must exist); returns the new node id.
  int AddNode(const std::string& name, int parent);

  int root() const { return 0; }
  size_t size() const { return parents_.size(); }
  int parent(int node) const;
  int level(int node) const;
  const std::string& name(int node) const;
  const std::vector<int>& children(int node) const;

  /// Node ids on the path root -> `node`, inclusive.
  std::vector<int> PathFromRoot(int node) const;

  /// Weighted hierarchical edit distance of Eq. (1):
  ///   f_c = sum over the symmetric difference of the two root-paths of
  ///         w(level) / 2^level,
  /// with w decreasing away from the root (default w(l) = 1/(1+l)), so
  /// divergence near the root costs more.
  double PathDifference(int node_p, int node_q) const;

  /// All leaf node ids (no children).
  std::vector<int> Leaves() const;

 private:
  std::vector<int> parents_;
  std::vector<int> levels_;
  std::vector<std::string> names_;
  std::vector<std::vector<int>> children_;
};

/// Builds a uniform tree: `branching[l]` children per node at depth l.
/// Useful for tests and the synthetic generator.
CcsTree BuildUniformTree(const std::vector<int>& branching);

}  // namespace subrec::rules

#endif  // SUBREC_RULES_CCS_TREE_H_
