#ifndef SUBREC_RULES_RULE_FUSION_H_
#define SUBREC_RULES_RULE_FUSION_H_

#include <vector>

#include "common/status.h"
#include "rules/expert_rules.h"

namespace subrec::rules {

/// Fuses per-rule difference scores into the per-subspace teacher signal
/// f^k(p,q) = sum_i a_i * z_i(p,q) of Sec. III-D, where z_i is the rule
/// score standardized over a calibration sample (rules have wildly
/// different scales, so raw averaging would let one rule dominate — the
/// paper's "eliminate the scoring bias of different expert rules").
/// Weights a_i default to uniform and can be set per subspace.
class RuleFusion {
 public:
  explicit RuleFusion(int num_subspaces = corpus::kDefaultNumSubspaces);

  /// Estimates per-rule mean/stddev from a calibration sample of score
  /// vectors (each as returned by ExpertRuleEngine::AllScores). Returns
  /// InvalidArgument when the sample is empty.
  Status FitNormalization(
      const std::vector<std::vector<std::vector<double>>>& score_samples);

  /// Sets the fusion weights of subspace `k` (size kNumExpertRules;
  /// normalized to sum 1 internally; all-zero is invalid).
  Status SetWeights(int k, const std::vector<double>& weights);

  /// Fused score of subspace `k` for one pair's AllScores() output.
  double Fuse(const std::vector<std::vector<double>>& scores, int k) const;

  /// Fused scores for every subspace.
  std::vector<double> FuseAll(
      const std::vector<std::vector<double>>& scores) const;

  int num_subspaces() const { return num_subspaces_; }
  bool normalized() const { return normalized_; }
  const std::vector<double>& weights(int k) const;

 private:
  int num_subspaces_;
  bool normalized_ = false;
  // Per rule x subspace statistics.
  std::vector<std::vector<double>> mean_;
  std::vector<std::vector<double>> stddev_;
  // Per subspace weight vector over rules.
  std::vector<std::vector<double>> weights_;
};

}  // namespace subrec::rules

#endif  // SUBREC_RULES_RULE_FUSION_H_
