#include "rules/expert_rules.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "la/ops.h"

namespace subrec::rules {

ExpertRuleEngine::ExpertRuleEngine(const CcsTree* tree,
                                   const text::SentenceEncoder* encoder,
                                   const text::Word2Vec* word_vectors,
                                   ExpertRuleOptions options)
    : tree_(tree),
      encoder_(encoder),
      word_vectors_(word_vectors),
      options_(options) {
  SUBREC_CHECK(encoder_ != nullptr);
  SUBREC_CHECK_GT(options_.num_subspaces, 0);
}

PaperContentFeatures ExpertRuleEngine::ComputeFeatures(
    const corpus::Paper& paper, const std::vector<int>& roles) const {
  SUBREC_CHECK_EQ(roles.size(), paper.abstract_sentences.size());
  PaperContentFeatures f;
  f.roles = roles;
  f.sentence_vectors.reserve(paper.abstract_sentences.size());
  for (const auto& s : paper.abstract_sentences)
    f.sentence_vectors.push_back(encoder_->Encode(s.text));

  const int k = options_.num_subspaces;
  f.subspace_means.assign(static_cast<size_t>(k),
                          std::vector<double>(encoder_->dim(), 0.0));
  std::vector<int> counts(static_cast<size_t>(k), 0);
  for (size_t i = 0; i < f.sentence_vectors.size(); ++i) {
    const int r = roles[i];
    if (r < 0 || r >= k) continue;
    la::AxpyVec(1.0, f.sentence_vectors[i], f.subspace_means[static_cast<size_t>(r)]);
    ++counts[static_cast<size_t>(r)];
  }
  for (int s = 0; s < k; ++s) {
    if (counts[static_cast<size_t>(s)] > 0) {
      for (double& v : f.subspace_means[static_cast<size_t>(s)])
        v /= static_cast<double>(counts[static_cast<size_t>(s)]);
      // Normalize: subspace difference should be angular, not an artifact
      // of how many sentences a paper happens to spend on the subspace.
      la::NormalizeL2(f.subspace_means[static_cast<size_t>(s)]);
    }
  }

  if (word_vectors_ != nullptr && word_vectors_->trained()) {
    f.keyword_vectors.reserve(paper.keywords.size());
    for (const auto& kw : paper.keywords)
      f.keyword_vectors.push_back(word_vectors_->Embedding(kw));
  }
  return f;
}

double ExpertRuleEngine::ClassificationScore(const corpus::Paper& p,
                                             const corpus::Paper& q) const {
  if (tree_ == nullptr || p.ccs_path.empty() || q.ccs_path.empty()) return 0.0;
  return tree_->PathDifference(p.ccs_path.back(), q.ccs_path.back());
}

double ExpertRuleEngine::ReferenceScore(const corpus::Paper& p,
                                        const corpus::Paper& q) const {
  std::unordered_set<corpus::PaperId> rp(p.references.begin(),
                                         p.references.end());
  size_t intersection = 0;
  for (corpus::PaperId r : q.references)
    if (rp.count(r) > 0) ++intersection;
  const size_t uni = rp.size() + q.references.size() - intersection;
  // Add-one smoothing keeps the reciprocal Jaccard finite for disjoint sets.
  return static_cast<double>(uni + 1) / static_cast<double>(intersection + 1);
}

double ExpertRuleEngine::KeywordScore(const PaperContentFeatures& fp,
                                      const PaperContentFeatures& fq) const {
  if (fp.keyword_vectors.empty() || fq.keyword_vectors.empty()) return 0.0;
  double total = 0.0;
  size_t pairs = 0;
  for (const auto& x : fp.keyword_vectors) {
    for (const auto& y : fq.keyword_vectors) {
      total += la::EuclideanDistance(x, y);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

std::vector<double> ExpertRuleEngine::AbstractSubspaceScores(
    const PaperContentFeatures& fp, const PaperContentFeatures& fq) const {
  const int k = options_.num_subspaces;
  std::vector<double> scores(static_cast<size_t>(k), 0.0);
  for (int s = 0; s < k; ++s) {
    scores[static_cast<size_t>(s)] = la::EuclideanDistance(
        fp.subspace_means[static_cast<size_t>(s)],
        fq.subspace_means[static_cast<size_t>(s)]);
  }
  return scores;
}

std::vector<std::vector<double>> ExpertRuleEngine::AllScores(
    const corpus::Paper& p, const PaperContentFeatures& fp,
    const corpus::Paper& q, const PaperContentFeatures& fq) const {
  const int k = options_.num_subspaces;
  std::vector<std::vector<double>> scores(
      kNumExpertRules, std::vector<double>(static_cast<size_t>(k), 0.0));
  const double fc = ClassificationScore(p, q);
  const double fr = ReferenceScore(p, q);
  const double fw = KeywordScore(fp, fq);
  const std::vector<double> ft = AbstractSubspaceScores(fp, fq);
  for (int s = 0; s < k; ++s) {
    scores[kRuleClassification][static_cast<size_t>(s)] = fc;
    scores[kRuleReferences][static_cast<size_t>(s)] = fr;
    scores[kRuleKeywords][static_cast<size_t>(s)] = fw;
    scores[kRuleAbstract][static_cast<size_t>(s)] = ft[static_cast<size_t>(s)];
  }
  return scores;
}

}  // namespace subrec::rules
