#ifndef SUBREC_RULES_EXPERT_RULES_H_
#define SUBREC_RULES_EXPERT_RULES_H_

#include <vector>

#include "corpus/types.h"
#include "rules/ccs_tree.h"
#include "text/sentence_encoder.h"
#include "text/word2vec.h"

namespace subrec::rules {

/// Precomputed per-paper content features consumed by the rules and by the
/// subspace twin network: one frozen-encoder vector per sentence, the
/// predicted (or gold) subspace role of each sentence, the per-subspace
/// mean sentence vector, and the keyword word-vectors.
struct PaperContentFeatures {
  /// One row per abstract sentence (encoder dim columns).
  std::vector<std::vector<double>> sentence_vectors;
  /// Subspace role of each sentence, aligned with sentence_vectors.
  std::vector<int> roles;
  /// Mean sentence vector per subspace; zero vector for empty subspaces.
  std::vector<std::vector<double>> subspace_means;
  /// Word2vec vector per keyword (keywords with no vector are zeros).
  std::vector<std::vector<double>> keyword_vectors;
};

/// Fixed order of the expert rules inside fused score vectors.
enum ExpertRule {
  kRuleClassification = 0,  // f_c, Eq. (1)
  kRuleReferences = 1,      // f_r, Eq. (2)
  kRuleKeywords = 2,        // f_w, Eq. (3)
  kRuleAbstract = 3,        // f_t, Sec. III-A.4 (subspace-specific)
  kNumExpertRules = 4,
};

/// Options for the rule engine.
struct ExpertRuleOptions {
  int num_subspaces = corpus::kDefaultNumSubspaces;
};

/// Implements the annotation rules of Sec. III-A. The engine holds
/// non-owning pointers to the category tree, the frozen sentence encoder
/// and the keyword word vectors; all must outlive it.
class ExpertRuleEngine {
 public:
  ExpertRuleEngine(const CcsTree* tree, const text::SentenceEncoder* encoder,
                   const text::Word2Vec* word_vectors,
                   ExpertRuleOptions options = {});

  /// Encodes a paper's content once. `roles` must align with the paper's
  /// abstract sentences (taken from a SentenceLabeler, or the gold roles).
  PaperContentFeatures ComputeFeatures(const corpus::Paper& paper,
                                       const std::vector<int>& roles) const;

  /// Eq. (1): weighted hierarchical edit distance between CCS leaf tags.
  /// Papers without a CCS path score 0 (no evidence of difference).
  double ClassificationScore(const corpus::Paper& p,
                             const corpus::Paper& q) const;

  /// Eq. (2): |R(p) ∪ R(q)| / |R(p) ∩ R(q)| — the reciprocal Jaccard
  /// coefficient, add-one smoothed so disjoint reference sets stay finite.
  double ReferenceScore(const corpus::Paper& p, const corpus::Paper& q) const;

  /// Eq. (3): expected Euclidean distance between keyword vectors.
  double KeywordScore(const PaperContentFeatures& fp,
                      const PaperContentFeatures& fq) const;

  /// Sec. III-A.4: per-subspace distance between mean sentence vectors.
  std::vector<double> AbstractSubspaceScores(
      const PaperContentFeatures& fp, const PaperContentFeatures& fq) const;

  /// All rule scores of a pair as a [kNumExpertRules x num_subspaces]
  /// column-per-subspace layout: entry(rule, k). The first three rules are
  /// whole-paper scores replicated across subspaces (the paper's f_*^k).
  std::vector<std::vector<double>> AllScores(
      const corpus::Paper& p, const PaperContentFeatures& fp,
      const corpus::Paper& q, const PaperContentFeatures& fq) const;

  int num_subspaces() const { return options_.num_subspaces; }
  const text::SentenceEncoder& encoder() const { return *encoder_; }

 private:
  const CcsTree* tree_;
  const text::SentenceEncoder* encoder_;
  const text::Word2Vec* word_vectors_;
  ExpertRuleOptions options_;
};

}  // namespace subrec::rules

#endif  // SUBREC_RULES_EXPERT_RULES_H_
