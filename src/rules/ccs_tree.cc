#include "rules/ccs_tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace subrec::rules {

CcsTree::CcsTree() {
  parents_.push_back(-1);
  levels_.push_back(0);
  names_.push_back("root");
  children_.emplace_back();
}

int CcsTree::AddNode(const std::string& name, int parent) {
  SUBREC_CHECK(parent >= 0 && static_cast<size_t>(parent) < parents_.size())
      << "invalid parent " << parent;
  const int id = static_cast<int>(parents_.size());
  parents_.push_back(parent);
  levels_.push_back(levels_[static_cast<size_t>(parent)] + 1);
  names_.push_back(name);
  children_.emplace_back();
  children_[static_cast<size_t>(parent)].push_back(id);
  return id;
}

int CcsTree::parent(int node) const {
  SUBREC_CHECK(node >= 0 && static_cast<size_t>(node) < parents_.size());
  return parents_[static_cast<size_t>(node)];
}

int CcsTree::level(int node) const {
  SUBREC_CHECK(node >= 0 && static_cast<size_t>(node) < levels_.size());
  return levels_[static_cast<size_t>(node)];
}

const std::string& CcsTree::name(int node) const {
  SUBREC_CHECK(node >= 0 && static_cast<size_t>(node) < names_.size());
  return names_[static_cast<size_t>(node)];
}

const std::vector<int>& CcsTree::children(int node) const {
  SUBREC_CHECK(node >= 0 && static_cast<size_t>(node) < children_.size());
  return children_[static_cast<size_t>(node)];
}

std::vector<int> CcsTree::PathFromRoot(int node) const {
  std::vector<int> path;
  for (int n = node; n != -1; n = parent(n)) path.push_back(n);
  std::reverse(path.begin(), path.end());
  return path;
}

double CcsTree::PathDifference(int node_p, int node_q) const {
  const std::vector<int> pp = PathFromRoot(node_p);
  const std::vector<int> pq = PathFromRoot(node_q);
  // Paths share a prefix; every node past the longest common prefix is in
  // the symmetric difference.
  size_t common = 0;
  while (common < pp.size() && common < pq.size() && pp[common] == pq[common])
    ++common;
  double score = 0.0;
  auto add_tail = [&](const std::vector<int>& path) {
    for (size_t i = common; i < path.size(); ++i) {
      const int l = level(path[i]);
      const double w = 1.0 / (1.0 + static_cast<double>(l));
      score += w / std::pow(2.0, static_cast<double>(l));
    }
  };
  add_tail(pp);
  add_tail(pq);
  return score;
}

std::vector<int> CcsTree::Leaves() const {
  std::vector<int> out;
  for (size_t i = 0; i < children_.size(); ++i)
    if (children_[i].empty()) out.push_back(static_cast<int>(i));
  return out;
}

CcsTree BuildUniformTree(const std::vector<int>& branching) {
  CcsTree tree;
  std::vector<int> frontier = {tree.root()};
  for (size_t depth = 0; depth < branching.size(); ++depth) {
    std::vector<int> next;
    for (int node : frontier) {
      for (int c = 0; c < branching[depth]; ++c) {
        next.push_back(tree.AddNode(
            "L" + std::to_string(depth + 1) + "." + std::to_string(c) + "@" +
                std::to_string(node),
            node));
      }
    }
    frontier = std::move(next);
  }
  return tree;
}

}  // namespace subrec::rules
