#ifndef SUBREC_AUTODIFF_TAPE_H_
#define SUBREC_AUTODIFF_TAPE_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "la/matrix.h"

namespace subrec::autodiff {

/// Handle to a node on a Tape. Valid only for the tape that produced it and
/// only until Tape::Reset().
using VarId = size_t;

/// Reverse-mode automatic differentiation over dense matrices.
///
/// Usage: create leaf nodes with Input() (trainable) or Constant() (frozen),
/// compose ops, call Backward() on a 1x1 loss node, then read grad() of the
/// leaves and feed an optimizer. The tape is rebuilt every forward pass
/// (define-by-run); Reset() reuses the node storage.
///
/// All shapes are validated eagerly with SUBREC_CHECK — shape bugs are
/// programmer errors, not recoverable conditions.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Leaf node. If `requires_grad`, gradients are accumulated into it.
  VarId Input(la::Matrix value, bool requires_grad = true);

  /// Leaf node that never receives gradient.
  VarId Constant(la::Matrix value) { return Input(std::move(value), false); }

  // --- ops ------------------------------------------------------------

  VarId Add(VarId a, VarId b);
  VarId Sub(VarId a, VarId b);
  /// Elementwise product.
  VarId Mul(VarId a, VarId b);
  VarId Scale(VarId a, double alpha);
  /// c = a * b (matrix product).
  VarId MatMul(VarId a, VarId b);
  /// c = a * b^T.
  VarId MatMulTransB(VarId a, VarId b);
  /// Adds a 1 x n bias row to every row of a (m x n).
  VarId AddRowBroadcast(VarId a, VarId bias);
  VarId Tanh(VarId a);
  VarId Sigmoid(VarId a);
  VarId Relu(VarId a);
  /// Softmax over each row.
  VarId RowSoftmax(VarId a);
  /// Transposed copy.
  VarId Transpose(VarId a);
  /// Mean over rows: n x d -> 1 x d.
  VarId RowMean(VarId a);
  /// Stacks row-compatible nodes vertically.
  VarId ConcatRows(const std::vector<VarId>& parts);
  /// Concatenates column-wise (all parts share the row count).
  VarId ConcatCols(const std::vector<VarId>& parts);
  /// Sum of all entries -> 1x1.
  VarId Sum(VarId a);
  /// Sum of squared entries -> 1x1 (L2 regularizer building block).
  VarId SumSquares(VarId a);
  /// Mean binary cross-entropy with logits against constant targets
  /// (same shape as `logits`); numerically stable log-sum-exp form -> 1x1.
  VarId SigmoidBce(VarId logits, const la::Matrix& targets);

  // --- access -----------------------------------------------------------

  const la::Matrix& value(VarId id) const;
  /// Gradient accumulated by the last Backward(); zero matrix if the node
  /// was not reached or does not require grad.
  const la::Matrix& grad(VarId id) const;

  /// Runs reverse accumulation from `root` (must be 1x1; seeded with 1).
  void Backward(VarId root);

  /// Number of live nodes.
  size_t size() const { return nodes_.size(); }

  /// Drops all nodes; previously returned VarIds become invalid.
  void Reset();

 private:
  struct Node {
    la::Matrix value;
    la::Matrix grad;
    bool requires_grad = false;
    // Propagates this node's grad into its parents. Empty for leaves.
    std::function<void(Tape*)> backward;
  };

  VarId AddNode(la::Matrix value, bool requires_grad,
                std::function<void(Tape*)> backward);
  Node& node(VarId id);
  /// Adds g into the grad of `id` if it requires grad.
  void Accumulate(VarId id, const la::Matrix& g);

  std::vector<Node> nodes_;
};

}  // namespace subrec::autodiff

#endif  // SUBREC_AUTODIFF_TAPE_H_
