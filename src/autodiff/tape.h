#ifndef SUBREC_AUTODIFF_TAPE_H_
#define SUBREC_AUTODIFF_TAPE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace subrec::autodiff {

/// Handle to a node on a Tape. Valid only for the tape that produced it and
/// only until Tape::Reset().
using VarId = size_t;

/// Process-wide A/B switch used by bench/train_step to measure the
/// allocation-reuse work against the pre-rewrite behavior: when legacy mode
/// is on, TapePool stops recycling tapes (every Acquire builds a fresh
/// one), nn::TapeBinding copies parameter values onto the tape instead of
/// referencing them, NPRec rebuilds its constant leaves per pair instead of
/// reading the per-paper caches, Reset() releases every slab, and
/// Backward() runs through the closure-era path (one heap-allocated
/// type-erased thunk per op node, one materialized temporary per
/// accumulation). Values are unaffected either way — both paths execute the
/// same floating-point sequence — only where the bytes live. Not
/// thread-safe; flip it only between training runs.
void SetTapeLegacyMode(bool on);
bool TapeLegacyMode();

/// Reverse-mode automatic differentiation over dense matrices.
///
/// Usage: create leaf nodes with Input() (trainable) or Constant() (frozen),
/// compose ops, call Backward() on a 1x1 loss node, then read grad() of the
/// leaves and feed an optimizer. The tape is rebuilt every forward pass
/// (define-by-run); Reset() rewinds the node arena without releasing its
/// storage, so the second and later passes of an identical (or smaller)
/// topology perform no heap allocation at all.
///
/// Internals: each node is a compact opcode + operand-slot record —
/// Backward() dispatches a switch over the opcode instead of calling a
/// per-node std::function closure — and node values/grads live in
/// la::Matrix slabs that are capacity-preservingly resized in place on
/// reuse. Gradient accumulation is in-place (axpy-style); the few backward
/// rules that need a real temporary (matmul, bias row-sum) share one
/// pooled scratch matrix. The floating-point sequence is identical to the
/// closure-based tape's, so results are bit-exact.
///
/// All shapes are validated eagerly with SUBREC_CHECK — shape bugs are
/// programmer errors, not recoverable conditions.
class Tape {
 public:
  Tape() = default;
  ~Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Leaf node holding a copy of `value` (in recycled arena storage). If
  /// `requires_grad`, gradients are accumulated into it.
  VarId Input(const la::Matrix& value, bool requires_grad = true);

  /// Leaf node that never receives gradient.
  VarId Constant(const la::Matrix& value) { return Input(value, false); }

  /// Leaf node that reads its value through `value` without copying. The
  /// pointee must outlive every use of this tape's values/grads and must
  /// not change between this call and the last such use. This is how
  /// loop-invariant constants (cached per-paper rows) and parameter
  /// bindings avoid re-uploading a fresh matrix every forward pass.
  VarId InputRef(const la::Matrix* value, bool requires_grad = true);

  /// Gradient-free InputRef.
  VarId ConstantRef(const la::Matrix* value) {
    return InputRef(value, false);
  }

  // --- ops ------------------------------------------------------------

  VarId Add(VarId a, VarId b);
  VarId Sub(VarId a, VarId b);
  /// Elementwise product.
  VarId Mul(VarId a, VarId b);
  VarId Scale(VarId a, double alpha);
  /// c = a * b (matrix product).
  VarId MatMul(VarId a, VarId b);
  /// c = a * b^T.
  VarId MatMulTransB(VarId a, VarId b);
  /// Adds a 1 x n bias row to every row of a (m x n).
  VarId AddRowBroadcast(VarId a, VarId bias);
  VarId Tanh(VarId a);
  VarId Sigmoid(VarId a);
  VarId Relu(VarId a);
  /// Softmax over each row.
  VarId RowSoftmax(VarId a);
  /// Transposed copy.
  VarId Transpose(VarId a);
  /// Mean over rows: n x d -> 1 x d.
  VarId RowMean(VarId a);
  /// Stacks row-compatible nodes vertically.
  VarId ConcatRows(const std::vector<VarId>& parts);
  /// Concatenates column-wise (all parts share the row count).
  VarId ConcatCols(const std::vector<VarId>& parts);
  /// Sum of all entries -> 1x1.
  VarId Sum(VarId a);
  /// Sum of squared entries -> 1x1 (L2 regularizer building block).
  VarId SumSquares(VarId a);
  /// Mean binary cross-entropy with logits against constant targets
  /// (same shape as `logits`); numerically stable log-sum-exp form -> 1x1.
  VarId SigmoidBce(VarId logits, const la::Matrix& targets);

  // --- access -----------------------------------------------------------

  const la::Matrix& value(VarId id) const;
  /// Gradient accumulated by the last Backward(); zero matrix if the node
  /// was not reached or does not require grad.
  const la::Matrix& grad(VarId id) const;

  /// Runs reverse accumulation from `root` (must be 1x1; seeded with 1).
  void Backward(VarId root);

  /// Number of live nodes.
  size_t size() const { return live_nodes_; }

  /// Rewinds the arena: previously returned VarIds become invalid, but
  /// every node slab (value/grad matrices, operand lists, scratch) is kept
  /// for the next forward pass. Also flushes the tape.* obs counters.
  void Reset();

  // --- arena stats ------------------------------------------------------

  /// Heap bytes currently reserved by the arena across node value/grad
  /// slabs, operand slots, the node records themselves and the backward
  /// scratch. Flat across steady-state epochs.
  size_t bytes_reserved() const;
  /// Nodes recorded since construction (across Resets).
  uint64_t nodes_built() const { return nodes_built_; }
  /// Node records whose slab storage was reused after a Reset() instead of
  /// freshly allocated. Positive once the steady state is reached.
  uint64_t slab_reuse_hits() const { return slab_reuse_hits_; }

 private:
  enum class Op : unsigned char {
    kLeaf,
    kAdd,
    kSub,
    kMul,
    kScale,
    kMatMul,
    kMatMulTransB,
    kAddRowBroadcast,
    kTanh,
    kSigmoid,
    kRelu,
    kRowSoftmax,
    kTranspose,
    kRowMean,
    kConcatRows,
    kConcatCols,
    kSum,
    kSumSquares,
    kSigmoidBce,
  };

  struct Node {
    la::Matrix value;  // owned slab; unused when ext is set
    la::Matrix grad;
    const la::Matrix* ext = nullptr;  // external value for Ref leaves
    Op op = Op::kLeaf;
    bool requires_grad = false;
    VarId a = 0;
    VarId b = 0;
    double alpha = 0.0;  // Scale factor
    // Span into operands_ for variadic ops (Concat*).
    uint32_t extra_begin = 0;
    uint32_t extra_count = 0;
  };

  /// Appends (or recycles) a node record and returns its id. The node's
  /// value/grad slabs keep their prior capacity; grad is cleared.
  VarId NewNode(Op op, bool requires_grad, VarId a = 0, VarId b = 0);
  Node& node(VarId id);
  const la::Matrix& val(const Node& n) const {
    return n.ext != nullptr ? *n.ext : n.value;
  }
  /// grad(id) += alpha * g if the node requires grad.
  void AccumulateScaled(VarId id, double alpha, const la::Matrix& g);
  /// grad(id) += g ⊙ v if the node requires grad.
  void AccumulateHadamard(VarId id, const la::Matrix& g, const la::Matrix& v);
  /// Opcode-dispatched reverse rule for node i.
  void BackwardNode(size_t i);
  /// grad(id) += g via a dense axpy if the node requires grad — the
  /// closure-era accumulate, kept verbatim for the legacy benchmark path.
  void LegacyAccumulate(VarId id, const la::Matrix& g);
  /// Reverse rule for node i reproducing the closure tape's per-op
  /// temporaries (same floating-point sequence as BackwardNode, but every
  /// addend is materialized into a fresh matrix first).
  void LegacyBackwardNode(size_t i);
  /// Bump-allocates `parts` into operands_ and stamps the span on `n`.
  void StoreOperands(Node* n, const std::vector<VarId>& parts);
  /// Adds the pending stat deltas to the global tape.* metrics.
  void FlushStats();

  std::vector<Node> nodes_;
  std::vector<VarId> operands_;
  size_t live_nodes_ = 0;
  size_t live_operands_ = 0;
  la::Matrix scratch_;  // backward temporaries (matmul grads, bias row-sum)

  uint64_t nodes_built_ = 0;
  uint64_t slab_reuse_hits_ = 0;
  uint64_t flushed_nodes_built_ = 0;
  uint64_t flushed_slab_reuse_hits_ = 0;
};

}  // namespace subrec::autodiff

#endif  // SUBREC_AUTODIFF_TAPE_H_
