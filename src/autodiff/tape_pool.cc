#include "autodiff/tape_pool.h"

#include <utility>

namespace subrec::autodiff {

std::unique_ptr<Tape> TapePool::Acquire() {
  if (TapeLegacyMode()) return std::make_unique<Tape>();
  {
    common::MutexLock lock(&mu_);
    if (!free_.empty()) {
      std::unique_ptr<Tape> t = std::move(free_.back());
      free_.pop_back();
      return t;
    }
  }
  return std::make_unique<Tape>();
}

void TapePool::Release(std::unique_ptr<Tape> tape) {
  if (tape == nullptr) return;
  if (TapeLegacyMode()) return;  // destroy: legacy behavior has no reuse
  tape->Reset();
  common::MutexLock lock(&mu_);
  free_.push_back(std::move(tape));
}

size_t TapePool::idle() const {
  common::MutexLock lock(&mu_);
  return free_.size();
}

size_t TapePool::bytes_reserved() const {
  common::MutexLock lock(&mu_);
  size_t bytes = 0;
  for (const auto& t : free_) bytes += t->bytes_reserved();
  return bytes;
}

}  // namespace subrec::autodiff
