#ifndef SUBREC_AUTODIFF_GRAD_CHECK_H_
#define SUBREC_AUTODIFF_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "la/matrix.h"

namespace subrec::autodiff {

/// A differentiable scalar function of a set of parameter matrices. When
/// `grads` is non-null the callee must fill it with one gradient matrix per
/// parameter (analytic, e.g. via a Tape).
using ScalarFn = std::function<double(const std::vector<la::Matrix>& params,
                                      std::vector<la::Matrix>* grads)>;

/// Outcome of a finite-difference gradient check.
struct GradCheckResult {
  double max_abs_error = 0.0;
  /// max |analytic - numeric| / max(1, |analytic| + |numeric|).
  double max_rel_error = 0.0;
};

/// Compares analytic gradients of `f` against central finite differences at
/// `params`. Used by tests for every autodiff op and every trainable model.
GradCheckResult CheckGradients(const ScalarFn& f,
                               std::vector<la::Matrix> params,
                               double eps = 1e-5);

}  // namespace subrec::autodiff

#endif  // SUBREC_AUTODIFF_GRAD_CHECK_H_
