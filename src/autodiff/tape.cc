#include "autodiff/tape.h"

#include <cmath>
#include <utility>

#include "la/check_finite.h"
#include "la/ops.h"

namespace subrec::autodiff {

using la::Matrix;

VarId Tape::Input(Matrix value, bool requires_grad) {
  return AddNode(std::move(value), requires_grad, nullptr);
}

VarId Tape::AddNode(Matrix value, bool requires_grad,
                    std::function<void(Tape*)> backward) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

Tape::Node& Tape::node(VarId id) {
  SUBREC_CHECK_LT(id, nodes_.size());
  return nodes_[id];
}

void Tape::Accumulate(VarId id, const Matrix& g) {
  Node& n = node(id);
  if (!n.requires_grad) return;
  SUBREC_CHECK(n.grad.SameShape(g));
  SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
  la::Axpy(1.0, g, n.grad);
}

const Matrix& Tape::value(VarId id) const {
  SUBREC_CHECK_LT(id, nodes_.size());
  return nodes_[id].value;
}

const Matrix& Tape::grad(VarId id) const {
  SUBREC_CHECK_LT(id, nodes_.size());
  return nodes_[id].grad;
}

void Tape::Reset() { nodes_.clear(); }

VarId Tape::Add(VarId a, VarId b) {
  Matrix v = la::Add(value(a), value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [a, b, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    t->Accumulate(a, g);
    t->Accumulate(b, g);
  };
  return out;
}

VarId Tape::Sub(VarId a, VarId b) {
  Matrix v = la::Sub(value(a), value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [a, b, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    t->Accumulate(a, g);
    t->Accumulate(b, la::Scale(g, -1.0));
  };
  return out;
}

VarId Tape::Mul(VarId a, VarId b) {
  Matrix v = la::Hadamard(value(a), value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [a, b, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    t->Accumulate(a, la::Hadamard(g, t->value(b)));
    t->Accumulate(b, la::Hadamard(g, t->value(a)));
  };
  return out;
}

VarId Tape::Scale(VarId a, double alpha) {
  Matrix v = la::Scale(value(a), alpha);
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, alpha, out](Tape* t) {
    t->Accumulate(a, la::Scale(t->nodes_[out].grad, alpha));
  };
  return out;
}

VarId Tape::MatMul(VarId a, VarId b) {
  Matrix v = la::MatMul(value(a), value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [a, b, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    // dA = G * B^T ; dB = A^T * G
    t->Accumulate(a, la::MatMulTransB(g, t->value(b)));
    t->Accumulate(b, la::MatMulTransA(t->value(a), g));
  };
  return out;
}

VarId Tape::MatMulTransB(VarId a, VarId b) {
  Matrix v = la::MatMulTransB(value(a), value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [a, b, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    // c = a b^T  =>  dA = G * B ; dB = G^T * A
    t->Accumulate(a, la::MatMul(g, t->value(b)));
    t->Accumulate(b, la::MatMulTransA(g, t->value(a)));
  };
  return out;
}

VarId Tape::AddRowBroadcast(VarId a, VarId bias) {
  Matrix v = la::AddRowBroadcast(value(a), value(bias));
  bool rg = node(a).requires_grad || node(bias).requires_grad;
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [a, bias, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    t->Accumulate(a, g);
    Matrix gb(1, g.cols());
    for (size_t i = 0; i < g.rows(); ++i)
      for (size_t j = 0; j < g.cols(); ++j) gb(0, j) += g(i, j);
    t->Accumulate(bias, gb);
  };
  return out;
}

VarId Tape::Tanh(VarId a) {
  Matrix v = la::Tanh(value(a));
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    const Matrix& y = t->nodes_[out].value;
    Matrix da = g;
    for (size_t i = 0; i < da.size(); ++i) da[i] *= (1.0 - y[i] * y[i]);
    t->Accumulate(a, da);
  };
  return out;
}

VarId Tape::Sigmoid(VarId a) {
  Matrix v = la::Sigmoid(value(a));
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    const Matrix& y = t->nodes_[out].value;
    Matrix da = g;
    for (size_t i = 0; i < da.size(); ++i) da[i] *= y[i] * (1.0 - y[i]);
    t->Accumulate(a, da);
  };
  return out;
}

VarId Tape::Relu(VarId a) {
  Matrix v = la::Relu(value(a));
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    const Matrix& x = t->value(a);
    Matrix da = g;
    for (size_t i = 0; i < da.size(); ++i) da[i] = x[i] > 0.0 ? da[i] : 0.0;
    t->Accumulate(a, da);
  };
  return out;
}

VarId Tape::RowSoftmax(VarId a) {
  Matrix v = la::RowSoftmax(value(a));
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    const Matrix& y = t->nodes_[out].value;
    Matrix da(g.rows(), g.cols());
    for (size_t i = 0; i < g.rows(); ++i) {
      double dot = 0.0;
      for (size_t j = 0; j < g.cols(); ++j) dot += g(i, j) * y(i, j);
      for (size_t j = 0; j < g.cols(); ++j)
        da(i, j) = y(i, j) * (g(i, j) - dot);
    }
    t->Accumulate(a, da);
  };
  return out;
}

VarId Tape::Transpose(VarId a) {
  Matrix v = la::Transpose(value(a));
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    t->Accumulate(a, la::Transpose(t->nodes_[out].grad));
  };
  return out;
}

VarId Tape::RowMean(VarId a) {
  Matrix v = la::ColMean(value(a));
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    const Matrix& x = t->value(a);
    const double inv = 1.0 / static_cast<double>(x.rows());
    Matrix da(x.rows(), x.cols());
    for (size_t i = 0; i < x.rows(); ++i)
      for (size_t j = 0; j < x.cols(); ++j) da(i, j) = g(0, j) * inv;
    t->Accumulate(a, da);
  };
  return out;
}

VarId Tape::ConcatRows(const std::vector<VarId>& parts) {
  SUBREC_CHECK(!parts.empty());
  size_t rows = 0;
  const size_t cols = value(parts[0]).cols();
  bool rg = false;
  for (VarId p : parts) {
    SUBREC_CHECK_EQ(value(p).cols(), cols);
    rows += value(p).rows();
    rg = rg || node(p).requires_grad;
  }
  Matrix v(rows, cols);
  size_t r = 0;
  for (VarId p : parts) {
    const Matrix& pv = value(p);
    for (size_t i = 0; i < pv.rows(); ++i, ++r)
      for (size_t j = 0; j < cols; ++j) v(r, j) = pv(i, j);
  }
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [parts, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    size_t r = 0;
    for (VarId p : parts) {
      const Matrix& pv = t->value(p);
      Matrix gp(pv.rows(), pv.cols());
      for (size_t i = 0; i < pv.rows(); ++i, ++r)
        for (size_t j = 0; j < pv.cols(); ++j) gp(i, j) = g(r, j);
      t->Accumulate(p, gp);
    }
  };
  return out;
}

VarId Tape::ConcatCols(const std::vector<VarId>& parts) {
  SUBREC_CHECK(!parts.empty());
  const size_t rows = value(parts[0]).rows();
  size_t cols = 0;
  bool rg = false;
  for (VarId p : parts) {
    SUBREC_CHECK_EQ(value(p).rows(), rows);
    cols += value(p).cols();
    rg = rg || node(p).requires_grad;
  }
  Matrix v(rows, cols);
  size_t c = 0;
  for (VarId p : parts) {
    const Matrix& pv = value(p);
    for (size_t j = 0; j < pv.cols(); ++j, ++c)
      for (size_t i = 0; i < rows; ++i) v(i, c) = pv(i, j);
  }
  VarId out = AddNode(std::move(v), rg, nullptr);
  nodes_[out].backward = [parts, out](Tape* t) {
    const Matrix& g = t->nodes_[out].grad;
    size_t c = 0;
    for (VarId p : parts) {
      const Matrix& pv = t->value(p);
      Matrix gp(pv.rows(), pv.cols());
      for (size_t j = 0; j < pv.cols(); ++j, ++c)
        for (size_t i = 0; i < pv.rows(); ++i) gp(i, j) = g(i, c);
      t->Accumulate(p, gp);
    }
  };
  return out;
}

VarId Tape::Sum(VarId a) {
  Matrix v(1, 1);
  v(0, 0) = la::Sum(value(a));
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    const double g = t->nodes_[out].grad(0, 0);
    const Matrix& x = t->value(a);
    t->Accumulate(a, Matrix(x.rows(), x.cols(), g));
  };
  return out;
}

VarId Tape::SumSquares(VarId a) {
  const Matrix& x = value(a);
  Matrix v(1, 1);
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * x[i];
  v(0, 0) = s;
  VarId out = AddNode(std::move(v), node(a).requires_grad, nullptr);
  nodes_[out].backward = [a, out](Tape* t) {
    const double g = t->nodes_[out].grad(0, 0);
    t->Accumulate(a, la::Scale(t->value(a), 2.0 * g));
  };
  return out;
}

VarId Tape::SigmoidBce(VarId logits, const Matrix& targets) {
  const Matrix& x = value(logits);
  SUBREC_CHECK(x.SameShape(targets));
  SUBREC_CHECK_GT(x.size(), 0u);
  // mean over entries of: max(x,0) - x*y + log(1 + exp(-|x|))
  double loss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    loss += std::max(xi, 0.0) - xi * targets[i] +
            std::log1p(std::exp(-std::fabs(xi)));
  }
  Matrix v(1, 1);
  v(0, 0) = loss / static_cast<double>(x.size());
  VarId out = AddNode(std::move(v), node(logits).requires_grad, nullptr);
  Matrix y = targets;
  nodes_[out].backward = [logits, y, out](Tape* t) {
    const double g = t->nodes_[out].grad(0, 0);
    const Matrix& x = t->value(logits);
    const double inv = g / static_cast<double>(x.size());
    Matrix dx(x.rows(), x.cols());
    for (size_t i = 0; i < x.size(); ++i) {
      const double sig = 1.0 / (1.0 + std::exp(-x[i]));
      dx[i] = (sig - y[i]) * inv;
    }
    t->Accumulate(logits, dx);
  };
  return out;
}

void Tape::Backward(VarId root) {
  SUBREC_CHECK_LT(root, nodes_.size());
  SUBREC_CHECK(nodes_[root].value.rows() == 1 &&
               nodes_[root].value.cols() == 1)
      << "Backward root must be a 1x1 loss";
  SUBREC_CHECK_FINITE(nodes_[root].value(0, 0), "autodiff backward root loss");
  // (Re)initialize grads.
  for (Node& n : nodes_) {
    if (n.requires_grad) {
      n.grad = Matrix(n.value.rows(), n.value.cols());
    } else {
      n.grad = Matrix();
    }
  }
  if (!nodes_[root].requires_grad) return;  // nothing to differentiate
  nodes_[root].grad(0, 0) = 1.0;
  for (size_t i = root + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (n.backward && n.requires_grad) n.backward(this);
  }
}

}  // namespace subrec::autodiff
