#include "autodiff/tape.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "la/check_finite.h"
#include "la/ops.h"
#include "obs/metrics.h"

namespace subrec::autodiff {

using la::Matrix;

namespace {
bool g_tape_legacy_mode = false;
}  // namespace

void SetTapeLegacyMode(bool on) {
  g_tape_legacy_mode = on;
  // The pre-rewrite baseline also means the pre-rewrite matmul path:
  // AVX2 kernel ceiling and fresh transposed copies (la layer can't see
  // this flag, so mirror it down).
  la::SetLegacyKernelMode(on);
}
bool TapeLegacyMode() { return g_tape_legacy_mode; }

Tape::~Tape() { FlushStats(); }

VarId Tape::NewNode(Op op, bool requires_grad, VarId a, VarId b) {
  ++nodes_built_;
  if (live_nodes_ < nodes_.size()) {
    // Recycle the record left behind by a previous pass: its value/grad
    // matrices keep their heap blocks, so filling a same-shaped result is
    // allocation-free.
    Node& n = nodes_[live_nodes_];
    if (n.value.capacity() > 0 || n.grad.capacity() > 0) ++slab_reuse_hits_;
    n.value.ClearKeepCapacity();
    n.grad.ClearKeepCapacity();
    n.ext = nullptr;
    n.op = op;
    n.requires_grad = requires_grad;
    n.a = a;
    n.b = b;
    n.alpha = 0.0;
    n.extra_begin = 0;
    n.extra_count = 0;
  } else {
    nodes_.emplace_back();
    Node& n = nodes_.back();
    n.op = op;
    n.requires_grad = requires_grad;
    n.a = a;
    n.b = b;
  }
  return live_nodes_++;
}

Tape::Node& Tape::node(VarId id) {
  SUBREC_CHECK_LT(id, live_nodes_);
  return nodes_[id];
}

void Tape::StoreOperands(Node* n, const std::vector<VarId>& parts) {
  n->extra_begin = static_cast<uint32_t>(live_operands_);
  n->extra_count = static_cast<uint32_t>(parts.size());
  if (live_operands_ + parts.size() <= operands_.size()) {
    std::copy(parts.begin(), parts.end(), operands_.begin() + live_operands_);
  } else {
    operands_.resize(live_operands_);
    operands_.insert(operands_.end(), parts.begin(), parts.end());
  }
  live_operands_ += parts.size();
}

VarId Tape::Input(const Matrix& value, bool requires_grad) {
  VarId id = NewNode(Op::kLeaf, requires_grad);
  nodes_[id].value.CopyFrom(value);
  return id;
}

VarId Tape::InputRef(const Matrix* value, bool requires_grad) {
  SUBREC_CHECK(value != nullptr);
  VarId id = NewNode(Op::kLeaf, requires_grad);
  nodes_[id].ext = value;
  return id;
}

void Tape::AccumulateScaled(VarId id, double alpha, const Matrix& g) {
  Node& n = node(id);
  if (!n.requires_grad) return;
  SUBREC_CHECK(n.grad.SameShape(g));
  SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
  double* a = n.grad.data();
  const double* b = g.data();
  const size_t m = n.grad.size();
  for (size_t k = 0; k < m; ++k) a[k] += alpha * b[k];
}

void Tape::AccumulateHadamard(VarId id, const Matrix& g, const Matrix& v) {
  Node& n = node(id);
  if (!n.requires_grad) return;
  SUBREC_CHECK(n.grad.SameShape(g));
  SUBREC_DCHECK(g.SameShape(v));
  SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
  double* a = n.grad.data();
  const double* gp = g.data();
  const double* vp = v.data();
  const size_t m = n.grad.size();
  for (size_t k = 0; k < m; ++k) a[k] += gp[k] * vp[k];
}

const Matrix& Tape::value(VarId id) const {
  SUBREC_CHECK_LT(id, live_nodes_);
  const Node& n = nodes_[id];
  return n.ext != nullptr ? *n.ext : n.value;
}

const Matrix& Tape::grad(VarId id) const {
  SUBREC_CHECK_LT(id, live_nodes_);
  return nodes_[id].grad;
}

void Tape::Reset() {
  if (TapeLegacyMode()) {
    // The closure tape's Reset() destroyed every node (and with it every
    // value/grad slab); reproduce that so legacy benchmark runs pay the
    // same reallocation cost on the next pass.
    nodes_.clear();
    operands_.clear();
    scratch_ = Matrix();
  }
  live_nodes_ = 0;
  live_operands_ = 0;
  FlushStats();
}

size_t Tape::bytes_reserved() const {
  size_t bytes = nodes_.capacity() * sizeof(Node) +
                 operands_.capacity() * sizeof(VarId) +
                 scratch_.capacity() * sizeof(double);
  for (const Node& n : nodes_) {
    bytes += (n.value.capacity() + n.grad.capacity()) * sizeof(double);
  }
  return bytes;
}

void Tape::FlushStats() {
  namespace obs = subrec::obs;
  static obs::Counter* built =
      obs::MetricsRegistry::Global().GetCounter("tape.nodes_built");
  static obs::Counter* reuse =
      obs::MetricsRegistry::Global().GetCounter("tape.slab_reuse_hits");
  static obs::Gauge* arena =
      obs::MetricsRegistry::Global().GetGauge("tape.arena_bytes");
  if (nodes_built_ != flushed_nodes_built_) {
    built->Increment(static_cast<int64_t>(nodes_built_ - flushed_nodes_built_));
    flushed_nodes_built_ = nodes_built_;
  }
  if (slab_reuse_hits_ != flushed_slab_reuse_hits_) {
    reuse->Increment(
        static_cast<int64_t>(slab_reuse_hits_ - flushed_slab_reuse_hits_));
    flushed_slab_reuse_hits_ = slab_reuse_hits_;
  }
  // Gauge semantics: footprint of the most recently reset tape. Steady
  // state shows a flat value because every pass reuses the same slabs.
  arena->Set(static_cast<double>(bytes_reserved()));
}

// --- op construction ---------------------------------------------------
//
// Pattern: read the `requires_grad` bits first, then NewNode (which may
// reallocate nodes_), and only then take matrix references for the *Into
// call — references into nodes_ obtained before NewNode would dangle.

VarId Tape::Add(VarId a, VarId b) {
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = NewNode(Op::kAdd, rg, a, b);
  la::AddInto(value(a), value(b), &nodes_[out].value);
  return out;
}

VarId Tape::Sub(VarId a, VarId b) {
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = NewNode(Op::kSub, rg, a, b);
  la::SubInto(value(a), value(b), &nodes_[out].value);
  return out;
}

VarId Tape::Mul(VarId a, VarId b) {
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = NewNode(Op::kMul, rg, a, b);
  la::HadamardInto(value(a), value(b), &nodes_[out].value);
  return out;
}

VarId Tape::Scale(VarId a, double alpha) {
  VarId out = NewNode(Op::kScale, node(a).requires_grad, a);
  nodes_[out].alpha = alpha;
  la::ScaleInto(value(a), alpha, &nodes_[out].value);
  return out;
}

VarId Tape::MatMul(VarId a, VarId b) {
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = NewNode(Op::kMatMul, rg, a, b);
  la::MatMulInto(value(a), value(b), &nodes_[out].value);
  return out;
}

VarId Tape::MatMulTransB(VarId a, VarId b) {
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  VarId out = NewNode(Op::kMatMulTransB, rg, a, b);
  la::MatMulTransBInto(value(a), value(b), &nodes_[out].value);
  return out;
}

VarId Tape::AddRowBroadcast(VarId a, VarId bias) {
  const bool rg = node(a).requires_grad || node(bias).requires_grad;
  VarId out = NewNode(Op::kAddRowBroadcast, rg, a, bias);
  la::AddRowBroadcastInto(value(a), value(bias), &nodes_[out].value);
  return out;
}

VarId Tape::Tanh(VarId a) {
  VarId out = NewNode(Op::kTanh, node(a).requires_grad, a);
  la::TanhInto(value(a), &nodes_[out].value);
  return out;
}

VarId Tape::Sigmoid(VarId a) {
  VarId out = NewNode(Op::kSigmoid, node(a).requires_grad, a);
  la::SigmoidInto(value(a), &nodes_[out].value);
  return out;
}

VarId Tape::Relu(VarId a) {
  VarId out = NewNode(Op::kRelu, node(a).requires_grad, a);
  la::ReluInto(value(a), &nodes_[out].value);
  return out;
}

VarId Tape::RowSoftmax(VarId a) {
  VarId out = NewNode(Op::kRowSoftmax, node(a).requires_grad, a);
  la::RowSoftmaxInto(value(a), &nodes_[out].value);
  return out;
}

VarId Tape::Transpose(VarId a) {
  VarId out = NewNode(Op::kTranspose, node(a).requires_grad, a);
  la::TransposeInto(value(a), &nodes_[out].value);
  return out;
}

VarId Tape::RowMean(VarId a) {
  VarId out = NewNode(Op::kRowMean, node(a).requires_grad, a);
  la::ColMeanInto(value(a), &nodes_[out].value);
  return out;
}

VarId Tape::ConcatRows(const std::vector<VarId>& parts) {
  SUBREC_CHECK(!parts.empty());
  size_t rows = 0;
  const size_t cols = value(parts[0]).cols();
  bool rg = false;
  for (VarId p : parts) {
    SUBREC_CHECK_EQ(value(p).cols(), cols);
    rows += value(p).rows();
    rg = rg || node(p).requires_grad;
  }
  VarId out = NewNode(Op::kConcatRows, rg);
  StoreOperands(&nodes_[out], parts);
  Matrix& v = nodes_[out].value;
  v.ResizeZero(rows, cols);
  size_t r = 0;
  for (VarId p : parts) {
    const Matrix& pv = value(p);
    for (size_t i = 0; i < pv.rows(); ++i, ++r)
      for (size_t j = 0; j < cols; ++j) v(r, j) = pv(i, j);
  }
  return out;
}

VarId Tape::ConcatCols(const std::vector<VarId>& parts) {
  SUBREC_CHECK(!parts.empty());
  const size_t rows = value(parts[0]).rows();
  size_t cols = 0;
  bool rg = false;
  for (VarId p : parts) {
    SUBREC_CHECK_EQ(value(p).rows(), rows);
    cols += value(p).cols();
    rg = rg || node(p).requires_grad;
  }
  VarId out = NewNode(Op::kConcatCols, rg);
  StoreOperands(&nodes_[out], parts);
  Matrix& v = nodes_[out].value;
  v.ResizeZero(rows, cols);
  size_t c = 0;
  for (VarId p : parts) {
    const Matrix& pv = value(p);
    for (size_t j = 0; j < pv.cols(); ++j, ++c)
      for (size_t i = 0; i < rows; ++i) v(i, c) = pv(i, j);
  }
  return out;
}

VarId Tape::Sum(VarId a) {
  VarId out = NewNode(Op::kSum, node(a).requires_grad, a);
  Matrix& v = nodes_[out].value;
  v.ResizeZero(1, 1);
  v(0, 0) = la::Sum(value(a));
  return out;
}

VarId Tape::SumSquares(VarId a) {
  VarId out = NewNode(Op::kSumSquares, node(a).requires_grad, a);
  const Matrix& x = value(a);
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * x[i];
  Matrix& v = nodes_[out].value;
  v.ResizeZero(1, 1);
  v(0, 0) = s;
  return out;
}

VarId Tape::SigmoidBce(VarId logits, const Matrix& targets) {
  SUBREC_CHECK(value(logits).SameShape(targets));
  SUBREC_CHECK_GT(value(logits).size(), 0u);
  // The targets live on the tape as a hidden gradient-free leaf so the
  // backward rule can reach them without a captured copy.
  VarId t = Input(targets, /*requires_grad=*/false);
  VarId out = NewNode(Op::kSigmoidBce, node(logits).requires_grad, logits, t);
  const Matrix& x = value(logits);
  const Matrix& y = value(t);
  // mean over entries of: max(x,0) - x*y + log(1 + exp(-|x|))
  double loss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    loss += std::max(xi, 0.0) - xi * y[i] +
            std::log1p(std::exp(-std::fabs(xi)));
  }
  Matrix& v = nodes_[out].value;
  v.ResizeZero(1, 1);
  v(0, 0) = loss / static_cast<double>(x.size());
  return out;
}

// --- backward ----------------------------------------------------------

void Tape::BackwardNode(size_t i) {
  Node& n = nodes_[i];
  const Matrix& g = n.grad;
  switch (n.op) {
    case Op::kLeaf:
      return;
    case Op::kAdd:
      AccumulateScaled(n.a, 1.0, g);
      AccumulateScaled(n.b, 1.0, g);
      return;
    case Op::kSub:
      AccumulateScaled(n.a, 1.0, g);
      AccumulateScaled(n.b, -1.0, g);
      return;
    case Op::kMul:
      AccumulateHadamard(n.a, g, value(n.b));
      AccumulateHadamard(n.b, g, value(n.a));
      return;
    case Op::kScale:
      AccumulateScaled(n.a, n.alpha, g);
      return;
    case Op::kMatMul:
      // dA = G * B^T ; dB = A^T * G. Computed into the shared scratch and
      // added in one axpy — the same temp-then-single-add rounding as the
      // closure tape, without a fresh allocation in steady state.
      if (nodes_[n.a].requires_grad) {
        la::MatMulTransBInto(g, value(n.b), &scratch_);
        AccumulateScaled(n.a, 1.0, scratch_);
      }
      if (nodes_[n.b].requires_grad) {
        la::MatMulTransAInto(value(n.a), g, &scratch_);
        AccumulateScaled(n.b, 1.0, scratch_);
      }
      return;
    case Op::kMatMulTransB:
      // c = a b^T  =>  dA = G * B ; dB = G^T * A
      if (nodes_[n.a].requires_grad) {
        la::MatMulInto(g, value(n.b), &scratch_);
        AccumulateScaled(n.a, 1.0, scratch_);
      }
      if (nodes_[n.b].requires_grad) {
        la::MatMulTransAInto(g, value(n.a), &scratch_);
        AccumulateScaled(n.b, 1.0, scratch_);
      }
      return;
    case Op::kAddRowBroadcast: {
      AccumulateScaled(n.a, 1.0, g);
      if (nodes_[n.b].requires_grad) {
        scratch_.ResizeZero(1, g.cols());
        for (size_t r = 0; r < g.rows(); ++r)
          for (size_t j = 0; j < g.cols(); ++j) scratch_(0, j) += g(r, j);
        AccumulateScaled(n.b, 1.0, scratch_);
      }
      return;
    }
    case Op::kTanh: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      SUBREC_CHECK(an.grad.SameShape(g));
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      const Matrix& y = n.value;
      double* da = an.grad.data();
      for (size_t k = 0; k < g.size(); ++k)
        da[k] += g[k] * (1.0 - y[k] * y[k]);
      return;
    }
    case Op::kSigmoid: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      SUBREC_CHECK(an.grad.SameShape(g));
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      const Matrix& y = n.value;
      double* da = an.grad.data();
      for (size_t k = 0; k < g.size(); ++k)
        da[k] += g[k] * (y[k] * (1.0 - y[k]));
      return;
    }
    case Op::kRelu: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      SUBREC_CHECK(an.grad.SameShape(g));
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      const Matrix& x = value(n.a);
      double* da = an.grad.data();
      // Adds an explicit 0.0 on the inactive side (instead of skipping the
      // store) so a -0.0 in the accumulator flips to +0.0 exactly as the
      // closure tape's dense axpy did.
      for (size_t k = 0; k < g.size(); ++k)
        da[k] += x[k] > 0.0 ? g[k] : 0.0;
      return;
    }
    case Op::kRowSoftmax: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      SUBREC_CHECK(an.grad.SameShape(g));
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      const Matrix& y = n.value;
      Matrix& da = an.grad;
      for (size_t r = 0; r < g.rows(); ++r) {
        double dot = 0.0;
        for (size_t j = 0; j < g.cols(); ++j) dot += g(r, j) * y(r, j);
        for (size_t j = 0; j < g.cols(); ++j)
          da(r, j) += y(r, j) * (g(r, j) - dot);
      }
      return;
    }
    case Op::kTranspose: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      Matrix& da = an.grad;
      SUBREC_CHECK(da.rows() == g.cols() && da.cols() == g.rows());
      for (size_t r = 0; r < g.rows(); ++r)
        for (size_t j = 0; j < g.cols(); ++j) da(j, r) += g(r, j);
      return;
    }
    case Op::kRowMean: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      Matrix& da = an.grad;
      const double inv = 1.0 / static_cast<double>(da.rows());
      for (size_t r = 0; r < da.rows(); ++r)
        for (size_t j = 0; j < da.cols(); ++j) da(r, j) += g(0, j) * inv;
      return;
    }
    case Op::kConcatRows: {
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      size_t r = 0;
      for (uint32_t s = 0; s < n.extra_count; ++s) {
        const VarId p = operands_[n.extra_begin + s];
        Node& pn = node(p);
        const Matrix& pv = value(p);
        if (!pn.requires_grad) {
          r += pv.rows();
          continue;
        }
        Matrix& gp = pn.grad;
        for (size_t i = 0; i < pv.rows(); ++i, ++r)
          for (size_t j = 0; j < pv.cols(); ++j) gp(i, j) += g(r, j);
      }
      return;
    }
    case Op::kConcatCols: {
      SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
      size_t c = 0;
      for (uint32_t s = 0; s < n.extra_count; ++s) {
        const VarId p = operands_[n.extra_begin + s];
        Node& pn = node(p);
        const Matrix& pv = value(p);
        if (!pn.requires_grad) {
          c += pv.cols();
          continue;
        }
        Matrix& gp = pn.grad;
        for (size_t j = 0; j < pv.cols(); ++j, ++c)
          for (size_t i = 0; i < pv.rows(); ++i) gp(i, j) += g(i, c);
      }
      return;
    }
    case Op::kSum: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      const double gs = g(0, 0);
      SUBREC_CHECK_FINITE(gs, "autodiff backward gradient");
      double* da = an.grad.data();
      for (size_t k = 0; k < an.grad.size(); ++k) da[k] += gs;
      return;
    }
    case Op::kSumSquares:
      AccumulateScaled(n.a, 2.0 * g(0, 0), value(n.a));
      return;
    case Op::kSigmoidBce: {
      Node& an = node(n.a);
      if (!an.requires_grad) return;
      const double gs = g(0, 0);
      SUBREC_CHECK_FINITE(gs, "autodiff backward gradient");
      const Matrix& x = value(n.a);
      const Matrix& y = value(n.b);
      const double inv = gs / static_cast<double>(x.size());
      double* da = an.grad.data();
      for (size_t k = 0; k < x.size(); ++k) {
        const double sig = 1.0 / (1.0 + std::exp(-x[k]));
        da[k] += (sig - y[k]) * inv;
      }
      return;
    }
  }
}

void Tape::LegacyAccumulate(VarId id, const Matrix& g) {
  Node& n = node(id);
  if (!n.requires_grad) return;
  SUBREC_CHECK(n.grad.SameShape(g));
  SUBREC_CHECK_FINITE(g, "autodiff backward gradient");
  la::Axpy(1.0, g, n.grad);
}

void Tape::LegacyBackwardNode(size_t i) {
  Node& n = nodes_[i];
  const Matrix& g = n.grad;
  switch (n.op) {
    case Op::kLeaf:
      return;
    case Op::kAdd:
      LegacyAccumulate(n.a, g);
      LegacyAccumulate(n.b, g);
      return;
    case Op::kSub:
      LegacyAccumulate(n.a, g);
      LegacyAccumulate(n.b, la::Scale(g, -1.0));
      return;
    case Op::kMul:
      LegacyAccumulate(n.a, la::Hadamard(g, value(n.b)));
      LegacyAccumulate(n.b, la::Hadamard(g, value(n.a)));
      return;
    case Op::kScale:
      LegacyAccumulate(n.a, la::Scale(g, n.alpha));
      return;
    case Op::kMatMul:
      LegacyAccumulate(n.a, la::MatMulTransB(g, value(n.b)));
      LegacyAccumulate(n.b, la::MatMulTransA(value(n.a), g));
      return;
    case Op::kMatMulTransB:
      LegacyAccumulate(n.a, la::MatMul(g, value(n.b)));
      LegacyAccumulate(n.b, la::MatMulTransA(g, value(n.a)));
      return;
    case Op::kAddRowBroadcast: {
      LegacyAccumulate(n.a, g);
      Matrix gb(1, g.cols());
      for (size_t r = 0; r < g.rows(); ++r)
        for (size_t j = 0; j < g.cols(); ++j) gb(0, j) += g(r, j);
      LegacyAccumulate(n.b, gb);
      return;
    }
    case Op::kTanh: {
      const Matrix& y = n.value;
      Matrix da = g;
      for (size_t k = 0; k < da.size(); ++k) da[k] *= (1.0 - y[k] * y[k]);
      LegacyAccumulate(n.a, da);
      return;
    }
    case Op::kSigmoid: {
      const Matrix& y = n.value;
      Matrix da = g;
      for (size_t k = 0; k < da.size(); ++k) da[k] *= y[k] * (1.0 - y[k]);
      LegacyAccumulate(n.a, da);
      return;
    }
    case Op::kRelu: {
      const Matrix& x = value(n.a);
      Matrix da = g;
      for (size_t k = 0; k < da.size(); ++k)
        da[k] = x[k] > 0.0 ? da[k] : 0.0;
      LegacyAccumulate(n.a, da);
      return;
    }
    case Op::kRowSoftmax: {
      const Matrix& y = n.value;
      Matrix da(g.rows(), g.cols());
      for (size_t r = 0; r < g.rows(); ++r) {
        double dot = 0.0;
        for (size_t j = 0; j < g.cols(); ++j) dot += g(r, j) * y(r, j);
        for (size_t j = 0; j < g.cols(); ++j)
          da(r, j) = y(r, j) * (g(r, j) - dot);
      }
      LegacyAccumulate(n.a, da);
      return;
    }
    case Op::kTranspose:
      LegacyAccumulate(n.a, la::Transpose(g));
      return;
    case Op::kRowMean: {
      const Matrix& x = value(n.a);
      const double inv = 1.0 / static_cast<double>(x.rows());
      Matrix da(x.rows(), x.cols());
      for (size_t r = 0; r < x.rows(); ++r)
        for (size_t j = 0; j < x.cols(); ++j) da(r, j) = g(0, j) * inv;
      LegacyAccumulate(n.a, da);
      return;
    }
    case Op::kConcatRows: {
      size_t r = 0;
      for (uint32_t s = 0; s < n.extra_count; ++s) {
        const VarId p = operands_[n.extra_begin + s];
        const Matrix& pv = value(p);
        Matrix gp(pv.rows(), pv.cols());
        for (size_t q = 0; q < pv.rows(); ++q, ++r)
          for (size_t j = 0; j < pv.cols(); ++j) gp(q, j) = g(r, j);
        LegacyAccumulate(p, gp);
      }
      return;
    }
    case Op::kConcatCols: {
      size_t c = 0;
      for (uint32_t s = 0; s < n.extra_count; ++s) {
        const VarId p = operands_[n.extra_begin + s];
        const Matrix& pv = value(p);
        Matrix gp(pv.rows(), pv.cols());
        for (size_t j = 0; j < pv.cols(); ++j, ++c)
          for (size_t q = 0; q < pv.rows(); ++q) gp(q, j) = g(q, c);
        LegacyAccumulate(p, gp);
      }
      return;
    }
    case Op::kSum: {
      const Matrix& x = value(n.a);
      LegacyAccumulate(n.a, Matrix(x.rows(), x.cols(), g(0, 0)));
      return;
    }
    case Op::kSumSquares:
      LegacyAccumulate(n.a, la::Scale(value(n.a), 2.0 * g(0, 0)));
      return;
    case Op::kSigmoidBce: {
      const double gs = g(0, 0);
      const Matrix& x = value(n.a);
      const Matrix& y = value(n.b);
      const double inv = gs / static_cast<double>(x.size());
      Matrix dx(x.rows(), x.cols());
      for (size_t k = 0; k < x.size(); ++k) {
        const double sig = 1.0 / (1.0 + std::exp(-x[k]));
        dx[k] = (sig - y[k]) * inv;
      }
      LegacyAccumulate(n.a, dx);
      return;
    }
  }
}

void Tape::Backward(VarId root) {
  SUBREC_CHECK_LT(root, live_nodes_);
  const la::Matrix& rv = value(root);
  SUBREC_CHECK(rv.rows() == 1 && rv.cols() == 1)
      << "Backward root must be a 1x1 loss";
  SUBREC_CHECK_FINITE(rv(0, 0), "autodiff backward root loss");
  if (TapeLegacyMode()) {
    // Closure-era sweep for the train_step benchmark baseline: fresh grad
    // matrices, one heap-allocated type-erased thunk per op node (the
    // capture exceeds std::function's small-buffer size, exactly like the
    // old [a, b, out] captures), and indirect dispatch through it. The
    // arithmetic inside LegacyBackwardNode is the same sequence
    // BackwardNode runs, so results stay bit-identical.
    for (size_t i = 0; i < live_nodes_; ++i) {
      Node& n = nodes_[i];
      const Matrix& v = n.ext != nullptr ? *n.ext : n.value;
      n.grad = n.requires_grad ? Matrix(v.rows(), v.cols()) : Matrix();
    }
    if (!nodes_[root].requires_grad) return;
    nodes_[root].grad(0, 0) = 1.0;
    std::vector<std::function<void(Tape*)>> thunks(live_nodes_);
    for (size_t i = 0; i < live_nodes_; ++i) {
      const Node& n = nodes_[i];
      switch (n.op) {
        case Op::kLeaf:
          break;
        case Op::kTanh:
        case Op::kSigmoid:
        case Op::kRelu:
        case Op::kRowSoftmax:
        case Op::kTranspose:
        case Op::kRowMean:
        case Op::kSum:
        case Op::kSumSquares: {
          // Old unary closures captured [a, out] — 16 bytes, inside
          // std::function's small buffer, so no heap allocation here.
          const VarId a = n.a;
          thunks[i] = [i, a](Tape* t) {
            (void)a;
            t->LegacyBackwardNode(i);
          };
          break;
        }
        case Op::kConcatRows:
        case Op::kConcatCols: {
          // Old concat closures captured the parts vector by value: one
          // heap block for the closure plus one for the vector copy.
          std::vector<VarId> parts(
              operands_.begin() + n.extra_begin,
              operands_.begin() + n.extra_begin + n.extra_count);
          thunks[i] = [i, parts](Tape* t) {
            (void)parts;
            t->LegacyBackwardNode(i);
          };
          break;
        }
        default: {
          // Binary/scale closures captured [a, b, out] — 24 bytes, past
          // the small buffer, so one heap allocation per node.
          const VarId a = n.a;
          const VarId b = n.b;
          thunks[i] = [i, a, b](Tape* t) {
            (void)a;
            (void)b;
            t->LegacyBackwardNode(i);
          };
          break;
        }
      }
    }
    for (size_t i = root + 1; i-- > 0;) {
      if (thunks[i] && nodes_[i].requires_grad) thunks[i](this);
    }
    return;
  }
  // (Re)initialize grads in place — slabs persist across Backward calls.
  for (size_t i = 0; i < live_nodes_; ++i) {
    Node& n = nodes_[i];
    if (n.requires_grad) {
      const Matrix& v = n.ext != nullptr ? *n.ext : n.value;
      n.grad.ResizeZero(v.rows(), v.cols());
    } else {
      n.grad.ClearKeepCapacity();
    }
  }
  if (!nodes_[root].requires_grad) return;  // nothing to differentiate
  nodes_[root].grad(0, 0) = 1.0;
  for (size_t i = root + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (n.op != Op::kLeaf && n.requires_grad) BackwardNode(i);
  }
}

}  // namespace subrec::autodiff
