#ifndef SUBREC_AUTODIFF_TAPE_POOL_H_
#define SUBREC_AUTODIFF_TAPE_POOL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "autodiff/tape.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec::autodiff {

/// Recycles Tape objects across the items of a training loop so each
/// worker thread reuses a warmed-up node arena instead of constructing
/// (and heap-populating) a fresh tape per pair/triplet.
///
/// Usage pattern inside a batch-parallel trainer:
///
///   TapePool pool;
///   par::ParallelFor(items, 1, [&](size_t i, size_t) {
///     work[i].tape = pool.Acquire();        // arena from a prior item
///     ... build forward graph, Backward ...
///   });
///   for (auto& w : work) {                   // serial gradient pulls
///     ... read grads ...
///     pool.Release(std::move(w.tape));       // Reset + return to pool
///   }
///
/// Acquire/Release are mutex-guarded (they are off the hot path — each
/// guards an entire tape build), so the pool may be shared freely across
/// the worker threads of one trainer. Determinism is unaffected: which
/// physical tape an item lands on changes only where bytes live, never
/// the floating-point schedule.
///
/// Under TapeLegacyMode() the pool deliberately stops recycling (fresh
/// tape per Acquire, Release destroys) so bench/train_step can measure
/// the pre-arena behavior in the same binary.
class TapePool {
 public:
  TapePool() = default;
  TapePool(const TapePool&) = delete;
  TapePool& operator=(const TapePool&) = delete;

  /// Returns a reset tape — recycled if one is available, fresh otherwise.
  std::unique_ptr<Tape> Acquire();

  /// Resets `tape` and returns it to the free list. Null is ignored.
  void Release(std::unique_ptr<Tape> tape);

  /// Tapes currently idle in the pool.
  size_t idle() const;

  /// Heap bytes reserved across idle tapes' arenas (diagnostic; call when
  /// all tapes have been released).
  size_t bytes_reserved() const;

 private:
  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<Tape>> free_ SUBREC_GUARDED_BY(mu_);
};

}  // namespace subrec::autodiff

#endif  // SUBREC_AUTODIFF_TAPE_POOL_H_
