#include "autodiff/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace subrec::autodiff {

GradCheckResult CheckGradients(const ScalarFn& f,
                               std::vector<la::Matrix> params, double eps) {
  std::vector<la::Matrix> analytic;
  f(params, &analytic);
  SUBREC_CHECK_EQ(analytic.size(), params.size());

  GradCheckResult result;
  for (size_t p = 0; p < params.size(); ++p) {
    SUBREC_CHECK(analytic[p].SameShape(params[p]));
    for (size_t i = 0; i < params[p].size(); ++i) {
      const double saved = params[p][i];
      params[p][i] = saved + eps;
      const double fp = f(params, nullptr);
      params[p][i] = saved - eps;
      const double fm = f(params, nullptr);
      params[p][i] = saved;
      const double numeric = (fp - fm) / (2.0 * eps);
      const double a = analytic[p][i];
      const double abs_err = std::fabs(a - numeric);
      const double rel_err =
          abs_err / std::max(1.0, std::fabs(a) + std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
    }
  }
  return result;
}

}  // namespace subrec::autodiff
