#ifndef SUBREC_TEXT_HASHED_NGRAM_ENCODER_H_
#define SUBREC_TEXT_HASHED_NGRAM_ENCODER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "text/sentence_encoder.h"

namespace subrec::text {

/// Options for HashedNgramEncoder.
struct HashedNgramEncoderOptions {
  /// Output dimension.
  size_t dim = 96;
  /// Also hash adjacent-token bigrams (adds word-order signal).
  bool use_bigrams = true;
  /// Drop stopwords before hashing.
  bool drop_stopwords = true;
  /// log(1+tf) bucket scaling instead of raw counts.
  bool sublinear_tf = true;
  /// Salt mixed into every hash so two encoders can be decorrelated.
  uint64_t seed = 17;
};

/// Deterministic signed feature-hashing sentence encoder — the library's
/// stand-in for a frozen pretrained text encoder. Tokens (and optionally
/// bigrams) are hashed to a signed bucket; the bucket histogram is
/// L2-normalized. Lexically similar sentences land close in cosine space,
/// which is the only contract the downstream twin network relies on.
class HashedNgramEncoder final : public SentenceEncoder {
 public:
  explicit HashedNgramEncoder(HashedNgramEncoderOptions options = {});

  size_t dim() const override { return options_.dim; }
  std::vector<double> Encode(const std::string& sentence) const override;

  const HashedNgramEncoderOptions& options() const { return options_; }

 private:
  void AddFeature(const std::string& feature, std::vector<double>& acc) const;

  HashedNgramEncoderOptions options_;
};

}  // namespace subrec::text

#endif  // SUBREC_TEXT_HASHED_NGRAM_ENCODER_H_
