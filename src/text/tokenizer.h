#ifndef SUBREC_TEXT_TOKENIZER_H_
#define SUBREC_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace subrec::text {

/// Lowercases and splits `s` into alphanumeric tokens (everything else is a
/// separator). The one tokenizer used across the library so all components
/// agree on token boundaries.
std::vector<std::string> Tokenize(std::string_view s);

/// True for a small closed set of English function words. Encoders may drop
/// stopwords to sharpen lexical signal.
bool IsStopword(std::string_view token);

/// Tokenize() minus stopwords.
std::vector<std::string> TokenizeNoStopwords(std::string_view s);

/// Splits abstract text into sentences on '.', '!', '?' boundaries,
/// dropping empty fragments. (Synthetic abstracts use '.'-terminated
/// sentences, so this is exact for generated data.)
std::vector<std::string> SplitSentences(std::string_view abstract_text);

}  // namespace subrec::text

#endif  // SUBREC_TEXT_TOKENIZER_H_
