#include "text/word2vec.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "text/row_overlay.h"

namespace subrec::text {
namespace {

double FastSigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

/// Contiguous sentence span trained as one unit. The spans are cut from
/// token counts alone, so the plan — and with it every chunk's RNG stream
/// and learning-rate schedule — is a fixed function of the corpus.
struct SgdChunk {
  size_t first = 0;          // first sentence (inclusive)
  size_t last = 0;           // last sentence (exclusive)
  int64_t token_offset = 0;  // corpus tokens before this chunk
};

constexpr int64_t kChunkTokens = 2048;

std::vector<SgdChunk> PlanChunks(const std::vector<std::vector<int>>& ids) {
  std::vector<SgdChunk> chunks;
  size_t first = 0;
  int64_t offset = 0, count = 0;
  for (size_t s = 0; s < ids.size(); ++s) {
    count += static_cast<int64_t>(ids[s].size());
    if (count >= kChunkTokens || s + 1 == ids.size()) {
      chunks.push_back({first, s + 1, offset});
      offset += count;
      first = s + 1;
      count = 0;
    }
  }
  return chunks;
}

uint64_t ChunkSeed(uint64_t seed, int epoch, size_t num_chunks, size_t chunk) {
  // Golden-ratio spacing keeps per-(epoch, chunk) streams disjoint.
  return seed + 0x9E3779B97F4A7C15ULL *
                    (static_cast<uint64_t>(epoch) * num_chunks + chunk + 1);
}

}  // namespace

Word2Vec::Word2Vec(Word2VecOptions options) : options_(options) {
  SUBREC_CHECK_GT(options_.dim, 0u);
  SUBREC_CHECK_GT(options_.epochs, 0);
}

Status Word2Vec::Train(const std::vector<std::vector<std::string>>& sentences) {
  if (sentences.empty())
    return Status::InvalidArgument("Word2Vec::Train: empty corpus");
  vocab_ = Vocabulary();
  vocab_.AddAll(sentences);
  vocab_.Prune(options_.min_count);
  if (vocab_.size() == 0)
    return Status::InvalidArgument("Word2Vec::Train: vocabulary empty after pruning");

  const size_t v = vocab_.size();
  const size_t d = options_.dim;
  Rng rng(options_.seed);
  in_.resize(v * d);
  out_.assign(v * d, 0.0);
  for (double& x : in_) x = rng.Uniform(-0.5 / static_cast<double>(d),
                                        0.5 / static_cast<double>(d));

  // Precompute id sequences and the negative-sampling alias-free CDF.
  std::vector<std::vector<int>> ids;
  ids.reserve(sentences.size());
  int64_t total_tokens = 0;
  for (const auto& s : sentences) {
    std::vector<int> row;
    row.reserve(s.size());
    for (const auto& w : s) {
      int id = vocab_.Lookup(w);
      if (id != Vocabulary::kUnknown) row.push_back(id);
    }
    total_tokens += static_cast<int64_t>(row.size());
    ids.push_back(std::move(row));
  }
  if (total_tokens == 0)
    return Status::InvalidArgument("Word2Vec::Train: no in-vocabulary tokens");

  std::vector<double> neg_cdf = vocab_.SamplingWeights(0.75);
  for (size_t i = 1; i < neg_cdf.size(); ++i) neg_cdf[i] += neg_cdf[i - 1];
  const double neg_total = neg_cdf.back();
  auto sample_negative = [&](Rng& r) {
    const double x = r.UniformDouble() * neg_total;
    return static_cast<int>(
        std::lower_bound(neg_cdf.begin(), neg_cdf.end(), x) - neg_cdf.begin());
  };

  const int64_t total_steps =
      static_cast<int64_t>(options_.epochs) * total_tokens;
  static obs::Counter* const epochs =
      obs::MetricsRegistry::Global().GetCounter("word2vec.epochs");
  static obs::Counter* const tokens =
      obs::MetricsRegistry::Global().GetCounter("word2vec.tokens");

  // Epochs are sharded into deterministic sentence chunks rather than
  // trained hogwild: each chunk runs sequential SGD against a private
  // copy-on-touch overlay of the epoch-start tables with its own seeded
  // RNG, and the per-chunk deltas are folded back in chunk order at the
  // epoch barrier. Every quantity involved — chunk plan, RNG streams,
  // learning-rate positions, merge order — is a function of the corpus
  // and options only, so the result is bit-identical for any thread count.
  const std::vector<SgdChunk> chunks = PlanChunks(ids);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    SUBREC_TRACE_SPAN("word2vec/epoch");
    epochs->Increment();
    tokens->Increment(total_tokens);
    std::vector<RowOverlay> in_ov, out_ov;
    in_ov.reserve(chunks.size());
    out_ov.reserve(chunks.size());
    for (size_t c = 0; c < chunks.size(); ++c) {
      in_ov.emplace_back(in_, d);
      out_ov.emplace_back(out_, d);
    }
    par::ParallelFor(chunks.size(), 1, [&](size_t c_begin, size_t c_end) {
      for (size_t c = c_begin; c < c_end; ++c) {
        Rng crng(ChunkSeed(options_.seed, epoch, chunks.size(), c));
        RowOverlay& iov = in_ov[c];
        RowOverlay& oov = out_ov[c];
        std::vector<double> grad_in(d);
        int64_t step = static_cast<int64_t>(epoch) * total_tokens +
                       chunks[c].token_offset;
        for (size_t s = chunks[c].first; s < chunks[c].last; ++s) {
          const std::vector<int>& sentence = ids[s];
          const int n = static_cast<int>(sentence.size());
          for (int center = 0; center < n; ++center) {
            const double progress =
                static_cast<double>(step++) / static_cast<double>(total_steps);
            const double lr =
                options_.learning_rate * std::max(1.0 - progress, 1e-2);
            const int win = 1 + static_cast<int>(crng.UniformInt(
                                    static_cast<uint64_t>(options_.window)));
            const int lo = std::max(0, center - win);
            const int hi = std::min(n - 1, center + win);
            double* wi = iov.Row(sentence[center]);
            for (int ctx = lo; ctx <= hi; ++ctx) {
              if (ctx == center) continue;
              std::fill(grad_in.begin(), grad_in.end(), 0.0);
              // One positive + `negatives` sampled targets.
              for (int k = 0; k <= options_.negatives; ++k) {
                int target;
                double label;
                if (k == 0) {
                  target = sentence[ctx];
                  label = 1.0;
                } else {
                  target = sample_negative(crng);
                  if (target == sentence[ctx]) continue;
                  label = 0.0;
                }
                double* wo = oov.Row(target);
                double dot = 0.0;
                for (size_t j = 0; j < d; ++j) dot += wi[j] * wo[j];
                const double g = (label - FastSigmoid(dot)) * lr;
                for (size_t j = 0; j < d; ++j) {
                  grad_in[j] += g * wo[j];
                  wo[j] += g * wi[j];
                }
              }
              for (size_t j = 0; j < d; ++j) wi[j] += grad_in[j];
            }
          }
        }
      }
    });
    for (size_t c = 0; c < chunks.size(); ++c) {
      in_ov[c].MergeInto(&in_);
      out_ov[c].MergeInto(&out_);
    }
  }
  trained_ = true;
  return Status::Ok();
}

std::vector<double> Word2Vec::Embedding(const std::string& word) const {
  std::vector<double> v(options_.dim, 0.0);
  if (!trained_) return v;
  const int id = vocab_.Lookup(word);
  if (id == Vocabulary::kUnknown) return v;
  const double* w = in_.data() + static_cast<size_t>(id) * options_.dim;
  std::copy(w, w + options_.dim, v.begin());
  return v;
}

std::vector<double> Word2Vec::MeanEmbedding(
    const std::vector<std::string>& tokens) const {
  std::vector<double> acc(options_.dim, 0.0);
  if (!trained_) return acc;
  int known = 0;
  for (const auto& t : tokens) {
    const int id = vocab_.Lookup(t);
    if (id == Vocabulary::kUnknown) continue;
    const double* w = in_.data() + static_cast<size_t>(id) * options_.dim;
    for (size_t j = 0; j < options_.dim; ++j) acc[j] += w[j];
    ++known;
  }
  if (known > 0)
    for (double& x : acc) x /= static_cast<double>(known);
  return acc;
}

}  // namespace subrec::text
