#include "text/doc2vec.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::text {
namespace {

double FastSigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

Doc2Vec::Doc2Vec(Doc2VecOptions options) : options_(options) {
  SUBREC_CHECK_GT(options_.dim, 0u);
}

Status Doc2Vec::Train(const std::vector<std::vector<std::string>>& documents) {
  if (documents.empty())
    return Status::InvalidArgument("Doc2Vec::Train: empty corpus");
  vocab_ = Vocabulary();
  vocab_.AddAll(documents);
  vocab_.Prune(options_.min_count);
  if (vocab_.size() == 0)
    return Status::InvalidArgument("Doc2Vec::Train: vocabulary empty");

  const size_t d = options_.dim;
  const size_t v = vocab_.size();
  Rng rng(options_.seed);
  doc_.resize(documents.size() * d);
  out_.assign(v * d, 0.0);
  for (double& x : doc_) x = rng.Uniform(-0.5 / static_cast<double>(d),
                                         0.5 / static_cast<double>(d));

  std::vector<std::vector<int>> ids(documents.size());
  int64_t total_tokens = 0;
  for (size_t i = 0; i < documents.size(); ++i) {
    for (const auto& w : documents[i]) {
      int id = vocab_.Lookup(w);
      if (id != Vocabulary::kUnknown) ids[i].push_back(id);
    }
    total_tokens += static_cast<int64_t>(ids[i].size());
  }
  if (total_tokens == 0)
    return Status::InvalidArgument("Doc2Vec::Train: no in-vocabulary tokens");

  std::vector<double> neg_cdf = vocab_.SamplingWeights(0.75);
  for (size_t i = 1; i < neg_cdf.size(); ++i) neg_cdf[i] += neg_cdf[i - 1];
  const double neg_total = neg_cdf.back();
  auto sample_negative = [&](Rng& r) {
    const double x = r.UniformDouble() * neg_total;
    return static_cast<int>(
        std::lower_bound(neg_cdf.begin(), neg_cdf.end(), x) - neg_cdf.begin());
  };

  const int64_t total_steps =
      static_cast<int64_t>(options_.epochs) * total_tokens;
  int64_t step = 0;
  std::vector<double> grad_doc(d);
  static obs::Counter* const epochs =
      obs::MetricsRegistry::Global().GetCounter("doc2vec.epochs");
  static obs::Counter* const tokens =
      obs::MetricsRegistry::Global().GetCounter("doc2vec.tokens");
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    SUBREC_TRACE_SPAN("doc2vec/epoch");
    epochs->Increment();
    tokens->Increment(total_tokens);
    for (size_t doc_id = 0; doc_id < ids.size(); ++doc_id) {
      double* dv = doc_.data() + doc_id * d;
      for (int word : ids[doc_id]) {
        const double progress =
            static_cast<double>(step++) / static_cast<double>(total_steps);
        const double lr =
            options_.learning_rate * std::max(1.0 - progress, 1e-2);
        std::fill(grad_doc.begin(), grad_doc.end(), 0.0);
        for (int k = 0; k <= options_.negatives; ++k) {
          int target;
          double label;
          if (k == 0) {
            target = word;
            label = 1.0;
          } else {
            target = sample_negative(rng);
            if (target == word) continue;
            label = 0.0;
          }
          double* wo = out_.data() + static_cast<size_t>(target) * d;
          double dot = 0.0;
          for (size_t j = 0; j < d; ++j) dot += dv[j] * wo[j];
          const double g = (label - FastSigmoid(dot)) * lr;
          for (size_t j = 0; j < d; ++j) {
            grad_doc[j] += g * wo[j];
            wo[j] += g * dv[j];
          }
        }
        for (size_t j = 0; j < d; ++j) dv[j] += grad_doc[j];
      }
    }
  }
  trained_ = true;
  return Status::Ok();
}

std::vector<double> Doc2Vec::DocumentVector(size_t i) const {
  SUBREC_CHECK(trained_);
  SUBREC_CHECK_LT(i, doc_.size() / options_.dim);
  const double* p = doc_.data() + i * options_.dim;
  return std::vector<double>(p, p + options_.dim);
}

}  // namespace subrec::text
