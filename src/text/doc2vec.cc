#include "text/doc2vec.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "text/row_overlay.h"

namespace subrec::text {
namespace {

double FastSigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

/// Contiguous document span trained as one unit; cut from token counts
/// alone so the plan is a fixed function of the corpus (see word2vec.cc —
/// same deterministic sharding, documents instead of sentences).
struct SgdChunk {
  size_t first = 0;
  size_t last = 0;
  int64_t token_offset = 0;
};

constexpr int64_t kChunkTokens = 2048;

std::vector<SgdChunk> PlanChunks(const std::vector<std::vector<int>>& ids) {
  std::vector<SgdChunk> chunks;
  size_t first = 0;
  int64_t offset = 0, count = 0;
  for (size_t s = 0; s < ids.size(); ++s) {
    count += static_cast<int64_t>(ids[s].size());
    if (count >= kChunkTokens || s + 1 == ids.size()) {
      chunks.push_back({first, s + 1, offset});
      offset += count;
      first = s + 1;
      count = 0;
    }
  }
  return chunks;
}

uint64_t ChunkSeed(uint64_t seed, int epoch, size_t num_chunks, size_t chunk) {
  return seed + 0x9E3779B97F4A7C15ULL *
                    (static_cast<uint64_t>(epoch) * num_chunks + chunk + 1);
}

}  // namespace

Doc2Vec::Doc2Vec(Doc2VecOptions options) : options_(options) {
  SUBREC_CHECK_GT(options_.dim, 0u);
}

Status Doc2Vec::Train(const std::vector<std::vector<std::string>>& documents) {
  if (documents.empty())
    return Status::InvalidArgument("Doc2Vec::Train: empty corpus");
  vocab_ = Vocabulary();
  vocab_.AddAll(documents);
  vocab_.Prune(options_.min_count);
  if (vocab_.size() == 0)
    return Status::InvalidArgument("Doc2Vec::Train: vocabulary empty");

  const size_t d = options_.dim;
  const size_t v = vocab_.size();
  Rng rng(options_.seed);
  doc_.resize(documents.size() * d);
  out_.assign(v * d, 0.0);
  for (double& x : doc_) x = rng.Uniform(-0.5 / static_cast<double>(d),
                                         0.5 / static_cast<double>(d));

  std::vector<std::vector<int>> ids(documents.size());
  int64_t total_tokens = 0;
  for (size_t i = 0; i < documents.size(); ++i) {
    for (const auto& w : documents[i]) {
      int id = vocab_.Lookup(w);
      if (id != Vocabulary::kUnknown) ids[i].push_back(id);
    }
    total_tokens += static_cast<int64_t>(ids[i].size());
  }
  if (total_tokens == 0)
    return Status::InvalidArgument("Doc2Vec::Train: no in-vocabulary tokens");

  std::vector<double> neg_cdf = vocab_.SamplingWeights(0.75);
  for (size_t i = 1; i < neg_cdf.size(); ++i) neg_cdf[i] += neg_cdf[i - 1];
  const double neg_total = neg_cdf.back();
  auto sample_negative = [&](Rng& r) {
    const double x = r.UniformDouble() * neg_total;
    return static_cast<int>(
        std::lower_bound(neg_cdf.begin(), neg_cdf.end(), x) - neg_cdf.begin());
  };

  const int64_t total_steps =
      static_cast<int64_t>(options_.epochs) * total_tokens;
  static obs::Counter* const epochs =
      obs::MetricsRegistry::Global().GetCounter("doc2vec.epochs");
  static obs::Counter* const tokens =
      obs::MetricsRegistry::Global().GetCounter("doc2vec.tokens");

  // Deterministic chunk-sharded epochs (see word2vec.cc for the scheme).
  // Document vectors are exclusive to their chunk and train in place; the
  // shared output table goes through per-chunk overlays merged in chunk
  // order at the epoch barrier. Bit-identical for any thread count.
  const std::vector<SgdChunk> chunks = PlanChunks(ids);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    SUBREC_TRACE_SPAN("doc2vec/epoch");
    epochs->Increment();
    tokens->Increment(total_tokens);
    std::vector<RowOverlay> out_ov;
    out_ov.reserve(chunks.size());
    for (size_t c = 0; c < chunks.size(); ++c) out_ov.emplace_back(out_, d);
    par::ParallelFor(chunks.size(), 1, [&](size_t c_begin, size_t c_end) {
      for (size_t c = c_begin; c < c_end; ++c) {
        Rng crng(ChunkSeed(options_.seed, epoch, chunks.size(), c));
        RowOverlay& oov = out_ov[c];
        std::vector<double> grad_doc(d);
        int64_t step = static_cast<int64_t>(epoch) * total_tokens +
                       chunks[c].token_offset;
        for (size_t doc_id = chunks[c].first; doc_id < chunks[c].last;
             ++doc_id) {
          double* dv = doc_.data() + doc_id * d;
          for (int word : ids[doc_id]) {
            const double progress =
                static_cast<double>(step++) / static_cast<double>(total_steps);
            const double lr =
                options_.learning_rate * std::max(1.0 - progress, 1e-2);
            std::fill(grad_doc.begin(), grad_doc.end(), 0.0);
            for (int k = 0; k <= options_.negatives; ++k) {
              int target;
              double label;
              if (k == 0) {
                target = word;
                label = 1.0;
              } else {
                target = sample_negative(crng);
                if (target == word) continue;
                label = 0.0;
              }
              double* wo = oov.Row(target);
              double dot = 0.0;
              for (size_t j = 0; j < d; ++j) dot += dv[j] * wo[j];
              const double g = (label - FastSigmoid(dot)) * lr;
              for (size_t j = 0; j < d; ++j) {
                grad_doc[j] += g * wo[j];
                wo[j] += g * dv[j];
              }
            }
            for (size_t j = 0; j < d; ++j) dv[j] += grad_doc[j];
          }
        }
      }
    });
    for (size_t c = 0; c < chunks.size(); ++c) out_ov[c].MergeInto(&out_);
  }
  trained_ = true;
  return Status::Ok();
}

std::vector<double> Doc2Vec::DocumentVector(size_t i) const {
  SUBREC_CHECK(trained_);
  SUBREC_CHECK_LT(i, doc_.size() / options_.dim);
  const double* p = doc_.data() + i * options_.dim;
  return std::vector<double>(p, p + options_.dim);
}

}  // namespace subrec::text
