#ifndef SUBREC_TEXT_VOCABULARY_H_
#define SUBREC_TEXT_VOCABULARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace subrec::text {

/// Bidirectional word <-> id map with frequency counts. Ids are dense and
/// assigned in first-seen order.
class Vocabulary {
 public:
  static constexpr int kUnknown = -1;

  /// Adds one occurrence of `word`, creating an id on first sight.
  int Add(const std::string& word);

  /// Adds every token of every sentence.
  void AddAll(const std::vector<std::vector<std::string>>& sentences);

  /// Id of `word` or kUnknown.
  int Lookup(const std::string& word) const;

  const std::string& WordOf(int id) const;
  int64_t CountOf(int id) const;
  size_t size() const { return words_.size(); }
  int64_t total_count() const { return total_count_; }

  /// Drops words with count < min_count and reassigns dense ids.
  void Prune(int64_t min_count);

  /// Unigram^power sampling weights (for SGNS negative sampling).
  std::vector<double> SamplingWeights(double power = 0.75) const;

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace subrec::text

#endif  // SUBREC_TEXT_VOCABULARY_H_
