#ifndef SUBREC_TEXT_SENTENCE_ENCODER_H_
#define SUBREC_TEXT_SENTENCE_ENCODER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace subrec::text {

/// Frozen sentence -> vector feature extractor. In the paper this role is
/// played by pretrained BERT-base; here the default implementation is the
/// deterministic HashedNgramEncoder (see DESIGN.md for the substitution
/// rationale). Implementations must be deterministic and thread-compatible
/// for concurrent Encode() calls.
class SentenceEncoder {
 public:
  virtual ~SentenceEncoder() = default;

  /// Output dimensionality d (the paper's 768; ours defaults to 96).
  virtual size_t dim() const = 0;

  /// Embeds one sentence. Must return a vector of exactly dim() entries.
  virtual std::vector<double> Encode(const std::string& sentence) const = 0;

  /// Embeds each sentence of an abstract.
  std::vector<std::vector<double>> EncodeAll(
      const std::vector<std::string>& sentences) const {
    std::vector<std::vector<double>> out;
    out.reserve(sentences.size());
    for (const auto& s : sentences) out.push_back(Encode(s));
    return out;
  }
};

}  // namespace subrec::text

#endif  // SUBREC_TEXT_SENTENCE_ENCODER_H_
