#ifndef SUBREC_TEXT_DOC2VEC_H_
#define SUBREC_TEXT_DOC2VEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "text/vocabulary.h"

namespace subrec::text {

/// Configuration for PV-DBOW Doc2Vec.
struct Doc2VecOptions {
  size_t dim = 48;
  int negatives = 5;
  int epochs = 5;
  double learning_rate = 0.025;
  int64_t min_count = 1;
  uint64_t seed = 29;
};

/// Distributed bag-of-words paragraph vectors (Le & Mikolov): each document
/// vector is trained to predict its own words against negative samples.
/// Serves as the Doc2Vec baseline of Fig. 2.
class Doc2Vec {
 public:
  explicit Doc2Vec(Doc2VecOptions options = {});

  /// Trains document vectors on tokenized documents.
  Status Train(const std::vector<std::vector<std::string>>& documents);

  size_t dim() const { return options_.dim; }
  size_t num_documents() const { return trained_ ? doc_.size() / options_.dim : 0; }
  bool trained() const { return trained_; }

  /// Trained vector of document `i` (indexing the Train() corpus).
  std::vector<double> DocumentVector(size_t i) const;

 private:
  Doc2VecOptions options_;
  Vocabulary vocab_;
  bool trained_ = false;
  std::vector<double> doc_;  // [num_docs x dim]
  std::vector<double> out_;  // [vocab x dim]
};

}  // namespace subrec::text

#endif  // SUBREC_TEXT_DOC2VEC_H_
