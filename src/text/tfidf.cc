#include "text/tfidf.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "la/ops.h"

namespace subrec::text {

Status TfIdfVectorizer::Fit(
    const std::vector<std::vector<std::string>>& documents) {
  if (documents.empty())
    return Status::InvalidArgument("TfIdfVectorizer::Fit: empty corpus");
  index_.clear();
  std::vector<int64_t> df;
  for (const auto& doc : documents) {
    std::unordered_set<std::string> seen;
    for (const auto& tok : doc) {
      if (!seen.insert(tok).second) continue;
      auto [it, inserted] = index_.try_emplace(tok, static_cast<int>(df.size()));
      if (inserted) df.push_back(0);
      ++df[it->second];
    }
  }
  const double n = static_cast<double>(documents.size());
  idf_.resize(df.size());
  for (size_t i = 0; i < df.size(); ++i)
    idf_[i] = std::log((1.0 + n) / (1.0 + static_cast<double>(df[i]))) + 1.0;
  fitted_ = true;
  return Status::Ok();
}

std::vector<double> TfIdfVectorizer::Transform(
    const std::vector<std::string>& tokens) const {
  SUBREC_CHECK(fitted_) << "Transform before Fit";
  std::vector<double> v(idf_.size(), 0.0);
  for (const auto& tok : tokens) {
    auto it = index_.find(tok);
    if (it != index_.end()) v[it->second] += 1.0;
  }
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] > 0.0) v[i] = (1.0 + std::log(v[i])) * idf_[i];
  }
  la::NormalizeL2(v);
  return v;
}

int TfIdfVectorizer::IndexOf(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? -1 : it->second;
}

}  // namespace subrec::text
