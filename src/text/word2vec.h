#ifndef SUBREC_TEXT_WORD2VEC_H_
#define SUBREC_TEXT_WORD2VEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "text/vocabulary.h"

namespace subrec::text {

/// Configuration for SGNS word2vec.
struct Word2VecOptions {
  size_t dim = 48;
  int window = 4;
  int negatives = 5;
  int epochs = 3;
  double learning_rate = 0.025;
  int64_t min_count = 1;
  uint64_t seed = 13;
};

/// Skip-gram word2vec with negative sampling (Mikolov et al. [25]) —
/// provides the pretrained keyword vectors of expert rule f_w (Eq. 3) and
/// the word half of the SHPE baseline. Linear-decay learning rate, unigram
/// ^0.75 negative table.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {});

  /// Trains on tokenized sentences. Returns InvalidArgument on an empty or
  /// all-pruned corpus.
  Status Train(const std::vector<std::vector<std::string>>& sentences);

  size_t dim() const { return options_.dim; }
  bool trained() const { return trained_; }
  const Vocabulary& vocab() const { return vocab_; }

  /// Input embedding of `word`; zero vector if unknown or untrained.
  std::vector<double> Embedding(const std::string& word) const;

  /// Mean embedding of the known tokens (zero vector when none known).
  std::vector<double> MeanEmbedding(const std::vector<std::string>& tokens) const;

 private:
  Word2VecOptions options_;
  Vocabulary vocab_;
  bool trained_ = false;
  // Row-major [vocab x dim] input and output tables.
  std::vector<double> in_;
  std::vector<double> out_;
};

}  // namespace subrec::text

#endif  // SUBREC_TEXT_WORD2VEC_H_
