#include "text/vocabulary.h"

#include <cmath>

#include "common/check.h"

namespace subrec::text {

int Vocabulary::Add(const std::string& word) {
  auto [it, inserted] = index_.try_emplace(word, static_cast<int>(words_.size()));
  if (inserted) {
    words_.push_back(word);
    counts_.push_back(0);
  }
  ++counts_[it->second];
  ++total_count_;
  return it->second;
}

void Vocabulary::AddAll(const std::vector<std::vector<std::string>>& sentences) {
  for (const auto& sentence : sentences)
    for (const auto& word : sentence) Add(word);
}

int Vocabulary::Lookup(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kUnknown : it->second;
}

const std::string& Vocabulary::WordOf(int id) const {
  SUBREC_CHECK(id >= 0 && static_cast<size_t>(id) < words_.size());
  return words_[id];
}

int64_t Vocabulary::CountOf(int id) const {
  SUBREC_CHECK(id >= 0 && static_cast<size_t>(id) < counts_.size());
  return counts_[id];
}

void Vocabulary::Prune(int64_t min_count) {
  std::vector<std::string> kept_words;
  std::vector<int64_t> kept_counts;
  index_.clear();
  total_count_ = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    if (counts_[i] >= min_count) {
      index_[words_[i]] = static_cast<int>(kept_words.size());
      kept_words.push_back(words_[i]);
      kept_counts.push_back(counts_[i]);
      total_count_ += counts_[i];
    }
  }
  words_ = std::move(kept_words);
  counts_ = std::move(kept_counts);
}

std::vector<double> Vocabulary::SamplingWeights(double power) const {
  std::vector<double> w(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i)
    w[i] = std::pow(static_cast<double>(counts_[i]), power);
  return w;
}

}  // namespace subrec::text
