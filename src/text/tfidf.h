#ifndef SUBREC_TEXT_TFIDF_H_
#define SUBREC_TEXT_TFIDF_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace subrec::text {

/// Classic TF-IDF vectorizer over a fixed fitted corpus. Produces dense
/// vectors in vocabulary space (vocabularies at our corpus scales are small
/// enough that dense is fine) with idf = log((1+N)/(1+df)) + 1 and
/// L2-normalized rows.
class TfIdfVectorizer {
 public:
  /// Learns vocabulary and document frequencies. `documents` are token
  /// lists. Returns InvalidArgument on an empty corpus.
  Status Fit(const std::vector<std::vector<std::string>>& documents);

  /// Transforms one document into the fitted space (unknown tokens are
  /// ignored). Must be called after a successful Fit().
  std::vector<double> Transform(const std::vector<std::string>& tokens) const;

  size_t vocabulary_size() const { return idf_.size(); }
  bool fitted() const { return fitted_; }

  /// Index of `token` in the fitted space, or -1.
  int IndexOf(const std::string& token) const;

 private:
  bool fitted_ = false;
  std::unordered_map<std::string, int> index_;
  std::vector<double> idf_;
};

}  // namespace subrec::text

#endif  // SUBREC_TEXT_TFIDF_H_
