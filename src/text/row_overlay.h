#ifndef SUBREC_TEXT_ROW_OVERLAY_H_
#define SUBREC_TEXT_ROW_OVERLAY_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace subrec::text {

/// Copy-on-first-touch view over the rows of a flat row-major embedding
/// table, used to shard SGD epochs into deterministic chunks: each chunk
/// trains against a private overlay seeded from the epoch-start table,
/// then the per-chunk deltas are folded back serially in chunk order.
/// Both the overlay contents (driven only by the chunk's own work) and the
/// merge order are independent of the thread count, so training is
/// bit-identical for any SUBREC_NUM_THREADS.
class RowOverlay {
 public:
  /// `global` must outlive the overlay and stay unmodified until merge.
  RowOverlay(const std::vector<double>& global, size_t dim)
      : global_(&global), d_(dim) {}

  /// Mutable overlay row for `id`, copied from the global table on first
  /// touch. The pointer is invalidated by the next first-touch Row() call.
  double* Row(int id) {
    auto [it, inserted] = index_.emplace(id, touched_.size());
    if (inserted) {
      touched_.push_back(id);
      const double* src = global_->data() + static_cast<size_t>(id) * d_;
      base_.insert(base_.end(), src, src + d_);
      cur_.insert(cur_.end(), src, src + d_);
    }
    return cur_.data() + it->second * d_;
  }

  /// Adds (current - base) for every touched row into `global`, in
  /// first-touch order — a fixed function of the chunk's own work.
  void MergeInto(std::vector<double>* global) const {
    for (size_t t = 0; t < touched_.size(); ++t) {
      double* dst = global->data() + static_cast<size_t>(touched_[t]) * d_;
      const double* from = base_.data() + t * d_;
      const double* to = cur_.data() + t * d_;
      for (size_t j = 0; j < d_; ++j) dst[j] += to[j] - from[j];
    }
  }

  size_t touched() const { return touched_.size(); }

 private:
  const std::vector<double>* global_;
  size_t d_;
  std::unordered_map<int, size_t> index_;
  std::vector<int> touched_;     // ids in first-touch order
  std::vector<double> base_;     // epoch-start copies, touched-order blocks
  std::vector<double> cur_;      // trained values, same layout
};

}  // namespace subrec::text

#endif  // SUBREC_TEXT_ROW_OVERLAY_H_
