#include "text/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace subrec::text {
namespace {

// Small closed stopword list; sorted for binary search.
constexpr std::array<std::string_view, 42> kStopwords = {
    "a",    "an",   "and",  "are",  "as",    "at",   "be",   "by",
    "for",  "from", "has",  "have", "in",    "is",   "it",   "its",
    "more", "most", "not",  "of",   "on",    "or",   "our",  "such",
    "that", "the",  "their", "then", "there", "these", "they", "this",
    "to",   "was",  "we",   "were", "which", "while", "will", "with",
    "you",  "your"};

}  // namespace

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool IsStopword(std::string_view token) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), token);
}

std::vector<std::string> TokenizeNoStopwords(std::string_view s) {
  std::vector<std::string> tokens = Tokenize(s);
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [](const std::string& t) { return IsStopword(t); }),
               tokens.end());
  return tokens;
}

std::vector<std::string> SplitSentences(std::string_view abstract_text) {
  std::vector<std::string> sentences;
  std::string current;
  for (char c : abstract_text) {
    if (c == '.' || c == '!' || c == '?') {
      // Trim leading/trailing spaces.
      size_t b = current.find_first_not_of(" \t\n");
      size_t e = current.find_last_not_of(" \t\n");
      if (b != std::string::npos) sentences.push_back(current.substr(b, e - b + 1));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  size_t b = current.find_first_not_of(" \t\n");
  if (b != std::string::npos) {
    size_t e = current.find_last_not_of(" \t\n");
    sentences.push_back(current.substr(b, e - b + 1));
  }
  return sentences;
}

}  // namespace subrec::text
