#include "text/hashed_ngram_encoder.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "la/ops.h"
#include "text/tokenizer.h"

namespace subrec::text {

HashedNgramEncoder::HashedNgramEncoder(HashedNgramEncoderOptions options)
    : options_(options) {
  SUBREC_CHECK_GT(options_.dim, 0u);
}

void HashedNgramEncoder::AddFeature(const std::string& feature,
                                    std::vector<double>& acc) const {
  const uint64_t h = HashCombine(options_.seed, Fnv1aHash(feature));
  const size_t bucket = h % options_.dim;
  const double sign = ((h >> 32) & 1) ? 1.0 : -1.0;
  acc[bucket] += sign;
}

std::vector<double> HashedNgramEncoder::Encode(
    const std::string& sentence) const {
  const std::vector<std::string> tokens =
      options_.drop_stopwords ? TokenizeNoStopwords(sentence)
                              : Tokenize(sentence);
  std::vector<double> acc(options_.dim, 0.0);
  for (const auto& t : tokens) AddFeature(t, acc);
  if (options_.use_bigrams) {
    for (size_t i = 0; i + 1 < tokens.size(); ++i)
      AddFeature(tokens[i] + "_" + tokens[i + 1], acc);
  }
  if (options_.sublinear_tf) {
    for (double& v : acc) {
      const double a = std::fabs(v);
      v = (v >= 0.0 ? 1.0 : -1.0) * std::log1p(a);
    }
  }
  la::NormalizeL2(acc);
  return acc;
}

}  // namespace subrec::text
