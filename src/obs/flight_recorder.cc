#include "obs/flight_recorder.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/json_writer.h"

namespace subrec::obs {
namespace {

std::vector<double> DefaultExemplarBoundsUs() {
  return {1.0,    2.0,    5.0,     10.0,    25.0,    50.0,     100.0,   250.0,
          500.0,  1000.0, 2500.0,  5000.0,  10000.0, 25000.0,  50000.0, 100000.0};
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.recent_capacity == 0) options_.recent_capacity = 1;
  if (options_.exemplar_bounds_us.empty()) {
    options_.exemplar_bounds_us = DefaultExemplarBoundsUs();
  }
  common::MutexLock lock(&mu_);
  recent_.resize(options_.recent_capacity);
  slowest_.reserve(options_.slowest_capacity);
  exemplars_.resize(options_.exemplar_bounds_us.size() + 1);
}

int64_t FlightRecorder::Record(const RequestTrace& trace) {
  int64_t id = 0;
  bool log_slow = false;
  {
    common::MutexLock lock(&mu_);
    id = next_id_++;

    if (recent_size_ == recent_.size()) dropped_ += 1;
    RequestTrace& slot = recent_[recent_next_];
    slot = trace;
    slot.id = id;
    recent_next_ = (recent_next_ + 1) % recent_.size();
    recent_size_ = std::min(recent_size_ + 1, recent_.size());

    if (options_.slowest_capacity > 0) {
      if (slowest_.size() < options_.slowest_capacity) {
        slowest_.push_back(slot);
        std::sort(slowest_.begin(), slowest_.end(),
                  [](const RequestTrace& a, const RequestTrace& b) {
                    return a.total_ns > b.total_ns;
                  });
      } else if (trace.total_ns > slowest_.back().total_ns) {
        slowest_.back() = slot;
        // One new entry against a sorted list: bubble it into place.
        for (size_t i = slowest_.size() - 1;
             i > 0 && slowest_[i].total_ns > slowest_[i - 1].total_ns; --i) {
          std::swap(slowest_[i], slowest_[i - 1]);
        }
      }
    }

    const double latency_us = static_cast<double>(trace.total_ns) / 1e3;
    const std::vector<double>& bounds = options_.exemplar_bounds_us;
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), latency_us) -
        bounds.begin());
    exemplars_[bucket] = Exemplar{id, latency_us};

    log_slow = options_.slow_log_threshold_ns > 0 &&
               trace.total_ns >= options_.slow_log_threshold_ns;
  }
  if (log_slow) {
    SUBREC_LOG(Warning) << "slow request: trace_id=" << id
                        << " user=" << trace.user << " n=" << trace.n
                        << " total_us=" << trace.total_ns / 1000
                        << " cache_hit=" << (trace.cache_hit ? 1 : 0)
                        << " candidates=" << trace.candidate_count
                        << (trace.error ? " error=1" : "");
  }
  return id;
}

std::vector<RequestTrace> FlightRecorder::Recent() const {
  common::MutexLock lock(&mu_);
  std::vector<RequestTrace> out;
  out.reserve(recent_size_);
  // recent_next_ points at the oldest entry once the ring has wrapped.
  const size_t start =
      (recent_size_ == recent_.size()) ? recent_next_ : size_t{0};
  for (size_t i = 0; i < recent_size_; ++i) {
    out.push_back(recent_[(start + i) % recent_.size()]);
  }
  return out;
}

std::vector<RequestTrace> FlightRecorder::Slowest() const {
  common::MutexLock lock(&mu_);
  return slowest_;
}

std::vector<Exemplar> FlightRecorder::Exemplars() const {
  common::MutexLock lock(&mu_);
  return exemplars_;
}

int64_t FlightRecorder::Dropped() const {
  common::MutexLock lock(&mu_);
  return dropped_;
}

int64_t FlightRecorder::TotalRecorded() const {
  common::MutexLock lock(&mu_);
  return next_id_ - 1;
}

void FlightRecorder::WriteJson(JsonWriter* w) const {
  const std::vector<RequestTrace> recent = Recent();
  const std::vector<RequestTrace> slowest = Slowest();
  const std::vector<Exemplar> exemplars = Exemplars();
  w->BeginObject();
  w->Key("dropped").Int(Dropped());
  w->Key("total").Int(TotalRecorded());
  w->Key("recent").BeginArray();
  for (const RequestTrace& t : recent) t.WriteJson(w);
  w->EndArray();
  w->Key("slowest").BeginArray();
  for (const RequestTrace& t : slowest) t.WriteJson(w);
  w->EndArray();
  w->Key("exemplars").BeginArray();
  for (size_t i = 0; i < exemplars.size(); ++i) {
    if (exemplars[i].trace_id == 0) continue;
    w->BeginObject();
    if (i < options_.exemplar_bounds_us.size()) {
      w->Key("le_us").Number(options_.exemplar_bounds_us[i]);
    } else {
      w->Key("le_us").String("+Inf");
    }
    w->Key("trace_id").Int(exemplars[i].trace_id);
    w->Key("latency_us").Number(exemplars[i].latency_us);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace subrec::obs
