#ifndef SUBREC_OBS_JSON_WRITER_H_
#define SUBREC_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace subrec::obs {

/// Minimal dependency-free streaming JSON writer shared by the trace dumper
/// and the run-report emitter. Commas and key/value structure are handled by
/// a state stack; strings are escaped per RFC 8259; non-finite numbers
/// (which JSON cannot represent) are emitted as null. Misuse — a value where
/// a key is required, unbalanced End calls — trips a SUBREC_CHECK.
///
///   JsonWriter w;
///   w.BeginObject().Key("name").String("gmm").Key("iters").Int(12)
///    .Key("loss").Number(0.5).EndObject();
///   w.str();  // {"name":"gmm","iters":12,"loss":0.5}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by exactly one value (or
  /// container). Only legal directly inside an object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view v);
  JsonWriter& Number(double v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// The serialized document. Valid once every Begin has been balanced by
  /// its End (checked).
  const std::string& str() const;

  /// True when no container is open (the document is complete or empty).
  bool balanced() const { return stack_.empty() && !pending_key_; }

 private:
  enum class Frame { kObject, kArray };

  /// Emits the separator/indentation state for one new value and validates
  /// key/value alternation.
  void BeforeValue();
  void Escape(std::string_view v);

  std::string out_;
  std::vector<Frame> stack_;
  /// Count of values already emitted at each open nesting level.
  std::vector<int> counts_;
  bool pending_key_ = false;
};

}  // namespace subrec::obs

#endif  // SUBREC_OBS_JSON_WRITER_H_
