#ifndef SUBREC_OBS_SERVE_OBSERVER_H_
#define SUBREC_OBS_SERVE_OBSERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/request_trace.h"
#include "obs/window.h"

namespace subrec::obs {

struct ServeObserverOptions {
  /// Master switch. A default-constructed (disabled) observer allocates
  /// nothing and its only request-path cost is one relaxed atomic load.
  bool enabled = false;
  /// Every Nth request carries a full RequestTrace into the flight
  /// recorder; <= 1 samples every request. Rolling windows always see every
  /// request while enabled, independent of trace sampling.
  int64_t sample_every_n = 16;
  WindowOptions window;
  FlightRecorderOptions recorder;
};

/// Per-stage aggregate over the traces sampled so far.
struct StageStat {
  const char* name = nullptr;
  int64_t sampled = 0;   // traces that recorded nonzero time in this stage
  double total_us = 0.0;
  double mean_us = 0.0;  // over traces with nonzero time in this stage
};

/// Serving-path observation hub owned by RecommendService: fans one
/// completed request out to the windowed aggregator (always, when enabled),
/// and — for sampled requests — the flight recorder plus per-stage running
/// totals. Construction decides everything: a disabled observer owns no
/// window, no recorder, and no per-stage state, so the request path reduces
/// to `if (!enabled()) return;` — one relaxed load, zero allocations.
class ServeObserver {
 public:
  /// Disabled observer; allocates nothing.
  ServeObserver() = default;
  explicit ServeObserver(ServeObserverOptions options);

  /// The one relaxed load gating every request-path hook.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Draws a sampling ticket: true when this request should fill a full
  /// RequestTrace. Only meaningful (and only called) when enabled().
  bool SampleTrace() {
    if (options_.sample_every_n <= 1) return true;
    return sample_ticket_.fetch_add(1, std::memory_order_relaxed) %
               options_.sample_every_n ==
           0;
  }

  /// Folds one completed request. `trace` is null for unsampled requests
  /// (window-only accounting); for sampled requests the trace is copied
  /// into the flight recorder and its assigned id is returned (0 otherwise).
  /// No-op when disabled.
  int64_t OnComplete(int64_t now_ns, double latency_us, bool error,
                     bool cache_hit, bool shed, const RequestTrace* trace);

  /// Null when disabled.
  const WindowedAggregator* window() const { return window_.get(); }
  FlightRecorder* recorder() { return recorder_.get(); }
  const FlightRecorder* recorder() const { return recorder_.get(); }

  /// Running per-stage totals across sampled traces, in Stage order.
  /// Empty when disabled.
  std::vector<StageStat> StageStats() const;

  const ServeObserverOptions& options() const { return options_; }

 private:
  ServeObserverOptions options_;
  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> sample_ticket_{0};
  // Stage accumulators are relaxed atomics (not guarded fields): sampled
  // traces land from many worker threads and stat reads are monotonic
  // best-effort, same contract as the metrics registry counters.
  std::atomic<int64_t> stage_total_ns_[kNumStages] = {};
  std::atomic<int64_t> stage_sampled_[kNumStages] = {};
  std::unique_ptr<WindowedAggregator> window_;
  std::unique_ptr<FlightRecorder> recorder_;
};

}  // namespace subrec::obs

#endif  // SUBREC_OBS_SERVE_OBSERVER_H_
