#ifndef SUBREC_OBS_TRAINING_OBSERVER_H_
#define SUBREC_OBS_TRAINING_OBSERVER_H_

#include <cstdint>
#include <functional>
#include <string>

namespace subrec::obs {

/// Progress snapshot delivered once per training epoch by every trainer that
/// accepts a TrainingObserver (SEM twin-network trainer, NPRec).
struct TrainingEvent {
  /// Which trainer produced the event, e.g. "sem" or "nprec".
  std::string model;
  int epoch = 0;        ///< One-based index of the epoch just finished.
  int total_epochs = 0;
  double loss = 0.0;    ///< Mean loss over the epoch's samples.
  int64_t samples = 0;  ///< Samples processed this epoch.
  double elapsed_seconds = 0.0;  ///< Wall time since training started.
};

/// Per-epoch progress callback. Invoked synchronously from the training
/// loop's thread; keep it cheap. An empty std::function means "no observer"
/// and costs one bool check per epoch.
using TrainingObserver = std::function<void(const TrainingEvent&)>;

}  // namespace subrec::obs

#endif  // SUBREC_OBS_TRAINING_OBSERVER_H_
