#ifndef SUBREC_OBS_FLIGHT_RECORDER_H_
#define SUBREC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/request_trace.h"

namespace subrec::obs {

class JsonWriter;

struct FlightRecorderOptions {
  /// Ring of the most recent completed traces; the oldest is overwritten
  /// (and counted as dropped) once the ring is full.
  size_t recent_capacity = 64;
  /// Independently retained set of the slowest traces seen so far.
  size_t slowest_capacity = 16;
  /// Requests at least this slow are logged at Warning as they complete;
  /// 0 disables slow-request logging.
  int64_t slow_log_threshold_ns = 0;
  /// Upper bucket edges (microseconds) for exemplar links: for every bucket
  /// of this latency grid the recorder remembers the id of the last trace
  /// that landed there, so a histogram spike can be chased to a concrete
  /// trace. Empty selects the same default grid as WindowOptions.
  std::vector<double> exemplar_bounds_us;
};

/// One exemplar link: the most recent trace id (and its latency) observed in
/// a latency-histogram bucket. id == 0 means the bucket has never fired.
struct Exemplar {
  int64_t trace_id = 0;
  double latency_us = 0.0;
};

/// Bounded in-memory recorder of completed RequestTraces: a ring of the N
/// most recent, a separate list of the N slowest, per-bucket exemplar trace
/// ids, and a dropped-overwrite counter. Everything is copied in/out by
/// value, so dumps never alias live request state. Thread-safe.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  /// Records one completed trace, assigning and returning its id (ids are
  /// 1-based and monotonically increasing). The caller's copy is not
  /// modified; the id refers to the stored copy.
  int64_t Record(const RequestTrace& trace);

  /// The most recent traces, oldest first.
  std::vector<RequestTrace> Recent() const;

  /// The slowest traces seen so far, slowest first.
  std::vector<RequestTrace> Slowest() const;

  /// Exemplar link per latency bucket (bounds().size() + 1 entries).
  std::vector<Exemplar> Exemplars() const;

  /// Number of recent-ring entries overwritten before ever being dumped.
  int64_t Dropped() const;

  /// Total traces recorded.
  int64_t TotalRecorded() const;

  /// Dumps {dropped, total, recent:[...], slowest:[...], exemplars:[...]}
  /// as one JSON value.
  void WriteJson(JsonWriter* w) const;

  const std::vector<double>& exemplar_bounds_us() const {
    return options_.exemplar_bounds_us;
  }

 private:
  FlightRecorderOptions options_
      SUBREC_UNGUARDED("finalized in the constructor, read-only after");

  mutable common::Mutex mu_;
  std::vector<RequestTrace> recent_ SUBREC_GUARDED_BY(mu_);
  size_t recent_next_ SUBREC_GUARDED_BY(mu_) = 0;
  size_t recent_size_ SUBREC_GUARDED_BY(mu_) = 0;
  std::vector<RequestTrace> slowest_ SUBREC_GUARDED_BY(mu_);
  std::vector<Exemplar> exemplars_ SUBREC_GUARDED_BY(mu_);
  int64_t next_id_ SUBREC_GUARDED_BY(mu_) = 1;
  int64_t dropped_ SUBREC_GUARDED_BY(mu_) = 0;
};

}  // namespace subrec::obs

#endif  // SUBREC_OBS_FLIGHT_RECORDER_H_
