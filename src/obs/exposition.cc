#include "obs/exposition.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "obs/json_writer.h"

namespace subrec::obs {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define SUBREC_PRINTF_LIKE(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define SUBREC_PRINTF_LIKE(fmt_idx, arg_idx)
#endif

void Appendf(std::string* out, const char* fmt, ...) SUBREC_PRINTF_LIKE(2, 3);

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
/// registry names ("serve.cache.hits") map dots (and anything else illegal)
/// to underscores.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    out.push_back(alpha || (digit && i > 0) ? c : '_');
  }
  return out;
}

std::string WindowLabel(double seconds) {
  std::string out;
  Appendf(&out, "%gs", seconds);
  return out;
}

void StatuszWindows(const WindowSnapshot& window, std::string* out) {
  out->append("-- rolling windows --\n");
  Appendf(out,
          "%8s %10s %10s %10s %10s %10s %10s %6s %6s %6s\n", "window",
          "requests", "qps", "mean_us", "p50_us", "p95_us", "p99_us", "err%",
          "hit%", "shed%");
  for (const WindowStats& s : window.windows) {
    Appendf(out,
            "%8s %10lld %10.1f %10.1f %10.1f %10.1f %10.1f %6.2f %6.2f "
            "%6.2f\n",
            WindowLabel(s.window_seconds).c_str(),
            static_cast<long long>(s.requests), s.qps, s.mean_us, s.p50_us,
            s.p95_us, s.p99_us, 100.0 * s.error_rate,
            100.0 * s.cache_hit_rate, 100.0 * s.shed_rate);
  }
}

void StatuszStages(const std::vector<StageStat>& stages, std::string* out) {
  out->append("-- stage latency (sampled traces) --\n");
  Appendf(out, "%-14s %10s %12s %14s\n", "stage", "sampled", "mean_us",
          "total_us");
  for (const StageStat& s : stages) {
    Appendf(out, "%-14s %10lld %12.1f %14.1f\n", s.name,
            static_cast<long long>(s.sampled), s.mean_us, s.total_us);
  }
}

void StatuszRecorder(const FlightRecorder& recorder, std::string* out) {
  out->append("-- flight recorder --\n");
  Appendf(out, "recorded=%lld dropped=%lld\n",
          static_cast<long long>(recorder.TotalRecorded()),
          static_cast<long long>(recorder.Dropped()));
  const std::vector<RequestTrace> slowest = recorder.Slowest();
  if (!slowest.empty()) {
    out->append("slowest:\n");
    for (const RequestTrace& t : slowest) {
      Appendf(out,
              "  #%lld user=%d n=%d total_us=%.1f cache_hit=%d "
              "candidates=%d src=%s\n",
              static_cast<long long>(t.id), t.user, t.n,
              static_cast<double>(t.total_ns) / 1e3, t.cache_hit ? 1 : 0,
              t.candidate_count,
              t.candidate_source != nullptr ? t.candidate_source : "-");
    }
  }
  const std::vector<Exemplar> exemplars = recorder.Exemplars();
  const std::vector<double>& bounds = recorder.exemplar_bounds_us();
  bool any = false;
  for (const Exemplar& e : exemplars) any = any || e.trace_id != 0;
  if (any) {
    out->append("exemplars:\n");
    for (size_t i = 0; i < exemplars.size(); ++i) {
      if (exemplars[i].trace_id == 0) continue;
      if (i < bounds.size()) {
        Appendf(out, "  le %.0fus -> trace #%lld (%.1fus)\n", bounds[i],
                static_cast<long long>(exemplars[i].trace_id),
                exemplars[i].latency_us);
      } else {
        Appendf(out, "  le +Inf -> trace #%lld (%.1fus)\n",
                static_cast<long long>(exemplars[i].trace_id),
                exemplars[i].latency_us);
      }
    }
  }
}

/// Per-retrieval-branch request breakdown, derived from the
/// serve.candidates.source.* counter family so the page needs no extra
/// plumbing from the serving layer. Omitted entirely when the family has
/// not been registered (non-serving processes).
void StatuszCandidateSources(const MetricsSnapshot& metrics,
                             std::string* out) {
  static constexpr char kPrefix[] = "serve.candidates.source.";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  int64_t total = 0;
  bool any = false;
  for (const auto& [name, value] : metrics.counters) {
    if (name.compare(0, kPrefixLen, kPrefix) != 0) continue;
    any = true;
    total += value;
  }
  if (!any) return;
  out->append("-- candidate sources (scored requests) --\n");
  for (const auto& [name, value] : metrics.counters) {
    if (name.compare(0, kPrefixLen, kPrefix) != 0) continue;
    const double share =
        total > 0 ? 100.0 * static_cast<double>(value) /
                        static_cast<double>(total)
                  : 0.0;
    Appendf(out, "  %-24s %10lld %6.2f%%\n",
            name.c_str() + kPrefixLen, static_cast<long long>(value), share);
  }
  out->push_back('\n');
}

void StatuszMetrics(const MetricsSnapshot& metrics, std::string* out) {
  if (!metrics.counters.empty()) {
    out->append("-- counters --\n");
    for (const auto& [name, value] : metrics.counters) {
      Appendf(out, "  %-40s %lld\n", name.c_str(),
              static_cast<long long>(value));
    }
  }
  if (!metrics.gauges.empty()) {
    out->append("-- gauges --\n");
    for (const auto& [name, value] : metrics.gauges) {
      Appendf(out, "  %-40s %.6g\n", name.c_str(), value);
    }
  }
  if (!metrics.histograms.empty()) {
    out->append("-- histograms --\n");
    for (const auto& [name, h] : metrics.histograms) {
      Appendf(out, "  %-40s count=%lld sum=%.6g mean=%.6g\n", name.c_str(),
              static_cast<long long>(h.count), h.sum,
              h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    }
  }
}

}  // namespace

std::string ExportStatusz(const StatuszData& data) {
  std::string out;
  Appendf(&out, "=== %s statusz ===\n", data.service_name);
  Appendf(&out, "uptime_seconds: %.3f\n\n",
          static_cast<double>(data.uptime_ns) / 1e9);
  if (data.window != nullptr) {
    StatuszWindows(*data.window, &out);
    out.push_back('\n');
  }
  if (data.stages != nullptr && !data.stages->empty()) {
    StatuszStages(*data.stages, &out);
    out.push_back('\n');
  }
  if (data.recorder != nullptr) {
    StatuszRecorder(*data.recorder, &out);
    out.push_back('\n');
  }
  if (data.metrics != nullptr) {
    StatuszCandidateSources(*data.metrics, &out);
    StatuszMetrics(*data.metrics, &out);
  }
  return out;
}

std::string ExportMetricsJson(const StatuszData& data) {
  JsonWriter w;
  w.BeginObject();
  w.Key("service").String(data.service_name);
  w.Key("uptime_seconds").Number(static_cast<double>(data.uptime_ns) / 1e9);
  if (data.metrics != nullptr) {
    w.Key("metrics");
    data.metrics->WriteJson(&w);
  }
  if (data.window != nullptr) {
    w.Key("windows");
    data.window->WriteJson(&w);
  }
  if (data.stages != nullptr) {
    w.Key("stages").BeginArray();
    for (const StageStat& s : *data.stages) {
      w.BeginObject();
      w.Key("stage").String(s.name);
      w.Key("sampled").Int(s.sampled);
      w.Key("mean_us").Number(s.mean_us);
      w.Key("total_us").Number(s.total_us);
      w.EndObject();
    }
    w.EndArray();
  }
  if (data.recorder != nullptr) {
    w.Key("flight_recorder");
    data.recorder->WriteJson(&w);
  }
  w.EndObject();
  return w.str();
}

std::string ExportPrometheus(const StatuszData& data) {
  std::string out;
  if (data.metrics != nullptr) {
    for (const auto& [name, value] : data.metrics->counters) {
      const std::string n = SanitizeMetricName(name);
      Appendf(&out, "# TYPE %s counter\n%s %lld\n", n.c_str(), n.c_str(),
              static_cast<long long>(value));
    }
    for (const auto& [name, value] : data.metrics->gauges) {
      const std::string n = SanitizeMetricName(name);
      Appendf(&out, "# TYPE %s gauge\n%s %.17g\n", n.c_str(), n.c_str(),
              value);
    }
    for (const auto& [name, h] : data.metrics->histograms) {
      const std::string n = SanitizeMetricName(name);
      Appendf(&out, "# TYPE %s histogram\n", n.c_str());
      int64_t cumulative = 0;
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        cumulative += h.buckets[i];
        if (i < h.bounds.size()) {
          Appendf(&out, "%s_bucket{le=\"%.17g\"} %lld\n", n.c_str(),
                  h.bounds[i], static_cast<long long>(cumulative));
        } else {
          Appendf(&out, "%s_bucket{le=\"+Inf\"} %lld\n", n.c_str(),
                  static_cast<long long>(cumulative));
        }
      }
      Appendf(&out, "%s_sum %.17g\n%s_count %lld\n", n.c_str(), h.sum,
              n.c_str(), static_cast<long long>(h.count));
    }
  }
  if (data.window != nullptr) {
    struct NamedValue {
      const char* name;
      double WindowStats::*field;
    };
    static constexpr NamedValue kWindowGauges[] = {
        {"subrec_window_qps", &WindowStats::qps},
        {"subrec_window_mean_us", &WindowStats::mean_us},
        {"subrec_window_p50_us", &WindowStats::p50_us},
        {"subrec_window_p95_us", &WindowStats::p95_us},
        {"subrec_window_p99_us", &WindowStats::p99_us},
        {"subrec_window_error_rate", &WindowStats::error_rate},
        {"subrec_window_cache_hit_rate", &WindowStats::cache_hit_rate},
        {"subrec_window_shed_rate", &WindowStats::shed_rate},
    };
    for (const NamedValue& g : kWindowGauges) {
      Appendf(&out, "# TYPE %s gauge\n", g.name);
      for (const WindowStats& s : data.window->windows) {
        Appendf(&out, "%s{window=\"%s\"} %.17g\n", g.name,
                WindowLabel(s.window_seconds).c_str(), s.*(g.field));
      }
    }
  }
  return out;
}

}  // namespace subrec::obs
