#include "obs/run_report.h"

#include <cstdlib>
#include <ctime>
#include <fstream>
#include <utility>

#include "obs/json_writer.h"

namespace subrec::obs {

RunReport::RunReport(std::string name)
    : name_(std::move(name)), start_ns_(NowNs()) {}

void RunReport::AddScalar(const std::string& name, double value) {
  scalars_[name] = value;
}

void RunReport::AddString(const std::string& key, const std::string& value) {
  strings_[key] = value;
}

void RunReport::CaptureMetrics() {
  metrics_ = MetricsRegistry::Global().Snapshot();
  has_metrics_ = true;
}

void RunReport::CaptureSpans() {
  spans_ = TraceRecorder::Global().AggregateTotals();
  spans_dropped_ = TraceRecorder::Global().DroppedSpans();
  has_spans_ = true;
}

double RunReport::ElapsedSeconds() const {
  return static_cast<double>(NowNs() - start_ns_) / 1e9;
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("report").String(name_);
  w.Key("schema_version").Int(1);
  w.Key("build").String(build_id_);
  w.Key("dataset").String(dataset_);
  w.Key("unix_time").Int(static_cast<int64_t>(std::time(nullptr)));
  w.Key("elapsed_seconds").Number(ElapsedSeconds());
  w.Key("scalars").BeginObject();
  for (const auto& [name, value] : scalars_) w.Key(name).Number(value);
  w.EndObject();
  w.Key("strings").BeginObject();
  for (const auto& [key, value] : strings_) w.Key(key).String(value);
  w.EndObject();
  if (has_metrics_) {
    w.Key("metrics");
    metrics_.WriteJson(&w);
  }
  if (has_spans_) {
    w.Key("spans").BeginArray();
    for (const SpanTotal& s : spans_) {
      w.BeginObject();
      w.Key("name").String(s.name);
      w.Key("count").Int(s.count);
      w.Key("total_ms").Number(static_cast<double>(s.total_ns) / 1e6);
      w.EndObject();
    }
    w.EndArray();
    // Nonzero means the span totals above undercount: the ring wrapped.
    w.Key("spans_dropped").Int(spans_dropped_);
  }
  w.EndObject();
  return w.str();
}

Status RunReport::WriteFile(const std::string& dir,
                            std::string* out_path) const {
  std::string target_dir = dir;
  if (target_dir.empty()) {
    const char* env = std::getenv("SUBREC_REPORT_DIR");
    if (env != nullptr && env[0] != '\0') target_dir = env;
  }
  std::string path;
  if (!target_dir.empty()) {
    path = target_dir;
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("RunReport: cannot open " + path + " for write");
  }
  out << ToJson() << "\n";
  out.close();
  if (out.fail()) {
    return Status::Internal("RunReport: short write to " + path);
  }
  if (out_path != nullptr) *out_path = path;
  return Status::Ok();
}

}  // namespace subrec::obs
