#ifndef SUBREC_OBS_TRACE_H_
#define SUBREC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec::obs {

/// One completed span. `name` must be a string literal (or otherwise outlive
/// the recorder) — spans are recorded on hot paths and must not allocate.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  int tid = 0;
};

/// Per-span aggregate across the recorded window.
struct SpanTotal {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
};

/// Monotonic (steady-clock) nanoseconds since an arbitrary epoch.
int64_t NowNs();

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order).
/// Stable for the thread's lifetime; used for trace tids and log prefixes.
int DenseThreadId();

/// Process-wide bounded span recorder. Disabled by default: the only cost on
/// an instrumented path is one relaxed atomic load. When enabled, completed
/// spans land in a fixed-capacity ring buffer (oldest overwritten first)
/// behind a mutex — spans are coarse-grained (an E-step, an epoch), so
/// contention is negligible.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Starts recording into a fresh ring of `capacity` spans.
  void Enable(size_t capacity = 1 << 16);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span; no-op while disabled.
  void Record(const char* name, int64_t start_ns, int64_t duration_ns);

  /// Recorded spans, oldest first. `dropped` (if non-null) receives the
  /// number of spans overwritten by ring wraparound.
  std::vector<TraceEvent> Events(int64_t* dropped = nullptr) const;

  /// Spans overwritten by ring wraparound this window. Overwrites also
  /// increment the "obs.trace.dropped" registry counter as they happen, so
  /// a ring sized too small for its window is visible without a dump.
  int64_t DroppedSpans() const;

  void Clear();

  /// Per-name count and wall-time totals over the recorded window, sorted
  /// by descending total time.
  std::vector<SpanTotal> AggregateTotals() const;

  /// Serializes the window as a Chrome trace_event JSON array (load via
  /// chrome://tracing or https://ui.perfetto.dev). Timestamps are rebased
  /// so the earliest span starts at ts=0.
  std::string ChromeTraceJson() const;

 private:
  // The disabled fast path is ONE relaxed load of this flag — Record and
  // TraceSpan must not touch mu_ before checking it.
  std::atomic<bool> enabled_{false};
  mutable common::Mutex mu_;
  std::vector<TraceEvent> ring_ SUBREC_GUARDED_BY(mu_);
  size_t capacity_ SUBREC_GUARDED_BY(mu_) = 0;
  // Ring write cursor.
  size_t next_ SUBREC_GUARDED_BY(mu_) = 0;
  // Spans ever recorded this window.
  int64_t total_ SUBREC_GUARDED_BY(mu_) = 0;
};

/// RAII scoped timer: measures from construction to destruction and hands
/// the span to the global recorder. Prefer the SUBREC_TRACE_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceRecorder::Global().enabled()) {
      name_ = name;
      start_ns_ = NowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().Record(name_, start_ns_, NowNs() - start_ns_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace subrec::obs

#define SUBREC_TRACE_CONCAT_INNER_(a, b) a##b
#define SUBREC_TRACE_CONCAT_(a, b) SUBREC_TRACE_CONCAT_INNER_(a, b)

/// Times the enclosing scope under `name` (a string literal such as
/// "gmm/e_step"). Near-zero cost when tracing is disabled.
#define SUBREC_TRACE_SPAN(name) \
  ::subrec::obs::TraceSpan SUBREC_TRACE_CONCAT_(subrec_trace_span_, \
                                                __LINE__)(name)

#endif  // SUBREC_OBS_TRACE_H_
