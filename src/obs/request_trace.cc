#include "obs/request_trace.h"

#include "obs/json_writer.h"

namespace subrec::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueue:
      return "queue";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kCandidates:
      return "candidates";
    case Stage::kScore:
      return "score";
    case Stage::kSelect:
      return "select";
    case Stage::kCacheInsert:
      return "cache_insert";
    case Stage::kScoreGather:
      return "score_gather";
    case Stage::kScoreGemm:
      return "score_gemm";
    case Stage::kScoreEpilogue:
      return "score_epilogue";
    case Stage::kNumStages:
      break;
  }
  return "unknown";
}

void RequestTrace::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("id").Int(id);
  w->Key("user").Int(user);
  w->Key("n").Int(n);
  w->Key("generation").Int(static_cast<int64_t>(generation));
  w->Key("start_ns").Int(start_ns);
  w->Key("total_us").Number(static_cast<double>(total_ns) / 1e3);
  w->Key("candidate_count").Int(candidate_count);
  w->Key("result_count").Int(result_count);
  w->Key("cache_hit").Bool(cache_hit);
  w->Key("error").Bool(error);
  w->Key("shed").Bool(shed);
  if (candidate_source != nullptr) {
    w->Key("candidate_source").String(candidate_source);
  }
  w->Key("stages_us").BeginObject();
  for (int s = 0; s < kNumStages; ++s) {
    if (stage_ns[s] == 0) continue;
    w->Key(StageName(static_cast<Stage>(s)))
        .Number(static_cast<double>(stage_ns[s]) / 1e3);
  }
  w->EndObject();
  w->EndObject();
}

}  // namespace subrec::obs
