#include "obs/serve_observer.h"

#include <utility>

namespace subrec::obs {

ServeObserver::ServeObserver(ServeObserverOptions options)
    : options_(std::move(options)) {
  if (!options_.enabled) return;
  window_ = std::make_unique<WindowedAggregator>(options_.window);
  recorder_ = std::make_unique<FlightRecorder>(options_.recorder);
  enabled_.store(true, std::memory_order_relaxed);
}

int64_t ServeObserver::OnComplete(int64_t now_ns, double latency_us,
                                  bool error, bool cache_hit, bool shed,
                                  const RequestTrace* trace) {
  if (!enabled()) return 0;
  window_->Record(now_ns, latency_us, error, cache_hit, shed);
  if (trace == nullptr) return 0;
  for (int s = 0; s < kNumStages; ++s) {
    if (trace->stage_ns[s] == 0) continue;
    stage_total_ns_[s].fetch_add(trace->stage_ns[s],
                                 std::memory_order_relaxed);
    stage_sampled_[s].fetch_add(1, std::memory_order_relaxed);
  }
  return recorder_->Record(*trace);
}

std::vector<StageStat> ServeObserver::StageStats() const {
  std::vector<StageStat> out;
  if (!enabled()) return out;
  out.reserve(kNumStages);
  for (int s = 0; s < kNumStages; ++s) {
    StageStat stat;
    stat.name = StageName(static_cast<Stage>(s));
    stat.sampled = stage_sampled_[s].load(std::memory_order_relaxed);
    stat.total_us =
        static_cast<double>(
            stage_total_ns_[s].load(std::memory_order_relaxed)) /
        1e3;
    stat.mean_us = stat.sampled > 0
                       ? stat.total_us / static_cast<double>(stat.sampled)
                       : 0.0;
    out.push_back(stat);
  }
  return out;
}

}  // namespace subrec::obs
