#include "obs/window.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/json_writer.h"
#include "obs/trace.h"

namespace subrec::obs {
namespace {

std::vector<double> DefaultLatencyBoundsUs() {
  return {1.0,    2.0,    5.0,     10.0,    25.0,    50.0,     100.0,   250.0,
          500.0,  1000.0, 2500.0,  5000.0,  10000.0, 25000.0,  50000.0, 100000.0};
}

std::vector<int64_t> DefaultWindowsNs() {
  return {1'000'000'000, 10'000'000'000, 60'000'000'000};
}

/// Merged counters for one rolling window while a snapshot walks stripes.
struct Merged {
  int64_t first_epoch = 0;  // inclusive lower edge of the window
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t cache_hits = 0;
  int64_t shed = 0;
  double sum_us = 0.0;
  std::vector<int64_t> buckets;
};

/// Interpolated quantile over fixed-bound bucket counts. The value inside a
/// bucket is assumed uniform between its edges; the overflow bucket reports
/// the last finite bound (there is no honest upper edge to interpolate to).
double BucketQuantile(const std::vector<double>& bounds,
                      const std::vector<int64_t>& buckets, int64_t total,
                      double q) {
  if (total <= 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double next = cum + static_cast<double>(buckets[i]);
    if (next >= target && buckets[i] > 0) {
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = (i == 0) ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (target - cum) / static_cast<double>(buckets[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

const WindowStats& WindowSnapshot::Closest(double seconds) const {
  static const WindowStats kEmpty;
  const WindowStats* best = &kEmpty;
  double best_gap = -1.0;
  for (const WindowStats& w : windows) {
    const double gap = std::abs(w.window_seconds - seconds);
    if (best_gap < 0.0 || gap < best_gap) {
      best_gap = gap;
      best = &w;
    }
  }
  return *best;
}

void WindowSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("now_ns").Int(now_ns);
  w->Key("windows").BeginArray();
  for (const WindowStats& s : windows) {
    w->BeginObject();
    w->Key("seconds").Number(s.window_seconds);
    w->Key("requests").Int(s.requests);
    w->Key("errors").Int(s.errors);
    w->Key("cache_hits").Int(s.cache_hits);
    w->Key("shed").Int(s.shed);
    w->Key("qps").Number(s.qps);
    w->Key("mean_us").Number(s.mean_us);
    w->Key("p50_us").Number(s.p50_us);
    w->Key("p95_us").Number(s.p95_us);
    w->Key("p99_us").Number(s.p99_us);
    w->Key("error_rate").Number(s.error_rate);
    w->Key("cache_hit_rate").Number(s.cache_hit_rate);
    w->Key("shed_rate").Number(s.shed_rate);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

WindowedAggregator::WindowedAggregator(WindowOptions options)
    : options_(std::move(options)) {
  SUBREC_CHECK(options_.slice_ns > 0);
  SUBREC_CHECK(options_.num_slices > 0);
  SUBREC_CHECK(options_.num_stripes > 0);
  if (options_.latency_bounds_us.empty()) {
    options_.latency_bounds_us = DefaultLatencyBoundsUs();
  }
  SUBREC_CHECK(
      std::is_sorted(options_.latency_bounds_us.begin(),
                     options_.latency_bounds_us.end()));
  if (options_.window_ns.empty()) options_.window_ns = DefaultWindowsNs();
  for (int64_t w : options_.window_ns) {
    SUBREC_CHECK(w > 0 && w % options_.slice_ns == 0);
    SUBREC_CHECK(static_cast<size_t>(w / options_.slice_ns) <=
                 options_.num_slices);
  }
  stripes_.reserve(options_.num_stripes);
  const size_t num_buckets = options_.latency_bounds_us.size() + 1;
  for (size_t s = 0; s < options_.num_stripes; ++s) {
    auto stripe = std::make_unique<Stripe>();
    common::MutexLock lock(&stripe->mu);
    stripe->slices.resize(options_.num_slices);
    for (Slice& slice : stripe->slices) slice.buckets.assign(num_buckets, 0);
    stripes_.push_back(std::move(stripe));
  }
}

size_t WindowedAggregator::BucketFor(double latency_us) const {
  const std::vector<double>& bounds = options_.latency_bounds_us;
  return static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), latency_us) -
      bounds.begin());
}

void WindowedAggregator::Record(int64_t now_ns, double latency_us, bool error,
                                bool cache_hit, bool shed) {
  if (now_ns < 0) now_ns = 0;
  const int64_t epoch = now_ns / options_.slice_ns;
  Stripe& stripe =
      *stripes_[static_cast<size_t>(DenseThreadId()) % stripes_.size()];
  common::MutexLock lock(&stripe.mu);
  Slice& slice =
      stripe.slices[static_cast<size_t>(epoch) % stripe.slices.size()];
  if (slice.epoch != epoch) {
    // The ring wrapped (or this slot was never written): retire the stale
    // slice in place. The bucket vector is reused, so this never allocates.
    slice.epoch = epoch;
    slice.requests = 0;
    slice.errors = 0;
    slice.cache_hits = 0;
    slice.shed = 0;
    slice.sum_us = 0.0;
    std::fill(slice.buckets.begin(), slice.buckets.end(), int64_t{0});
  }
  slice.requests += 1;
  if (error) slice.errors += 1;
  if (cache_hit) slice.cache_hits += 1;
  if (shed) slice.shed += 1;
  slice.sum_us += latency_us;
  slice.buckets[BucketFor(latency_us)] += 1;
}

WindowSnapshot WindowedAggregator::Snapshot(int64_t now_ns) const {
  if (now_ns < 0) now_ns = 0;
  const int64_t cur_epoch = now_ns / options_.slice_ns;
  const size_t num_buckets = options_.latency_bounds_us.size() + 1;

  std::vector<Merged> merged(options_.window_ns.size());
  for (size_t w = 0; w < merged.size(); ++w) {
    const int64_t span = options_.window_ns[w] / options_.slice_ns;
    merged[w].first_epoch = cur_epoch - span + 1;
    merged[w].buckets.assign(num_buckets, 0);
  }

  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    common::MutexLock lock(&stripe->mu);
    for (const Slice& slice : stripe->slices) {
      if (slice.epoch < 0 || slice.epoch > cur_epoch) continue;
      for (Merged& m : merged) {
        if (slice.epoch < m.first_epoch) continue;
        m.requests += slice.requests;
        m.errors += slice.errors;
        m.cache_hits += slice.cache_hits;
        m.shed += slice.shed;
        m.sum_us += slice.sum_us;
        for (size_t b = 0; b < num_buckets; ++b) {
          m.buckets[b] += slice.buckets[b];
        }
      }
    }
  }

  WindowSnapshot snap;
  snap.now_ns = now_ns;
  snap.windows.resize(merged.size());
  for (size_t w = 0; w < merged.size(); ++w) {
    const Merged& m = merged[w];
    WindowStats& s = snap.windows[w];
    s.window_seconds =
        static_cast<double>(options_.window_ns[w]) / 1e9;
    s.requests = m.requests;
    s.errors = m.errors;
    s.cache_hits = m.cache_hits;
    s.shed = m.shed;
    s.qps = static_cast<double>(m.requests) / s.window_seconds;
    if (m.requests > 0) {
      const double n = static_cast<double>(m.requests);
      s.mean_us = m.sum_us / n;
      s.error_rate = static_cast<double>(m.errors) / n;
      s.cache_hit_rate = static_cast<double>(m.cache_hits) / n;
      s.shed_rate = static_cast<double>(m.shed) / n;
    }
    s.p50_us = BucketQuantile(options_.latency_bounds_us, m.buckets,
                              m.requests, 0.50);
    s.p95_us = BucketQuantile(options_.latency_bounds_us, m.buckets,
                              m.requests, 0.95);
    s.p99_us = BucketQuantile(options_.latency_bounds_us, m.buckets,
                              m.requests, 0.99);
  }
  return snap;
}

}  // namespace subrec::obs
