#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace subrec::obs {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int DenseThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(size_t capacity) {
  SUBREC_CHECK_GT(capacity, 0u);
  common::MutexLock lock(&mu_);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(std::min<size_t>(capacity, 1024));
  next_ = 0;
  total_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Record(const char* name, int64_t start_ns,
                           int64_t duration_ns) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.duration_ns = duration_ns;
  ev.tid = DenseThreadId();
  // Overwrites are silent data loss for the eventual dump; count them so a
  // ring sized below its recording window shows up in the metrics.
  static Counter* const dropped_counter =
      MetricsRegistry::Global().GetCounter("obs.trace.dropped");
  bool overwrote = false;
  {
    common::MutexLock lock(&mu_);
    if (capacity_ == 0) return;  // raced with Disable+reconfigure
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
    } else {
      ring_[next_] = ev;
      next_ = (next_ + 1) % capacity_;
      overwrote = true;
    }
    ++total_;
  }
  if (overwrote) dropped_counter->Increment();
}

int64_t TraceRecorder::DroppedSpans() const {
  common::MutexLock lock(&mu_);
  return total_ - static_cast<int64_t>(ring_.size());
}

std::vector<TraceEvent> TraceRecorder::Events(int64_t* dropped) const {
  common::MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest-first: once the ring has wrapped, next_ points at the oldest slot.
  if (ring_.size() == capacity_ && capacity_ > 0) {
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  } else {
    out = ring_;
  }
  if (dropped != nullptr) {
    *dropped = total_ - static_cast<int64_t>(ring_.size());
  }
  return out;
}

void TraceRecorder::Clear() {
  common::MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::vector<SpanTotal> TraceRecorder::AggregateTotals() const {
  const std::vector<TraceEvent> events = Events();
  std::map<std::string_view, SpanTotal> by_name;
  for (const TraceEvent& ev : events) {
    SpanTotal& t = by_name[ev.name];
    if (t.name.empty()) t.name = ev.name;
    ++t.count;
    t.total_ns += ev.duration_ns;
  }
  std::vector<SpanTotal> out;
  out.reserve(by_name.size());
  for (auto& [name, total] : by_name) out.push_back(std::move(total));
  std::sort(out.begin(), out.end(), [](const SpanTotal& a, const SpanTotal& b) {
    return a.total_ns > b.total_ns;
  });
  return out;
}

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  int64_t base_ns = 0;
  for (const TraceEvent& ev : events) {
    if (base_ns == 0 || ev.start_ns < base_ns) base_ns = ev.start_ns;
  }
  JsonWriter w;
  w.BeginArray();
  for (const TraceEvent& ev : events) {
    // Complete-event ("ph":"X") records; ts/dur are in microseconds per the
    // trace_event spec.
    w.BeginObject();
    w.Key("name").String(ev.name);
    w.Key("cat").String("subrec");
    w.Key("ph").String("X");
    w.Key("ts").Number(static_cast<double>(ev.start_ns - base_ns) / 1e3);
    w.Key("dur").Number(static_cast<double>(ev.duration_ns) / 1e3);
    w.Key("pid").Int(1);
    w.Key("tid").Int(ev.tid);
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

}  // namespace subrec::obs
