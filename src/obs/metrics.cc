#include "obs/metrics.h"

#include <utility>

#include "common/check.h"
#include "obs/json_writer.h"

namespace subrec::obs {
namespace {

/// Portable atomic double accumulation: C++20 fetch_add on atomic<double>
/// is not universally available, so spin a compare-exchange.
void AtomicAdd(std::atomic<double>* target, double v) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + v,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SUBREC_CHECK(!bounds_.empty()) << "Histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SUBREC_CHECK(bounds_[i - 1] < bounds_[i])
        << "Histogram bounds must be strictly increasing";
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  // Linear scan: bucket vectors here are small (<= ~20 edges) and the scan
  // is branch-predictable, so it beats binary search at this size.
  size_t idx = bounds_.size();  // overflow bucket by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      idx = i;
      break;
    }
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void MetricsSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    w->Key(name).Int(value);
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) {
    w->Key(name).Number(value);
  }
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms) {
    w->Key(name).BeginObject();
    w->Key("bounds").BeginArray();
    for (const double b : h.bounds) w->Number(b);
    w->EndArray();
    w->Key("buckets").BeginArray();
    for (const int64_t c : h.buckets) w->Int(c);
    w->EndArray();
    w->Key("count").Int(h.count);
    w->Key("sum").Number(h.sum);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  common::MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  common::MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  common::MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  } else {
    // First registration wins; a second call site with different bounds is
    // a programming error (its observations would land in buckets it never
    // asked for), caught here in debug/sanitizer builds.
    SUBREC_DCHECK(it->second->bounds() == bounds)
        << "GetHistogram(\"" << std::string(name)
        << "\"): bounds differ from the first registration";
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  common::MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.buckets = h->bucket_counts();
    data.count = h->count();
    data.sum = h->sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  common::MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

size_t MetricsRegistry::NumInstruments() const {
  common::MutexLock lock(&mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace subrec::obs
