#ifndef SUBREC_OBS_RUN_REPORT_H_
#define SUBREC_OBS_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::obs {

/// Machine-readable record of one experiment run, written as
/// BENCH_<name>.json so the perf trajectory of every bench is diffable
/// across commits. Typical bench flow:
///
///   obs::RunReport report("table1_sem_correlation");
///   report.set_build_id(kGitDescribe);
///   ... run the experiment, AddScalar("spearman.sem.cs", 0.81) ...
///   report.CaptureMetrics();
///   report.CaptureSpans();
///   report.WriteFile().ok();
class RunReport {
 public:
  explicit RunReport(std::string name);

  void set_build_id(std::string build_id) { build_id_ = std::move(build_id); }
  void set_dataset(std::string dataset) { dataset_ = std::move(dataset); }

  /// Headline numbers (nDCG, Spearman, wall seconds, ...). Re-adding a name
  /// overwrites.
  void AddScalar(const std::string& name, double value);
  /// Free-form annotations (preset names, modes).
  void AddString(const std::string& key, const std::string& value);

  /// Snapshots the global metrics registry into the report.
  void CaptureMetrics();
  /// Captures per-span totals from the global trace recorder, plus the
  /// count of spans lost to ring wraparound ("spans_dropped" in the JSON).
  void CaptureSpans();

  /// Serializes the full report as a JSON object.
  std::string ToJson() const;

  /// Writes BENCH_<name>.json into `dir`; empty dir means the
  /// SUBREC_REPORT_DIR environment variable, falling back to the current
  /// directory. Returns the written path via `out_path` when non-null.
  Status WriteFile(const std::string& dir = "",
                   std::string* out_path = nullptr) const;

  const std::string& name() const { return name_; }
  /// True when AddScalar has recorded `name`.
  bool has_scalar(const std::string& name) const {
    return scalars_.count(name) > 0;
  }
  /// The recorded value of scalar `name`, or `fallback` when absent.
  double scalar_or(const std::string& name, double fallback) const {
    const auto it = scalars_.find(name);
    return it != scalars_.end() ? it->second : fallback;
  }
  /// Seconds since this report was constructed (monotonic clock).
  double ElapsedSeconds() const;

 private:
  std::string name_;
  std::string build_id_;
  std::string dataset_;
  int64_t start_ns_ = 0;
  std::map<std::string, double> scalars_;
  std::map<std::string, std::string> strings_;
  MetricsSnapshot metrics_;
  bool has_metrics_ = false;
  std::vector<SpanTotal> spans_;
  int64_t spans_dropped_ = 0;
  bool has_spans_ = false;
};

}  // namespace subrec::obs

#endif  // SUBREC_OBS_RUN_REPORT_H_
