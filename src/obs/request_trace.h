#ifndef SUBREC_OBS_REQUEST_TRACE_H_
#define SUBREC_OBS_REQUEST_TRACE_H_

#include <cstdint>

#include "obs/trace.h"

namespace subrec::obs {

class JsonWriter;

/// Stages of one online recommendation request, in hot-path order. The
/// indices are stable (they are serialized into reports), so new stages
/// append before kNumStages.
enum class Stage : int {
  /// Time between SubmitBatch enqueue and the worker picking the request up.
  kQueue = 0,
  /// Result-cache probe (sharded LRU lookup).
  kCacheLookup,
  /// Candidate retrieval (CandidateIndex lookup).
  kCandidates,
  /// Pairwise scoring of every candidate against the profile.
  kScore,
  /// Top-N selection over the scored candidates.
  kSelect,
  /// Result-cache insert after a miss.
  kCacheInsert,
  /// Batched-scorer breakdown (sub-stages of kScore, recorded only on the
  /// gemm path): candidate-row gather/transpose, the blocked GEMM itself,
  /// and the fused sigmoid-mean epilogue.
  kScoreGather,
  kScoreGemm,
  kScoreEpilogue,
  kNumStages,
};

inline constexpr int kNumStages = static_cast<int>(Stage::kNumStages);

/// Stable short name ("queue", "cache_lookup", ...) used for report scalars
/// and statusz rows.
const char* StageName(Stage stage);

/// Per-request record of one pass through the serving path: identity tags,
/// outcome flags, and per-stage monotonic timings. Plain data with no heap
/// members — constructing one on the request stack never allocates, so the
/// sampling-off fast path stays allocation-free. String fields are
/// `const char*` pointing at static storage for the same reason.
struct RequestTrace {
  /// Assigned by the observer when the completed trace is recorded;
  /// 0 = never recorded.
  int64_t id = 0;
  int32_t user = -1;
  int32_t n = 0;
  uint64_t generation = 0;
  /// Monotonic submit time (NowNs clock) and total submit-to-done wall.
  int64_t start_ns = 0;
  int64_t total_ns = 0;
  int32_t candidate_count = 0;
  int32_t result_count = 0;
  bool cache_hit = false;
  bool error = false;
  /// Reserved for admission control: request rejected by load shedding.
  bool shed = false;
  /// Static-storage name of the candidate source (serve::CandidateSourceName)
  /// or null when unknown.
  const char* candidate_source = nullptr;
  int64_t stage_ns[kNumStages] = {};

  /// Emits the trace as one JSON object (caller positions the writer).
  /// Stages with zero recorded time are omitted.
  void WriteJson(JsonWriter* w) const;
};

/// RAII stage timer: adds the scope's wall time to `trace->stage_ns[stage]`.
/// A null trace makes construction and destruction complete no-ops, so call
/// sites stay branch-cheap on unsampled requests.
class StageTimer {
 public:
  StageTimer(RequestTrace* trace, Stage stage) : trace_(trace) {
    if (trace_ != nullptr) {
      stage_ = stage;
      begin_ns_ = NowNs();
    }
  }
  ~StageTimer() {
    if (trace_ != nullptr) {
      trace_->stage_ns[static_cast<int>(stage_)] += NowNs() - begin_ns_;
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  RequestTrace* trace_ = nullptr;
  Stage stage_ = Stage::kQueue;
  int64_t begin_ns_ = 0;
};

}  // namespace subrec::obs

#endif  // SUBREC_OBS_REQUEST_TRACE_H_
