#ifndef SUBREC_OBS_EXPOSITION_H_
#define SUBREC_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/serve_observer.h"
#include "obs/window.h"

namespace subrec::obs {

/// Everything a statusz/metrics page can show. All pointers are optional —
/// null sections are simply omitted — and nothing is owned; the caller keeps
/// the snapshots alive for the duration of the Export* call.
struct StatuszData {
  const char* service_name = "subrec";
  int64_t uptime_ns = 0;
  const MetricsSnapshot* metrics = nullptr;
  const WindowSnapshot* window = nullptr;
  const std::vector<StageStat>* stages = nullptr;
  const FlightRecorder* recorder = nullptr;
};

/// Human-readable plain-text status page: rolling-window table, per-stage
/// latency breakdown, flight-recorder slowest/exemplar digest, and the
/// lifetime counters/gauges/histograms. Dependency-free (no printf-to-stream
/// — the page is returned as a string for the caller to route).
std::string ExportStatusz(const StatuszData& data);

/// Machine-readable JSON with the same sections as ExportStatusz:
/// {"service":...,"metrics":{...},"windows":{...},"stages":[...],
///  "flight_recorder":{...}}. Always a complete, parseable document.
std::string ExportMetricsJson(const StatuszData& data);

/// Prometheus text exposition (version 0.0.4 line format) of the lifetime
/// registry snapshot plus per-window gauges. Instrument names are sanitized
/// to [a-zA-Z0-9_:] with dots mapped to underscores; histograms emit
/// cumulative _bucket{le="..."} series plus _sum and _count.
std::string ExportPrometheus(const StatuszData& data);

}  // namespace subrec::obs

#endif  // SUBREC_OBS_EXPOSITION_H_
