#ifndef SUBREC_OBS_WINDOW_H_
#define SUBREC_OBS_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec::obs {

class JsonWriter;

/// Configuration of the rolling-window aggregator. The defaults give 64
/// seconds of history at 500ms resolution, which is enough to serve 1s /
/// 10s / 60s windows.
struct WindowOptions {
  /// Width of one time slice. Rolling windows are assembled from whole
  /// slices, so this is the resolution of every rate and percentile.
  int64_t slice_ns = 500'000'000;
  /// Ring length per stripe; slice_ns * num_slices is the usable history.
  size_t num_slices = 128;
  /// Independent lock stripes. Every recording thread hashes (by dense
  /// thread id) to one stripe, so writers on different stripes never
  /// contend; snapshots merge all stripes.
  size_t num_stripes = 8;
  /// Upper bucket edges for the per-slice latency histogram, in
  /// microseconds; empty selects a default 1us..100ms grid.
  std::vector<double> latency_bounds_us;
  /// Window lengths served by Snapshot(); empty selects {1s, 10s, 60s}.
  /// Each must be a multiple of slice_ns no longer than the ring.
  std::vector<int64_t> window_ns;
};

/// Aggregates over one rolling window.
struct WindowStats {
  double window_seconds = 0.0;
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t cache_hits = 0;
  int64_t shed = 0;
  double qps = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double error_rate = 0.0;
  double cache_hit_rate = 0.0;
  double shed_rate = 0.0;
};

/// Point-in-time view over every configured rolling window.
struct WindowSnapshot {
  int64_t now_ns = 0;
  std::vector<WindowStats> windows;

  /// The stats for the window closest to `seconds` long (empty snapshot
  /// returns a zero WindowStats).
  const WindowStats& Closest(double seconds) const;

  /// Emits {"windows":[{"seconds":...,"qps":...},...]} as one value.
  void WriteJson(JsonWriter* w) const;
};

/// Lock-striped ring of fixed time-slice histogram/counter buckets: every
/// completed request lands in the slice covering its completion time, and
/// rolling 1s/10s/60s latency percentiles, QPS, and error/cache-hit/shed
/// rates are read back by merging the slices inside each window — all
/// without ever resetting the process-lifetime registry instruments.
///
/// Record is wait-free against other stripes and allocation-free: all slice
/// storage is laid out at construction. Timestamps come from the caller
/// (obs::NowNs in production) so tests drive the clock explicitly.
class WindowedAggregator {
 public:
  explicit WindowedAggregator(WindowOptions options = {});

  /// Folds one completed request into the slice covering `now_ns`.
  void Record(int64_t now_ns, double latency_us, bool error, bool cache_hit,
              bool shed);

  /// Merged view of every configured window ending at `now_ns`. Slices
  /// older than their window (or never written) are skipped, so a snapshot
  /// taken after a quiet period reports zero traffic rather than stale
  /// counts.
  WindowSnapshot Snapshot(int64_t now_ns) const;

  const WindowOptions& options() const { return options_; }

 private:
  /// One time slice of one stripe. `epoch` is the absolute slice index
  /// (now_ns / slice_ns) the data belongs to; a writer that lands on a slot
  /// holding an older epoch resets it first, which is how the ring ages out
  /// without a background thread.
  struct Slice {
    int64_t epoch = -1;
    int64_t requests = 0;
    int64_t errors = 0;
    int64_t cache_hits = 0;
    int64_t shed = 0;
    double sum_us = 0.0;
    std::vector<int64_t> buckets;  // latency_bounds_us.size() + 1
  };

  struct alignas(64) Stripe {
    mutable common::Mutex mu;
    std::vector<Slice> slices SUBREC_GUARDED_BY(mu);
  };

  size_t BucketFor(double latency_us) const;

  WindowOptions options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace subrec::obs

#endif  // SUBREC_OBS_WINDOW_H_
