#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace subrec::obs {

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    SUBREC_CHECK(out_.empty()) << "JsonWriter: two top-level values";
    return;
  }
  if (stack_.back() == Frame::kObject) {
    SUBREC_CHECK(pending_key_) << "JsonWriter: value inside object needs Key";
    pending_key_ = false;
    return;  // the comma was emitted by Key()
  }
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
}

void JsonWriter::Escape(std::string_view v) {
  out_ += '"';
  for (const char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  SUBREC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject)
      << "JsonWriter: EndObject without open object";
  SUBREC_CHECK(!pending_key_) << "JsonWriter: key without value";
  out_ += '}';
  stack_.pop_back();
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  SUBREC_CHECK(!stack_.empty() && stack_.back() == Frame::kArray)
      << "JsonWriter: EndArray without open array";
  out_ += ']';
  stack_.pop_back();
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  SUBREC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject)
      << "JsonWriter: Key outside object";
  SUBREC_CHECK(!pending_key_) << "JsonWriter: two keys in a row";
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
  Escape(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  Escape(v);
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  SUBREC_CHECK(balanced()) << "JsonWriter: str() on unbalanced document";
  return out_;
}

}  // namespace subrec::obs
