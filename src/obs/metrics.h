#ifndef SUBREC_OBS_METRICS_H_
#define SUBREC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec::obs {

class JsonWriter;

/// Monotonically increasing event count. Updates are single relaxed atomic
/// adds — safe and cheap from any thread.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bucket); one implicit overflow bucket catches the rest.
/// Observe is lock-free: one atomic add on the bucket plus count/sum
/// updates.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper edges; must be non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// bounds().size() + 1 buckets; the last is the overflow bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> bucket_counts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered instrument, detached from the
/// live registry (safe to read while training threads keep updating).
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<int64_t> buckets;  // bounds.size() + 1, overflow last
    int64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} as one
  /// value (callers position the writer, e.g. after a Key).
  void WriteJson(JsonWriter* w) const;
};

/// Process-wide named instrument registry. Lookup (Get*) takes a mutex and
/// is meant to run once per call site:
///
///   static Counter* const iters =
///       MetricsRegistry::Global().GetCounter("gmm.iterations");
///   iters->Increment();
///
/// after which updates are lock-free atomics. Returned pointers live for
/// the registry's lifetime (instruments are never deleted).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Finds or creates the named instrument.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Contract (deliberately Status-free so call sites stay one static
  /// lookup): a histogram name owns its bounds. The first registration
  /// wins; every later call for the same name must pass identical bounds —
  /// mismatched bounds are a programming error, SUBREC_DCHECK'd in
  /// debug/sanitizer builds and silently first-wins in release.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every instrument (pointers stay valid) — for tests and for
  /// isolating one experiment's metrics from the previous one's.
  void Reset();
  size_t NumInstruments() const;

 private:
  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SUBREC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SUBREC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SUBREC_GUARDED_BY(mu_);
};

}  // namespace subrec::obs

#endif  // SUBREC_OBS_METRICS_H_
