#ifndef SUBREC_SERVE_LRU_CACHE_H_
#define SUBREC_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec::serve {

/// Sharded LRU cache: the key hash picks a shard, each shard is an
/// independently-locked map + recency list, so concurrent lookups on
/// different shards never contend. Capacity is divided evenly across
/// shards (so eviction is per-shard approximate LRU, the standard
/// trade-off). Hit/miss tallies are process-cheap relaxed atomics.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  ShardedLruCache(size_t capacity, size_t num_shards)
      : per_shard_capacity_((capacity + num_shards - 1) / num_shards) {
    SUBREC_CHECK_GT(capacity, 0u);
    SUBREC_CHECK_GT(num_shards, 0u);
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
      shards_.push_back(std::make_unique<Shard>());
  }

  /// Returns a copy of the cached value and refreshes its recency.
  std::optional<V> Get(const K& key) {
    Shard& shard = ShardFor(key);
    common::MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Inserts or overwrites; evicts the shard's least-recent entry on
  /// overflow.
  void Put(const K& key, V value) {
    Shard& shard = ShardFor(key);
    common::MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.map[key] = shard.order.begin();
    if (shard.map.size() > per_shard_capacity_) {
      shard.map.erase(shard.order.back().first);
      shard.order.pop_back();
    }
  }

  /// Drops every entry (explicit invalidation, e.g. on snapshot swap).
  void Clear() {
    for (auto& shard : shards_) {
      common::MutexLock lock(&shard->mu);
      shard->map.clear();
      shard->order.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      common::MutexLock lock(&shard->mu);
      total += shard->map.size();
    }
    return total;
  }

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable common::Mutex mu;
    // front = most recent
    std::list<std::pair<K, V>> order SUBREC_GUARDED_BY(mu);
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator,
                       Hash>
        map SUBREC_GUARDED_BY(mu);
  };

  Shard& ShardFor(const K& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t per_shard_capacity_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_LRU_CACHE_H_
