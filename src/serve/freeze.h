#ifndef SUBREC_SERVE_FREEZE_H_
#define SUBREC_SERVE_FREEZE_H_

#include <string>

#include "rec/nprec.h"
#include "rec/recommender.h"
#include "serve/snapshot.h"

namespace subrec::serve {

/// Freezes a fitted NPRec plus its RecContext into self-contained
/// SnapshotData: the model's forward-only vectors, the per-paper attributes
/// the CandidateIndex filters on, and one serving profile per author
/// (pre-split publications, most recent first, truncated to
/// `max_profile_papers`; -1 keeps all). The result has no pointers into the
/// corpus or the model — the offline/online cut happens here.
SnapshotData FreezeNPRec(const rec::RecContext& ctx, const rec::NPRec& model,
                         const std::string& dataset_name,
                         int max_profile_papers = -1);

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_FREEZE_H_
