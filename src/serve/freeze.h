#ifndef SUBREC_SERVE_FREEZE_H_
#define SUBREC_SERVE_FREEZE_H_

#include <string>

#include "ann/hnsw_index.h"
#include "rec/nprec.h"
#include "rec/recommender.h"
#include "serve/snapshot.h"

namespace subrec::serve {

struct FreezeOptions {
  /// Serving profiles keep at most this many pre-split publications per
  /// author (most recent first); -1 keeps all.
  int max_profile_papers = -1;
  /// Build an ann::HnswIndex over the influence vectors of post-split
  /// ("new") papers and embed its serialization in the snapshot. Freezing
  /// is the only place the index is ever built — online loads deserialize.
  bool build_ann_index = true;
  ann::HnswOptions ann;
};

/// Freezes a fitted NPRec plus its RecContext into self-contained
/// SnapshotData: the model's forward-only vectors, the per-paper attributes
/// the CandidateIndex filters on, one serving profile per author
/// (pre-split publications, most recent first), and — unless disabled —
/// the serialized ANN index over the new-paper pool. The result has no
/// pointers into the corpus or the model — the offline/online cut happens
/// here.
SnapshotData FreezeNPRec(const rec::RecContext& ctx, const rec::NPRec& model,
                         const std::string& dataset_name,
                         const FreezeOptions& options = {});

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_FREEZE_H_
