#ifndef SUBREC_SERVE_SERVICE_H_
#define SUBREC_SERVE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "ann/hnsw_index.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/serve_observer.h"
#include "serve/candidate_index.h"
#include "serve/frozen_scorer.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"
#include "serve/thread_pool.h"

namespace subrec::serve {

/// One immutable generation of serving data: scorer + candidate index +
/// user profiles, built from one snapshot. Shared read-only across worker
/// threads; replaced wholesale on hot reload.
struct ServingState {
  FrozenScorer scorer;
  CandidateIndex index;
  std::vector<std::vector<int32_t>> profiles;
  std::string model_name;
  std::string dataset;
  int32_t split_year = 0;
  /// The deserialized embedding index from the snapshot's ANN section, or
  /// null when the snapshot carried none. Kept alive for the generation so
  /// diagnostics (and future online re-query paths) can reach it.
  std::unique_ptr<const ann::HnswIndex> ann_index;

  /// Builds a state from parsed snapshot data. `index_options.min_year`
  /// of 0 is auto-filled with the snapshot's split year. Fails with
  /// InvalidArgument when RetrievalMode::kAnnEmbedding is requested but
  /// the snapshot has no ANN section — never a silent fallback — and
  /// propagates decode errors from a corrupt ANN section.
  static Result<std::shared_ptr<const ServingState>> FromSnapshot(
      SnapshotData data, CandidateIndexOptions index_options);
};

struct ServeOptions {
  size_t num_threads = 4;
  /// Total entries across all cache shards; 0 disables the result cache.
  size_t cache_capacity = 4096;
  size_t cache_shards = 16;
  /// Requests grouped into one pool task by SubmitBatch/TopNBatch.
  size_t batch_size = 8;
  /// Which scoring engine serves cache-missing requests. Both are
  /// bit-identical; kGemm additionally lets a batch chunk coalesce
  /// requests that share a candidate list into one stacked GEMM.
  ScorerMode scorer_mode = ScorerMode::kGemm;
  CandidateIndexOptions index;
  /// Serving-path observability (rolling windows, flight recorder, stage
  /// traces). Disabled by default: the only per-request cost is then one
  /// relaxed atomic load and zero allocations.
  obs::ServeObserverOptions observer;
};

struct RecRequest {
  int32_t user = -1;
  int n = 10;
};

struct RecResponse {
  Status status;
  std::vector<ScoredPaper> items;
  bool cache_hit = false;
  /// Monotonic timestamps for load-generator latency accounting:
  /// enqueue (SubmitBatch call / TopN entry) and completion.
  int64_t enqueue_ns = 0;
  int64_t done_ns = 0;
};

/// Online top-N recommendation front end: a bounded thread pool executes
/// batched requests against the current ServingState, memoizing per-user
/// result lists in a sharded LRU cache. Snapshot swap is one shared_ptr
/// store under a light mutex — in-flight requests finish on the old
/// generation, new requests see the new one, and the cache is invalidated
/// explicitly. Metrics flow through the global obs registry ("serve.*").
class RecommendService {
 public:
  explicit RecommendService(const ServeOptions& options);

  /// Shuts the pool down first so queued SubmitBatch tasks finish while
  /// cache_ and state_ are still alive.
  ~RecommendService();

  /// Reads, parses, and swaps in the snapshot at `path`.
  Status LoadSnapshotFile(const std::string& path);

  /// Hot reload: publishes `state` in one step and invalidates the cache.
  void Swap(std::shared_ptr<const ServingState> state);

  /// The current generation's state (nullptr before the first swap).
  std::shared_ptr<const ServingState> state() const;

  /// Scores one request synchronously on the calling thread. Thread-safe.
  RecResponse TopN(int32_t user, int n);

  /// Enqueues `requests` on the pool as batch_size-grouped tasks; the
  /// future resolves when the whole batch is done, responses in order.
  std::future<std::vector<RecResponse>> SubmitBatch(
      std::vector<RecRequest> requests);

  /// SubmitBatch + wait.
  std::vector<RecResponse> TopNBatch(const std::vector<RecRequest>& requests);

  int64_t cache_hits() const { return cache_ ? cache_->hits() : 0; }
  int64_t cache_misses() const { return cache_ ? cache_->misses() : 0; }
  uint64_t generation() const { return generation_.load(); }
  const ServeOptions& options() const { return options_; }

  /// The serving-path observation hub (windows, flight recorder, stage
  /// stats). Always present; inert when observability was not enabled.
  obs::ServeObserver& observer() { return observer_; }
  const obs::ServeObserver& observer() const { return observer_; }

 private:
  using ResultCache = ShardedLruCache<uint64_t, std::vector<ScoredPaper>>;

  /// Shared request path. `submit_ns` is the SubmitBatch enqueue time for
  /// queue-stage attribution, or -1 when the caller ran synchronously.
  /// Captures the current generation + state and delegates to TopNOnState.
  RecResponse TopNInternal(int32_t user, int n, int64_t submit_ns);

  /// Request path against an already-captured generation + state pair (the
  /// capture order — generation first — pairs with the store order in
  /// Swap, so results are never cached under a newer generation than they
  /// were computed from). `prescored`, when non-null, holds this user's
  /// scores from a stacked coalesced pass over the SAME state; the scoring
  /// stage is then skipped and only selection runs.
  RecResponse TopNOnState(int32_t user, int n, int64_t submit_ns,
                          uint64_t generation,
                          const std::shared_ptr<const ServingState>& state,
                          const std::vector<double>* prescored);

  /// Executes one SubmitBatch chunk: a coalescing pre-pass stacks the
  /// chunk's cache-key-distinct requests that share a candidate list into
  /// one ScoreStackedInto GEMM (gemm mode only), then every request runs
  /// the normal path with its prescored slice.
  std::vector<RecResponse> RunChunk(const std::vector<RecRequest>& requests,
                                    int64_t submit_ns);

  ServeOptions options_ SUBREC_UNGUARDED("set in the constructor, read-only");
  // Null when caching is disabled; the pointer itself is fixed after the
  // constructor and the cache locks its own shards.
  std::unique_ptr<ResultCache> cache_
      SUBREC_UNGUARDED("pointer fixed after construction; cache is "
                       "internally synchronized");
  // A plain mutex-guarded pointer rather than an atomic shared_ptr:
  // libstdc++'s atomic specialization spins on a hidden lock bit anyway (it
  // is not lock-free) and its internals trip TSan, so the explicit mutex is
  // equally cheap and sanitizer-clean. Readers only copy the pointer
  // under the lock — scoring never holds it.
  mutable common::Mutex state_mu_;
  std::shared_ptr<const ServingState> state_ SUBREC_GUARDED_BY(state_mu_);
  std::atomic<uint64_t> generation_{0};
  obs::ServeObserver observer_
      SUBREC_UNGUARDED("constructed once; internally synchronized");
  // Declared last: the pool's destructor drains queued tasks that call
  // TopN, which must still see a live cache_ and state_.
  ThreadPool pool_ SUBREC_UNGUARDED("internally synchronized");
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_SERVICE_H_
