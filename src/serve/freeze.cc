#include "serve/freeze.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace subrec::serve {
namespace {

/// Packs the live model's per-paper nested vectors into one contiguous
/// row-major slab. Freeze is the boundary where the training-side
/// representation (ragged-capable, per-row allocations) becomes the
/// serving-side one (a single slab GEMM can gather from); empty input
/// packs to the 0x0 matrix.
// SUBREC_NESTED_VECTOR_OK(the training-side input type, consumed here)
la::Matrix PackRows(std::vector<std::vector<double>>&& rows) {
  la::Matrix m;
  if (rows.empty()) return m;
  const size_t cols = rows.front().size();
  m.ResizeOverwrite(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    SUBREC_CHECK_EQ(rows[r].size(), cols);
    std::copy(rows[r].begin(), rows[r].end(), m.row_data(r));
  }
  return m;
}

}  // namespace

SnapshotData FreezeNPRec(const rec::RecContext& ctx, const rec::NPRec& model,
                         const std::string& dataset_name,
                         const FreezeOptions& options) {
  rec::DCheckValidContext(ctx);
  SUBREC_CHECK(ctx.corpus != nullptr);
  const corpus::Corpus& corpus = *ctx.corpus;

  SnapshotData data;
  data.model_name = model.name();
  data.dataset = dataset_name;
  data.split_year = ctx.split_year;

  rec::NPRecFrozenVectors vectors = model.ExportFrozenVectors();
  SUBREC_CHECK_EQ(vectors.interest.size(), corpus.papers.size());
  data.interest = PackRows(std::move(vectors.interest));
  data.influence = PackRows(std::move(vectors.influence));
  data.text = PackRows(std::move(vectors.text));

  data.years.reserve(corpus.papers.size());
  data.disciplines.reserve(corpus.papers.size());
  data.topics.reserve(corpus.papers.size());
  for (const corpus::Paper& p : corpus.papers) {
    data.years.push_back(p.year);
    data.disciplines.push_back(p.discipline);
    data.topics.push_back(p.topic);
  }

  data.profiles.reserve(corpus.authors.size());
  for (const corpus::Author& a : corpus.authors) {
    const std::vector<corpus::PaperId> profile =
        rec::UserProfile(ctx, a.id, options.max_profile_papers);
    data.profiles.emplace_back(profile.begin(), profile.end());
  }

  // ANN index over the new-paper pool: freeze is offline, so the O(n log n)
  // graph build happens here once and every online load just deserializes.
  // Indexing influence vectors makes a mean-interest profile query retrieve
  // exactly what FrozenScorer's pair score is monotone in.
  if (options.build_ann_index) {
    std::vector<int32_t> ids;
    std::vector<double> vectors;
    const size_t dim = data.influence.cols();
    for (size_t p = 0; p < data.influence.rows(); ++p) {
      if (data.years[p] <= data.split_year) continue;
      ids.push_back(static_cast<int32_t>(p));
      const double* v = data.influence.row_data(p);
      vectors.insert(vectors.end(), v, v + dim);
    }
    if (!ids.empty() && dim > 0) {
      Result<std::unique_ptr<ann::HnswIndex>> built = ann::HnswIndex::Build(
          std::move(ids), std::move(vectors), dim, options.ann);
      SUBREC_CHECK(built.ok()) << built.status().ToString();
      data.ann_index = built.value()->Serialize();
    }
  }
  return data;
}

}  // namespace subrec::serve
