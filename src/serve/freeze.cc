#include "serve/freeze.h"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace subrec::serve {

SnapshotData FreezeNPRec(const rec::RecContext& ctx, const rec::NPRec& model,
                         const std::string& dataset_name,
                         const FreezeOptions& options) {
  rec::DCheckValidContext(ctx);
  SUBREC_CHECK(ctx.corpus != nullptr);
  const corpus::Corpus& corpus = *ctx.corpus;

  SnapshotData data;
  data.model_name = model.name();
  data.dataset = dataset_name;
  data.split_year = ctx.split_year;

  rec::NPRecFrozenVectors vectors = model.ExportFrozenVectors();
  SUBREC_CHECK_EQ(vectors.interest.size(), corpus.papers.size());
  data.interest = std::move(vectors.interest);
  data.influence = std::move(vectors.influence);
  data.text = std::move(vectors.text);

  data.years.reserve(corpus.papers.size());
  data.disciplines.reserve(corpus.papers.size());
  data.topics.reserve(corpus.papers.size());
  for (const corpus::Paper& p : corpus.papers) {
    data.years.push_back(p.year);
    data.disciplines.push_back(p.discipline);
    data.topics.push_back(p.topic);
  }

  data.profiles.reserve(corpus.authors.size());
  for (const corpus::Author& a : corpus.authors) {
    const std::vector<corpus::PaperId> profile =
        rec::UserProfile(ctx, a.id, options.max_profile_papers);
    data.profiles.emplace_back(profile.begin(), profile.end());
  }

  // ANN index over the new-paper pool: freeze is offline, so the O(n log n)
  // graph build happens here once and every online load just deserializes.
  // Indexing influence vectors makes a mean-interest profile query retrieve
  // exactly what FrozenScorer's pair score is monotone in.
  if (options.build_ann_index) {
    std::vector<int32_t> ids;
    std::vector<double> vectors;
    const size_t dim =
        data.influence.empty() ? 0 : data.influence.front().size();
    for (size_t p = 0; p < data.influence.size(); ++p) {
      if (data.years[p] <= data.split_year) continue;
      ids.push_back(static_cast<int32_t>(p));
      vectors.insert(vectors.end(), data.influence[p].begin(),
                     data.influence[p].end());
    }
    if (!ids.empty() && dim > 0) {
      Result<std::unique_ptr<ann::HnswIndex>> built = ann::HnswIndex::Build(
          std::move(ids), std::move(vectors), dim, options.ann);
      SUBREC_CHECK(built.ok()) << built.status().ToString();
      data.ann_index = built.value()->Serialize();
    }
  }
  return data;
}

}  // namespace subrec::serve
