#include "serve/freeze.h"

#include <utility>

#include "common/check.h"

namespace subrec::serve {

SnapshotData FreezeNPRec(const rec::RecContext& ctx, const rec::NPRec& model,
                         const std::string& dataset_name,
                         int max_profile_papers) {
  rec::DCheckValidContext(ctx);
  SUBREC_CHECK(ctx.corpus != nullptr);
  const corpus::Corpus& corpus = *ctx.corpus;

  SnapshotData data;
  data.model_name = model.name();
  data.dataset = dataset_name;
  data.split_year = ctx.split_year;

  rec::NPRecFrozenVectors vectors = model.ExportFrozenVectors();
  SUBREC_CHECK_EQ(vectors.interest.size(), corpus.papers.size());
  data.interest = std::move(vectors.interest);
  data.influence = std::move(vectors.influence);
  data.text = std::move(vectors.text);

  data.years.reserve(corpus.papers.size());
  data.disciplines.reserve(corpus.papers.size());
  data.topics.reserve(corpus.papers.size());
  for (const corpus::Paper& p : corpus.papers) {
    data.years.push_back(p.year);
    data.disciplines.push_back(p.discipline);
    data.topics.push_back(p.topic);
  }

  data.profiles.reserve(corpus.authors.size());
  for (const corpus::Author& a : corpus.authors) {
    const std::vector<corpus::PaperId> profile =
        rec::UserProfile(ctx, a.id, max_profile_papers);
    data.profiles.emplace_back(profile.begin(), profile.end());
  }
  return data;
}

}  // namespace subrec::serve
