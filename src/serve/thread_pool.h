#ifndef SUBREC_SERVE_THREAD_POOL_H_
#define SUBREC_SERVE_THREAD_POOL_H_

#include "par/thread_pool.h"

namespace subrec::serve {

/// The drain-on-shutdown pool started life here and was promoted to the
/// shared par runtime; serve code keeps its unqualified spelling.
/// RecommendService still owns a dedicated instance (declared last, shut
/// down explicitly) so its destruction-order semantics are unchanged.
using ThreadPool = par::ThreadPool;

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_THREAD_POOL_H_
