#include "serve/service.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::serve {
namespace {

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* const h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us", {10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
                           10000, 25000, 50000, 100000});
  return h;
}

/// serve.candidates.source.<name>: how many scored (cache-missing)
/// requests drew their candidate list from each retrieval branch. The
/// whole family registers on first use so the statusz breakdown shows
/// every branch at zero rather than omitting the ones never hit.
obs::Counter* SourceCounter(CandidateSource source) {
  static const std::array<obs::Counter*, kNumCandidateSources> counters = [] {
    std::array<obs::Counter*, kNumCandidateSources> c{};
    for (int i = 0; i < kNumCandidateSources; ++i) {
      c[static_cast<size_t>(i)] = obs::MetricsRegistry::Global().GetCounter(
          std::string("serve.candidates.source.") +
          CandidateSourceName(static_cast<CandidateSource>(i)));
    }
    return c;
  }();
  const auto i = static_cast<size_t>(source);
  SUBREC_CHECK(i < counters.size());
  return counters[i];
}

}  // namespace

Result<std::shared_ptr<const ServingState>> ServingState::FromSnapshot(
    SnapshotData data, CandidateIndexOptions index_options) {
  if (data.interest.rows() == 0)
    return Status::InvalidArgument("snapshot has no papers to serve");
  if (index_options.min_year == 0) index_options.min_year = data.split_year;
  // Decode the ANN section whenever present — a corrupt index should fail
  // the load, not lurk until a mode flip. Requesting embedding retrieval
  // without an index is an explicit error rather than a silent fallback:
  // the caller asked for sublinear candidates and would otherwise get a
  // pool scan with different results and a different cost model.
  std::unique_ptr<const ann::HnswIndex> ann_index;
  if (!data.ann_index.empty()) {
    SUBREC_ASSIGN_OR_RETURN(std::unique_ptr<ann::HnswIndex> decoded,
                            ann::HnswIndex::Deserialize(data.ann_index));
    // Deserialize validates the index's internal structure only; its
    // external ids and dimensionality are opaque to it. Cross-check both
    // against this snapshot here so a well-formed-but-mismatched section
    // (the CRC is recomputable, not a security barrier) is a load error,
    // never an out-of-bounds read in the candidate pass or a CHECK-abort
    // inside its ParallelFor.
    if (decoded->dim() != data.interest.cols()) {
      return Status::InvalidArgument(
          "snapshot ANN index dim " + std::to_string(decoded->dim()) +
          " != embedding dim " + std::to_string(data.interest.cols()));
    }
    for (int32_t id : decoded->ids()) {
      if (id < 0 || static_cast<size_t>(id) >= data.years.size()) {
        return Status::InvalidArgument(
            "snapshot ANN index id " + std::to_string(id) +
            " outside paper range [0, " +
            std::to_string(data.years.size()) + ")");
      }
    }
    ann_index = std::move(decoded);
    data.ann_index.clear();
    data.ann_index.shrink_to_fit();
  }
  if (index_options.retrieval == RetrievalMode::kAnnEmbedding &&
      ann_index == nullptr) {
    return Status::InvalidArgument(
        "ann_embedding retrieval requested but the snapshot has no ANN "
        "index (freeze with build_ann_index)");
  }
  // Build the index first (it reads only the attribute arrays), pull the
  // small members out, then let FrozenScorer move the three big matrices
  // instead of copying them — snapshot load never doubles peak memory.
  CandidateIndex index(data, index_options, ann_index.get());
  std::vector<std::vector<int32_t>> profiles = std::move(data.profiles);
  std::string model_name = std::move(data.model_name);
  std::string dataset = std::move(data.dataset);
  const int32_t split_year = data.split_year;
  auto state = std::make_shared<ServingState>(ServingState{
      FrozenScorer(std::move(data)), std::move(index), std::move(profiles),
      std::move(model_name), std::move(dataset), split_year,
      std::move(ann_index)});
  return std::shared_ptr<const ServingState>(std::move(state));
}

RecommendService::RecommendService(const ServeOptions& options)
    : options_(options),
      observer_(options.observer),
      pool_(options.num_threads) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
}

RecommendService::~RecommendService() { pool_.Shutdown(); }

Status RecommendService::LoadSnapshotFile(const std::string& path) {
  SUBREC_ASSIGN_OR_RETURN(SnapshotData data, SnapshotReader::ReadFile(path));
  SUBREC_ASSIGN_OR_RETURN(std::shared_ptr<const ServingState> state,
                          ServingState::FromSnapshot(std::move(data),
                                                     options_.index));
  Swap(std::move(state));
  return Status::Ok();
}

void RecommendService::Swap(std::shared_ptr<const ServingState> state) {
  SUBREC_CHECK(state != nullptr);
  static obs::Counter* const swaps =
      obs::MetricsRegistry::Global().GetCounter("serve.swaps");
  // Publish the state BEFORE bumping the generation: a request that reads
  // the new generation number is then guaranteed to also see the new state,
  // so a stale result can never be cached under the new generation. (The
  // benign converse — a fresh result under the old generation — only wastes
  // one cache slot.)
  {
    common::MutexLock lock(&state_mu_);
    state_ = std::move(state);
  }
  generation_.fetch_add(1);
  if (cache_) cache_->Clear();
  swaps->Increment();
}

std::shared_ptr<const ServingState> RecommendService::state() const {
  common::MutexLock lock(&state_mu_);
  return state_;
}

RecResponse RecommendService::TopN(int32_t user, int n) {
  return TopNInternal(user, n, /*submit_ns=*/-1);
}

RecResponse RecommendService::TopNInternal(int32_t user, int n,
                                           int64_t submit_ns) {
  // Generation first, then state — pairs with the store order in Swap.
  const uint64_t generation = generation_.load();
  return TopNOnState(user, n, submit_ns, generation, state(),
                     /*prescored=*/nullptr);
}

RecResponse RecommendService::TopNOnState(
    int32_t user, int n, int64_t submit_ns, uint64_t generation,
    const std::shared_ptr<const ServingState>& state,
    const std::vector<double>* prescored) {
  static obs::Counter* const requests =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  static obs::Counter* const cache_hit_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_hit");
  static obs::Counter* const cache_miss_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_miss");

  RecResponse response;
  response.enqueue_ns = obs::NowNs();
  requests->Increment();

  // One relaxed load is the entire observability cost when disabled; the
  // trace below is plain stack data (no heap members), filled only for
  // sampled requests.
  const bool observing = observer_.enabled();
  obs::RequestTrace trace;
  obs::RequestTrace* t = nullptr;
  if (observing && observer_.SampleTrace()) {
    t = &trace;
    trace.user = user;
    trace.n = n;
    trace.start_ns = submit_ns >= 0 ? submit_ns : response.enqueue_ns;
    if (submit_ns >= 0) {
      // Queue time = SubmitBatch enqueue to worker pickup; synchronous
      // callers have no queue stage.
      trace.stage_ns[static_cast<int>(obs::Stage::kQueue)] =
          response.enqueue_ns - submit_ns;
    }
  }
  // Completes the response and fans it out to the observer. The lifetime
  // latency histogram keeps its original semantics: observed on cache hits
  // and successful scores, measured from TopN entry. The observer instead
  // sees every outcome (errors included), measured from the earliest known
  // submit time.
  auto finish = [&](bool observe_latency) {
    response.done_ns = obs::NowNs();
    if (observe_latency) {
      LatencyHistogram()->Observe(
          static_cast<double>(response.done_ns - response.enqueue_ns) / 1e3);
    }
    if (!observing) return;
    const int64_t start = submit_ns >= 0 ? submit_ns : response.enqueue_ns;
    const double latency_us =
        static_cast<double>(response.done_ns - start) / 1e3;
    if (t != nullptr) {
      t->total_ns = response.done_ns - start;
      t->cache_hit = response.cache_hit;
      t->error = !response.status.ok();
      t->result_count = static_cast<int32_t>(response.items.size());
    }
    observer_.OnComplete(response.done_ns, latency_us, !response.status.ok(),
                         response.cache_hit, /*shed=*/false, t);
  };

  if (state == nullptr) {
    response.status =
        Status::FailedPrecondition("RecommendService: no snapshot loaded");
    finish(/*observe_latency=*/false);
    return response;
  }
  if (n < 0 || user < 0 ||
      static_cast<size_t>(user) >= state->profiles.size()) {
    response.status = Status::InvalidArgument(
        "RecommendService: unknown user " + std::to_string(user));
    finish(/*observe_latency=*/false);
    return response;
  }
  // n gets 16 bits in the cache key, so larger values must be rejected in
  // every build mode — a masked key would alias distinct list lengths.
  if (n >= (1 << 16)) {
    response.status = Status::InvalidArgument(
        "RecommendService: n too large (" + std::to_string(n) +
        " >= 65536)");
    finish(/*observe_latency=*/false);
    return response;
  }
  if (t != nullptr) t->generation = generation;

  // Cache key: generation | user | n, all range-checked so distinct
  // requests can never alias to the same slot.
  const uint64_t key = ((generation & 0xFFFFu) << 48) |
                       (static_cast<uint64_t>(static_cast<uint32_t>(user))
                        << 16) |
                       (static_cast<uint64_t>(n) & 0xFFFFu);
  if (cache_) {
    bool hit = false;
    {
      obs::StageTimer timer(t, obs::Stage::kCacheLookup);
      if (auto cached = cache_->Get(key); cached.has_value()) {
        response.items = std::move(*cached);
        hit = true;
      }
    }
    if (hit) {
      cache_hit_counter->Increment();
      response.cache_hit = true;
      finish(/*observe_latency=*/true);
      return response;
    }
    cache_miss_counter->Increment();
  }

  {
    SUBREC_TRACE_SPAN("serve/score");
    const std::vector<int32_t>& profile =
        state->profiles[static_cast<size_t>(user)];
    const std::vector<int32_t>* candidates = nullptr;
    {
      obs::StageTimer timer(t, obs::Stage::kCandidates);
      candidates = &state->index.CandidatesFor(user);
    }
    const CandidateSource source = state->index.SourceFor(user);
    SourceCounter(source)->Increment();
    if (t != nullptr) {
      t->candidate_count = static_cast<int32_t>(candidates->size());
      t->candidate_source = CandidateSourceName(source);
    }
    state->scorer.TopNInto(profile, *candidates, n, options_.scorer_mode, t,
                           prescored, &response.items);
  }
  if (cache_) {
    obs::StageTimer timer(t, obs::Stage::kCacheInsert);
    cache_->Put(key, response.items);
  }
  finish(/*observe_latency=*/true);
  return response;
}

std::vector<RecResponse> RecommendService::RunChunk(
    const std::vector<RecRequest>& requests, int64_t submit_ns) {
  static obs::Counter* const stacked_passes =
      obs::MetricsRegistry::Global().GetCounter("serve.score.stacked_passes");
  static obs::Counter* const stacked_gather_ns =
      obs::MetricsRegistry::Global().GetCounter("serve.score.gather_ns");
  static obs::Counter* const stacked_gemm_ns =
      obs::MetricsRegistry::Global().GetCounter("serve.score.gemm_ns");
  static obs::Counter* const stacked_epilogue_ns =
      obs::MetricsRegistry::Global().GetCounter("serve.score.epilogue_ns");

  // Generation first, then state — pairs with the store order in Swap. One
  // capture for the whole chunk keeps the coalesced scores and every
  // member's cache entry consistent with a single generation even if a hot
  // reload lands mid-chunk.
  const uint64_t generation = generation_.load();
  const std::shared_ptr<const ServingState> state = this->state();

  // SUBREC_NESTED_VECTOR_OK(per-request score buffers, ragged by request)
  std::vector<std::vector<double>> scores(requests.size());
  std::vector<const std::vector<double>*> prescored(requests.size(), nullptr);
  if (options_.scorer_mode == ScorerMode::kGemm && state != nullptr &&
      requests.size() >= 2) {
    // Coalescing pre-pass: group the chunk's valid requests by candidate
    // list (CandidatesFor returns a reference into the immutable state, so
    // the address is the identity) and score each group of two or more in
    // one stacked GEMM — every gathered influence tile is then multiplied
    // against all of the group's profiles at once. A member that later
    // turns out to be a cache hit wastes its slice of the pass; that is a
    // perf tradeoff, never a correctness one, since TopNOnState still
    // probes the cache first and prescored scores are bit-identical to
    // what the solo path would have computed.
    struct Group {
      const std::vector<int32_t>* candidates = nullptr;
      std::vector<size_t> members;
    };
    std::vector<Group> groups;
    for (size_t i = 0; i < requests.size(); ++i) {
      const RecRequest& r = requests[i];
      if (r.user < 0 || r.n < 0 || r.n >= (1 << 16) ||
          static_cast<size_t>(r.user) >= state->profiles.size()) {
        continue;  // TopNOnState rejects it with the right status.
      }
      const std::vector<int32_t>& cands = state->index.CandidatesFor(r.user);
      Group* group = nullptr;
      for (Group& g : groups) {
        if (g.candidates == &cands) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(Group{&cands, {}});
        group = &groups.back();
      }
      group->members.push_back(i);
    }
    for (const Group& g : groups) {
      if (g.members.size() < 2) continue;
      std::vector<FrozenScorer::StackedRequest> stacked;
      stacked.reserve(g.members.size());
      for (size_t i : g.members) {
        const auto user = static_cast<size_t>(requests[i].user);
        stacked.push_back({&state->profiles[user], &scores[i]});
      }
      ScoreBatchStats stats;
      state->scorer.ScoreStackedInto(stacked, *g.candidates, &stats);
      for (size_t i : g.members) prescored[i] = &scores[i];
      stacked_passes->Increment();
      stacked_gather_ns->Increment(stats.gather_ns);
      stacked_gemm_ns->Increment(stats.gemm_ns);
      stacked_epilogue_ns->Increment(stats.epilogue_ns);
    }
  }

  std::vector<RecResponse> out;
  out.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    out.push_back(TopNOnState(requests[i].user, requests[i].n, submit_ns,
                              generation, state, prescored[i]));
  }
  return out;
}

std::future<std::vector<RecResponse>> RecommendService::SubmitBatch(
    std::vector<RecRequest> requests) {
  const size_t batch = options_.batch_size > 0 ? options_.batch_size : 1;
  const size_t num_chunks = (requests.size() + batch - 1) / batch;
  // Captured so sampled traces can attribute enqueue-to-pickup time to the
  // queue stage.
  const int64_t submit_ns = obs::NowNs();
  if (num_chunks <= 1) {
    return pool_.SubmitWithResult(
        [this, submit_ns, requests = std::move(requests)]() {
          return RunChunk(requests, submit_ns);
        });
  }
  // Fan the chunks out across workers; aggregation is a deferred task that
  // runs on whichever thread calls get(), so no worker (and no extra
  // thread) ever blocks waiting on chunk futures.
  auto chunk_futures = std::make_shared<
      std::vector<std::future<std::vector<RecResponse>>>>();
  chunk_futures->reserve(num_chunks);
  for (size_t start = 0; start < requests.size(); start += batch) {
    const size_t end = std::min(requests.size(), start + batch);
    std::vector<RecRequest> chunk(
        requests.begin() + static_cast<ptrdiff_t>(start),
        requests.begin() + static_cast<ptrdiff_t>(end));
    chunk_futures->push_back(pool_.SubmitWithResult(
        [this, submit_ns, chunk = std::move(chunk)]() {
          return RunChunk(chunk, submit_ns);
        }));
  }
  return std::async(std::launch::deferred, [chunk_futures]() {
    std::vector<RecResponse> all;
    for (auto& f : *chunk_futures) {
      std::vector<RecResponse> part = f.get();
      for (RecResponse& r : part) all.push_back(std::move(r));
    }
    return all;
  });
}

std::vector<RecResponse> RecommendService::TopNBatch(
    const std::vector<RecRequest>& requests) {
  return SubmitBatch(requests).get();
}

}  // namespace subrec::serve
