#include "serve/service.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::serve {
namespace {

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* const h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us", {10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
                           10000, 25000, 50000, 100000});
  return h;
}

}  // namespace

Result<std::shared_ptr<const ServingState>> ServingState::FromSnapshot(
    SnapshotData data, CandidateIndexOptions index_options) {
  if (data.interest.empty())
    return Status::InvalidArgument("snapshot has no papers to serve");
  if (index_options.min_year == 0) index_options.min_year = data.split_year;
  // Build the index first (it reads only the attribute arrays), pull the
  // small members out, then let FrozenScorer move the three big matrices
  // instead of copying them — snapshot load never doubles peak memory.
  CandidateIndex index(data, index_options);
  std::vector<std::vector<int32_t>> profiles = std::move(data.profiles);
  std::string model_name = std::move(data.model_name);
  std::string dataset = std::move(data.dataset);
  const int32_t split_year = data.split_year;
  auto state = std::make_shared<ServingState>(ServingState{
      FrozenScorer(std::move(data)), std::move(index), std::move(profiles),
      std::move(model_name), std::move(dataset), split_year});
  return std::shared_ptr<const ServingState>(std::move(state));
}

RecommendService::RecommendService(const ServeOptions& options)
    : options_(options), pool_(options.num_threads) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
}

RecommendService::~RecommendService() { pool_.Shutdown(); }

Status RecommendService::LoadSnapshotFile(const std::string& path) {
  SUBREC_ASSIGN_OR_RETURN(SnapshotData data, SnapshotReader::ReadFile(path));
  SUBREC_ASSIGN_OR_RETURN(std::shared_ptr<const ServingState> state,
                          ServingState::FromSnapshot(std::move(data),
                                                     options_.index));
  Swap(std::move(state));
  return Status::Ok();
}

void RecommendService::Swap(std::shared_ptr<const ServingState> state) {
  SUBREC_CHECK(state != nullptr);
  static obs::Counter* const swaps =
      obs::MetricsRegistry::Global().GetCounter("serve.swaps");
  // Publish the state BEFORE bumping the generation: a request that reads
  // the new generation number is then guaranteed to also see the new state,
  // so a stale result can never be cached under the new generation. (The
  // benign converse — a fresh result under the old generation — only wastes
  // one cache slot.)
  {
    common::MutexLock lock(&state_mu_);
    state_ = std::move(state);
  }
  generation_.fetch_add(1);
  if (cache_) cache_->Clear();
  swaps->Increment();
}

std::shared_ptr<const ServingState> RecommendService::state() const {
  common::MutexLock lock(&state_mu_);
  return state_;
}

RecResponse RecommendService::TopN(int32_t user, int n) {
  static obs::Counter* const requests =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  static obs::Counter* const cache_hit_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_hit");
  static obs::Counter* const cache_miss_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_miss");

  RecResponse response;
  response.enqueue_ns = obs::NowNs();
  requests->Increment();

  // Generation first, then state — pairs with the store order in Swap.
  const uint64_t generation = generation_.load();
  const std::shared_ptr<const ServingState> state = this->state();
  if (state == nullptr) {
    response.status =
        Status::FailedPrecondition("RecommendService: no snapshot loaded");
    response.done_ns = obs::NowNs();
    return response;
  }
  if (n < 0 || user < 0 ||
      static_cast<size_t>(user) >= state->profiles.size()) {
    response.status = Status::InvalidArgument(
        "RecommendService: unknown user " + std::to_string(user));
    response.done_ns = obs::NowNs();
    return response;
  }
  // n gets 16 bits in the cache key, so larger values must be rejected in
  // every build mode — a masked key would alias distinct list lengths.
  if (n >= (1 << 16)) {
    response.status = Status::InvalidArgument(
        "RecommendService: n too large (" + std::to_string(n) +
        " >= 65536)");
    response.done_ns = obs::NowNs();
    return response;
  }

  // Cache key: generation | user | n, all range-checked so distinct
  // requests can never alias to the same slot.
  const uint64_t key = ((generation & 0xFFFFu) << 48) |
                       (static_cast<uint64_t>(static_cast<uint32_t>(user))
                        << 16) |
                       (static_cast<uint64_t>(n) & 0xFFFFu);
  if (cache_) {
    if (auto cached = cache_->Get(key); cached.has_value()) {
      cache_hit_counter->Increment();
      response.items = std::move(*cached);
      response.cache_hit = true;
      response.done_ns = obs::NowNs();
      LatencyHistogram()->Observe(
          static_cast<double>(response.done_ns - response.enqueue_ns) / 1e3);
      return response;
    }
    cache_miss_counter->Increment();
  }

  {
    SUBREC_TRACE_SPAN("serve/score");
    const std::vector<int32_t>& profile =
        state->profiles[static_cast<size_t>(user)];
    const std::vector<int32_t>& candidates = state->index.CandidatesFor(user);
    response.items = state->scorer.TopN(profile, candidates, n);
  }
  if (cache_) cache_->Put(key, response.items);
  response.done_ns = obs::NowNs();
  LatencyHistogram()->Observe(
      static_cast<double>(response.done_ns - response.enqueue_ns) / 1e3);
  return response;
}

std::future<std::vector<RecResponse>> RecommendService::SubmitBatch(
    std::vector<RecRequest> requests) {
  const size_t batch = options_.batch_size > 0 ? options_.batch_size : 1;
  const size_t num_chunks = (requests.size() + batch - 1) / batch;
  if (num_chunks <= 1) {
    return pool_.SubmitWithResult(
        [this, requests = std::move(requests)]() {
          std::vector<RecResponse> out;
          out.reserve(requests.size());
          for (const RecRequest& r : requests) out.push_back(TopN(r.user, r.n));
          return out;
        });
  }
  // Fan the chunks out across workers; aggregation is a deferred task that
  // runs on whichever thread calls get(), so no worker (and no extra
  // thread) ever blocks waiting on chunk futures.
  auto chunk_futures = std::make_shared<
      std::vector<std::future<std::vector<RecResponse>>>>();
  chunk_futures->reserve(num_chunks);
  for (size_t start = 0; start < requests.size(); start += batch) {
    const size_t end = std::min(requests.size(), start + batch);
    std::vector<RecRequest> chunk(
        requests.begin() + static_cast<ptrdiff_t>(start),
        requests.begin() + static_cast<ptrdiff_t>(end));
    chunk_futures->push_back(pool_.SubmitWithResult(
        [this, chunk = std::move(chunk)]() {
          std::vector<RecResponse> out;
          out.reserve(chunk.size());
          for (const RecRequest& r : chunk) out.push_back(TopN(r.user, r.n));
          return out;
        }));
  }
  return std::async(std::launch::deferred, [chunk_futures]() {
    std::vector<RecResponse> all;
    for (auto& f : *chunk_futures) {
      std::vector<RecResponse> part = f.get();
      for (RecResponse& r : part) all.push_back(std::move(r));
    }
    return all;
  });
}

std::vector<RecResponse> RecommendService::TopNBatch(
    const std::vector<RecRequest>& requests) {
  return SubmitBatch(requests).get();
}

}  // namespace subrec::serve
