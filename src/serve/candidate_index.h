#ifndef SUBREC_SERVE_CANDIDATE_INDEX_H_
#define SUBREC_SERVE_CANDIDATE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ann/index.h"
#include "serve/snapshot.h"

namespace subrec::serve {

/// How per-user candidate lists are assembled at index-build time.
enum class RetrievalMode : int {
  /// Attribute filtering: year window + discipline filter + inverted-topic
  /// pruning. O(new-paper pool) per user.
  kFiltered = 0,
  /// Embedding retrieval: query the frozen ann::Index with the user's mean
  /// profile interest vector, then apply the year window. O(graph walk)
  /// per user — the only mode that scales past ~1e4-paper pools.
  kAnnEmbedding,
};

struct CandidateIndexOptions {
  /// Candidates are "new" papers: year strictly greater than this (the
  /// snapshot's split year by convention). INT32_MIN disables the floor.
  int32_t min_year = 0;
  /// Inclusive upper year bound — the serving-time recency window.
  int32_t max_year = INT32_MAX;
  /// Keep only candidates whose discipline appears in the user's profile.
  bool filter_disciplines = true;
  /// Prune via the inverted topic index: keep only candidates sharing a
  /// topic with the user's profile. Users whose pruned set would be empty
  /// fall back to the discipline-filtered set.
  bool prune_topics = true;
  RetrievalMode retrieval = RetrievalMode::kFiltered;
  /// kAnnEmbedding: neighbors requested per user (before year filtering).
  int ann_candidates = 256;
  /// kAnnEmbedding: search beam width (clamped up to ann_candidates).
  int ann_ef = 128;
};

/// Which retrieval branch produced a user's candidate list. Recorded at
/// build time and surfaced per request so traces can attribute candidate
/// cost to the branch that actually ran.
enum class CandidateSource : int {
  /// Empty profile: the full new-paper pool, unfiltered.
  kFullPool = 0,
  /// Inverted-topic-index union, discipline-filtered.
  kTopicPruned,
  /// Topic pruning off or empty: discipline-filtered pool scan.
  kDisciplineFiltered,
  /// Every filter came back empty: unfiltered pool as a last resort.
  kFallbackPool,
  /// User id outside the profile table (served the full pool).
  kUnknownUser,
  /// ANN graph walk over the embedding index, year-window filtered.
  kAnnEmbedding,
};

/// Number of CandidateSource values — sized for per-source counter arrays.
inline constexpr int kNumCandidateSources =
    static_cast<int>(CandidateSource::kAnnEmbedding) + 1;

/// Stable static-storage name ("full_pool", "topic_pruned", ...) — safe to
/// stash in a RequestTrace without allocating.
const char* CandidateSourceName(CandidateSource source);

/// Precomputed per-user candidate sets over the frozen corpus — the online
/// analogue of what rec::BuildCandidateSet assembles offline per eval run.
/// A coarse inverted topic index drives pruning; users with no usable
/// profile fall back to the full new-paper pool. Immutable after build.
class CandidateIndex {
 public:
  /// `ann_index` is the frozen embedding index (nullable). Checked
  /// programmer error to request RetrievalMode::kAnnEmbedding without one
  /// — ServingState::FromSnapshot turns that into a Status first. Under
  /// kAnnEmbedding the per-user queries run through par::ParallelFor;
  /// results are deterministic for any SUBREC_NUM_THREADS because each
  /// user's query is independent and lands in its own slot.
  CandidateIndex(const SnapshotData& data,
                 const CandidateIndexOptions& options,
                 const ann::Index* ann_index = nullptr);

  /// The precomputed candidate list of `user` (ascending paper ids).
  /// Unknown users get the full new-paper pool.
  const std::vector<int32_t>& CandidatesFor(int32_t user) const;

  /// The retrieval branch that built `user`'s list (kUnknownUser for ids
  /// outside the profile table).
  CandidateSource SourceFor(int32_t user) const;

  /// All in-window new papers, ascending.
  const std::vector<int32_t>& AllNewPapers() const { return new_papers_; }

  /// Inverted index: in-window new papers of one topic, ascending.
  const std::vector<int32_t>& PapersForTopic(int32_t topic) const;

  size_t num_users() const { return per_user_.size(); }
  size_t num_new_papers() const { return new_papers_.size(); }

 private:
  std::vector<int32_t> new_papers_;
  std::vector<std::vector<int32_t>> by_topic_;
  std::vector<std::vector<int32_t>> per_user_;
  std::vector<CandidateSource> per_user_source_;
  std::vector<int32_t> empty_;
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_CANDIDATE_INDEX_H_
