#include "serve/frozen_scorer.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "la/ops.h"
#include "la/score_math.h"
#include "la/serve_kernel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::serve {
namespace {

/// Candidate-tile bounds for the batched path. The transposed influence
/// tile (dim x tile doubles) is the block every GEMM row streams over, so
/// it must stay L1-resident: at 128 columns that holds only up to dim 32
/// (128 * 32 * 8 = 32 KiB), and wider embeddings thrash — measured 2.4x
/// slower at dim 50 with a fixed 128-wide tile. ScoreTileWidth narrows
/// the tile as the dim grows instead; the floor keeps the vectorized
/// epilogue's rows long enough to amortize its exp-table gathers.
constexpr size_t kScoreTileMax = 128;
constexpr size_t kScoreTileMin = 32;
constexpr size_t kBtTileBytes = 32 * 1024;

/// Widest multiple-of-16 tile (clamped to [kScoreTileMin, kScoreTileMax])
/// whose k x tile transposed influence block fits in kBtTileBytes. Tiling
/// splits only the candidate axis — every column's dot product and
/// epilogue order is unchanged — so the width is purely a bandwidth
/// decision and any value produces bit-identical scores.
size_t ScoreTileWidth(size_t k) {
  if (k == 0) return kScoreTileMax;
  const size_t fit = kBtTileBytes / (k * sizeof(double)) / 16 * 16;
  return std::clamp(fit, kScoreTileMin, kScoreTileMax);
}

/// Per-thread reusable buffers for the batched scoring pipeline. Growing
/// only (never shrunk), so after the first request of a given shape the
/// steady-state scoring loop performs zero heap allocations — asserted by
/// the counting-allocator probe in the observability tests.
struct ServeScratch {
  std::vector<double> packed;  // stacked profile interest rows, row-major
  std::vector<double> bt;      // transposed candidate influence tile
  std::vector<double> logits;  // GEMM output block
  std::vector<double> scores;  // per-request scores (TopN convenience path)
};

ServeScratch& Scratch() {
  thread_local ServeScratch scratch;
  return scratch;
}

/// Grow-only resize: std::vector::resize never shrinks capacity, and we
/// track live extents separately, so warm scratch allocates nothing.
void Ensure(std::vector<double>* v, size_t n) {
  if (v->size() < n) v->resize(n);
}

/// The ranking order: score descending, ties toward the lower paper id.
/// Used directly as the heap comparator — under it the heap front is the
/// WORST element kept so far, which is exactly the eviction candidate.
bool Better(const ScoredPaper& a, const ScoredPaper& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.paper < b.paper;
}

}  // namespace

const char* ScorerModeName(ScorerMode mode) {
  switch (mode) {
    case ScorerMode::kPairwise:
      return "pairwise";
    case ScorerMode::kGemm:
      return "gemm";
  }
  return "unknown";
}

FrozenScorer::FrozenScorer(const SnapshotData& data)
    : interest_(data.interest),
      influence_(data.influence),
      text_(data.text) {
  SUBREC_CHECK_EQ(interest_.rows(), influence_.rows());
  SUBREC_CHECK(interest_.rows() == 0 ||
               interest_.cols() == influence_.cols());
  SUBREC_CHECK(text_.empty() || text_.rows() == interest_.rows());
}

FrozenScorer::FrozenScorer(SnapshotData&& data)
    : interest_(std::move(data.interest)),
      influence_(std::move(data.influence)),
      text_(std::move(data.text)) {
  SUBREC_CHECK_EQ(interest_.rows(), influence_.rows());
  SUBREC_CHECK(interest_.rows() == 0 ||
               interest_.cols() == influence_.cols());
  SUBREC_CHECK(text_.empty() || text_.rows() == interest_.rows());
}

double FrozenScorer::PairScore(int32_t p, int32_t q) const {
  SUBREC_DCHECK_GE(p, 0);
  SUBREC_DCHECK_LT(static_cast<size_t>(p), interest_.rows());
  SUBREC_DCHECK_GE(q, 0);
  SUBREC_DCHECK_LT(static_cast<size_t>(q), influence_.rows());
  const double logit = la::Dot(interest_.row_data(static_cast<size_t>(p)),
                               influence_.row_data(static_cast<size_t>(q)),
                               interest_.cols());
  return la::ScoreSigmoid(logit);
}

void FrozenScorer::ScoreInto(const std::vector<int32_t>& profile,
                             const std::vector<int32_t>& candidates,
                             std::vector<double>* scores) const {
  scores->assign(candidates.size(), 0.0);
  if (profile.empty()) return;
  for (size_t c = 0; c < candidates.size(); ++c) {
    double total = 0.0;
    for (int32_t p : profile) total += PairScore(p, candidates[c]);
    (*scores)[c] = total / static_cast<double>(profile.size());
  }
}

std::vector<double> FrozenScorer::Score(
    const std::vector<int32_t>& profile,
    const std::vector<int32_t>& candidates) const {
  std::vector<double> scores;
  ScoreInto(profile, candidates, &scores);
  return scores;
}

std::vector<double> FrozenScorer::ScoreBatch(
    const std::vector<int32_t>& profile,
    const std::vector<int32_t>& candidates) const {
  std::vector<double> scores;
  ScoreBatchInto(profile, candidates, &scores, nullptr);
  return scores;
}

void FrozenScorer::ScoreBatchInto(const std::vector<int32_t>& profile,
                                  const std::vector<int32_t>& candidates,
                                  std::vector<double>* scores,
                                  ScoreBatchStats* stats) const {
  const StackedRequest one{&profile, scores};
  ScoreStackedCore(&one, 1, candidates, stats);
}

void FrozenScorer::ScoreStackedInto(const std::vector<StackedRequest>& requests,
                                    const std::vector<int32_t>& candidates,
                                    ScoreBatchStats* stats) const {
  ScoreStackedCore(requests.data(), requests.size(), candidates, stats);
}

void FrozenScorer::ScoreStackedCore(const StackedRequest* requests,
                                    size_t count,
                                    const std::vector<int32_t>& candidates,
                                    ScoreBatchStats* stats) const {
  const size_t n = candidates.size();
  const size_t k = dim();
  size_t m_total = 0;
  for (size_t r = 0; r < count; ++r) {
    SUBREC_DCHECK(requests[r].profile != nullptr);
    SUBREC_DCHECK(requests[r].scores != nullptr);
    // Empty-profile segments stay at the zeros written here — same as the
    // oracle's empty-profile contract.
    requests[r].scores->assign(n, 0.0);
    m_total += requests[r].profile->size();
  }
  if (n == 0 || m_total == 0) return;
  // NOTE: k == 0 is NOT an early-out. The oracle scores a degenerate
  // zero-dim model as sigmoid(0) = 0.5 per pair, and the pipeline below
  // reproduces that (empty GEMM leaves the zeroed logits, the epilogue
  // maps them through the same sigmoid and mean).

  const size_t tile = ScoreTileWidth(k);
  ServeScratch& s = Scratch();
  Ensure(&s.packed, m_total * k);
  Ensure(&s.bt, k * tile);
  Ensure(&s.logits, m_total * tile);

  // Pack every profile's interest rows into one contiguous A block, in
  // request order then ascending profile order — the epilogue's per-segment
  // mean walks rows in exactly the order the oracle walks the profile.
  double* packed = s.packed.data();
  size_t row = 0;
  for (size_t r = 0; r < count; ++r) {
    for (int32_t pid : *requests[r].profile) {
      SUBREC_DCHECK_GE(pid, 0);
      SUBREC_DCHECK_LT(static_cast<size_t>(pid), interest_.rows());
      std::memcpy(packed + row * k, interest_.row_data(static_cast<size_t>(pid)),
                  k * sizeof(double));
      ++row;
    }
  }

#ifndef NDEBUG
  for (int32_t c : candidates) {
    SUBREC_DCHECK_GE(c, 0);
    SUBREC_DCHECK_LT(static_cast<size_t>(c), influence_.rows());
  }
#endif

  const bool timed = stats != nullptr;
  for (size_t j0 = 0; j0 < n; j0 += tile) {
    const size_t tw = std::min(tile, n - j0);
    const int64_t t0 = timed ? obs::NowNs() : 0;
    la::ServeGatherTranspose(influence_.data(), k, candidates.data() + j0, tw,
                             s.bt.data());
    const int64_t t1 = timed ? obs::NowNs() : 0;
    la::ServeGemm(packed, k, s.bt.data(), tw, s.logits.data(), tw, m_total, k,
                  tw);
    const int64_t t2 = timed ? obs::NowNs() : 0;
    size_t row0 = 0;
    for (size_t r = 0; r < count; ++r) {
      const size_t m = requests[r].profile->size();
      if (m > 0) {
        la::ServeSigmoidMeanColumns(s.logits.data() + row0 * tw, tw, m, tw,
                                    static_cast<double>(m),
                                    requests[r].scores->data() + j0);
      }
      row0 += m;
    }
    if (timed) {
      const int64_t t3 = obs::NowNs();
      stats->gather_ns += t1 - t0;
      stats->gemm_ns += t2 - t1;
      stats->epilogue_ns += t3 - t2;
    }
  }
}

void FrozenScorer::SelectTopN(const std::vector<int32_t>& candidates,
                              const std::vector<double>& scores, size_t keep,
                              std::vector<ScoredPaper>* out) const {
  SUBREC_DCHECK_EQ(candidates.size(), scores.size());
  out->clear();
  if (keep == 0) return;
  const size_t n = candidates.size();
  if (keep >= n) {
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = {candidates[i], scores[i]};
    std::sort(out->begin(), out->end(), Better);
    return;
  }
  // Heap of the best `keep` seen so far. Under the Better comparator the
  // front is the worst kept element, so each remaining candidate needs one
  // comparison against the front and (rarely) a log(keep) sift. Same output
  // as materialize-all + partial_sort — Better is a strict total order
  // (paper id breaks every score tie) so the selected set and its final
  // sorted order are both unique — without the O(n) ScoredPaper array.
  out->resize(keep);
  for (size_t i = 0; i < keep; ++i) (*out)[i] = {candidates[i], scores[i]};
  std::make_heap(out->begin(), out->end(), Better);
  for (size_t i = keep; i < n; ++i) {
    const ScoredPaper cand{candidates[i], scores[i]};
    if (Better(cand, out->front())) {
      std::pop_heap(out->begin(), out->end(), Better);
      out->back() = cand;
      std::push_heap(out->begin(), out->end(), Better);
    }
  }
  std::sort_heap(out->begin(), out->end(), Better);
}

std::vector<ScoredPaper> FrozenScorer::TopN(
    const std::vector<int32_t>& profile,
    const std::vector<int32_t>& candidates, int n) const {
  return TopN(profile, candidates, n, nullptr);
}

std::vector<ScoredPaper> FrozenScorer::TopN(
    const std::vector<int32_t>& profile,
    const std::vector<int32_t>& candidates, int n, obs::RequestTrace* trace,
    ScorerMode mode) const {
  std::vector<ScoredPaper> ranked;
  TopNInto(profile, candidates, n, mode, trace, nullptr, &ranked);
  return ranked;
}

void FrozenScorer::TopNInto(const std::vector<int32_t>& profile,
                            const std::vector<int32_t>& candidates, int n,
                            ScorerMode mode, obs::RequestTrace* trace,
                            const std::vector<double>* scores,
                            std::vector<ScoredPaper>* out) const {
  // Function-local statics: the registry lookups (which may allocate)
  // happen once per process, not per request.
  static obs::Counter* const pairwise_requests =
      obs::MetricsRegistry::Global().GetCounter("serve.score.requests.pairwise");
  static obs::Counter* const gemm_requests =
      obs::MetricsRegistry::Global().GetCounter("serve.score.requests.gemm");
  static obs::Counter* const prescored_requests =
      obs::MetricsRegistry::Global().GetCounter("serve.score.requests.stacked");
  static obs::Counter* const pairs_scored =
      obs::MetricsRegistry::Global().GetCounter("serve.score.pairs");

  if (scores == nullptr) {
    ServeScratch& s = Scratch();
    obs::StageTimer timer(trace, obs::Stage::kScore);
    pairs_scored->Increment(
        static_cast<int64_t>(profile.size() * candidates.size()));
    if (mode == ScorerMode::kPairwise) {
      pairwise_requests->Increment();
      ScoreInto(profile, candidates, &s.scores);
    } else {
      gemm_requests->Increment();
      ScoreBatchStats stats;
      ScoreBatchInto(profile, candidates, &s.scores,
                     trace != nullptr ? &stats : nullptr);
      if (trace != nullptr) {
        trace->stage_ns[static_cast<int>(obs::Stage::kScoreGather)] +=
            stats.gather_ns;
        trace->stage_ns[static_cast<int>(obs::Stage::kScoreGemm)] +=
            stats.gemm_ns;
        trace->stage_ns[static_cast<int>(obs::Stage::kScoreEpilogue)] +=
            stats.epilogue_ns;
      }
    }
    scores = &s.scores;
  } else {
    // Stacked path: scoring already happened (and was counted) in
    // RecommendService::TopNBatch; only selection remains.
    prescored_requests->Increment();
    SUBREC_DCHECK_EQ(scores->size(), candidates.size());
  }
  obs::StageTimer timer(trace, obs::Stage::kSelect);
  const size_t keep =
      std::min(candidates.size(), static_cast<size_t>(n < 0 ? 0 : n));
  SelectTopN(candidates, *scores, keep, out);
}

std::vector<double> FrozenScorer::TextVector(int32_t p) const {
  if (text_.empty()) return {};
  SUBREC_DCHECK_GE(p, 0);
  SUBREC_DCHECK_LT(static_cast<size_t>(p), text_.rows());
  return text_.RowToVector(static_cast<size_t>(p));
}

}  // namespace subrec::serve
