#include "serve/frozen_scorer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "la/ops.h"

namespace subrec::serve {

FrozenScorer::FrozenScorer(const SnapshotData& data)
    : interest_(data.interest),
      influence_(data.influence),
      text_(data.text) {
  SUBREC_CHECK_EQ(interest_.size(), influence_.size());
  SUBREC_CHECK(text_.empty() || text_.size() == interest_.size());
}

FrozenScorer::FrozenScorer(SnapshotData&& data)
    : interest_(std::move(data.interest)),
      influence_(std::move(data.influence)),
      text_(std::move(data.text)) {
  SUBREC_CHECK_EQ(interest_.size(), influence_.size());
  SUBREC_CHECK(text_.empty() || text_.size() == interest_.size());
}

double FrozenScorer::PairScore(int32_t p, int32_t q) const {
  SUBREC_DCHECK_GE(p, 0);
  SUBREC_DCHECK_LT(static_cast<size_t>(p), interest_.size());
  SUBREC_DCHECK_GE(q, 0);
  SUBREC_DCHECK_LT(static_cast<size_t>(q), influence_.size());
  const double logit = la::Dot(interest_[static_cast<size_t>(p)],
                               influence_[static_cast<size_t>(q)]);
  return 1.0 / (1.0 + std::exp(-logit));
}

std::vector<double> FrozenScorer::Score(
    const std::vector<int32_t>& profile,
    const std::vector<int32_t>& candidates) const {
  std::vector<double> scores(candidates.size(), 0.0);
  if (profile.empty()) return scores;
  for (size_t c = 0; c < candidates.size(); ++c) {
    double total = 0.0;
    for (int32_t p : profile) total += PairScore(p, candidates[c]);
    scores[c] = total / static_cast<double>(profile.size());
  }
  return scores;
}

std::vector<ScoredPaper> FrozenScorer::TopN(
    const std::vector<int32_t>& profile,
    const std::vector<int32_t>& candidates, int n) const {
  return TopN(profile, candidates, n, nullptr);
}

std::vector<ScoredPaper> FrozenScorer::TopN(
    const std::vector<int32_t>& profile,
    const std::vector<int32_t>& candidates, int n,
    obs::RequestTrace* trace) const {
  std::vector<ScoredPaper> ranked(candidates.size());
  {
    obs::StageTimer timer(trace, obs::Stage::kScore);
    const std::vector<double> scores = Score(profile, candidates);
    for (size_t i = 0; i < candidates.size(); ++i)
      ranked[i] = {candidates[i], scores[i]};
  }
  obs::StageTimer timer(trace, obs::Stage::kSelect);
  const size_t keep = std::min(ranked.size(), static_cast<size_t>(
                                                  n < 0 ? 0 : n));
  auto better = [](const ScoredPaper& a, const ScoredPaper& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.paper < b.paper;
  };
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<ptrdiff_t>(keep),
                    ranked.end(), better);
  ranked.resize(keep);
  return ranked;
}

const std::vector<double>& FrozenScorer::TextVector(int32_t p) const {
  if (text_.empty()) return empty_;
  SUBREC_DCHECK_GE(p, 0);
  SUBREC_DCHECK_LT(static_cast<size_t>(p), text_.size());
  return text_[static_cast<size_t>(p)];
}

}  // namespace subrec::serve
