#ifndef SUBREC_SERVE_SNAPSHOT_H_
#define SUBREC_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "la/matrix.h"

namespace subrec::serve {

/// Everything the online serving path needs, frozen out of a trained NPRec
/// and its RecContext — forward-only, no tape, no corpus pointer. All
/// per-paper arrays are indexed by PaperId; `profiles` is indexed by
/// AuthorId (the user's pre-split publications, most recent first).
struct SnapshotData {
  std::string model_name;
  std::string dataset;
  int32_t split_year = 0;
  /// Per-paper vectors as contiguous row-major slabs (one row per paper);
  /// score(p,q) = sigmoid(<interest row p, influence row q>) exactly as
  /// the live model computes it. Contiguous storage is what lets the
  /// frozen scorer gather rows straight into GEMM blocks, and lets the
  /// snapshot decoder fill each slab with a single allocation instead of
  /// one vector per row.
  la::Matrix interest;
  la::Matrix influence;
  /// Fused text vectors c_p (0x0 when the model ran text-free); kept for
  /// inspection and content-similarity fallbacks, not used by PairScore.
  la::Matrix text;
  // Candidate-index attributes, one entry per paper.
  std::vector<int32_t> years;
  std::vector<int32_t> disciplines;
  std::vector<int32_t> topics;
  // Per-user serving profiles, one entry per author.
  std::vector<std::vector<int32_t>> profiles;
  /// Serialized ann::HnswIndex over the new-paper influence vectors (empty
  /// when freezing skipped the ANN build). Carried opaquely: the snapshot
  /// layer neither parses nor validates it, so readers predating the ANN
  /// section skip its tag cleanly and decoding errors surface where the
  /// index is actually rebuilt (ServingState::FromSnapshot).
  std::string ann_index;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`. Used as the
/// snapshot payload checksum; also handy for tests that corrupt bytes.
uint32_t Crc32(std::string_view data);

/// Serializes SnapshotData into the versioned binary snapshot format:
///
///   [magic u64][version u32][section_count u32][payload_size u64]
///   payload: sections, each [tag u32][byte_size u64][bytes]
///   [crc32 u32 of payload]
///
/// All integers little-endian; doubles as raw IEEE-754 bits, so a
/// round-trip is bit-exact. Unknown future sections are skipped by the
/// reader, which is how the format grows without a version bump.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(const SnapshotData& data);

  /// The full serialized snapshot (header + payload + checksum).
  const std::string& bytes() const { return bytes_; }

  /// Writes the serialized snapshot to `path` via WriteStringToFile.
  Status WriteFile(const std::string& path) const;

 private:
  std::string bytes_;
};

/// Parses snapshot bytes back into SnapshotData. Every failure mode on
/// untrusted input — truncation, bad magic, unsupported version, checksum
/// mismatch, section lengths running past the payload, inconsistent array
/// sizes — returns an error Status; this path never aborts.
class SnapshotReader {
 public:
  static Result<SnapshotData> Parse(std::string_view bytes);

  /// Reads `path` and parses it.
  static Result<SnapshotData> ReadFile(const std::string& path);
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_SNAPSHOT_H_
