#include "serve/candidate_index.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace subrec::serve {

const char* CandidateSourceName(CandidateSource source) {
  switch (source) {
    case CandidateSource::kFullPool:
      return "full_pool";
    case CandidateSource::kTopicPruned:
      return "topic_pruned";
    case CandidateSource::kDisciplineFiltered:
      return "discipline_filtered";
    case CandidateSource::kFallbackPool:
      return "fallback_pool";
    case CandidateSource::kUnknownUser:
      return "unknown_user";
  }
  return "unknown";
}

CandidateIndex::CandidateIndex(const SnapshotData& data,
                               const CandidateIndexOptions& options) {
  const size_t n = data.years.size();
  SUBREC_CHECK_EQ(data.disciplines.size(), n);
  SUBREC_CHECK_EQ(data.topics.size(), n);

  int32_t max_topic = -1;
  for (size_t p = 0; p < n; ++p) {
    if (data.years[p] > options.min_year && data.years[p] <= options.max_year)
      new_papers_.push_back(static_cast<int32_t>(p));
    max_topic = std::max(max_topic, data.topics[p]);
  }
  by_topic_.resize(static_cast<size_t>(max_topic + 1));
  for (int32_t p : new_papers_) {
    const int32_t t = data.topics[static_cast<size_t>(p)];
    if (t >= 0) by_topic_[static_cast<size_t>(t)].push_back(p);
  }

  per_user_.resize(data.profiles.size());
  per_user_source_.resize(data.profiles.size(), CandidateSource::kFullPool);
  for (size_t u = 0; u < data.profiles.size(); ++u) {
    const std::vector<int32_t>& profile = data.profiles[u];
    if (profile.empty()) {
      per_user_[u] = new_papers_;
      continue;
    }
    std::unordered_set<int32_t> disciplines, topics;
    for (int32_t pid : profile) {
      disciplines.insert(data.disciplines[static_cast<size_t>(pid)]);
      const int32_t t = data.topics[static_cast<size_t>(pid)];
      if (t >= 0) topics.insert(t);
    }
    auto discipline_ok = [&](int32_t p) {
      return !options.filter_disciplines ||
             disciplines.count(data.disciplines[static_cast<size_t>(p)]) > 0;
    };
    std::vector<int32_t> chosen;
    CandidateSource source = CandidateSource::kTopicPruned;
    if (options.prune_topics && !topics.empty()) {
      // Union of the user's topic postings, discipline-filtered.
      for (int32_t t : topics)
        if (static_cast<size_t>(t) < by_topic_.size())
          for (int32_t p : by_topic_[static_cast<size_t>(t)])
            if (discipline_ok(p)) chosen.push_back(p);
      std::sort(chosen.begin(), chosen.end());
      chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    }
    if (chosen.empty()) {
      source = CandidateSource::kDisciplineFiltered;
      for (int32_t p : new_papers_)
        if (discipline_ok(p)) chosen.push_back(p);
    }
    // A profile whose disciplines vanished from the window still needs
    // something to rank: fall back to the unfiltered pool.
    if (chosen.empty()) {
      source = CandidateSource::kFallbackPool;
      chosen = new_papers_;
    }
    per_user_[u] = std::move(chosen);
    per_user_source_[u] = source;
  }
}

const std::vector<int32_t>& CandidateIndex::CandidatesFor(
    int32_t user) const {
  if (user < 0 || static_cast<size_t>(user) >= per_user_.size())
    return new_papers_;
  return per_user_[static_cast<size_t>(user)];
}

CandidateSource CandidateIndex::SourceFor(int32_t user) const {
  if (user < 0 || static_cast<size_t>(user) >= per_user_source_.size())
    return CandidateSource::kUnknownUser;
  return per_user_source_[static_cast<size_t>(user)];
}

const std::vector<int32_t>& CandidateIndex::PapersForTopic(
    int32_t topic) const {
  if (topic < 0 || static_cast<size_t>(topic) >= by_topic_.size())
    return empty_;
  return by_topic_[static_cast<size_t>(topic)];
}

}  // namespace subrec::serve
