#include "serve/candidate_index.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "common/check.h"
#include "obs/metrics.h"
#include "par/parallel.h"

namespace subrec::serve {

const char* CandidateSourceName(CandidateSource source) {
  switch (source) {
    case CandidateSource::kFullPool:
      return "full_pool";
    case CandidateSource::kTopicPruned:
      return "topic_pruned";
    case CandidateSource::kDisciplineFiltered:
      return "discipline_filtered";
    case CandidateSource::kFallbackPool:
      return "fallback_pool";
    case CandidateSource::kUnknownUser:
      return "unknown_user";
    case CandidateSource::kAnnEmbedding:
      return "ann_embedding";
  }
  return "unknown";
}

namespace {

/// Builds one user's ANN candidate list: mean profile interest vector as
/// the query, year-window filter on the hits, ascending paper ids — the
/// same output contract as the filtered branches. Returns false (leaving
/// `out` empty) for users ANN cannot serve: empty profiles and queries
/// whose every hit fell outside the year window.
///
/// ServingState::FromSnapshot validates the deserialized index against the
/// snapshot before any query runs — every external id in [0, years.size())
/// and index dim == embedding dim — so hit ids index `data.years` safely
/// here and the Search status CHECK below guards programmer errors only.
bool AnnCandidatesForUser(const SnapshotData& data,
                          const CandidateIndexOptions& options,
                          const ann::Index& ann_index,
                          const std::vector<int32_t>& profile,
                          std::vector<int32_t>* out,
                          ann::SearchStats* stats,
                          int64_t* hits_returned) {
  if (profile.empty() || data.interest.rows() == 0) return false;
  const size_t dim = data.interest.cols();
  std::vector<double> query(dim, 0.0);
  for (int32_t pid : profile) {
    const double* v = data.interest.row_data(static_cast<size_t>(pid));
    for (size_t d = 0; d < dim; ++d) query[d] += v[d];
  }
  const double inv = 1.0 / static_cast<double>(profile.size());
  for (double& q : query) q *= inv;
  std::vector<ann::Neighbor> hits;
  const Status status =
      ann_index.Search(query, options.ann_candidates,
                       std::max(options.ann_ef, options.ann_candidates),
                       &hits, stats);
  SUBREC_CHECK(status.ok()) << status.ToString();
  *hits_returned += static_cast<int64_t>(hits.size());
  out->clear();
  out->reserve(hits.size());
  for (const ann::Neighbor& hit : hits) {
    const auto p = static_cast<size_t>(hit.id);
    if (data.years[p] > options.min_year && data.years[p] <= options.max_year)
      out->push_back(hit.id);
  }
  std::sort(out->begin(), out->end());
  return !out->empty();
}

}  // namespace

CandidateIndex::CandidateIndex(const SnapshotData& data,
                               const CandidateIndexOptions& options,
                               const ann::Index* ann_index) {
  const size_t n = data.years.size();
  SUBREC_CHECK_EQ(data.disciplines.size(), n);
  SUBREC_CHECK_EQ(data.topics.size(), n);
  const bool use_ann = options.retrieval == RetrievalMode::kAnnEmbedding;
  SUBREC_CHECK(!use_ann || ann_index != nullptr)
      << "kAnnEmbedding retrieval requested without an ann::Index";

  int32_t max_topic = -1;
  for (size_t p = 0; p < n; ++p) {
    if (data.years[p] > options.min_year && data.years[p] <= options.max_year)
      new_papers_.push_back(static_cast<int32_t>(p));
    max_topic = std::max(max_topic, data.topics[p]);
  }
  by_topic_.resize(static_cast<size_t>(max_topic + 1));
  for (int32_t p : new_papers_) {
    const int32_t t = data.topics[static_cast<size_t>(p)];
    if (t >= 0) by_topic_[static_cast<size_t>(t)].push_back(p);
  }

  per_user_.resize(data.profiles.size());
  per_user_source_.resize(data.profiles.size(), CandidateSource::kFullPool);

  // ANN pass first: per-user graph queries fan out over the pool (each
  // user's list lands in its own slot, so the result is independent of
  // SUBREC_NUM_THREADS); users ANN could not serve fall through to the
  // filtered branches below exactly as in kFiltered mode.
  std::vector<uint8_t> ann_served;
  if (use_ann && !data.profiles.empty()) {
    ann_served.assign(data.profiles.size(), 0);
    std::atomic<int64_t> queries{0}, nodes{0}, evals{0}, returned{0}, kept{0};
    par::ParallelFor(
        data.profiles.size(), 8, [&](size_t begin, size_t end) {
          ann::SearchStats stats;
          int64_t local_queries = 0, local_returned = 0, local_kept = 0;
          for (size_t u = begin; u < end; ++u) {
            if (data.profiles[u].empty()) continue;
            ++local_queries;
            if (AnnCandidatesForUser(data, options, *ann_index,
                                     data.profiles[u], &per_user_[u], &stats,
                                     &local_returned)) {
              ann_served[u] = 1;
              local_kept += static_cast<int64_t>(per_user_[u].size());
            }
          }
          queries.fetch_add(local_queries, std::memory_order_relaxed);
          nodes.fetch_add(stats.nodes_visited, std::memory_order_relaxed);
          evals.fetch_add(stats.distance_evals, std::memory_order_relaxed);
          returned.fetch_add(local_returned, std::memory_order_relaxed);
          kept.fetch_add(local_kept, std::memory_order_relaxed);
        });
    // The ann.* family: build-time retrieval work plus a recall proxy —
    // the fraction of returned neighbors that survived the year window
    // (low values mean the graph keeps surfacing out-of-window papers).
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("ann.queries")->Increment(queries.load());
    registry.GetCounter("ann.nodes_visited")->Increment(nodes.load());
    registry.GetCounter("ann.distance_evals")->Increment(evals.load());
    registry.GetGauge("ann.ef")->Set(static_cast<double>(
        std::max(options.ann_ef, options.ann_candidates)));
    registry.GetGauge("ann.window_hit_rate")
        ->Set(returned.load() > 0
                  ? static_cast<double>(kept.load()) /
                        static_cast<double>(returned.load())
                  : 0.0);
  }

  for (size_t u = 0; u < data.profiles.size(); ++u) {
    if (!ann_served.empty() && ann_served[u] != 0) {
      per_user_source_[u] = CandidateSource::kAnnEmbedding;
      continue;
    }
    const std::vector<int32_t>& profile = data.profiles[u];
    if (profile.empty()) {
      per_user_[u] = new_papers_;
      continue;
    }
    std::unordered_set<int32_t> disciplines, topics;
    for (int32_t pid : profile) {
      disciplines.insert(data.disciplines[static_cast<size_t>(pid)]);
      const int32_t t = data.topics[static_cast<size_t>(pid)];
      if (t >= 0) topics.insert(t);
    }
    auto discipline_ok = [&](int32_t p) {
      return !options.filter_disciplines ||
             disciplines.count(data.disciplines[static_cast<size_t>(p)]) > 0;
    };
    std::vector<int32_t> chosen;
    CandidateSource source = CandidateSource::kTopicPruned;
    if (options.prune_topics && !topics.empty()) {
      // Union of the user's topic postings, discipline-filtered.
      for (int32_t t : topics)
        if (static_cast<size_t>(t) < by_topic_.size())
          for (int32_t p : by_topic_[static_cast<size_t>(t)])
            if (discipline_ok(p)) chosen.push_back(p);
      std::sort(chosen.begin(), chosen.end());
      chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    }
    if (chosen.empty()) {
      source = CandidateSource::kDisciplineFiltered;
      for (int32_t p : new_papers_)
        if (discipline_ok(p)) chosen.push_back(p);
    }
    // A profile whose disciplines vanished from the window still needs
    // something to rank: fall back to the unfiltered pool.
    if (chosen.empty()) {
      source = CandidateSource::kFallbackPool;
      chosen = new_papers_;
    }
    per_user_[u] = std::move(chosen);
    per_user_source_[u] = source;
  }
}

const std::vector<int32_t>& CandidateIndex::CandidatesFor(
    int32_t user) const {
  if (user < 0 || static_cast<size_t>(user) >= per_user_.size())
    return new_papers_;
  return per_user_[static_cast<size_t>(user)];
}

CandidateSource CandidateIndex::SourceFor(int32_t user) const {
  if (user < 0 || static_cast<size_t>(user) >= per_user_source_.size())
    return CandidateSource::kUnknownUser;
  return per_user_source_[static_cast<size_t>(user)];
}

const std::vector<int32_t>& CandidateIndex::PapersForTopic(
    int32_t topic) const {
  if (topic < 0 || static_cast<size_t>(topic) >= by_topic_.size())
    return empty_;
  return by_topic_[static_cast<size_t>(topic)];
}

}  // namespace subrec::serve
