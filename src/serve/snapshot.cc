#include "serve/snapshot.h"

#include <array>
#include <cstddef>
#include <utility>

#include "common/file_util.h"
#include "common/wire.h"

namespace subrec::serve {
namespace {

using wire::AppendDouble;
using wire::AppendI32;
using wire::AppendString;
using wire::AppendU32;
using wire::AppendU64;
using wire::Cursor;

// "SUBRSNP1" read as a little-endian u64.
constexpr uint64_t kMagic = 0x31504E5352425553ULL;
constexpr uint32_t kVersion = 1;
// Header: magic u64 + version u32 + section_count u32 + payload_size u64.
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8;
constexpr size_t kFooterSize = 4;  // payload crc32

enum SectionTag : uint32_t {
  kMetaTag = 1,
  kInterestTag = 2,
  kInfluenceTag = 3,
  kTextTag = 4,
  kYearsTag = 5,
  kDisciplinesTag = 6,
  kTopicsTag = 7,
  kProfilesTag = 8,
  kAnnIndexTag = 9,
};

void AppendI32Vector(std::string* out, const std::vector<int32_t>& v) {
  AppendU64(out, v.size());
  for (int32_t x : v) AppendI32(out, x);
}

/// Uniform-width double matrix: rows u64, cols u64, row-major values. The
/// in-memory slab is already row-major, so encoding is one flat sweep.
void EncodeMatrix(const la::Matrix& m, std::string* out) {
  AppendU64(out, m.rows());
  AppendU64(out, m.cols());
  const double* flat = m.data();
  for (size_t i = 0; i < m.size(); ++i) AppendDouble(out, flat[i]);
}

Status DecodeMatrix(std::string_view bytes, la::Matrix* out) {
  Cursor c(bytes);
  uint64_t rows = 0, cols = 0;
  SUBREC_RETURN_NOT_OK(c.ReadU64(&rows));
  SUBREC_RETURN_NOT_OK(c.ReadU64(&cols));
  // Bound the dimensions by the section size BEFORE any allocation or
  // arithmetic on them: cols first, so that 8*cols below cannot wrap (a
  // crafted cols of 2^61 would otherwise divide by zero) and so the slab
  // resize can never allocate more than the section actually carries —
  // even when rows == 0. A zero-width matrix has no payload bytes to
  // bound rows with, so rows gets an explicit cap there.
  if (cols > c.remaining() / 8)
    return Status::OutOfRange("snapshot matrix wider than its section");
  if (cols == 0) {
    constexpr uint64_t kMaxZeroWidthRows = uint64_t{1} << 24;
    if (rows > kMaxZeroWidthRows)
      return Status::OutOfRange(
          "snapshot zero-width matrix row count implausible");
  } else if (rows > c.remaining() / (8 * cols)) {
    return Status::OutOfRange("snapshot matrix larger than its section");
  }
  // Decode straight into the contiguous slab: one allocation for the whole
  // matrix, no transient per-row vectors (the load-time allocation
  // regression test counts on this).
  out->ResizeOverwrite(static_cast<size_t>(rows), static_cast<size_t>(cols));
  double* flat = out->data();
  for (size_t i = 0; i < out->size(); ++i)
    SUBREC_RETURN_NOT_OK(c.ReadDouble(&flat[i]));
  return Status::Ok();
}

Status DecodeI32Vector(std::string_view bytes, std::vector<int32_t>* out) {
  Cursor c(bytes);
  uint64_t n = 0;
  SUBREC_RETURN_NOT_OK(c.ReadU64(&n));
  if (n > c.remaining() / 4)
    return Status::OutOfRange("snapshot int array larger than its section");
  out->resize(static_cast<size_t>(n));
  for (int32_t& v : *out) SUBREC_RETURN_NOT_OK(c.ReadI32(&v));
  return Status::Ok();
}

/// Structural consistency of a parsed snapshot: every per-paper array must
/// agree on the paper count and the score dot product must be well-formed.
Status ValidateData(const SnapshotData& d) {
  const size_t n = d.interest.rows();
  if (d.influence.rows() != n)
    return Status::InvalidArgument("snapshot: interest/influence size skew");
  if (n > 0 && d.interest.cols() != d.influence.cols())
    return Status::InvalidArgument("snapshot: interest/influence dim skew");
  if (!d.text.empty() && d.text.rows() != n)
    return Status::InvalidArgument("snapshot: text vector count skew");
  if (d.years.size() != n || d.disciplines.size() != n ||
      d.topics.size() != n) {
    return Status::InvalidArgument("snapshot: attribute array size skew");
  }
  for (const auto& profile : d.profiles) {
    for (int32_t pid : profile) {
      if (pid < 0 || static_cast<size_t>(pid) >= n)
        return Status::InvalidArgument("snapshot: profile paper out of range");
    }
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  // Table-driven reflected CRC-32 (poly 0xEDB88320), computed lazily once.
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

SnapshotWriter::SnapshotWriter(const SnapshotData& data) {
  std::string payload;
  uint32_t sections = 0;
  auto add_section = [&](uint32_t tag, const std::string& body) {
    AppendU32(&payload, tag);
    AppendU64(&payload, body.size());
    payload.append(body);
    ++sections;
  };

  {
    std::string body;
    AppendString(&body, data.model_name);
    AppendString(&body, data.dataset);
    AppendI32(&body, data.split_year);
    add_section(kMetaTag, body);
  }
  auto add_matrix = [&](uint32_t tag, const la::Matrix& m) {
    std::string body;
    EncodeMatrix(m, &body);
    add_section(tag, body);
  };
  add_matrix(kInterestTag, data.interest);
  add_matrix(kInfluenceTag, data.influence);
  add_matrix(kTextTag, data.text);
  auto add_ints = [&](uint32_t tag, const std::vector<int32_t>& v) {
    std::string body;
    AppendI32Vector(&body, v);
    add_section(tag, body);
  };
  add_ints(kYearsTag, data.years);
  add_ints(kDisciplinesTag, data.disciplines);
  add_ints(kTopicsTag, data.topics);
  {
    std::string body;
    AppendU64(&body, data.profiles.size());
    for (const auto& profile : data.profiles) AppendI32Vector(&body, profile);
    add_section(kProfilesTag, body);
  }
  // The ANN section is optional and opaque: the serialized index carries its
  // own magic/version/bounds, so the snapshot layer just frames the bytes.
  // Omitting the section entirely when empty keeps ANN-free snapshots
  // byte-identical to the pre-ANN format.
  if (!data.ann_index.empty()) add_section(kAnnIndexTag, data.ann_index);

  bytes_.reserve(kHeaderSize + payload.size() + kFooterSize);
  AppendU64(&bytes_, kMagic);
  AppendU32(&bytes_, kVersion);
  AppendU32(&bytes_, sections);
  AppendU64(&bytes_, payload.size());
  bytes_.append(payload);
  AppendU32(&bytes_, Crc32(payload));
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  return WriteStringToFile(path, bytes_);
}

Result<SnapshotData> SnapshotReader::Parse(std::string_view bytes) {
  Cursor header(bytes);
  uint64_t magic = 0, payload_size = 0;
  uint32_t version = 0, section_count = 0;
  SUBREC_RETURN_NOT_OK(header.ReadU64(&magic));
  if (magic != kMagic)
    return Status::InvalidArgument("snapshot: bad magic (not a snapshot?)");
  SUBREC_RETURN_NOT_OK(header.ReadU32(&version));
  if (version != kVersion)
    return Status::InvalidArgument("snapshot: unsupported version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kVersion) + ")");
  SUBREC_RETURN_NOT_OK(header.ReadU32(&section_count));
  SUBREC_RETURN_NOT_OK(header.ReadU64(&payload_size));
  std::string_view payload;
  SUBREC_RETURN_NOT_OK(header.ReadView(payload_size, &payload));
  uint32_t stored_crc = 0;
  SUBREC_RETURN_NOT_OK(header.ReadU32(&stored_crc));
  const uint32_t actual_crc = Crc32(payload);
  if (stored_crc != actual_crc)
    return Status::InvalidArgument("snapshot: checksum mismatch (corrupt)");

  SnapshotData data;
  Cursor c(payload);
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t tag = 0;
    uint64_t size = 0;
    SUBREC_RETURN_NOT_OK(c.ReadU32(&tag));
    SUBREC_RETURN_NOT_OK(c.ReadU64(&size));
    std::string_view body;
    SUBREC_RETURN_NOT_OK(c.ReadView(size, &body));
    switch (tag) {
      case kMetaTag: {
        Cursor m(body);
        SUBREC_RETURN_NOT_OK(m.ReadString(&data.model_name));
        SUBREC_RETURN_NOT_OK(m.ReadString(&data.dataset));
        SUBREC_RETURN_NOT_OK(m.ReadI32(&data.split_year));
        break;
      }
      case kInterestTag:
        SUBREC_RETURN_NOT_OK(DecodeMatrix(body, &data.interest));
        break;
      case kInfluenceTag:
        SUBREC_RETURN_NOT_OK(DecodeMatrix(body, &data.influence));
        break;
      case kTextTag:
        SUBREC_RETURN_NOT_OK(DecodeMatrix(body, &data.text));
        break;
      case kYearsTag:
        SUBREC_RETURN_NOT_OK(DecodeI32Vector(body, &data.years));
        break;
      case kDisciplinesTag:
        SUBREC_RETURN_NOT_OK(DecodeI32Vector(body, &data.disciplines));
        break;
      case kTopicsTag:
        SUBREC_RETURN_NOT_OK(DecodeI32Vector(body, &data.topics));
        break;
      case kProfilesTag: {
        Cursor p(body);
        uint64_t users = 0;
        SUBREC_RETURN_NOT_OK(p.ReadU64(&users));
        if (users > body.size() / 8)
          return Status::OutOfRange("snapshot: profile count implausible");
        data.profiles.resize(static_cast<size_t>(users));
        for (auto& profile : data.profiles) {
          uint64_t len = 0;
          SUBREC_RETURN_NOT_OK(p.ReadU64(&len));
          if (len > p.remaining() / 4)
            return Status::OutOfRange("snapshot: profile longer than section");
          profile.resize(static_cast<size_t>(len));
          for (int32_t& pid : profile) SUBREC_RETURN_NOT_OK(p.ReadI32(&pid));
        }
        break;
      }
      case kAnnIndexTag:
        // Opaque by design; decoding (and decode errors) happen where the
        // index is rebuilt, not here.
        data.ann_index.assign(body);
        break;
      default:
        // Unknown section from a newer writer: skip, stay compatible.
        break;
    }
  }
  SUBREC_RETURN_NOT_OK(ValidateData(data));
  return data;
}

Result<SnapshotData> SnapshotReader::ReadFile(const std::string& path) {
  SUBREC_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return Parse(bytes);
}

}  // namespace subrec::serve
