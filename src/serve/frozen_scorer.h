#ifndef SUBREC_SERVE_FROZEN_SCORER_H_
#define SUBREC_SERVE_FROZEN_SCORER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "obs/request_trace.h"
#include "serve/snapshot.h"

namespace subrec::serve {

/// One ranked recommendation.
struct ScoredPaper {
  int32_t paper = -1;
  double score = 0.0;
};

/// Which scoring engine serves a request. Both produce bit-identical
/// scores (asserted by tests on every preset); they differ only in cost:
/// kPairwise walks (profile x candidate) pairs one la::Dot at a time,
/// kGemm batches each request into blocked GEMM tiles with a fused
/// sigmoid-mean epilogue.
enum class ScorerMode : int {
  kPairwise = 0,
  kGemm,
};

/// Stable static-storage name ("pairwise", "gemm") for report rows.
const char* ScorerModeName(ScorerMode mode);

/// Wall-time attribution of one batched scoring pass, accumulated across
/// its tiles: candidate-row gather, GEMM, sigmoid-mean epilogue.
struct ScoreBatchStats {
  int64_t gather_ns = 0;
  int64_t gemm_ns = 0;
  int64_t epilogue_ns = 0;
};

/// Immutable forward-only scorer over frozen NPRec vectors, stored as
/// contiguous row-major slabs (one row per paper). PairScore and Score
/// reproduce the live model's post-fit math operation-for-operation
/// (sigmoid of the interest/influence dot product, mean over the profile),
/// so frozen top-N lists are bit-exact against NPRec::Score on the same
/// candidates. ScoreBatch reorganizes the same arithmetic into blocked
/// GEMM tiles without changing any element's operation order, so the
/// batched path is bit-exact against Score in turn. Thread-safe by
/// construction: all state is const after build; scratch is per-thread.
class FrozenScorer {
 public:
  /// Copies the vector slabs from `data`, which stays intact.
  explicit FrozenScorer(const SnapshotData& data);

  /// Moves the vector slabs out of `data`, avoiding a transient second
  /// copy of the largest allocations in the model. The attribute arrays
  /// (years/disciplines/topics/profiles) are left untouched for the
  /// caller — CandidateIndex consumes those.
  explicit FrozenScorer(SnapshotData&& data);

  size_t num_papers() const { return interest_.rows(); }
  size_t dim() const { return interest_.cols(); }

  /// Pairwise correlation score y_hat(p,q) (Eq. 22): sigmoid of the
  /// interest(p) . influence(q) dot product.
  double PairScore(int32_t p, int32_t q) const;

  /// Mean PairScore of each candidate against the profile — exactly
  /// NPRec::Score. Zeros when the profile is empty. This is the per-pair
  /// oracle the batched path is tested against.
  std::vector<double> Score(const std::vector<int32_t>& profile,
                            const std::vector<int32_t>& candidates) const;

  /// Score via the batched engine: the profile's interest rows are packed
  /// into one block, candidate influence rows are gathered into transposed
  /// tiles, one blocked GEMM per tile produces the logits, and a fused
  /// sigmoid + ascending-profile-order column-mean epilogue reduces them.
  /// Bit-exact against Score().
  std::vector<double> ScoreBatch(const std::vector<int32_t>& profile,
                                 const std::vector<int32_t>& candidates) const;

  /// ScoreBatch writing into `scores` (resized capacity-preservingly):
  /// with warm per-thread scratch and sufficient `scores` capacity the
  /// call performs zero heap allocations. `stats` (nullable) accumulates
  /// per-stage wall time.
  void ScoreBatchInto(const std::vector<int32_t>& profile,
                      const std::vector<int32_t>& candidates,
                      std::vector<double>* scores,
                      ScoreBatchStats* stats) const;

  /// One user's slice of a stacked multi-request scoring pass.
  struct StackedRequest {
    /// The user's profile (interest row ids). May be empty: scores zero.
    const std::vector<int32_t>* profile = nullptr;
    /// Output, resized to candidates.size() capacity-preservingly.
    std::vector<double>* scores = nullptr;
  };

  /// Scores several profiles against ONE shared candidate list in a
  /// single pass: all profiles stack into one GEMM A-block, each
  /// candidate tile is gathered once and multiplied once, and the
  /// epilogue reduces each user's row segment independently (ascending
  /// profile order within the segment). Each user's scores are bit-exact
  /// against their solo Score()/ScoreBatch(). This is the coalesced path
  /// RecommendService::TopNBatch takes when queued requests share a
  /// candidate list.
  void ScoreStackedInto(const std::vector<StackedRequest>& requests,
                        const std::vector<int32_t>& candidates,
                        ScoreBatchStats* stats) const;

  /// The top `n` candidates by score, descending; ties break toward the
  /// lower paper id so rankings are deterministic across runs.
  std::vector<ScoredPaper> TopN(const std::vector<int32_t>& profile,
                                const std::vector<int32_t>& candidates,
                                int n) const;

  /// Same ranking, attributing scoring and selection wall time to the
  /// trace's kScore / kSelect stages (plus the kScoreGather/kScoreGemm/
  /// kScoreEpilogue breakdown on the gemm path). `trace` may be null.
  std::vector<ScoredPaper> TopN(const std::vector<int32_t>& profile,
                                const std::vector<int32_t>& candidates, int n,
                                obs::RequestTrace* trace,
                                ScorerMode mode = ScorerMode::kGemm) const;

  /// TopN writing into `out` (cleared, capacity kept). With warm
  /// per-thread scratch, precomputed `scores` == nullptr and sufficient
  /// `out` capacity, the steady-state call performs zero heap allocations
  /// (asserted by the counting-allocator probe in tests). When `scores`
  /// is non-null it must hold candidates.size() precomputed scores (the
  /// stacked path) and the scoring stage is skipped.
  void TopNInto(const std::vector<int32_t>& profile,
                const std::vector<int32_t>& candidates, int n,
                ScorerMode mode, obs::RequestTrace* trace,
                const std::vector<double>* scores,
                std::vector<ScoredPaper>* out) const;

  /// Fused text vector c_p; empty when the model ran text-free.
  std::vector<double> TextVector(int32_t p) const;

 private:
  void ScoreInto(const std::vector<int32_t>& profile,
                 const std::vector<int32_t>& candidates,
                 std::vector<double>* scores) const;

  /// Shared tile pipeline behind ScoreBatchInto (count == 1) and
  /// ScoreStackedInto. Raw span so the single-request path needs no
  /// transient container.
  void ScoreStackedCore(const StackedRequest* requests, size_t count,
                        const std::vector<int32_t>& candidates,
                        ScoreBatchStats* stats) const;

  /// Heap-based top-`keep` selection over (candidates[i], scores[i])
  /// preserving the (score desc, id asc) tie contract — same output as
  /// materialize + partial_sort, without holding the full ranked array
  /// when keep << |candidates|.
  void SelectTopN(const std::vector<int32_t>& candidates,
                  const std::vector<double>& scores, size_t keep,
                  std::vector<ScoredPaper>* out) const;

  la::Matrix interest_;
  la::Matrix influence_;
  la::Matrix text_;
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_FROZEN_SCORER_H_
