#ifndef SUBREC_SERVE_FROZEN_SCORER_H_
#define SUBREC_SERVE_FROZEN_SCORER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/request_trace.h"
#include "serve/snapshot.h"

namespace subrec::serve {

/// One ranked recommendation.
struct ScoredPaper {
  int32_t paper = -1;
  double score = 0.0;
};

/// Immutable forward-only scorer over frozen NPRec vectors. PairScore and
/// Score reproduce the live model's post-fit math operation-for-operation
/// (sigmoid of the interest/influence dot product, mean over the profile),
/// so frozen top-N lists are bit-exact against NPRec::Score on the same
/// candidates. Thread-safe by construction: all state is const after build.
class FrozenScorer {
 public:
  /// Copies the vector arrays from `data`, which stays intact.
  explicit FrozenScorer(const SnapshotData& data);

  /// Moves the vector arrays out of `data`, avoiding a transient second
  /// copy of the largest allocations in the model. The attribute arrays
  /// (years/disciplines/topics/profiles) are left untouched for the
  /// caller — CandidateIndex consumes those.
  explicit FrozenScorer(SnapshotData&& data);

  size_t num_papers() const { return interest_.size(); }
  size_t dim() const {
    return interest_.empty() ? 0 : interest_.front().size();
  }

  /// Pairwise correlation score y_hat(p,q) (Eq. 22): sigmoid of the
  /// interest(p) . influence(q) dot product.
  double PairScore(int32_t p, int32_t q) const;

  /// Mean PairScore of each candidate against the profile — exactly
  /// NPRec::Score. Zeros when the profile is empty.
  std::vector<double> Score(const std::vector<int32_t>& profile,
                            const std::vector<int32_t>& candidates) const;

  /// The top `n` candidates by score, descending; ties break toward the
  /// lower paper id so rankings are deterministic across runs.
  std::vector<ScoredPaper> TopN(const std::vector<int32_t>& profile,
                                const std::vector<int32_t>& candidates,
                                int n) const;

  /// Same ranking, attributing scoring and selection wall time to the
  /// trace's kScore / kSelect stages. `trace` may be null (no timing).
  std::vector<ScoredPaper> TopN(const std::vector<int32_t>& profile,
                                const std::vector<int32_t>& candidates, int n,
                                obs::RequestTrace* trace) const;

  /// Fused text vector c_p; empty when the model ran text-free.
  const std::vector<double>& TextVector(int32_t p) const;

 private:
  std::vector<std::vector<double>> interest_;
  std::vector<std::vector<double>> influence_;
  std::vector<std::vector<double>> text_;
  std::vector<double> empty_;
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_FROZEN_SCORER_H_
