#include "labeling/crf.h"

#include <limits>

#include "common/check.h"

namespace subrec::labeling {

LinearChainCrf::LinearChainCrf(size_t num_labels, size_t num_features)
    : num_labels_(num_labels),
      num_features_(num_features),
      emit_(num_labels * num_features, 0.0),
      trans_(num_labels * num_labels, 0.0),
      start_(num_labels, 0.0) {
  SUBREC_CHECK_GT(num_labels_, 0u);
  SUBREC_CHECK_GT(num_features_, 0u);
}

std::vector<int> LinearChainCrf::Decode(
    const std::vector<std::vector<size_t>>& features) const {
  const size_t n = features.size();
  if (n == 0) return {};
  const size_t l = num_labels_;
  std::vector<double> prev(l), cur(l);
  std::vector<std::vector<int>> backptr(n, std::vector<int>(l, 0));

  auto emit_score = [&](size_t pos, size_t label) {
    double s = 0.0;
    for (size_t f : features[pos]) {
      SUBREC_CHECK_LT(f, num_features_);
      s += emit_[label * num_features_ + f];
    }
    return s;
  };

  for (size_t y = 0; y < l; ++y) prev[y] = start_[y] + emit_score(0, y);
  for (size_t i = 1; i < n; ++i) {
    for (size_t y = 0; y < l; ++y) {
      double best = -std::numeric_limits<double>::infinity();
      int best_prev = 0;
      for (size_t yp = 0; yp < l; ++yp) {
        const double s = prev[yp] + trans_[yp * l + y];
        if (s > best) {
          best = s;
          best_prev = static_cast<int>(yp);
        }
      }
      cur[y] = best + emit_score(i, y);
      backptr[i][y] = best_prev;
    }
    prev.swap(cur);
  }
  int best_last = 0;
  for (size_t y = 1; y < l; ++y)
    if (prev[y] > prev[best_last]) best_last = static_cast<int>(y);

  std::vector<int> labels(n);
  labels[n - 1] = best_last;
  for (size_t i = n - 1; i > 0; --i)
    labels[i - 1] = backptr[i][static_cast<size_t>(labels[i])];
  return labels;
}

double LinearChainCrf::SequenceScore(
    const std::vector<std::vector<size_t>>& features,
    const std::vector<int>& labels) const {
  SUBREC_CHECK_EQ(features.size(), labels.size());
  if (labels.empty()) return 0.0;
  double s = start_[static_cast<size_t>(labels[0])];
  for (size_t i = 0; i < labels.size(); ++i) {
    const size_t y = static_cast<size_t>(labels[i]);
    SUBREC_CHECK_LT(y, num_labels_);
    for (size_t f : features[i]) s += emit_[y * num_features_ + f];
    if (i > 0)
      s += trans_[static_cast<size_t>(labels[i - 1]) * num_labels_ + y];
  }
  return s;
}

void LinearChainCrf::Axpy(double alpha, const LinearChainCrf& other) {
  SUBREC_CHECK_EQ(num_labels_, other.num_labels_);
  SUBREC_CHECK_EQ(num_features_, other.num_features_);
  for (size_t i = 0; i < emit_.size(); ++i) emit_[i] += alpha * other.emit_[i];
  for (size_t i = 0; i < trans_.size(); ++i)
    trans_[i] += alpha * other.trans_[i];
  for (size_t i = 0; i < start_.size(); ++i)
    start_[i] += alpha * other.start_[i];
}

}  // namespace subrec::labeling
