#ifndef SUBREC_LABELING_TRAINER_H_
#define SUBREC_LABELING_TRAINER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "labeling/crf.h"
#include "labeling/features.h"

namespace subrec::labeling {

/// One labeled abstract: per-sentence feature lists + gold roles.
struct SequenceExample {
  std::vector<std::vector<size_t>> features;
  std::vector<int> labels;
};

/// Options for averaged-perceptron CRF training.
struct TrainerOptions {
  int epochs = 8;
  uint64_t seed = 7;
};

/// Trains a LinearChainCrf with the averaged structured perceptron
/// (Collins 2002): on each mispredicted sequence, add the gold feature
/// vector and subtract the predicted one; the returned weights are the
/// average over all updates, which regularizes like a margin method.
Status TrainAveragedPerceptron(const std::vector<SequenceExample>& examples,
                               const TrainerOptions& options,
                               LinearChainCrf* crf);

/// Fraction of sentences labeled correctly by `crf` over `examples`.
double SequenceAccuracy(const LinearChainCrf& crf,
                        const std::vector<SequenceExample>& examples);

/// High-level sentence-function labeler: feature extraction + CRF, the
/// pretrained-module counterpart of Fig. 1's bottom-right box.
class SentenceLabeler {
 public:
  SentenceLabeler(size_t num_labels, size_t num_feature_buckets = size_t{1} << 14);

  /// Trains on abstracts (lists of sentence strings) with gold roles.
  Status Train(const std::vector<std::vector<std::string>>& abstracts,
               const std::vector<std::vector<int>>& roles,
               const TrainerOptions& options = {});

  /// Labels the sentences of one abstract.
  std::vector<int> Label(const std::vector<std::string>& sentences) const;

  /// Sentence-level accuracy over a labeled evaluation set.
  double Evaluate(const std::vector<std::vector<std::string>>& abstracts,
                  const std::vector<std::vector<int>>& roles) const;

  bool trained() const { return trained_; }
  size_t num_labels() const { return crf_.num_labels(); }

 private:
  SequenceExample MakeExample(const std::vector<std::string>& sentences,
                              const std::vector<int>* roles) const;

  FeatureExtractor extractor_;
  LinearChainCrf crf_;
  bool trained_ = false;
};

}  // namespace subrec::labeling

#endif  // SUBREC_LABELING_TRAINER_H_
