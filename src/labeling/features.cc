#include "labeling/features.h"

#include "common/check.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace subrec::labeling {

FeatureExtractor::FeatureExtractor(size_t num_buckets)
    : num_buckets_(num_buckets) {
  SUBREC_CHECK_GT(num_buckets_, 0u);
}

size_t FeatureExtractor::Bucket(const std::string& feature) const {
  return Fnv1aHash(feature) % num_buckets_;
}

std::vector<size_t> FeatureExtractor::Extract(const std::string& sentence,
                                              int position, int length) const {
  std::vector<size_t> feats;
  const std::vector<std::string> tokens = text::Tokenize(sentence);
  feats.reserve(tokens.size() + 6);
  for (const auto& t : tokens) feats.push_back(Bucket("tok=" + t));
  // Leading bigram is a strong rhetorical cue ("we propose", "results show").
  if (tokens.size() >= 2)
    feats.push_back(Bucket("lead=" + tokens[0] + "_" + tokens[1]));
  if (!tokens.empty()) feats.push_back(Bucket("first=" + tokens[0]));
  // Coarse relative-position buckets.
  if (length > 0) {
    const double rel =
        static_cast<double>(position) / static_cast<double>(length);
    const int bucket = rel < 0.25 ? 0 : rel < 0.5 ? 1 : rel < 0.75 ? 2 : 3;
    feats.push_back(Bucket("pos=" + std::to_string(bucket)));
    if (position == 0) feats.push_back(Bucket("pos=first"));
    if (position == length - 1) feats.push_back(Bucket("pos=last"));
  }
  return feats;
}

}  // namespace subrec::labeling
