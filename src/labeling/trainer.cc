#include "labeling/trainer.h"

#include "common/check.h"
#include "common/rng.h"

namespace subrec::labeling {

Status TrainAveragedPerceptron(const std::vector<SequenceExample>& examples,
                               const TrainerOptions& options,
                               LinearChainCrf* crf) {
  if (examples.empty())
    return Status::InvalidArgument("perceptron: no training examples");
  for (const auto& ex : examples) {
    if (ex.features.size() != ex.labels.size())
      return Status::InvalidArgument("perceptron: features/labels mismatch");
    for (int y : ex.labels) {
      if (y < 0 || static_cast<size_t>(y) >= crf->num_labels())
        return Status::InvalidArgument("perceptron: label out of range");
    }
  }

  LinearChainCrf sum(crf->num_labels(), crf->num_features());
  Rng rng(options.seed);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  int64_t updates = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const SequenceExample& ex = examples[idx];
      if (ex.labels.empty()) continue;
      const std::vector<int> pred = crf->Decode(ex.features);
      if (pred == ex.labels) continue;
      // w += Phi(x, gold) - Phi(x, pred).
      for (size_t i = 0; i < ex.labels.size(); ++i) {
        const int gold = ex.labels[i];
        const int hyp = pred[i];
        if (gold != hyp) {
          for (size_t f : ex.features[i]) {
            crf->emit(gold, f) += 1.0;
            crf->emit(hyp, f) -= 1.0;
          }
        }
        if (i == 0) {
          crf->start(gold) += 1.0;
          crf->start(hyp) -= 1.0;
        } else {
          crf->trans(ex.labels[i - 1], gold) += 1.0;
          crf->trans(pred[i - 1], hyp) -= 1.0;
        }
      }
      sum.Axpy(1.0, *crf);
      ++updates;
    }
  }
  if (updates > 0) {
    // Replace the final weights with the running average.
    LinearChainCrf averaged(crf->num_labels(), crf->num_features());
    averaged.Axpy(1.0 / static_cast<double>(updates), sum);
    *crf = averaged;
  }
  return Status::Ok();
}

double SequenceAccuracy(const LinearChainCrf& crf,
                        const std::vector<SequenceExample>& examples) {
  int64_t correct = 0, total = 0;
  for (const auto& ex : examples) {
    const std::vector<int> pred = crf.Decode(ex.features);
    for (size_t i = 0; i < ex.labels.size(); ++i) {
      if (pred[i] == ex.labels[i]) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) /
                                static_cast<double>(total);
}

SentenceLabeler::SentenceLabeler(size_t num_labels, size_t num_feature_buckets)
    : extractor_(num_feature_buckets),
      crf_(num_labels, num_feature_buckets) {}

SequenceExample SentenceLabeler::MakeExample(
    const std::vector<std::string>& sentences,
    const std::vector<int>* roles) const {
  SequenceExample ex;
  const int n = static_cast<int>(sentences.size());
  ex.features.reserve(sentences.size());
  for (int i = 0; i < n; ++i)
    ex.features.push_back(extractor_.Extract(sentences[static_cast<size_t>(i)],
                                             i, n));
  if (roles != nullptr) ex.labels = *roles;
  return ex;
}

Status SentenceLabeler::Train(
    const std::vector<std::vector<std::string>>& abstracts,
    const std::vector<std::vector<int>>& roles, const TrainerOptions& options) {
  if (abstracts.size() != roles.size())
    return Status::InvalidArgument("SentenceLabeler::Train: size mismatch");
  std::vector<SequenceExample> examples;
  examples.reserve(abstracts.size());
  for (size_t i = 0; i < abstracts.size(); ++i)
    examples.push_back(MakeExample(abstracts[i], &roles[i]));
  SUBREC_RETURN_NOT_OK(TrainAveragedPerceptron(examples, options, &crf_));
  trained_ = true;
  return Status::Ok();
}

std::vector<int> SentenceLabeler::Label(
    const std::vector<std::string>& sentences) const {
  SUBREC_CHECK(trained_) << "SentenceLabeler used before Train()";
  return crf_.Decode(MakeExample(sentences, nullptr).features);
}

double SentenceLabeler::Evaluate(
    const std::vector<std::vector<std::string>>& abstracts,
    const std::vector<std::vector<int>>& roles) const {
  SUBREC_CHECK_EQ(abstracts.size(), roles.size());
  std::vector<SequenceExample> examples;
  examples.reserve(abstracts.size());
  for (size_t i = 0; i < abstracts.size(); ++i)
    examples.push_back(MakeExample(abstracts[i], &roles[i]));
  return SequenceAccuracy(crf_, examples);
}

}  // namespace subrec::labeling
