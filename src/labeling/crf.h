#ifndef SUBREC_LABELING_CRF_H_
#define SUBREC_LABELING_CRF_H_

#include <cstddef>
#include <vector>

namespace subrec::labeling {

/// Linear-chain sequence model over hashed emission features: score(y|x) =
/// sum_i emit[y_i]·phi(x_i) + sum_i trans[y_{i-1}][y_i] + start[y_0] +
/// end[y_n]. Decoding is exact Viterbi. (Training uses the averaged
/// structured perceptron — see trainer.h — which optimizes the same
/// decision function as a CRF without needing partition-function
/// gradients; the paper's role for this component [27] is sentence
/// function labeling.)
class LinearChainCrf {
 public:
  LinearChainCrf(size_t num_labels, size_t num_features);

  size_t num_labels() const { return num_labels_; }
  size_t num_features() const { return num_features_; }

  /// Viterbi-decodes the label sequence for per-position feature lists.
  std::vector<int> Decode(
      const std::vector<std::vector<size_t>>& features) const;

  /// Linear score of a (features, labels) pair under current weights.
  double SequenceScore(const std::vector<std::vector<size_t>>& features,
                       const std::vector<int>& labels) const;

  // Weight access for trainers.
  double& emit(int label, size_t feature) {
    return emit_[static_cast<size_t>(label) * num_features_ + feature];
  }
  double emit(int label, size_t feature) const {
    return emit_[static_cast<size_t>(label) * num_features_ + feature];
  }
  double& trans(int prev, int cur) {
    return trans_[static_cast<size_t>(prev) * num_labels_ +
                  static_cast<size_t>(cur)];
  }
  double trans(int prev, int cur) const {
    return trans_[static_cast<size_t>(prev) * num_labels_ +
                  static_cast<size_t>(cur)];
  }
  double& start(int label) { return start_[static_cast<size_t>(label)]; }
  double start(int label) const { return start_[static_cast<size_t>(label)]; }

  /// this += alpha * other (same shape). Used for weight averaging.
  void Axpy(double alpha, const LinearChainCrf& other);

 private:
  size_t num_labels_;
  size_t num_features_;
  std::vector<double> emit_;
  std::vector<double> trans_;
  std::vector<double> start_;
};

}  // namespace subrec::labeling

#endif  // SUBREC_LABELING_CRF_H_
