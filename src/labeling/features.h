#ifndef SUBREC_LABELING_FEATURES_H_
#define SUBREC_LABELING_FEATURES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace subrec::labeling {

/// Hashed emission features for one sentence in an abstract: token unigrams,
/// leading-bigram cue ("we_propose"...), and coarse position-in-abstract
/// buckets. All features are hashed into a fixed bucket space so the CRF
/// weight matrices have a bounded size.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(size_t num_buckets = size_t{1} << 14);

  size_t num_buckets() const { return num_buckets_; }

  /// Features of the sentence at `position` (0-based) in an abstract with
  /// `length` sentences. Returned bucket ids may repeat.
  std::vector<size_t> Extract(const std::string& sentence, int position,
                              int length) const;

 private:
  size_t Bucket(const std::string& feature) const;

  size_t num_buckets_;
};

}  // namespace subrec::labeling

#endif  // SUBREC_LABELING_FEATURES_H_
