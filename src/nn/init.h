#ifndef SUBREC_NN_INIT_H_
#define SUBREC_NN_INIT_H_

#include <cstddef>

#include "common/rng.h"
#include "la/matrix.h"

namespace subrec::nn {

/// Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
la::Matrix GlorotUniform(size_t fan_in, size_t fan_out, Rng& rng);

/// Small-gaussian init N(0, stddev) for embedding tables.
la::Matrix EmbeddingInit(size_t rows, size_t cols, Rng& rng,
                         double stddev = 0.1);

}  // namespace subrec::nn

#endif  // SUBREC_NN_INIT_H_
