#include "nn/loss.h"

namespace subrec::nn {

autodiff::VarId TripletHingeLoss(autodiff::Tape* tape, autodiff::VarId d_pos,
                                 autodiff::VarId d_neg, double margin) {
  autodiff::VarId eps = tape->Constant(la::Matrix(1, 1, margin));
  autodiff::VarId violation =
      tape->Add(tape->Sub(d_neg, d_pos), eps);
  return tape->Relu(violation);
}

autodiff::VarId AddL2Regularizer(autodiff::Tape* tape, TapeBinding* binding,
                                 autodiff::VarId loss,
                                 const std::vector<Parameter*>& params,
                                 double lambda) {
  if (lambda == 0.0 || params.empty()) return loss;
  autodiff::VarId total = loss;
  for (Parameter* p : params) {
    autodiff::VarId leaf = binding->Use(p);
    total = tape->Add(total, tape->Scale(tape->SumSquares(leaf), lambda));
  }
  return total;
}

}  // namespace subrec::nn
