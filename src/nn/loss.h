#ifndef SUBREC_NN_LOSS_H_
#define SUBREC_NN_LOSS_H_

#include <vector>

#include "autodiff/tape.h"
#include "nn/parameter.h"

namespace subrec::nn {

/// Triplet hinge contrast loss of Eq. (14): max(0, D_pos_violation + eps)
/// built as Relu(d_neg - d_pos + eps) where d_pos should come out LARGER
/// than d_neg under the model's distance. `d_pos` and `d_neg` are 1x1 nodes.
/// (The paper's Eq. 14 writes the hinge with the arguments transposed; this
/// is the standard orientation that actually decreases on satisfied
/// triplets.)
autodiff::VarId TripletHingeLoss(autodiff::Tape* tape, autodiff::VarId d_pos,
                                 autodiff::VarId d_neg, double margin);

/// Adds lambda * sum_p ||p||^2 over the given parameters to `loss` (1x1),
/// using the bound leaves so the regularizer also produces gradients.
autodiff::VarId AddL2Regularizer(autodiff::Tape* tape, TapeBinding* binding,
                                 autodiff::VarId loss,
                                 const std::vector<Parameter*>& params,
                                 double lambda);

}  // namespace subrec::nn

#endif  // SUBREC_NN_LOSS_H_
