#include "nn/dense.h"

#include "nn/init.h"

namespace subrec::nn {

Dense::Dense(ParameterStore* store, const std::string& name, size_t in,
             size_t out, Rng& rng, Activation activation)
    : in_(in),
      out_(out),
      activation_(activation),
      w_(store->Create(name + ".w", GlorotUniform(in, out, rng))),
      b_(store->Create(name + ".b", la::Matrix(1, out))) {}

autodiff::VarId Dense::Forward(autodiff::Tape* tape, TapeBinding* binding,
                               autodiff::VarId x) const {
  autodiff::VarId w = binding->Use(w_);
  autodiff::VarId b = binding->Use(b_);
  autodiff::VarId z = tape->AddRowBroadcast(tape->MatMul(x, w), b);
  switch (activation_) {
    case Activation::kLinear:
      return z;
    case Activation::kTanh:
      return tape->Tanh(z);
    case Activation::kSigmoid:
      return tape->Sigmoid(z);
    case Activation::kRelu:
      return tape->Relu(z);
  }
  return z;
}

}  // namespace subrec::nn
