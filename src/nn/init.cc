#include "nn/init.h"

#include <cmath>

namespace subrec::nn {

la::Matrix GlorotUniform(size_t fan_in, size_t fan_out, Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return la::Matrix::Random(fan_in, fan_out, rng, -a, a);
}

la::Matrix EmbeddingInit(size_t rows, size_t cols, Rng& rng, double stddev) {
  return la::Matrix::RandomGaussian(rows, cols, rng, stddev);
}

}  // namespace subrec::nn
