#ifndef SUBREC_NN_PARAMETER_H_
#define SUBREC_NN_PARAMETER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autodiff/tape.h"
#include "la/matrix.h"
#include "la/ops.h"

namespace subrec::nn {

/// A named trainable matrix that persists across tape rebuilds. Gradients
/// accumulate into `grad` between optimizer steps (so several forward/
/// backward passes can contribute to one step).
struct Parameter {
  std::string name;
  la::Matrix value;
  la::Matrix grad;
};

/// Owns the Parameters of a model. Models hand out raw Parameter* whose
/// lifetime is that of the store.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Registers a new parameter initialized to `init`.
  Parameter* Create(std::string name, la::Matrix init) {
    auto p = std::make_unique<Parameter>();
    p->name = std::move(name);
    p->grad = la::Matrix(init.rows(), init.cols());
    p->value = std::move(init);
    params_.push_back(std::move(p));
    return params_.back().get();
  }

  std::vector<Parameter*> params() const {
    std::vector<Parameter*> out;
    out.reserve(params_.size());
    for (const auto& p : params_) out.push_back(p.get());
    return out;
  }

  void ZeroGrads() {
    for (const auto& p : params_) p->grad.Fill(0.0);
  }

  /// Total number of scalar weights (for logging / sanity checks).
  size_t TotalSize() const {
    size_t n = 0;
    for (const auto& p : params_) n += p->value.size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

/// Binds parameters onto a Tape for one forward pass: Use() creates the leaf
/// node, PullGradients() adds the tape's leaf gradients back into each
/// Parameter::grad after Tape::Backward(). A parameter bound twice shares
/// one leaf (gradient contributions from both uses accumulate naturally).
class TapeBinding {
 public:
  explicit TapeBinding(autodiff::Tape* tape) : tape_(tape) {}

  autodiff::VarId Use(Parameter* p) {
    for (const auto& [param, id] : bound_) {
      if (param == p) return id;
    }
    autodiff::VarId id = tape_->Input(p->value, /*requires_grad=*/true);
    bound_.emplace_back(p, id);
    return id;
  }

  void PullGradients() {
    for (const auto& [param, id] : bound_) {
      const la::Matrix& g = tape_->grad(id);
      if (g.SameShape(param->grad)) la::Axpy(1.0, g, param->grad);
    }
  }

 private:
  autodiff::Tape* tape_;
  std::vector<std::pair<Parameter*, autodiff::VarId>> bound_;
};

}  // namespace subrec::nn

#endif  // SUBREC_NN_PARAMETER_H_
