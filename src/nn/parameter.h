#ifndef SUBREC_NN_PARAMETER_H_
#define SUBREC_NN_PARAMETER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autodiff/tape.h"
#include "la/matrix.h"
#include "la/ops.h"

namespace subrec::nn {

/// A named trainable matrix that persists across tape rebuilds. Gradients
/// accumulate into `grad` between optimizer steps (so several forward/
/// backward passes can contribute to one step).
struct Parameter {
  std::string name;
  la::Matrix value;
  la::Matrix grad;
};

/// Owns the Parameters of a model. Models hand out raw Parameter* whose
/// lifetime is that of the store.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Registers a new parameter initialized to `init`.
  Parameter* Create(std::string name, la::Matrix init) {
    auto p = std::make_unique<Parameter>();
    p->name = std::move(name);
    p->grad = la::Matrix(init.rows(), init.cols());
    p->value = std::move(init);
    params_.push_back(std::move(p));
    return params_.back().get();
  }

  std::vector<Parameter*> params() const {
    std::vector<Parameter*> out;
    out.reserve(params_.size());
    for (const auto& p : params_) out.push_back(p.get());
    return out;
  }

  void ZeroGrads() {
    for (const auto& p : params_) p->grad.Fill(0.0);
  }

  /// Total number of scalar weights (for logging / sanity checks).
  size_t TotalSize() const {
    size_t n = 0;
    for (const auto& p : params_) n += p->value.size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

/// Binds parameters onto a Tape for one forward pass: Use() creates the leaf
/// node, PullGradients() adds the tape's leaf gradients back into each
/// Parameter::grad after Tape::Backward(). A parameter bound twice shares
/// one leaf (gradient contributions from both uses accumulate naturally).
///
/// The leaf is an InputRef reading Parameter::value in place, so binding is
/// copy-free — which requires that parameter values stay frozen between
/// Use() and the last Backward() on the tape. The batch-parallel trainers
/// already guarantee this (the optimizer steps only between batches).
/// A binding is reusable across items: Reset(tape) forgets the bound leaves
/// but keeps the vector's capacity.
class TapeBinding {
 public:
  /// An unbound binding; call Reset() before the first Use().
  TapeBinding() = default;
  explicit TapeBinding(autodiff::Tape* tape) : tape_(tape) {}

  /// Rebinds to `tape` (typically a freshly Reset pooled tape) and drops
  /// all leaf associations without releasing storage.
  void Reset(autodiff::Tape* tape) {
    tape_ = tape;
    bound_.clear();
  }

  autodiff::VarId Use(Parameter* p) {
    for (const auto& [param, id] : bound_) {
      if (param == p) return id;
    }
    // Legacy mode re-uploads a copy per pass so bench/train_step can price
    // the pre-arena behavior; values are identical either way.
    autodiff::VarId id =
        autodiff::TapeLegacyMode()
            ? tape_->Input(p->value, /*requires_grad=*/true)
            : tape_->InputRef(&p->value, /*requires_grad=*/true);
    bound_.emplace_back(p, id);
    return id;
  }

  void PullGradients() {
    for (const auto& [param, id] : bound_) {
      const la::Matrix& g = tape_->grad(id);
      if (g.SameShape(param->grad)) la::Axpy(1.0, g, param->grad);
    }
  }

 private:
  autodiff::Tape* tape_ = nullptr;
  std::vector<std::pair<Parameter*, autodiff::VarId>> bound_;
};

}  // namespace subrec::nn

#endif  // SUBREC_NN_PARAMETER_H_
