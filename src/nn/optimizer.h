#ifndef SUBREC_NN_OPTIMIZER_H_
#define SUBREC_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "la/matrix.h"
#include "nn/parameter.h"

namespace subrec::nn {

/// Applies accumulated gradients to parameters and zeroes them.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// One update step over all `params`; clears their grads afterwards.
  void Step(const std::vector<Parameter*>& params);

 protected:
  virtual void Update(Parameter* p) = 0;
};

/// Plain SGD with optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double weight_decay = 0.0)
      : lr_(lr), weight_decay_(weight_decay) {}

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 protected:
  void Update(Parameter* p) override;

 private:
  double lr_;
  double weight_decay_;
};

/// Adam (Kingma & Ba) with bias correction and optional L2 weight decay.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0)
      : lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps),
        weight_decay_(weight_decay) {}

  void set_lr(double lr) { lr_ = lr; }

 protected:
  void Update(Parameter* p) override;

 private:
  struct State {
    la::Matrix m;
    la::Matrix v;
    long step = 0;
  };

  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  std::unordered_map<Parameter*, State> state_;
};

/// Rescales all grads so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm.
double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace subrec::nn

#endif  // SUBREC_NN_OPTIMIZER_H_
