#ifndef SUBREC_NN_DENSE_H_
#define SUBREC_NN_DENSE_H_

#include <cstddef>
#include <string>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/parameter.h"

namespace subrec::nn {

enum class Activation { kLinear, kTanh, kSigmoid, kRelu };

/// Fully-connected layer y = act(x W + b) with Glorot-initialized W.
/// Parameters live in the supplied ParameterStore.
class Dense {
 public:
  Dense(ParameterStore* store, const std::string& name, size_t in, size_t out,
        Rng& rng, Activation activation = Activation::kLinear);

  /// Applies the layer to `x` (batch x in) on the given tape/binding.
  autodiff::VarId Forward(autodiff::Tape* tape, TapeBinding* binding,
                          autodiff::VarId x) const;

  size_t in_dim() const { return in_; }
  size_t out_dim() const { return out_; }
  Parameter* weight() const { return w_; }
  Parameter* bias() const { return b_; }

 private:
  size_t in_;
  size_t out_;
  Activation activation_;
  Parameter* w_;
  Parameter* b_;
};

}  // namespace subrec::nn

#endif  // SUBREC_NN_DENSE_H_
