#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "la/check_finite.h"

namespace subrec::nn {

void Optimizer::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    SUBREC_CHECK_FINITE(p->grad, "optimizer step gradient");
    Update(p);
    SUBREC_CHECK_FINITE(p->value, "optimizer step parameter");
    p->grad.Fill(0.0);
  }
}

void Sgd::Update(Parameter* p) {
  for (size_t i = 0; i < p->value.size(); ++i) {
    double g = p->grad[i] + weight_decay_ * p->value[i];
    p->value[i] -= lr_ * g;
  }
}

void Adam::Update(Parameter* p) {
  State& s = state_[p];
  if (s.step == 0) {
    s.m = la::Matrix(p->value.rows(), p->value.cols());
    s.v = la::Matrix(p->value.rows(), p->value.cols());
  }
  ++s.step;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(s.step));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(s.step));
  for (size_t i = 0; i < p->value.size(); ++i) {
    const double g = p->grad[i] + weight_decay_ * p->value[i];
    s.m[i] = beta1_ * s.m[i] + (1.0 - beta1_) * g;
    s.v[i] = beta2_ * s.v[i] + (1.0 - beta2_) * g * g;
    const double mhat = s.m[i] / bc1;
    const double vhat = s.v[i] / bc2;
    p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm) {
  SUBREC_CHECK_GT(max_norm, 0.0);
  double total = 0.0;
  for (const Parameter* p : params)
    for (size_t i = 0; i < p->grad.size(); ++i) total += p->grad[i] * p->grad[i];
  const double norm = std::sqrt(total);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (Parameter* p : params)
      for (size_t i = 0; i < p->grad.size(); ++i) p->grad[i] *= scale;
  }
  return norm;
}

}  // namespace subrec::nn
