#ifndef SUBREC_REC_WNMF_H_
#define SUBREC_REC_WNMF_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "la/matrix.h"
#include "rec/recommender.h"

namespace subrec::rec {

struct WnmfOptions {
  /// The paper sets "the number of features ... to 10".
  size_t factors = 10;
  int iterations = 30;
  /// Confidence weight of unobserved cells.
  double missing_weight = 0.05;
  uint64_t seed = 43;
};

/// Weighted non-negative matrix factorization [47] on the implicit
/// author x paper citation matrix via multiplicative updates (Zhan et al.:
/// learning from incomplete ratings). Cold candidates are bridged through
/// the columns of the train papers they cite.
class WnmfRecommender final : public Recommender {
 public:
  explicit WnmfRecommender(WnmfOptions options = {});

  std::string name() const override { return "WNMF"; }
  Status Fit(const RecContext& ctx) override;
  std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const override;

 private:
  std::vector<double> ItemColumn(const RecContext& ctx,
                                 corpus::PaperId paper) const;

  WnmfOptions options_;
  std::unordered_map<corpus::AuthorId, size_t> user_index_;
  std::unordered_map<corpus::PaperId, size_t> item_index_;
  la::Matrix w_;  // users x factors
  la::Matrix h_;  // factors x items
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_WNMF_H_
