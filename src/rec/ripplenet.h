#ifndef SUBREC_REC_RIPPLENET_H_
#define SUBREC_REC_RIPPLENET_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "rec/recommender.h"

namespace subrec::rec {

struct RippleNetOptions {
  int hops = 2;
  /// Per-hop preference decay.
  double hop_decay = 0.6;
  /// Weight of the structural term (candidate references landing inside the
  /// user's ripple set).
  double overlap_weight = 1.2;
  /// Cap per hop to bound cost.
  int max_ripple_size = 96;
  uint64_t seed = 59;
};

/// RippleNet baseline [21]: the user's preference propagates outward from
/// their seed papers along citation links; a candidate is scored by
/// attention-weighted similarity against each ripple hop plus a structural
/// overlap term. This implementation uses the fused text embeddings as
/// item representations (ctx.paper_text required) instead of end-to-end
/// trained KG embeddings — see DESIGN.md.
class RippleNetRecommender final : public Recommender {
 public:
  explicit RippleNetRecommender(RippleNetOptions options = {});

  std::string name() const override { return "RippleNet"; }
  Status Fit(const RecContext& ctx) override;
  std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const override;

 private:
  /// Ripple sets: hop 0 = the profile plus its citations; hop h = the
  /// train-window references of hop h-1.
  std::vector<std::vector<corpus::PaperId>> BuildRippleSets(
      const RecContext& ctx, const UserQuery& query) const;

  RippleNetOptions options_;
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_RIPPLENET_H_
