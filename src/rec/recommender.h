#ifndef SUBREC_REC_RECOMMENDER_H_
#define SUBREC_REC_RECOMMENDER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "corpus/types.h"
#include "graph/academic_graph.h"

namespace subrec::rec {

/// Shared evaluation context handed to every recommender. Non-owning
/// pointers must outlive the recommender; DCheckValidContext makes wiring
/// mistakes (dangling/null pointers, mismatched array sizes) fail loudly
/// in dev builds instead of silently corrupting scores.
struct RecContext {
  const corpus::Corpus* corpus = nullptr;
  /// Academic network built with citation edges cut at split_year; null for
  /// content-only methods.
  const graph::GraphIndex* graph = nullptr;
  int split_year = 0;
  std::vector<corpus::PaperId> train_papers;
  std::vector<corpus::PaperId> test_papers;
  /// Fused subspace text embedding per paper (indexed by PaperId); null for
  /// text-free methods.
  const std::vector<std::vector<double>>* paper_text = nullptr;
};

/// One evaluation query: a researcher plus their representative
/// (pre-split-year) papers — the "#rp" knob of Tab. V.
struct UserQuery {
  corpus::AuthorId user = -1;
  std::vector<corpus::PaperId> profile;
};

/// Interface implemented by NPRec and by every baseline of Sec. IV-D.
class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string name() const = 0;

  /// Trains on ctx.train_papers (and whatever signals the method uses).
  virtual Status Fit(const RecContext& ctx) = 0;

  /// Scores the user's interest in each candidate; higher ranks earlier.
  virtual std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const = 0;
};

/// DCHECK-backed structural validation of a RecContext: corpus present,
/// graph node map and paper_text sized to the corpus, train/test paper ids
/// in range. Recommenders call this at Fit entry and evaluation drivers at
/// loop entry; compiled out in release builds.
void DCheckValidContext(const RecContext& ctx);

/// The set of training-time papers a user interacted with: their own
/// pre-split publications plus the papers those publications cite. The
/// "user cited papers" matrix every CF baseline consumes.
std::unordered_set<corpus::PaperId> UserInteractions(const RecContext& ctx,
                                                     corpus::AuthorId user);

/// The user's own pre-split publications, most recent first, optionally
/// truncated to `max_papers` (-1 keeps all).
std::vector<corpus::PaperId> UserProfile(const RecContext& ctx,
                                         corpus::AuthorId user,
                                         int max_papers = -1);

}  // namespace subrec::rec

#endif  // SUBREC_REC_RECOMMENDER_H_
