#include "rec/jtie.h"

#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace subrec::rec {

JtieRecommender::JtieRecommender(JtieOptions options) : options_(options) {}

double JtieRecommender::InfluencePrior(const RecContext& ctx,
                                       corpus::PaperId paper) const {
  const corpus::Paper& p = ctx.corpus->paper(paper);
  double ref_mass = 0.0;
  for (corpus::PaperId ref : p.references)
    ref_mass += static_cast<double>(train_in_degree_[static_cast<size_t>(ref)]);
  double author_mass = 0.0;
  for (corpus::AuthorId a : p.authors)
    author_mass += author_citations_[static_cast<size_t>(a)];
  return std::log1p(ref_mass) + std::log1p(author_mass);
}

std::vector<double> JtieRecommender::UserText(
    const RecContext& ctx, const std::vector<corpus::PaperId>& profile) const {
  const auto& text = *ctx.paper_text;
  std::vector<double> acc;
  int n = 0;
  for (corpus::PaperId pid : profile) {
    const auto& v = text[static_cast<size_t>(pid)];
    if (acc.empty()) acc.assign(v.size(), 0.0);
    la::AxpyVec(1.0, v, acc);
    ++n;
  }
  if (n > 0)
    for (double& x : acc) x /= static_cast<double>(n);
  return acc;
}

std::vector<double> JtieRecommender::Features(
    const RecContext& ctx, const std::vector<double>& user_text,
    corpus::PaperId candidate) const {
  const auto& cand_text = (*ctx.paper_text)[static_cast<size_t>(candidate)];
  const double cos = user_text.empty()
                         ? 0.0
                         : la::CosineSimilarity(user_text, cand_text);
  return {cos, InfluencePrior(ctx, candidate)};
}

Status JtieRecommender::Fit(const RecContext& ctx) {
  if (ctx.paper_text == nullptr)
    return Status::InvalidArgument("JTIE: paper_text required");
  const corpus::Corpus& corpus = *ctx.corpus;

  // Train-window citation mass.
  train_in_degree_.assign(corpus.papers.size(), 0);
  for (corpus::PaperId pid : ctx.train_papers) {
    for (corpus::PaperId ref : corpus.paper(pid).references) {
      if (corpus.paper(ref).year <= ctx.split_year)
        ++train_in_degree_[static_cast<size_t>(ref)];
    }
  }
  author_citations_.assign(corpus.authors.size(), 0.0);
  for (const corpus::Author& a : corpus.authors) {
    for (corpus::PaperId pid : a.papers) {
      if (corpus.paper(pid).year <= ctx.split_year)
        author_citations_[static_cast<size_t>(a.id)] +=
            static_cast<double>(train_in_degree_[static_cast<size_t>(pid)]);
    }
  }

  // Logistic regression over (user cited q) vs sampled negatives.
  Rng rng(options_.seed);
  struct Example {
    std::vector<double> features;
    double label;
  };
  std::vector<Example> examples;
  int positives = 0;
  for (const corpus::Author& a : corpus.authors) {
    const std::vector<corpus::PaperId> profile = UserProfile(ctx, a.id);
    if (profile.empty()) continue;
    const std::vector<double> user_text = UserText(ctx, profile);
    const auto items = UserInteractions(ctx, a.id);
    for (corpus::PaperId item : items) {
      if (positives >= options_.max_positives) break;
      ++positives;
      examples.push_back({Features(ctx, user_text, item), 1.0});
      for (int k = 0; k < options_.negatives; ++k) {
        const corpus::PaperId neg =
            ctx.train_papers[rng.UniformInt(ctx.train_papers.size())];
        if (items.count(neg) > 0) continue;
        examples.push_back({Features(ctx, user_text, neg), 0.0});
      }
    }
  }
  if (examples.empty())
    return Status::InvalidArgument("JTIE: no training examples");

  // Standardize the influence feature for stable LR.
  double mean = 0.0, var = 0.0;
  for (const Example& e : examples) mean += e.features[1];
  mean /= static_cast<double>(examples.size());
  for (const Example& e : examples) {
    const double d = e.features[1] - mean;
    var += d * d;
  }
  const double stddev =
      std::sqrt(std::max(var / static_cast<double>(examples.size()), 1e-9));
  for (Example& e : examples) e.features[1] = (e.features[1] - mean) / stddev;
  influence_mean_ = mean;
  influence_stddev_ = stddev;

  weights_ = {0.0, 0.0};
  bias_ = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(examples);
    for (const Example& e : examples) {
      const double z = la::Dot(weights_, e.features) + bias_;
      const double pred = 1.0 / (1.0 + std::exp(-z));
      const double err = e.label - pred;
      for (size_t j = 0; j < weights_.size(); ++j)
        weights_[j] += options_.learning_rate * err * e.features[j];
      bias_ += options_.learning_rate * err;
    }
  }
  return Status::Ok();
}

std::vector<double> JtieRecommender::Score(
    const RecContext& ctx, const UserQuery& query,
    const std::vector<corpus::PaperId>& candidates) const {
  const std::vector<double> user_text = UserText(ctx, query.profile);
  std::vector<double> scores(candidates.size(), 0.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    std::vector<double> f = Features(ctx, user_text, candidates[c]);
    f[1] = (f[1] - influence_mean_) / influence_stddev_;
    scores[c] = la::Dot(weights_, f) + bias_;
  }
  return scores;
}

}  // namespace subrec::rec
