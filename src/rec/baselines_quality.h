#ifndef SUBREC_REC_BASELINES_QUALITY_H_
#define SUBREC_REC_BASELINES_QUALITY_H_

#include <vector>

#include "corpus/types.h"

namespace subrec::rec {

/// CLT [4]: text-quality score from readability characteristics —
/// type-token ratio, mean sentence length, lexical rarity against the
/// whole corpus. Higher = predicted higher quality (Tab. I baseline).
std::vector<double> CltScores(const corpus::Corpus& corpus,
                              const std::vector<corpus::PaperId>& papers);

/// CSJ [1]: writing-quality score from linguistic indicators — sentence
/// length regularity, academic-vocabulary density, keyword density.
std::vector<double> CsjScores(const corpus::Corpus& corpus,
                              const std::vector<corpus::PaperId>& papers);

/// HP [3]: h-index-style influence from the citation relationships within
/// `window_years` after publication (the paper: one year), i.e. early
/// in-corpus citations weighted by the citers' own early connectivity.
std::vector<double> HpScores(const corpus::Corpus& corpus,
                             const std::vector<corpus::PaperId>& papers,
                             int window_years = 1);

}  // namespace subrec::rec

#endif  // SUBREC_REC_BASELINES_QUALITY_H_
