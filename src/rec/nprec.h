#ifndef SUBREC_REC_NPREC_H_
#define SUBREC_REC_NPREC_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "autodiff/tape.h"
#include "nn/dense.h"
#include "nn/parameter.h"
#include "obs/training_observer.h"
#include "rec/recommender.h"
#include "rec/sampler.h"

namespace subrec::rec {

/// Configuration of the NPRec model (Sec. IV) and its ablation variants:
///   use_text=false               -> NPRec+SN (graph only)
///   use_graph=false              -> NPRec+SC (text only; K and H are moot)
///   sampler.use_defuzzing=false  -> NPRec+CN (citation-only labels)
///   symmetric_neighborhoods=true -> KGCN-style (no interest/influence
///                                   asymmetry), used by the KGCN baselines.
struct NPRecOptions {
  /// Graph entity embedding width; also the width of each fused half.
  size_t embed_dim = 24;
  /// GCN depth H (Tab. VIII).
  int depth = 2;
  /// Neighbor sample size K (Tab. VII).
  int neighbor_samples = 8;
  bool use_text = true;
  /// Alongside the learned text projections, expose the raw (normalized)
  /// fused text vectors through an identity channel with one learned gain,
  /// so the model can fall back on plain content cosine where it is the
  /// best signal. Tied to use_text.
  bool use_raw_text_channel = false;
  bool use_graph = true;
  /// Appends a 2-feature structural influence prior to the influence side
  /// (train-window citation mass of the paper's references and authors)
  /// matched by learned weights on the interest side — the "potential
  /// influence features from structured data" of Sec. IV-B, available even
  /// for citation-less new papers. Tied to use_graph.
  bool use_influence_prior = true;
  bool symmetric_neighborhoods = false;
  /// KGCN-LS-style smoothness weight on citation edges (0 = off): pulls the
  /// leaf embeddings of cited pairs together, a light-weight stand-in for
  /// label-propagation regularization.
  double label_smoothness = 0.0;
  SamplerOptions sampler;
  int epochs = 3;
  double learning_rate = 0.035;
  double lambda = 1e-6;
  /// Adam weight decay over ALL parameters (entity embeddings included) —
  /// curbs train-item overfitting, which matters because scoring happens
  /// on cold candidates.
  double weight_decay = 1e-4;
  int batch_size = 16;
  double clip_norm = 5.0;
  uint64_t seed = 77;
  std::string display_name = "NPRec";
  /// Optional per-epoch progress callback (model = "nprec"). Invoked from
  /// the training thread after each epoch; empty means no reporting.
  obs::TrainingObserver observer;
};

/// Progress of one NPRec training run, mirroring SemTrainStats. Retrieved
/// via NPRec::train_stats() after Fit (the Recommender interface fixes the
/// Fit signature, so the stats travel on the model).
struct NPRecTrainStats {
  /// Mean pairwise BCE loss per epoch.
  std::vector<double> epoch_loss;
  /// Training pairs per epoch (positives + sampled negatives).
  size_t num_pairs = 0;
  size_t num_positives = 0;
  /// Wall time of the optimization loop (excludes final propagation).
  double train_seconds = 0.0;
};

/// Forward-only export of a fitted NPRec for the serving layer: the
/// post-fit per-paper vectors that PairScore consumes, plus the fused text
/// vectors (empty when use_text is off). Everything needed to reproduce
/// Score() without the tape, the graph, or the trainables.
struct NPRecFrozenVectors {
  std::vector<std::vector<double>> interest;   // by PaperId
  std::vector<std::vector<double>> influence;  // by PaperId
  std::vector<std::vector<double>> text;       // by PaperId; may be empty
};

/// New Paper Recommendation model: combines the fused subspace text
/// embedding c_p with GCN embeddings over the heterogeneous academic
/// network, modeling user interest (out-citations + two-way relations) and
/// academic influence (in-citations + two-way relations) asymmetrically
/// (Eqs. 15-23).
class NPRec final : public Recommender {
 public:
  /// `subspace` (PaperId -> K subspace vectors) provides both the text half
  /// and the de-fuzzing distance; may be null when use_text and defuzzing
  /// are both off. Must outlive the model.
  NPRec(const NPRecOptions& options, const SubspaceEmbeddings* subspace);

  std::string name() const override { return options_.display_name; }
  Status Fit(const RecContext& ctx) override;
  std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const override;

  /// Pairwise correlation score y_hat(p,q) of Eq. 22 (post-fit).
  double PairScore(corpus::PaperId p, corpus::PaperId q) const;

  // Post-fit embeddings for the Fig. 5 analyses.
  const std::vector<double>& PaperInterestVector(corpus::PaperId p) const;
  const std::vector<double>& PaperInfluenceVector(corpus::PaperId p) const;
  /// The lambda-fused text vector c_p (zeros when use_text is off).
  std::vector<double> PaperTextVector(corpus::PaperId p) const;

  const NPRecOptions& options() const { return options_; }

  /// Per-epoch training telemetry populated by the last Fit call.
  const NPRecTrainStats& train_stats() const { return train_stats_; }

  /// Snapshot export hook (post-fit): copies the final propagation vectors
  /// out of the model so serve::SnapshotWriter can freeze them.
  NPRecFrozenVectors ExportFrozenVectors() const;

 private:
  using VarId = autodiff::VarId;

  void BuildParameters(const RecContext& ctx);
  void PrecomputeSamples(const RecContext& ctx);
  void ComputePriorFeatures(const RecContext& ctx);
  bool PriorEnabled() const {
    return options_.use_graph && options_.use_influence_prior;
  }

  /// Fused text vector of a paper as a 1 x text_dim matrix (plain math).
  la::Matrix FusedText(corpus::PaperId p) const;

  /// Builds the Fit-invariant per-paper constant leaves (the StackRows of
  /// subspace vectors) so PaperVecOnTape can reference them instead of
  /// re-uploading a fresh Constant per pair. No-op in legacy tape mode.
  void BuildConstantCaches();

  /// Refreshes the L2-normalized FusedText rows for the papers of pairs
  /// [b0, b1). Runs serially at each batch start because FusedText reads
  /// the trained text_attn_ parameter, which changes at every optimizer
  /// step — a per-Fit cache would alter results. Stamp-validated so only
  /// first touches recompute within a batch.
  void PrepareRawUnitCache(const std::vector<TrainingPair>& pairs, size_t b0,
                           size_t b1);

  /// Recursive GCN node vector on the tape; memo dedupes shared subtrees.
  VarId NodeVecOnTape(autodiff::Tape* tape, nn::TapeBinding* binding,
                      graph::NodeId node, int h, bool influence_side,
                      std::unordered_map<uint64_t, VarId>* memo) const;

  /// Full interest/influence vector [text_half ; graph_half] of a paper.
  VarId PaperVecOnTape(autodiff::Tape* tape, nn::TapeBinding* binding,
                       const RecContext& ctx, corpus::PaperId p,
                       bool influence_side,
                       std::unordered_map<uint64_t, VarId>* memo) const;

  /// Plain-math full propagation after training (used for scoring).
  void ComputeFinalVectors(const RecContext& ctx);

  const std::vector<graph::Edge>& SampledNeighbors(graph::NodeId node,
                                                   bool influence_side) const;

  NPRecOptions options_;
  const SubspaceEmbeddings* subspace_;
  nn::ParameterStore store_;

  // Trainables.
  std::vector<nn::Parameter*> node_embed_;  // by graph NodeId
  std::array<nn::Parameter*, graph::kNumRelationTypes> rel_embed_ = {};
  std::vector<nn::Dense> layers_;  // depth tanh layers (Eq. 17-18)
  nn::Parameter* text_attn_ = nullptr;  // subspace fusion logits (lambda_k)
  std::unique_ptr<nn::Dense> text_proj_interest_;
  std::unique_ptr<nn::Dense> text_proj_influence_;
  nn::Parameter* prior_weight_ = nullptr;  // interest-side prior weights
  la::Matrix prior_features_;  // per PaperId x 2, standardized
  nn::Parameter* raw_text_gain_ = nullptr;  // identity-channel gain (1x1)

  // Constant-leaf caches read by PaperVecOnTape via ConstantRef (so the
  // pointees must stay address-stable for a whole batch; both vectors are
  // sized once per Fit and only mutated between batches).
  std::vector<la::Matrix> text_stack_;  // by PaperId; Fit-invariant
  std::vector<la::Matrix> raw_unit_;    // by PaperId; valid if stamp matches
  std::vector<uint64_t> raw_unit_stamp_;
  uint64_t raw_unit_epoch_ = 0;

  // Fixed sampled receptive fields (deterministic per Fit).
  struct SampledNode {
    std::vector<graph::Edge> interest;
    std::vector<graph::Edge> influence;
  };
  std::vector<SampledNode> samples_;

  // Post-fit plain vectors.
  std::vector<std::vector<double>> paper_interest_;   // by PaperId
  std::vector<std::vector<double>> paper_influence_;  // by PaperId
  NPRecTrainStats train_stats_;
  bool fitted_ = false;
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_NPREC_H_
