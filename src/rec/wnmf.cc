#include "rec/wnmf.h"

#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace subrec::rec {

WnmfRecommender::WnmfRecommender(WnmfOptions options) : options_(options) {}

Status WnmfRecommender::Fit(const RecContext& ctx) {
  user_index_.clear();
  item_index_.clear();

  // Index users with any interaction and the train items they touch.
  std::vector<std::vector<size_t>> user_items;
  for (const corpus::Author& a : ctx.corpus->authors) {
    const auto items = UserInteractions(ctx, a.id);
    if (items.empty()) continue;
    const size_t u = user_index_.size();
    user_index_[a.id] = u;
    user_items.emplace_back();
    for (corpus::PaperId item : items) {
      auto [it, inserted] = item_index_.try_emplace(item, item_index_.size());
      user_items[u].push_back(it->second);
    }
  }
  if (user_index_.empty())
    return Status::InvalidArgument("WNMF: no interactions");

  const size_t nu = user_index_.size();
  const size_t ni = item_index_.size();
  const size_t f = options_.factors;

  // Dense binary ratings + confidence weights.
  la::Matrix r(nu, ni);
  la::Matrix m(nu, ni, options_.missing_weight);
  for (size_t u = 0; u < nu; ++u) {
    for (size_t i : user_items[u]) {
      r(u, i) = 1.0;
      m(u, i) = 1.0;
    }
  }

  Rng rng(options_.seed);
  w_ = la::Matrix::Random(nu, f, rng, 0.01, 1.0);
  h_ = la::Matrix::Random(f, ni, rng, 0.01, 1.0);

  const double eps = 1e-9;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // W <- W .* ((M.*R) H^T) ./ ((M.*(WH)) H^T)
    la::Matrix wh = la::MatMul(w_, h_);
    la::Matrix mr = la::Hadamard(m, r);
    la::Matrix mwh = la::Hadamard(m, wh);
    la::Matrix num_w = la::MatMulTransB(mr, h_);   // nu x f
    la::Matrix den_w = la::MatMulTransB(mwh, h_);  // nu x f
    for (size_t i = 0; i < w_.size(); ++i)
      w_[i] *= num_w[i] / (den_w[i] + eps);
    // H <- H .* (W^T (M.*R)) ./ (W^T (M.*(WH)))
    wh = la::MatMul(w_, h_);
    mwh = la::Hadamard(m, wh);
    la::Matrix num_h = la::MatMulTransA(w_, mr);   // f x ni
    la::Matrix den_h = la::MatMulTransA(w_, mwh);  // f x ni
    for (size_t i = 0; i < h_.size(); ++i)
      h_[i] *= num_h[i] / (den_h[i] + eps);
  }
  return Status::Ok();
}

std::vector<double> WnmfRecommender::ItemColumn(const RecContext& ctx,
                                                corpus::PaperId paper) const {
  std::vector<double> col(options_.factors, 0.0);
  auto it = item_index_.find(paper);
  if (it != item_index_.end()) {
    for (size_t j = 0; j < options_.factors; ++j) col[j] = h_(j, it->second);
    return col;
  }
  int known = 0;
  for (corpus::PaperId ref : ctx.corpus->paper(paper).references) {
    auto rit = item_index_.find(ref);
    if (rit == item_index_.end()) continue;
    for (size_t j = 0; j < options_.factors; ++j) col[j] += h_(j, rit->second);
    ++known;
  }
  if (known > 0)
    for (double& x : col) x /= static_cast<double>(known);
  return col;
}

std::vector<double> WnmfRecommender::Score(
    const RecContext& ctx, const UserQuery& query,
    const std::vector<corpus::PaperId>& candidates) const {
  std::vector<double> scores(candidates.size(), 0.0);
  auto uit = user_index_.find(query.user);
  if (uit == user_index_.end()) return scores;
  std::vector<double> pu(options_.factors);
  for (size_t j = 0; j < options_.factors; ++j) pu[j] = w_(uit->second, j);
  for (size_t c = 0; c < candidates.size(); ++c)
    scores[c] = la::Dot(pu, ItemColumn(ctx, candidates[c]));
  return scores;
}

}  // namespace subrec::rec
