#include "rec/svd.h"

#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace subrec::rec {

SvdRecommender::SvdRecommender(SvdOptions options) : options_(options) {}

Status SvdRecommender::Fit(const RecContext& ctx) {
  if (ctx.train_papers.empty())
    return Status::InvalidArgument("SVD: no training papers");
  Rng rng(options_.seed);
  const size_t f = options_.factors;
  user_factors_.clear();
  item_factors_.clear();

  // Interactions per user.
  std::vector<std::pair<corpus::AuthorId, corpus::PaperId>> observations;
  for (const corpus::Author& a : ctx.corpus->authors) {
    const auto items = UserInteractions(ctx, a.id);
    if (items.empty()) continue;
    auto& uf = user_factors_[a.id];
    uf.resize(f);
    for (double& x : uf) x = rng.Gaussian(0.0, 0.1);
    for (corpus::PaperId item : items) {
      observations.emplace_back(a.id, item);
      auto [it, inserted] = item_factors_.try_emplace(item);
      if (inserted) {
        it->second.resize(f);
        for (double& x : it->second) x = rng.Gaussian(0.0, 0.1);
      }
    }
  }
  if (observations.empty())
    return Status::InvalidArgument("SVD: no interactions");

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(observations);
    for (const auto& [user, item] : observations) {
      auto& pu = user_factors_[user];
      auto update = [&](std::vector<double>& qi, double label) {
        const double pred = 1.0 / (1.0 + std::exp(-la::Dot(pu, qi)));
        const double err = label - pred;
        for (size_t j = 0; j < f; ++j) {
          const double puj = pu[j];
          pu[j] += options_.learning_rate *
                   (err * qi[j] - options_.regularization * puj);
          qi[j] += options_.learning_rate *
                   (err * puj - options_.regularization * qi[j]);
        }
      };
      update(item_factors_[item], 1.0);
      for (int nidx = 0; nidx < options_.negatives; ++nidx) {
        const corpus::PaperId neg =
            ctx.train_papers[rng.UniformInt(ctx.train_papers.size())];
        auto it = item_factors_.find(neg);
        if (it == item_factors_.end()) {
          auto [nit, inserted] = item_factors_.try_emplace(neg);
          if (inserted) {
            nit->second.resize(f);
            for (double& x : nit->second) x = rng.Gaussian(0.0, 0.1);
          }
          it = nit;
        }
        update(it->second, 0.0);
      }
    }
  }
  return Status::Ok();
}

std::vector<double> SvdRecommender::ItemFactor(const RecContext& ctx,
                                               corpus::PaperId paper) const {
  auto it = item_factors_.find(paper);
  if (it != item_factors_.end()) return it->second;
  // Cold-start bridge: mean factor of cited train papers.
  std::vector<double> acc(options_.factors, 0.0);
  int known = 0;
  for (corpus::PaperId ref : ctx.corpus->paper(paper).references) {
    auto rit = item_factors_.find(ref);
    if (rit == item_factors_.end()) continue;
    la::AxpyVec(1.0, rit->second, acc);
    ++known;
  }
  if (known > 0)
    for (double& x : acc) x /= static_cast<double>(known);
  return acc;
}

std::vector<double> SvdRecommender::Score(
    const RecContext& ctx, const UserQuery& query,
    const std::vector<corpus::PaperId>& candidates) const {
  std::vector<double> scores(candidates.size(), 0.0);
  auto uit = user_factors_.find(query.user);
  if (uit == user_factors_.end()) return scores;
  for (size_t c = 0; c < candidates.size(); ++c)
    scores[c] = la::Dot(uit->second, ItemFactor(ctx, candidates[c]));
  return scores;
}

}  // namespace subrec::rec
