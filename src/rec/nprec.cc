#include "rec/nprec.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "autodiff/tape_pool.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "graph/neighborhood.h"
#include "la/check_finite.h"
#include "la/ops.h"
#include "la/score_math.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"

namespace subrec::rec {

using autodiff::Tape;
using graph::Edge;
using graph::NodeId;
using la::Matrix;

namespace {

// Chunk grains for the per-node/per-paper/per-candidate loops. Every
// iteration writes only its own slot, so the grain only spreads work —
// results cannot depend on the thread count.
constexpr size_t kNodeGrain = 8;
constexpr size_t kPaperGrain = 16;
constexpr size_t kCandidateGrain = 16;

/// One training pair's forward/backward state, built in parallel within a
/// batch. Parameters only change at the optimizer step (a batch boundary),
/// so per-pair tapes read frozen values; gradients are pulled serially in
/// pair order, matching the sequential schedule bit for bit.
struct PairWork {
  std::unique_ptr<Tape> tape;
  std::unique_ptr<nn::TapeBinding> binding;
  std::unordered_map<uint64_t, autodiff::VarId> memo;
  autodiff::VarId loss = 0;
};

}  // namespace

NPRec::NPRec(const NPRecOptions& options, const SubspaceEmbeddings* subspace)
    : options_(options), subspace_(subspace) {
  SUBREC_CHECK(options_.use_text || options_.use_graph)
      << "NPRec needs at least one of text/graph";
  SUBREC_CHECK_GT(options_.depth, 0);
  // The NodeVecOnTape memo key packs h into 11 bits (see the shift there);
  // anything deeper would silently collide with the node bits.
  SUBREC_CHECK_LE(options_.depth, 2047) << "NPRec depth exceeds memo-key range";
  SUBREC_CHECK_GT(options_.neighbor_samples, 0);
  // `subspace` is a non-owning pointer the options make load-bearing; fail
  // at construction in dev builds rather than at first Fit in production.
  if (options_.use_text || options_.sampler.use_defuzzing) {
    SUBREC_DCHECK(subspace_ != nullptr)
        << "NPRec with use_text/defuzzing needs subspace embeddings";
    SUBREC_DCHECK(subspace_ == nullptr || !subspace_->empty())
        << "NPRec given an empty SubspaceEmbeddings table";
  }
}

Matrix NPRec::FusedText(corpus::PaperId p) const {
  const auto& subs = (*subspace_)[static_cast<size_t>(p)];
  const size_t k = subs.size();
  const size_t dim = subs[0].size();
  std::vector<double> lam = text_attn_->value.RowToVector(0);
  la::SoftmaxInPlace(lam);
  Matrix out(1, dim);
  for (size_t s = 0; s < k; ++s)
    for (size_t j = 0; j < dim; ++j) out(0, j) += lam[s] * subs[s][j];
  return out;
}

void NPRec::BuildParameters(const RecContext& ctx) {
  Rng rng(options_.seed);
  if (options_.use_graph) {
    const size_t n = ctx.graph->graph.num_nodes();
    node_embed_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      node_embed_[i] = store_.Create(
          "nprec.node" + std::to_string(i),
          nn::EmbeddingInit(1, options_.embed_dim, rng, 0.15));
    }
    for (int r = 0; r < graph::kNumRelationTypes; ++r) {
      rel_embed_[static_cast<size_t>(r)] = store_.Create(
          "nprec.rel" + std::to_string(r),
          nn::EmbeddingInit(1, options_.embed_dim, rng, 0.3));
    }
    layers_.clear();
    for (int h = 0; h < options_.depth; ++h) {
      layers_.emplace_back(&store_, "nprec.gcn" + std::to_string(h),
                           options_.embed_dim, options_.embed_dim, rng,
                           nn::Activation::kTanh);
    }
  }
  if (PriorEnabled()) {
    prior_weight_ = store_.Create("nprec.prior_w", Matrix(1, 2, 0.0));
  }
  if (options_.use_text) {
    SUBREC_CHECK(subspace_ != nullptr);
    SUBREC_CHECK(!ctx.train_papers.empty());
    const auto& sample =
        (*subspace_)[static_cast<size_t>(ctx.train_papers.front())];
    const size_t num_subspaces = sample.size();
    const size_t text_dim = sample[0].size();
    text_attn_ =
        store_.Create("nprec.text_attn", Matrix(1, num_subspaces, 0.0));
    text_proj_interest_ = std::make_unique<nn::Dense>(
        &store_, "nprec.text_int", text_dim, options_.embed_dim, rng,
        nn::Activation::kTanh);
    text_proj_influence_ = std::make_unique<nn::Dense>(
        &store_, "nprec.text_inf", text_dim, options_.embed_dim, rng,
        nn::Activation::kTanh);
    if (options_.use_raw_text_channel) {
      raw_text_gain_ = store_.Create("nprec.raw_gain", Matrix(1, 1, 1.0));
    }
  }
}

void NPRec::PrecomputeSamples(const RecContext& ctx) {
  const graph::AcademicGraph& g = ctx.graph->graph;
  Rng rng(options_.seed + 101);
  samples_.resize(g.num_nodes());
  for (size_t n = 0; n < g.num_nodes(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    if (options_.symmetric_neighborhoods) {
      // Direction-blind (KGCN-style): all relations in both directions.
      std::vector<Edge> all = g.InterestNeighborhood(node);
      for (const Edge& e : g.InEdges(node))
        if (e.rel == graph::RelationType::kCites) all.push_back(e);
      std::vector<Edge> sample;
      if (all.size() <= static_cast<size_t>(options_.neighbor_samples)) {
        sample = all;
      } else {
        for (size_t i : rng.SampleWithoutReplacement(
                 all.size(), static_cast<size_t>(options_.neighbor_samples)))
          sample.push_back(all[i]);
      }
      samples_[n].interest = sample;
      samples_[n].influence = sample;
    } else {
      samples_[n].interest =
          graph::SampleNeighbors(g, node, graph::NeighborhoodKind::kInterest,
                                 options_.neighbor_samples, rng);
      samples_[n].influence =
          graph::SampleNeighbors(g, node, graph::NeighborhoodKind::kInfluence,
                                 options_.neighbor_samples, rng);
    }
  }
}

const std::vector<Edge>& NPRec::SampledNeighbors(NodeId node,
                                                 bool influence_side) const {
  const SampledNode& s = samples_[static_cast<size_t>(node)];
  return influence_side ? s.influence : s.interest;
}

autodiff::VarId NPRec::NodeVecOnTape(
    Tape* tape, nn::TapeBinding* binding, NodeId node, int h,
    bool influence_side, std::unordered_map<uint64_t, VarId>* memo) const {
  // Key layout: node | h (11 bits) | side (1 bit). h ranges over
  // [0, depth] and the constructor bounds depth at 2047, so the fields
  // cannot overlap (the old 3-bit packing collided for depth > 7).
  SUBREC_DCHECK_GE(h, 0);
  SUBREC_DCHECK_LT(h, 2048);
  const uint64_t key = (static_cast<uint64_t>(node) << 12) |
                       (static_cast<uint64_t>(h) << 1) |
                       (influence_side ? 1u : 0u);
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;

  VarId result;
  if (h == 0) {
    result = binding->Use(node_embed_[static_cast<size_t>(node)]);
  } else {
    VarId self_prev =
        NodeVecOnTape(tape, binding, node, h - 1, influence_side, memo);
    const std::vector<Edge>& neighbors =
        SampledNeighbors(node, influence_side);
    VarId sum = self_prev;
    if (!neighbors.empty()) {
      VarId leaf_self = binding->Use(node_embed_[static_cast<size_t>(node)]);
      std::vector<VarId> scores;
      std::vector<VarId> vecs;
      scores.reserve(neighbors.size());
      vecs.reserve(neighbors.size());
      for (const Edge& e : neighbors) {
        VarId leaf_nbr =
            binding->Use(node_embed_[static_cast<size_t>(e.dst)]);
        VarId rel = binding->Use(
            rel_embed_[static_cast<size_t>(static_cast<int>(e.rel))]);
        // pi = <v_e, v_e' o r>: relation-typed scoring function g (Eq. 16).
        scores.push_back(
            tape->MatMulTransB(leaf_self, tape->Mul(leaf_nbr, rel)));
        vecs.push_back(
            NodeVecOnTape(tape, binding, e.dst, h - 1, influence_side, memo));
      }
      VarId weights = tape->RowSoftmax(tape->ConcatCols(scores));  // 1 x K
      VarId nmat = tape->ConcatRows(vecs);                          // K x d
      VarId v_n = tape->MatMul(weights, nmat);                      // Eq. 15
      sum = tape->Add(self_prev, v_n);
    }
    result = layers_[static_cast<size_t>(h - 1)].Forward(tape, binding, sum);
  }
  (*memo)[key] = result;
  return result;
}

autodiff::VarId NPRec::PaperVecOnTape(
    Tape* tape, nn::TapeBinding* binding, const RecContext& ctx,
    corpus::PaperId p, bool influence_side,
    std::unordered_map<uint64_t, VarId>* memo) const {
  std::vector<VarId> parts;
  if (options_.use_text) {
    const size_t pi = static_cast<size_t>(p);
    VarId lam = tape->RowSoftmax(binding->Use(text_attn_));
    // The stacked subspace rows are Fit-invariant: reference the per-paper
    // cache instead of re-uploading a Constant copy for every pair. The
    // fallback path keeps legacy mode (and any call before the caches are
    // built) on the original allocate-per-pair behavior.
    VarId c;
    if (pi < text_stack_.size() && !autodiff::TapeLegacyMode()) {
      c = tape->ConstantRef(&text_stack_[pi]);
    } else {
      const auto& subs = (*subspace_)[pi];
      std::vector<std::vector<double>> rows(subs.begin(), subs.end());
      c = tape->Constant(la::StackRows(rows));
    }
    VarId fused = tape->MatMul(lam, c);  // c_p = sum_k lambda_k c_p^k
    const nn::Dense& proj =
        influence_side ? *text_proj_influence_ : *text_proj_interest_;
    parts.push_back(proj.Forward(tape, binding, fused));
    if (options_.use_raw_text_channel) {
      // The normalized FusedText row depends on the trained attention
      // weights, so it is only cacheable within one batch (see
      // PrepareRawUnitCache); the stamp gate keeps stale entries unused.
      VarId raw;
      if (pi < raw_unit_stamp_.size() &&
          raw_unit_stamp_[pi] == raw_unit_epoch_ && raw_unit_epoch_ != 0 &&
          !autodiff::TapeLegacyMode()) {
        raw = tape->ConstantRef(&raw_unit_[pi]);
      } else {
        std::vector<double> unit = FusedText(p).RowToVector(0);
        la::NormalizeL2(unit);
        raw = tape->Constant(Matrix::RowVector(unit));
      }
      if (influence_side) {
        parts.push_back(raw);
      } else {
        parts.push_back(tape->MatMul(binding->Use(raw_text_gain_), raw));
      }
    }
  }
  if (options_.use_graph) {
    const NodeId node = ctx.graph->paper_nodes[static_cast<size_t>(p)];
    parts.push_back(NodeVecOnTape(tape, binding, node, options_.depth,
                                  influence_side, memo));
  }
  if (PriorEnabled()) {
    if (influence_side) {
      Matrix f(1, 2);
      f(0, 0) = prior_features_(static_cast<size_t>(p), 0);
      f(0, 1) = prior_features_(static_cast<size_t>(p), 1);
      parts.push_back(tape->Constant(std::move(f)));
    } else {
      parts.push_back(binding->Use(prior_weight_));
    }
  }
  return parts.size() == 1 ? parts[0] : tape->ConcatCols(parts);
}

void NPRec::BuildConstantCaches() {
  text_stack_.clear();
  raw_unit_.clear();
  raw_unit_stamp_.clear();
  raw_unit_epoch_ = 0;
  if (!options_.use_text || subspace_ == nullptr) return;
  if (autodiff::TapeLegacyMode()) return;  // bench the uncached path honestly
  const size_t n = subspace_->size();
  text_stack_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    const auto& subs = (*subspace_)[p];
    std::vector<std::vector<double>> rows(subs.begin(), subs.end());
    text_stack_[p] = la::StackRows(rows);
  }
  if (options_.use_raw_text_channel) {
    raw_unit_.resize(n);
    raw_unit_stamp_.assign(n, 0);
  }
}

void NPRec::PrepareRawUnitCache(const std::vector<TrainingPair>& pairs,
                                size_t b0, size_t b1) {
  if (raw_unit_.empty()) return;  // raw channel off or caches not built
  ++raw_unit_epoch_;
  // Serial, in pair order: FusedText reads the current text_attn_ value,
  // identical for every pair of the batch, so hoisting the computation out
  // of the parallel loop changes neither values nor determinism.
  for (size_t i = b0; i < b1; ++i) {
    const corpus::PaperId ps[2] = {pairs[i].citing, pairs[i].cited};
    for (corpus::PaperId p : ps) {
      const size_t pi = static_cast<size_t>(p);
      if (raw_unit_stamp_[pi] == raw_unit_epoch_) continue;
      std::vector<double> unit = FusedText(p).RowToVector(0);
      la::NormalizeL2(unit);
      raw_unit_[pi].CopyFrom(Matrix::RowVector(unit));
      raw_unit_stamp_[pi] = raw_unit_epoch_;
    }
  }
}

void NPRec::ComputePriorFeatures(const RecContext& ctx) {
  const corpus::Corpus& corpus = *ctx.corpus;
  // Train-window in-corpus citation tallies.
  std::vector<double> in_degree(corpus.papers.size(), 0.0);
  for (corpus::PaperId pid : ctx.train_papers) {
    for (corpus::PaperId ref : corpus.paper(pid).references) {
      if (corpus.paper(ref).year <= ctx.split_year)
        in_degree[static_cast<size_t>(ref)] += 1.0;
    }
  }
  std::vector<double> author_mass(corpus.authors.size(), 0.0);
  for (const corpus::Author& a : corpus.authors) {
    for (corpus::PaperId pid : a.papers) {
      if (corpus.paper(pid).year <= ctx.split_year)
        author_mass[static_cast<size_t>(a.id)] +=
            in_degree[static_cast<size_t>(pid)];
    }
  }
  prior_features_ = Matrix(corpus.papers.size(), 2);
  for (const corpus::Paper& p : corpus.papers) {
    double ref_mass = 0.0;
    for (corpus::PaperId ref : p.references)
      ref_mass += in_degree[static_cast<size_t>(ref)];
    double authors = 0.0;
    for (corpus::AuthorId a : p.authors)
      authors += author_mass[static_cast<size_t>(a)];
    prior_features_(static_cast<size_t>(p.id), 0) = std::log1p(ref_mass);
    prior_features_(static_cast<size_t>(p.id), 1) = std::log1p(authors);
  }
  // Standardize each feature over the training papers.
  for (int j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (corpus::PaperId pid : ctx.train_papers)
      mean += prior_features_(static_cast<size_t>(pid), static_cast<size_t>(j));
    mean /= static_cast<double>(ctx.train_papers.size());
    for (corpus::PaperId pid : ctx.train_papers) {
      const double d =
          prior_features_(static_cast<size_t>(pid), static_cast<size_t>(j)) -
          mean;
      var += d * d;
    }
    const double stddev = std::sqrt(
        std::max(var / static_cast<double>(ctx.train_papers.size()), 1e-9));
    for (size_t i = 0; i < prior_features_.rows(); ++i)
      prior_features_(i, static_cast<size_t>(j)) =
          (prior_features_(i, static_cast<size_t>(j)) - mean) / stddev;
  }
}

Status NPRec::Fit(const RecContext& ctx) {
  DCheckValidContext(ctx);
  if (options_.use_graph && ctx.graph == nullptr)
    return Status::InvalidArgument("NPRec: graph required but missing");
  if ((options_.use_text || options_.sampler.use_defuzzing) &&
      subspace_ == nullptr)
    return Status::InvalidArgument("NPRec: subspace embeddings required");
  if (ctx.train_papers.empty())
    return Status::InvalidArgument("NPRec: no training papers");

  SUBREC_TRACE_SPAN("nprec/fit");
  if (PriorEnabled()) ComputePriorFeatures(ctx);
  {
    SUBREC_TRACE_SPAN("nprec/build_parameters");
    BuildParameters(ctx);
  }
  BuildConstantCaches();
  if (options_.use_graph) {
    SUBREC_TRACE_SPAN("nprec/precompute_samples");
    PrecomputeSamples(ctx);
  }

  DefuzzSampler sampler(options_.sampler);
  const std::vector<TrainingPair> pairs = sampler.BuildPairs(ctx, subspace_);
  if (pairs.empty()) return Status::InvalidArgument("NPRec: no training pairs");

  train_stats_ = NPRecTrainStats();
  train_stats_.num_pairs = pairs.size();
  for (const TrainingPair& pair : pairs) {
    if (pair.label > 0.5) ++train_stats_.num_positives;
  }
  const int64_t train_start_ns = obs::NowNs();
  static obs::Counter* const epochs_counter =
      obs::MetricsRegistry::Global().GetCounter("nprec.epochs");
  static obs::Counter* const pair_steps =
      obs::MetricsRegistry::Global().GetCounter("nprec.pair_steps");

  // Regularize only the dense weights; entity embeddings are too many for a
  // global L2 term to be cheap, and Adam keeps them bounded.
  std::vector<nn::Parameter*> reg_params;
  for (const nn::Dense& l : layers_) {
    reg_params.push_back(l.weight());
    reg_params.push_back(l.bias());
  }
  if (options_.use_text) {
    reg_params.push_back(text_proj_interest_->weight());
    reg_params.push_back(text_proj_influence_->weight());
  }

  nn::Adam optimizer(options_.learning_rate, 0.9, 0.999, 1e-8,
                     options_.weight_decay);
  const std::vector<nn::Parameter*> params = store_.params();
  const size_t batch =
      options_.batch_size > 0 ? static_cast<size_t>(options_.batch_size) : 1;
  // Tapes are pooled across pairs so each worker reuses a warmed-up node
  // arena; work slots keep their TapeBinding and memo so those containers
  // recycle their storage too. Which arena a pair lands on affects only
  // memory reuse, never the floating-point schedule.
  autodiff::TapePool tape_pool;
  std::vector<PairWork> work;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    SUBREC_TRACE_SPAN("nprec/epoch");
    epochs_counter->Increment();
    pair_steps->Increment(static_cast<int64_t>(pairs.size()));
    double epoch_loss = 0.0;
    for (size_t b0 = 0; b0 < pairs.size(); b0 += batch) {
      const size_t b1 = std::min(pairs.size(), b0 + batch);
      // Forward/backward for each batch pair on its own tape; parameter
      // values are frozen until the step below, so the pairs are
      // independent and chunking cannot change any result.
      PrepareRawUnitCache(pairs, b0, b1);
      work.resize(b1 - b0);
      par::ParallelFor(b1 - b0, 1, [&](size_t w_begin, size_t w_end) {
        for (size_t w = w_begin; w < w_end; ++w) {
          const TrainingPair& pair = pairs[b0 + w];
          std::unique_ptr<Tape> tape = tape_pool.Acquire();
          if (work[w].binding == nullptr)
            work[w].binding = std::make_unique<nn::TapeBinding>();
          nn::TapeBinding* binding = work[w].binding.get();
          binding->Reset(tape.get());
          std::unordered_map<uint64_t, VarId>& memo = work[w].memo;
          memo.clear();
          VarId vp = PaperVecOnTape(tape.get(), binding, ctx,
                                    pair.citing,
                                    /*influence_side=*/false, &memo);
          VarId vq = PaperVecOnTape(tape.get(), binding, ctx,
                                    pair.cited,
                                    /*influence_side=*/true, &memo);
          VarId logit = tape->MatMulTransB(vp, vq);  // Eq. 22
          VarId loss = tape->SigmoidBce(logit, Matrix(1, 1, pair.label));
          if (options_.label_smoothness > 0.0 && pair.label > 0.5 &&
              options_.use_graph) {
            VarId lp = binding->Use(node_embed_[static_cast<size_t>(
                ctx.graph->paper_nodes[static_cast<size_t>(pair.citing)])]);
            VarId lq = binding->Use(node_embed_[static_cast<size_t>(
                ctx.graph->paper_nodes[static_cast<size_t>(pair.cited)])]);
            loss = tape->Add(loss,
                             tape->Scale(tape->SumSquares(tape->Sub(lp, lq)),
                                         options_.label_smoothness));
          }
          loss = nn::AddL2Regularizer(tape.get(), binding, loss,
                                      reg_params, options_.lambda);
          tape->Backward(loss);
          work[w].tape = std::move(tape);
          work[w].loss = loss;
        }
      });
      // Gradient accumulation stays serial and in pair order — the same
      // floating-point addition sequence the sequential loop performs.
      for (PairWork& pw : work) {
        pw.binding->PullGradients();
        const double lv = pw.tape->value(pw.loss)(0, 0);
        SUBREC_CHECK_FINITE(lv, "NPRec pair loss");
        epoch_loss += lv;
        tape_pool.Release(std::move(pw.tape));
      }
      nn::ClipGradNorm(params, options_.clip_norm);
      optimizer.Step(params);
    }
    const double mean_loss = epoch_loss / static_cast<double>(pairs.size());
    train_stats_.epoch_loss.push_back(mean_loss);
    SUBREC_LOG(Debug) << name() << " epoch " << epoch << " loss " << mean_loss;
    if (options_.observer) {
      obs::TrainingEvent ev;
      ev.model = "nprec";
      ev.epoch = epoch + 1;
      ev.total_epochs = options_.epochs;
      ev.loss = mean_loss;
      ev.samples = static_cast<int64_t>(pairs.size());
      ev.elapsed_seconds =
          static_cast<double>(obs::NowNs() - train_start_ns) / 1e9;
      options_.observer(ev);
    }
  }
  train_stats_.train_seconds =
      static_cast<double>(obs::NowNs() - train_start_ns) / 1e9;

  {
    SUBREC_TRACE_SPAN("nprec/final_vectors");
    ComputeFinalVectors(ctx);
  }
  fitted_ = true;
  return Status::Ok();
}

void NPRec::ComputeFinalVectors(const RecContext& ctx) {
  const size_t num_papers = ctx.corpus->papers.size();
  const size_t d = options_.embed_dim;

  // Graph halves via layer-wise propagation with the trained weights.
  std::vector<std::vector<double>> gi, gf;  // per node
  if (options_.use_graph) {
    const graph::AcademicGraph& g = ctx.graph->graph;
    const size_t n = g.num_nodes();
    std::vector<std::vector<double>> prev_i(n), prev_f(n);
    for (size_t i = 0; i < n; ++i) {
      prev_i[i] = node_embed_[i]->value.RowToVector(0);
      prev_f[i] = prev_i[i];
    }
    auto propagate = [&](const std::vector<std::vector<double>>& prev,
                         bool influence_side, int layer) {
      std::vector<std::vector<double>> next(n);
      const nn::Dense& dense = layers_[static_cast<size_t>(layer)];
      // Each node reads the frozen prev layer and writes only next[i].
      par::ParallelFor(n, kNodeGrain, [&](size_t i_begin, size_t i_end) {
        for (size_t i = i_begin; i < i_end; ++i) {
          const std::vector<Edge>& nbrs =
              SampledNeighbors(static_cast<NodeId>(i), influence_side);
          std::vector<double> sum = prev[i];
          if (!nbrs.empty()) {
            const std::vector<double> self_leaf =
                node_embed_[i]->value.RowToVector(0);
            std::vector<double> pis(nbrs.size());
            for (size_t e = 0; e < nbrs.size(); ++e) {
              const auto leaf =
                  node_embed_[static_cast<size_t>(nbrs[e].dst)]->value
                      .RowToVector(0);
              const auto rel =
                  rel_embed_[static_cast<size_t>(
                                 static_cast<int>(nbrs[e].rel))]
                      ->value.RowToVector(0);
              double dot = 0.0;
              for (size_t j = 0; j < d; ++j)
                dot += self_leaf[j] * leaf[j] * rel[j];
              pis[e] = dot;
            }
            la::SoftmaxInPlace(pis);
            for (size_t e = 0; e < nbrs.size(); ++e)
              la::AxpyVec(pis[e], prev[static_cast<size_t>(nbrs[e].dst)],
                          sum);
          }
          // y = tanh(x W + b)
          Matrix x = Matrix::RowVector(sum);
          Matrix y = la::Tanh(la::AddRowBroadcast(
              la::MatMul(x, dense.weight()->value), dense.bias()->value));
          next[i] = y.RowToVector(0);
        }
      });
      return next;
    };
    for (int h = 0; h < options_.depth; ++h) {
      prev_i = propagate(prev_i, /*influence_side=*/false, h);
      prev_f = propagate(prev_f, /*influence_side=*/true, h);
#if defined(SUBREC_NUMERIC_CHECKS) && SUBREC_NUMERIC_CHECKS
      for (size_t i = 0; i < n; ++i) {
        la::CheckFinite(prev_i[i], "NPRec interest propagation layer");
        la::CheckFinite(prev_f[i], "NPRec influence propagation layer");
      }
#endif
    }
    gi = std::move(prev_i);
    gf = std::move(prev_f);
  }

  paper_interest_.assign(num_papers, {});
  paper_influence_.assign(num_papers, {});
  par::ParallelFor(num_papers, kPaperGrain, [&](size_t p_begin,
                                                size_t p_end) {
    for (size_t p = p_begin; p < p_end; ++p) {
      std::vector<double> vi, vf;
      if (options_.use_text) {
        const Matrix fused = FusedText(static_cast<corpus::PaperId>(p));
        auto project = [&](const nn::Dense& dense) {
          Matrix y = la::Tanh(la::AddRowBroadcast(
              la::MatMul(fused, dense.weight()->value), dense.bias()->value));
          return y.RowToVector(0);
        };
        vi = project(*text_proj_interest_);
        vf = project(*text_proj_influence_);
        if (options_.use_raw_text_channel) {
          std::vector<double> unit = fused.RowToVector(0);
          la::NormalizeL2(unit);
          const double gain = raw_text_gain_->value(0, 0);
          for (double x : unit) vi.push_back(gain * x);
          vf.insert(vf.end(), unit.begin(), unit.end());
        }
      }
      if (options_.use_graph) {
        const size_t node = static_cast<size_t>(ctx.graph->paper_nodes[p]);
        vi.insert(vi.end(), gi[node].begin(), gi[node].end());
        vf.insert(vf.end(), gf[node].begin(), gf[node].end());
      }
      if (PriorEnabled()) {
        vi.push_back(prior_weight_->value(0, 0));
        vi.push_back(prior_weight_->value(0, 1));
        vf.push_back(prior_features_(p, 0));
        vf.push_back(prior_features_(p, 1));
      }
      paper_interest_[p] = std::move(vi);
      paper_influence_[p] = std::move(vf);
    }
  });
}

double NPRec::PairScore(corpus::PaperId p, corpus::PaperId q) const {
  SUBREC_CHECK(fitted_);
  const double logit = la::Dot(paper_interest_[static_cast<size_t>(p)],
                               paper_influence_[static_cast<size_t>(q)]);
  // la::ScoreSigmoid, not 1/(1+std::exp(-x)): post-fit pair scores must be
  // bit-identical between this live path and the frozen serving path (which
  // also runs the batched GEMM engine), and libm's exp is neither
  // cross-platform reproducible nor fast enough for the serving budget.
  return la::ScoreSigmoid(logit);
}

std::vector<double> NPRec::Score(
    const RecContext& ctx, const UserQuery& query,
    const std::vector<corpus::PaperId>& candidates) const {
  (void)ctx;
  SUBREC_CHECK(fitted_);
  std::vector<double> scores(candidates.size(), 0.0);
  if (query.profile.empty()) return scores;
  // Each candidate writes only its own slot; the per-candidate profile sum
  // runs in profile order regardless of chunking.
  par::ParallelFor(candidates.size(), kCandidateGrain,
                   [&](size_t c_begin, size_t c_end) {
                     for (size_t c = c_begin; c < c_end; ++c) {
                       double total = 0.0;
                       for (corpus::PaperId p : query.profile)
                         total += PairScore(p, candidates[c]);
                       scores[c] =
                           total /
                           static_cast<double>(query.profile.size());
                     }
                   });
  return scores;
}

const std::vector<double>& NPRec::PaperInterestVector(
    corpus::PaperId p) const {
  SUBREC_CHECK(fitted_);
  return paper_interest_[static_cast<size_t>(p)];
}

const std::vector<double>& NPRec::PaperInfluenceVector(
    corpus::PaperId p) const {
  SUBREC_CHECK(fitted_);
  return paper_influence_[static_cast<size_t>(p)];
}

std::vector<double> NPRec::PaperTextVector(corpus::PaperId p) const {
  SUBREC_CHECK(fitted_);
  if (!options_.use_text) return {};
  return FusedText(p).RowToVector(0);
}

NPRecFrozenVectors NPRec::ExportFrozenVectors() const {
  SUBREC_CHECK(fitted_) << "ExportFrozenVectors before Fit";
  NPRecFrozenVectors out;
  out.interest = paper_interest_;
  out.influence = paper_influence_;
  if (options_.use_text) {
    out.text.reserve(paper_interest_.size());
    for (size_t p = 0; p < paper_interest_.size(); ++p)
      out.text.push_back(
          FusedText(static_cast<corpus::PaperId>(p)).RowToVector(0));
  }
  return out;
}

}  // namespace subrec::rec
