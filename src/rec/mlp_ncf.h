#ifndef SUBREC_REC_MLP_NCF_H_
#define SUBREC_REC_MLP_NCF_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/dense.h"
#include "nn/parameter.h"
#include "rec/recommender.h"

namespace subrec::rec {

struct MlpNcfOptions {
  size_t embed_dim = 16;
  size_t hidden_dim = 32;
  int epochs = 3;
  int negatives = 4;
  double learning_rate = 0.02;
  int batch_size = 32;
  /// Cap on (user, item) positives; -1 = all.
  int max_positives = 4000;
  uint64_t seed = 47;
};

/// Neural collaborative filtering MLP (He et al. [12]): learned user and
/// item embeddings pushed through an MLP interaction function, trained
/// with BCE over citation positives and sampled negatives. New candidates
/// reuse the mean embedding of their cited train papers.
class MlpRecommender final : public Recommender {
 public:
  explicit MlpRecommender(MlpNcfOptions options = {});

  std::string name() const override { return "MLP"; }
  Status Fit(const RecContext& ctx) override;
  std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const override;

 private:
  std::vector<double> ItemEmbedding(const RecContext& ctx,
                                    corpus::PaperId paper) const;
  double Predict(const std::vector<double>& user_vec,
                 const std::vector<double>& item_vec) const;

  MlpNcfOptions options_;
  nn::ParameterStore store_;
  std::unordered_map<corpus::AuthorId, nn::Parameter*> user_embed_;
  std::unordered_map<corpus::PaperId, nn::Parameter*> item_embed_;
  std::unique_ptr<nn::Dense> hidden_;
  std::unique_ptr<nn::Dense> output_;
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_MLP_NCF_H_
