#include "rec/baselines_quality.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "text/tokenizer.h"

namespace subrec::rec {
namespace {

/// Corpus-wide token document frequencies (for lexical rarity).
std::unordered_map<std::string, int> TokenDocumentFrequencies(
    const corpus::Corpus& corpus) {
  std::unordered_map<std::string, int> df;
  for (const corpus::Paper& p : corpus.papers) {
    std::unordered_set<std::string> seen;
    for (const corpus::Sentence& s : p.abstract_sentences) {
      for (const std::string& t : text::Tokenize(s.text)) seen.insert(t);
    }
    for (const std::string& t : seen) ++df[t];
  }
  return df;
}

}  // namespace

std::vector<double> CltScores(const corpus::Corpus& corpus,
                              const std::vector<corpus::PaperId>& papers) {
  const auto df = TokenDocumentFrequencies(corpus);
  const double n_docs = static_cast<double>(corpus.papers.size());
  std::vector<double> scores;
  scores.reserve(papers.size());
  for (corpus::PaperId pid : papers) {
    const corpus::Paper& p = corpus.paper(pid);
    int total_tokens = 0;
    std::unordered_set<std::string> uniq;
    double rarity = 0.0;
    for (const corpus::Sentence& s : p.abstract_sentences) {
      for (const std::string& t : text::Tokenize(s.text)) {
        ++total_tokens;
        uniq.insert(t);
        auto it = df.find(t);
        const double d = it == df.end() ? 1.0 : static_cast<double>(it->second);
        rarity += std::log(n_docs / d);
      }
    }
    if (total_tokens == 0) {
      scores.push_back(0.0);
      continue;
    }
    const double ttr =
        static_cast<double>(uniq.size()) / static_cast<double>(total_tokens);
    const double mean_len =
        static_cast<double>(total_tokens) /
        std::max<double>(1.0, static_cast<double>(p.abstract_sentences.size()));
    // Readability blend (Louis & Nenkova measure writing quality, not
    // technical-term rarity): vocabulary richness plus a sentence-length
    // penalty. Corpus rarity is deliberately excluded — with it the score
    // degenerates into an innovation detector instead of a WRITING-quality
    // score.
    (void)rarity;
    scores.push_back(2.0 * ttr - 0.02 * std::fabs(mean_len - 12.0));
  }
  return scores;
}

std::vector<double> CsjScores(const corpus::Corpus& corpus,
                              const std::vector<corpus::PaperId>& papers) {
  std::vector<double> scores;
  scores.reserve(papers.size());
  for (corpus::PaperId pid : papers) {
    const corpus::Paper& p = corpus.paper(pid);
    if (p.abstract_sentences.empty()) {
      scores.push_back(0.0);
      continue;
    }
    // Sentence length regularity.
    std::vector<double> lens;
    int academic = 0, total = 0;
    for (const corpus::Sentence& s : p.abstract_sentences) {
      const auto toks = text::Tokenize(s.text);
      lens.push_back(static_cast<double>(toks.size()));
      for (const std::string& t : toks) {
        ++total;
        // "Academic vocabulary": multi-syllable-ish words (crude proxy:
        // length >= 8 characters).
        if (t.size() >= 8) ++academic;
      }
    }
    double mean = 0.0;
    for (double l : lens) mean += l;
    mean /= static_cast<double>(lens.size());
    double var = 0.0;
    for (double l : lens) var += (l - mean) * (l - mean);
    var /= static_cast<double>(lens.size());
    const double regularity = 1.0 / (1.0 + std::sqrt(var));
    const double academic_density =
        total > 0 ? static_cast<double>(academic) / static_cast<double>(total)
                  : 0.0;
    const double keyword_density =
        static_cast<double>(p.keywords.size()) /
        std::max<double>(1.0, static_cast<double>(total));
    scores.push_back(regularity + 2.0 * academic_density +
                     10.0 * keyword_density);
  }
  return scores;
}

std::vector<double> HpScores(const corpus::Corpus& corpus,
                             const std::vector<corpus::PaperId>& papers,
                             int window_years) {
  // Early citers of each paper, within the window.
  std::vector<std::vector<corpus::PaperId>> early_citers(corpus.papers.size());
  for (const corpus::Paper& citing : corpus.papers) {
    for (corpus::PaperId ref : citing.references) {
      const corpus::Paper& cited = corpus.paper(ref);
      if (citing.year - cited.year <= window_years)
        early_citers[static_cast<size_t>(ref)].push_back(citing.id);
    }
  }
  std::vector<double> scores;
  scores.reserve(papers.size());
  for (corpus::PaperId pid : papers) {
    const auto& citers = early_citers[static_cast<size_t>(pid)];
    // h-index flavored: citation count weighted by the citers' own early
    // connectivity (core degree in the young citation network).
    double score = static_cast<double>(citers.size());
    for (corpus::PaperId c : citers)
      score +=
          0.2 * std::log1p(static_cast<double>(
                    early_citers[static_cast<size_t>(c)].size()));
    scores.push_back(score);
  }
  return scores;
}

}  // namespace subrec::rec
