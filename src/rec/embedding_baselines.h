#ifndef SUBREC_REC_EMBEDDING_BASELINES_H_
#define SUBREC_REC_EMBEDDING_BASELINES_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "corpus/types.h"
#include "la/matrix.h"
#include "text/sentence_encoder.h"

namespace subrec::text {
class Word2Vec;
}

namespace subrec::rec {

/// SHPE baseline [34]: word2vec mean vector concatenated with a hashed
/// TF vector of the full abstract. Trains word2vec on the given papers'
/// abstracts. Rows align with `papers`.
Result<la::Matrix> ShpeEmbeddings(const corpus::Corpus& corpus,
                                  const std::vector<corpus::PaperId>& papers,
                                  uint64_t seed);

/// Doc2Vec baseline [20]: PV-DBOW document vectors of the abstracts.
Result<la::Matrix> Doc2VecEmbeddings(
    const corpus::Corpus& corpus, const std::vector<corpus::PaperId>& papers,
    uint64_t seed);

/// "BERT" baseline [26]: mean frozen sentence-encoder vector over the
/// abstract, with no fine-tuning or subspace structure.
la::Matrix BertAvgEmbeddings(const corpus::Corpus& corpus,
                             const std::vector<corpus::PaperId>& papers,
                             const text::SentenceEncoder& encoder);

}  // namespace subrec::rec

#endif  // SUBREC_REC_EMBEDDING_BASELINES_H_
