#include "rec/recommender.h"

#include <algorithm>

namespace subrec::rec {

std::unordered_set<corpus::PaperId> UserInteractions(const RecContext& ctx,
                                                     corpus::AuthorId user) {
  std::unordered_set<corpus::PaperId> items;
  const corpus::Corpus& corpus = *ctx.corpus;
  for (corpus::PaperId pid : corpus.author(user).papers) {
    const corpus::Paper& p = corpus.paper(pid);
    if (p.year > ctx.split_year) continue;
    items.insert(pid);
    for (corpus::PaperId ref : p.references) {
      if (corpus.paper(ref).year <= ctx.split_year) items.insert(ref);
    }
  }
  return items;
}

std::vector<corpus::PaperId> UserProfile(const RecContext& ctx,
                                         corpus::AuthorId user,
                                         int max_papers) {
  std::vector<corpus::PaperId> profile;
  const corpus::Corpus& corpus = *ctx.corpus;
  for (corpus::PaperId pid : corpus.author(user).papers) {
    if (corpus.paper(pid).year <= ctx.split_year) profile.push_back(pid);
  }
  std::sort(profile.begin(), profile.end(),
            [&](corpus::PaperId a, corpus::PaperId b) {
              return corpus.paper(a).year > corpus.paper(b).year;
            });
  if (max_papers >= 0 && profile.size() > static_cast<size_t>(max_papers))
    profile.resize(static_cast<size_t>(max_papers));
  return profile;
}

}  // namespace subrec::rec
