#include "rec/recommender.h"

#include <algorithm>

#include "common/check.h"

namespace subrec::rec {

void DCheckValidContext(const RecContext& ctx) {
#if SUBREC_DCHECK_IS_ON
  SUBREC_CHECK(ctx.corpus != nullptr) << "RecContext: corpus is null";
  const size_t num_papers = ctx.corpus->papers.size();
  if (ctx.graph != nullptr) {
    SUBREC_CHECK_EQ(ctx.graph->paper_nodes.size(), num_papers)
        << "RecContext: graph built for a different corpus";
  }
  if (ctx.paper_text != nullptr) {
    SUBREC_CHECK_EQ(ctx.paper_text->size(), num_papers)
        << "RecContext: paper_text sized for a different corpus";
  }
  for (corpus::PaperId pid : ctx.train_papers) {
    SUBREC_CHECK(pid >= 0 && static_cast<size_t>(pid) < num_papers)
        << "RecContext: train paper id out of range: " << pid;
    SUBREC_CHECK_LE(ctx.corpus->paper(pid).year, ctx.split_year)
        << "RecContext: train paper " << pid << " is post-split";
  }
  for (corpus::PaperId pid : ctx.test_papers) {
    SUBREC_CHECK(pid >= 0 && static_cast<size_t>(pid) < num_papers)
        << "RecContext: test paper id out of range: " << pid;
    SUBREC_CHECK_GT(ctx.corpus->paper(pid).year, ctx.split_year)
        << "RecContext: test paper " << pid << " is pre-split";
  }
#else
  (void)ctx;
#endif
}

std::unordered_set<corpus::PaperId> UserInteractions(const RecContext& ctx,
                                                     corpus::AuthorId user) {
  std::unordered_set<corpus::PaperId> items;
  const corpus::Corpus& corpus = *ctx.corpus;
  for (corpus::PaperId pid : corpus.author(user).papers) {
    const corpus::Paper& p = corpus.paper(pid);
    if (p.year > ctx.split_year) continue;
    items.insert(pid);
    for (corpus::PaperId ref : p.references) {
      if (corpus.paper(ref).year <= ctx.split_year) items.insert(ref);
    }
  }
  return items;
}

std::vector<corpus::PaperId> UserProfile(const RecContext& ctx,
                                         corpus::AuthorId user,
                                         int max_papers) {
  std::vector<corpus::PaperId> profile;
  const corpus::Corpus& corpus = *ctx.corpus;
  for (corpus::PaperId pid : corpus.author(user).papers) {
    if (corpus.paper(pid).year <= ctx.split_year) profile.push_back(pid);
  }
  std::sort(profile.begin(), profile.end(),
            [&](corpus::PaperId a, corpus::PaperId b) {
              return corpus.paper(a).year > corpus.paper(b).year;
            });
  if (max_papers >= 0 && profile.size() > static_cast<size_t>(max_papers))
    profile.resize(static_cast<size_t>(max_papers));
  return profile;
}

}  // namespace subrec::rec
