#include "rec/embedding_baselines.h"

#include <string>

#include "la/ops.h"
#include "text/doc2vec.h"
#include "text/hashed_ngram_encoder.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace subrec::rec {
namespace {

std::vector<std::string> AbstractTokens(const corpus::Corpus& corpus,
                                        corpus::PaperId pid) {
  std::vector<std::string> tokens;
  for (const corpus::Sentence& s : corpus.paper(pid).abstract_sentences) {
    for (auto& t : text::Tokenize(s.text)) tokens.push_back(std::move(t));
  }
  return tokens;
}

std::string FullAbstract(const corpus::Corpus& corpus, corpus::PaperId pid) {
  std::string out;
  for (const corpus::Sentence& s : corpus.paper(pid).abstract_sentences) {
    out += s.text;
    out += ' ';
  }
  return out;
}

}  // namespace

Result<la::Matrix> ShpeEmbeddings(const corpus::Corpus& corpus,
                                  const std::vector<corpus::PaperId>& papers,
                                  uint64_t seed) {
  // Word2vec half, trained on the analysis papers' abstracts.
  std::vector<std::vector<std::string>> sentences;
  for (corpus::PaperId pid : papers) {
    for (const corpus::Sentence& s : corpus.paper(pid).abstract_sentences)
      sentences.push_back(text::Tokenize(s.text));
  }
  text::Word2VecOptions w2v_options;
  w2v_options.seed = seed;
  text::Word2Vec w2v(w2v_options);
  SUBREC_RETURN_NOT_OK(w2v.Train(sentences));

  // Hashed TF half (the SHPE linear TF-IDF component).
  text::HashedNgramEncoderOptions enc_options;
  enc_options.dim = 64;
  enc_options.use_bigrams = false;
  enc_options.seed = seed + 1;
  text::HashedNgramEncoder encoder(enc_options);

  la::Matrix out(papers.size(), w2v.dim() + enc_options.dim);
  for (size_t i = 0; i < papers.size(); ++i) {
    std::vector<double> v = w2v.MeanEmbedding(AbstractTokens(corpus, papers[i]));
    const std::vector<double> tf = encoder.Encode(FullAbstract(corpus, papers[i]));
    v.insert(v.end(), tf.begin(), tf.end());
    out.SetRow(i, v);
  }
  return out;
}

Result<la::Matrix> Doc2VecEmbeddings(const corpus::Corpus& corpus,
                                     const std::vector<corpus::PaperId>& papers,
                                     uint64_t seed) {
  std::vector<std::vector<std::string>> docs;
  docs.reserve(papers.size());
  for (corpus::PaperId pid : papers) docs.push_back(AbstractTokens(corpus, pid));
  text::Doc2VecOptions options;
  options.seed = seed;
  text::Doc2Vec d2v(options);
  SUBREC_RETURN_NOT_OK(d2v.Train(docs));
  la::Matrix out(papers.size(), d2v.dim());
  for (size_t i = 0; i < papers.size(); ++i)
    out.SetRow(i, d2v.DocumentVector(i));
  return out;
}

la::Matrix BertAvgEmbeddings(const corpus::Corpus& corpus,
                             const std::vector<corpus::PaperId>& papers,
                             const text::SentenceEncoder& encoder) {
  la::Matrix out(papers.size(), encoder.dim());
  for (size_t i = 0; i < papers.size(); ++i) {
    const corpus::Paper& p = corpus.paper(papers[i]);
    std::vector<double> acc(encoder.dim(), 0.0);
    for (const corpus::Sentence& s : p.abstract_sentences)
      la::AxpyVec(1.0, encoder.Encode(s.text), acc);
    if (!p.abstract_sentences.empty()) {
      for (double& x : acc)
        x /= static_cast<double>(p.abstract_sentences.size());
    }
    out.SetRow(i, acc);
  }
  return out;
}

}  // namespace rec
