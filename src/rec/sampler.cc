#include "rec/sampler.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "la/ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::rec {

DefuzzSampler::DefuzzSampler(SamplerOptions options) : options_(options) {
  SUBREC_CHECK_GT(options_.negatives_per_positive, 0);
}

std::vector<double> DefuzzSampler::SubspaceDistances(
    const SubspaceEmbeddings& s, corpus::PaperId a, corpus::PaperId b) {
  const auto& ea = s[static_cast<size_t>(a)];
  const auto& eb = s[static_cast<size_t>(b)];
  SUBREC_CHECK_EQ(ea.size(), eb.size());
  std::vector<double> out(ea.size());
  for (size_t k = 0; k < ea.size(); ++k)
    out[k] = la::EuclideanDistance(ea[k], eb[k]);
  return out;
}

std::vector<TrainingPair> DefuzzSampler::BuildPairs(
    const RecContext& ctx, const SubspaceEmbeddings* subspace) const {
  SUBREC_TRACE_SPAN("sampler/build_pairs");
  static obs::Counter* const positives_counter =
      obs::MetricsRegistry::Global().GetCounter("sampler.positives");
  static obs::Counter* const negatives_counter =
      obs::MetricsRegistry::Global().GetCounter("sampler.negatives");
  static obs::Counter* const defuzz_rejected =
      obs::MetricsRegistry::Global().GetCounter("sampler.defuzz_rejected");
  const corpus::Corpus& corpus = *ctx.corpus;
  Rng rng(options_.seed);

  // Positives: citation pairs within the training window.
  std::vector<TrainingPair> pairs;
  std::unordered_set<corpus::PaperId> train_set(ctx.train_papers.begin(),
                                                ctx.train_papers.end());
  std::vector<std::pair<corpus::PaperId, corpus::PaperId>> positives;
  for (corpus::PaperId pid : ctx.train_papers) {
    for (corpus::PaperId ref : corpus.paper(pid).references) {
      if (train_set.count(ref) > 0) positives.emplace_back(pid, ref);
    }
  }
  if (options_.max_positives >= 0 &&
      positives.size() > static_cast<size_t>(options_.max_positives)) {
    rng.Shuffle(positives);
    positives.resize(static_cast<size_t>(options_.max_positives));
  }

  const bool defuzz = options_.use_defuzzing && subspace != nullptr;

  // Calibrate per-subspace thresholds from random train pairs.
  std::vector<double> thresholds;
  if (defuzz) {
    const size_t n = ctx.train_papers.size();
    std::vector<std::vector<double>> samples;  // per subspace
    for (int i = 0; i < options_.calibration_pairs; ++i) {
      const corpus::PaperId a = ctx.train_papers[rng.UniformInt(n)];
      const corpus::PaperId b = ctx.train_papers[rng.UniformInt(n)];
      if (a == b) continue;
      const std::vector<double> d = SubspaceDistances(*subspace, a, b);
      samples.resize(d.size());
      for (size_t k = 0; k < d.size(); ++k) samples[k].push_back(d[k]);
    }
    thresholds.resize(samples.size(), 0.0);
    for (size_t k = 0; k < samples.size(); ++k) {
      if (samples[k].empty()) continue;
      std::sort(samples[k].begin(), samples[k].end());
      const size_t idx = static_cast<size_t>(
          options_.threshold_quantile *
          static_cast<double>(samples[k].size() - 1));
      thresholds[k] = samples[k][idx];
    }
  }

  // Per-paper cited sets for negative rejection.
  for (const auto& [p, q] : positives) {
    pairs.push_back({p, q, 1.0});
    std::unordered_set<corpus::PaperId> cited(
        corpus.paper(p).references.begin(), corpus.paper(p).references.end());
    int produced = 0;
    int guard = 0;
    while (produced < options_.negatives_per_positive &&
           guard < options_.negatives_per_positive * 50) {
      ++guard;
      corpus::PaperId neg =
          ctx.train_papers[rng.UniformInt(ctx.train_papers.size())];
      if (neg == p || cited.count(neg) > 0) continue;
      if (defuzz) {
        bool all_far = true;
        const std::vector<double> d = SubspaceDistances(*subspace, p, neg);
        for (size_t k = 0; k < d.size(); ++k) {
          if (d[k] <= thresholds[k]) {
            all_far = false;
            break;
          }
        }
        if (!all_far && guard % options_.max_attempts != 0) {
          defuzz_rejected->Increment();
          continue;
        }
      }
      pairs.push_back({p, neg, 0.0});
      ++produced;
      negatives_counter->Increment();
    }
  }
  positives_counter->Increment(static_cast<int64_t>(positives.size()));
  rng.Shuffle(pairs);
  return pairs;
}

}  // namespace subrec::rec
