#ifndef SUBREC_REC_KGCN_H_
#define SUBREC_REC_KGCN_H_

#include "rec/nprec.h"

namespace subrec::rec {

/// KGCN baseline [19]: the same relation-typed graph convolution as NPRec
/// but direction-blind (no interest/influence asymmetry), without the
/// subspace text channel and with citation-only (non-defuzzed) labels.
NPRecOptions KgcnOptions(const NPRecOptions& base);

/// KGCN-LS baseline [9]: KGCN plus a label-smoothness regularizer pulling
/// cited pairs' embeddings together.
NPRecOptions KgcnLsOptions(const NPRecOptions& base);

}  // namespace subrec::rec

#endif  // SUBREC_REC_KGCN_H_
