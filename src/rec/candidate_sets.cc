#include "rec/candidate_sets.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "datagen/split.h"
#include "eval/ranking.h"
#include "par/parallel.h"

namespace subrec::rec {

CandidateSet BuildCandidateSet(const RecContext& ctx, corpus::AuthorId user,
                               int k, Rng& rng) {
  CandidateSet set;
  set.user = user;
  const std::vector<corpus::PaperId> cited =
      datagen::HeldOutCitations(*ctx.corpus, user, ctx.split_year);
  if (cited.empty()) return set;

  std::unordered_set<corpus::PaperId> chosen(cited.begin(), cited.end());
  std::vector<corpus::PaperId> papers(cited.begin(), cited.end());
  // Fill with random new papers the user did not cite.
  if (static_cast<int>(papers.size()) < k) {
    std::vector<corpus::PaperId> fillers;
    for (corpus::PaperId pid : ctx.test_papers)
      if (chosen.count(pid) == 0) fillers.push_back(pid);
    rng.Shuffle(fillers);
    for (corpus::PaperId pid : fillers) {
      if (static_cast<int>(papers.size()) >= k) break;
      papers.push_back(pid);
    }
  } else {
    papers.resize(static_cast<size_t>(k));
  }
  rng.Shuffle(papers);
  set.papers = papers;
  set.relevant.reserve(papers.size());
  std::unordered_set<corpus::PaperId> cited_set(cited.begin(), cited.end());
  for (corpus::PaperId pid : papers)
    set.relevant.push_back(cited_set.count(pid) > 0);
  return set;
}

RecEvalResult EvaluateRecommender(const RecContext& ctx,
                                  const Recommender& rec,
                                  const std::vector<CandidateSet>& sets,
                                  int k, int max_profile_papers) {
  DCheckValidContext(ctx);
  RecEvalResult result;
  // Score each candidate set in parallel into its own slot; the metric
  // sums are then accumulated serially in set order, so the result is
  // bit-identical for any thread count.
  struct SetMetrics {
    double ndcg = 0.0, mrr = 0.0, map = 0.0;
    bool evaluated = false;
  };
  std::vector<SetMetrics> per_set(sets.size());
  par::ParallelFor(sets.size(), 1, [&](size_t s_begin, size_t s_end) {
    for (size_t s = s_begin; s < s_end; ++s) {
      const CandidateSet& set = sets[s];
      if (set.papers.empty()) continue;
      UserQuery query;
      query.user = set.user;
      query.profile = UserProfile(ctx, set.user, max_profile_papers);
      const std::vector<double> scores = rec.Score(ctx, query, set.papers);
      SUBREC_CHECK_EQ(scores.size(), set.papers.size());
      const std::vector<bool> ranked =
          eval::ReorderByRanking(scores, set.relevant);
      per_set[s].ndcg = eval::NdcgAtK(ranked, k);
      per_set[s].mrr = eval::ReciprocalRank(ranked, k);
      per_set[s].map = eval::AveragePrecision(ranked);
      per_set[s].evaluated = true;
    }
  });
  double ndcg = 0.0, mrr = 0.0, map = 0.0;
  for (const SetMetrics& m : per_set) {
    if (!m.evaluated) continue;
    ndcg += m.ndcg;
    mrr += m.mrr;
    map += m.map;
    ++result.users_evaluated;
  }
  if (result.users_evaluated > 0) {
    const double n = static_cast<double>(result.users_evaluated);
    result.ndcg = ndcg / n;
    result.mrr = mrr / n;
    result.map = map / n;
  }
  return result;
}

}  // namespace subrec::rec
