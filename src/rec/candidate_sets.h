#ifndef SUBREC_REC_CANDIDATE_SETS_H_
#define SUBREC_REC_CANDIDATE_SETS_H_

#include <vector>

#include "common/rng.h"
#include "eval/metrics.h"
#include "rec/recommender.h"

namespace subrec::rec {

/// A user's candidate list: k new papers of which `relevant` marks the ones
/// the user actually cites post-split (Sec. IV-D protocol: "each candidate
/// set contains at least one paper that is actually cited").
struct CandidateSet {
  corpus::AuthorId user = -1;
  std::vector<corpus::PaperId> papers;
  std::vector<bool> relevant;
};

/// Builds the candidate set of one user: all held-out cited new papers plus
/// random new-paper fillers up to size k. Returns an empty set when the
/// user has no held-out citations.
CandidateSet BuildCandidateSet(const RecContext& ctx, corpus::AuthorId user,
                               int k, Rng& rng);

/// Aggregated ranking quality of one recommender over many users.
struct RecEvalResult {
  double ndcg = 0.0;
  double mrr = 0.0;
  double map = 0.0;
  int users_evaluated = 0;
};

/// Scores every candidate set with `rec` (profile limited to
/// `max_profile_papers`, -1 = all) and averages nDCG@k / MRR@k / MAP.
RecEvalResult EvaluateRecommender(const RecContext& ctx,
                                  const Recommender& rec,
                                  const std::vector<CandidateSet>& sets,
                                  int k, int max_profile_papers = -1);

}  // namespace subrec::rec

#endif  // SUBREC_REC_CANDIDATE_SETS_H_
