#ifndef SUBREC_REC_NBCF_H_
#define SUBREC_REC_NBCF_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rec/recommender.h"

namespace subrec::rec {

struct NbcfOptions {
  /// Contribution weight of shared keywords relative to shared references.
  double keyword_weight = 0.5;
};

/// Neighborhood-based collaborative filtering (Sugiyama & Kan [8]): ranks a
/// candidate by its similarity to the papers the user interacted with,
/// where item-item similarity is bibliographic-coupling Jaccard (shared
/// references) plus a keyword-overlap term — both available for brand-new
/// papers, which is how the original handles potential citation papers.
class NbcfRecommender final : public Recommender {
 public:
  explicit NbcfRecommender(NbcfOptions options = {});

  std::string name() const override { return "NBCF"; }
  Status Fit(const RecContext& ctx) override;
  std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const override;

 private:
  double ItemSimilarity(const corpus::Paper& a, const corpus::Paper& b) const;

  NbcfOptions options_;
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_NBCF_H_
