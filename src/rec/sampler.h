#ifndef SUBREC_REC_SAMPLER_H_
#define SUBREC_REC_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rec/recommender.h"

namespace subrec::rec {

/// A labeled training pair of Sec. IV-C: y(p,q)=1 when p cites q, 0 for a
/// sampled (de-fuzzed) negative.
struct TrainingPair {
  corpus::PaperId citing;
  corpus::PaperId cited;
  double label;
};

struct SamplerOptions {
  /// Negatives sampled per positive (Tab. VI sweeps 1 / 10 / 50).
  int negatives_per_positive = 10;
  /// Apply the de-fuzzing filter: a negative (p,q) must have subspace
  /// difference above the calibrated threshold in EVERY subspace, so that
  /// related-but-uncited pairs are not mislabeled as negatives.
  bool use_defuzzing = true;
  /// Quantile of the random-pair per-subspace distance distribution used
  /// as the threshold.
  double threshold_quantile = 0.3;
  int calibration_pairs = 400;
  /// Resampling attempts per negative before accepting a fuzzy one.
  int max_attempts = 8;
  /// Cap on positives (and thereby total pairs) for bounded training cost;
  /// -1 = no cap.
  int max_positives = -1;
  uint64_t seed = 31;
};

/// Per-paper subspace embeddings (PaperId -> K vectors) used to measure the
/// subspace difference for de-fuzzing.
using SubspaceEmbeddings = std::vector<std::vector<std::vector<double>>>;

/// Implements the sample strategy of Sec. IV-C. When `subspace` is null or
/// de-fuzzing is disabled, negatives are plain uniform non-cited samples
/// (the NPRec+CN ablation).
class DefuzzSampler {
 public:
  explicit DefuzzSampler(SamplerOptions options = {});

  /// Builds labeled pairs over ctx.train_papers.
  std::vector<TrainingPair> BuildPairs(const RecContext& ctx,
                                       const SubspaceEmbeddings* subspace) const;

  const SamplerOptions& options() const { return options_; }

 private:
  /// Euclidean distance per subspace between two papers' embeddings.
  static std::vector<double> SubspaceDistances(const SubspaceEmbeddings& s,
                                               corpus::PaperId a,
                                               corpus::PaperId b);

  SamplerOptions options_;
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_SAMPLER_H_
