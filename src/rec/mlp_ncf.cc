#include "rec/mlp_ncf.h"

#include <cmath>

#include "common/rng.h"
#include "la/ops.h"
#include "nn/init.h"
#include "nn/optimizer.h"

namespace subrec::rec {

MlpRecommender::MlpRecommender(MlpNcfOptions options) : options_(options) {}

Status MlpRecommender::Fit(const RecContext& ctx) {
  Rng rng(options_.seed);
  user_embed_.clear();
  item_embed_.clear();

  std::vector<std::pair<corpus::AuthorId, corpus::PaperId>> positives;
  for (const corpus::Author& a : ctx.corpus->authors) {
    const auto items = UserInteractions(ctx, a.id);
    if (items.empty()) continue;
    user_embed_[a.id] = store_.Create(
        "ncf.u" + std::to_string(a.id),
        nn::EmbeddingInit(1, options_.embed_dim, rng));
    for (corpus::PaperId item : items) {
      positives.emplace_back(a.id, item);
      if (item_embed_.find(item) == item_embed_.end()) {
        item_embed_[item] = store_.Create(
            "ncf.i" + std::to_string(item),
            nn::EmbeddingInit(1, options_.embed_dim, rng));
      }
    }
  }
  if (positives.empty())
    return Status::InvalidArgument("MLP: no interactions");
  if (options_.max_positives >= 0 &&
      positives.size() > static_cast<size_t>(options_.max_positives)) {
    rng.Shuffle(positives);
    positives.resize(static_cast<size_t>(options_.max_positives));
  }
  // Every train paper gets an embedding so negatives are well-defined.
  for (corpus::PaperId pid : ctx.train_papers) {
    if (item_embed_.find(pid) == item_embed_.end()) {
      item_embed_[pid] = store_.Create(
          "ncf.i" + std::to_string(pid),
          nn::EmbeddingInit(1, options_.embed_dim, rng));
    }
  }

  hidden_ = std::make_unique<nn::Dense>(&store_, "ncf.h",
                                        2 * options_.embed_dim,
                                        options_.hidden_dim, rng,
                                        nn::Activation::kTanh);
  output_ = std::make_unique<nn::Dense>(&store_, "ncf.out",
                                        options_.hidden_dim, 1, rng,
                                        nn::Activation::kLinear);

  nn::Adam optimizer(options_.learning_rate);
  const std::vector<nn::Parameter*> params = store_.params();
  int in_batch = 0;
  // One tape and binding for the whole run: Reset() rewinds the node arena
  // per sample, so every pass after the first reuses its slabs instead of
  // re-allocating the graph.
  autodiff::Tape tape;
  nn::TapeBinding binding;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(positives);
    for (const auto& [user, item] : positives) {
      for (int k = 0; k <= options_.negatives; ++k) {
        corpus::PaperId target = item;
        double label = 1.0;
        if (k > 0) {
          target = ctx.train_papers[rng.UniformInt(ctx.train_papers.size())];
          label = 0.0;
        }
        tape.Reset();
        binding.Reset(&tape);
        autodiff::VarId u = binding.Use(user_embed_[user]);
        autodiff::VarId i = binding.Use(item_embed_[target]);
        autodiff::VarId x = tape.ConcatCols({u, i});
        autodiff::VarId logit =
            output_->Forward(&tape, &binding, hidden_->Forward(&tape, &binding, x));
        autodiff::VarId loss = tape.SigmoidBce(logit, la::Matrix(1, 1, label));
        tape.Backward(loss);
        binding.PullGradients();
        if (++in_batch >= options_.batch_size) {
          optimizer.Step(params);
          in_batch = 0;
        }
      }
    }
  }
  if (in_batch > 0) optimizer.Step(params);
  return Status::Ok();
}

std::vector<double> MlpRecommender::ItemEmbedding(const RecContext& ctx,
                                                  corpus::PaperId paper) const {
  auto it = item_embed_.find(paper);
  if (it != item_embed_.end()) return it->second->value.RowToVector(0);
  std::vector<double> acc(options_.embed_dim, 0.0);
  int known = 0;
  for (corpus::PaperId ref : ctx.corpus->paper(paper).references) {
    auto rit = item_embed_.find(ref);
    if (rit == item_embed_.end()) continue;
    la::AxpyVec(1.0, rit->second->value.RowToVector(0), acc);
    ++known;
  }
  if (known > 0)
    for (double& x : acc) x /= static_cast<double>(known);
  return acc;
}

double MlpRecommender::Predict(const std::vector<double>& user_vec,
                               const std::vector<double>& item_vec) const {
  std::vector<double> x = user_vec;
  x.insert(x.end(), item_vec.begin(), item_vec.end());
  la::Matrix xm = la::Matrix::RowVector(x);
  la::Matrix h = la::Tanh(la::AddRowBroadcast(
      la::MatMul(xm, hidden_->weight()->value), hidden_->bias()->value));
  la::Matrix out = la::AddRowBroadcast(
      la::MatMul(h, output_->weight()->value), output_->bias()->value);
  return out(0, 0);
}

std::vector<double> MlpRecommender::Score(
    const RecContext& ctx, const UserQuery& query,
    const std::vector<corpus::PaperId>& candidates) const {
  std::vector<double> scores(candidates.size(), 0.0);
  auto uit = user_embed_.find(query.user);
  if (uit == user_embed_.end()) return scores;
  const std::vector<double> u = uit->second->value.RowToVector(0);
  for (size_t c = 0; c < candidates.size(); ++c)
    scores[c] = Predict(u, ItemEmbedding(ctx, candidates[c]));
  return scores;
}

}  // namespace subrec::rec
