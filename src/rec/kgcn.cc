#include "rec/kgcn.h"

namespace subrec::rec {

NPRecOptions KgcnOptions(const NPRecOptions& base) {
  NPRecOptions options = base;
  options.display_name = "KGCN";
  options.use_text = false;
  options.use_influence_prior = false;
  options.symmetric_neighborhoods = true;
  options.sampler.use_defuzzing = false;
  options.label_smoothness = 0.0;
  return options;
}

NPRecOptions KgcnLsOptions(const NPRecOptions& base) {
  NPRecOptions options = KgcnOptions(base);
  options.display_name = "KGCN-LS";
  options.label_smoothness = 0.05;
  return options;
}

}  // namespace subrec::rec
