#ifndef SUBREC_REC_JTIE_H_
#define SUBREC_REC_JTIE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rec/recommender.h"

namespace subrec::rec {

struct JtieOptions {
  int epochs = 20;
  double learning_rate = 0.1;
  int negatives = 4;
  int max_positives = 3000;
  uint64_t seed = 53;
};

/// JTIE baseline [2]: joint text-and-influence embedding. A candidate is
/// scored by a logistic-regression blend of (a) cosine similarity between
/// the user's mean text embedding and the candidate's text embedding and
/// (b) an influence prior available for new papers (train-window citation
/// mass of the candidate's references and its authors). The blend weights
/// are learned on citation positives vs sampled negatives. Requires
/// ctx.paper_text.
class JtieRecommender final : public Recommender {
 public:
  explicit JtieRecommender(JtieOptions options = {});

  std::string name() const override { return "JTIE"; }
  Status Fit(const RecContext& ctx) override;
  std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const override;

 private:
  /// [cosine(user,cand), influence_prior(cand)] feature vector.
  std::vector<double> Features(const RecContext& ctx,
                               const std::vector<double>& user_text,
                               corpus::PaperId candidate) const;
  double InfluencePrior(const RecContext& ctx, corpus::PaperId paper) const;
  std::vector<double> UserText(const RecContext& ctx,
                               const std::vector<corpus::PaperId>& profile) const;

  JtieOptions options_;
  std::vector<double> weights_ = {1.0, 0.1};  // learned blend
  double bias_ = 0.0;
  // Influence-feature standardization fitted on training examples.
  double influence_mean_ = 0.0;
  double influence_stddev_ = 1.0;
  std::vector<int> train_in_degree_;  // by PaperId, citations within train
  std::vector<double> author_citations_;  // by AuthorId, train window
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_JTIE_H_
