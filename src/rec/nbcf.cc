#include "rec/nbcf.h"

#include <algorithm>

namespace subrec::rec {
namespace {

double Jaccard(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::unordered_set<int> sa(a.begin(), a.end());
  size_t inter = 0;
  for (int x : b)
    if (sa.count(x) > 0) ++inter;
  const size_t uni = sa.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double KeywordJaccard(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  size_t inter = 0;
  for (const auto& x : b)
    if (sa.count(x) > 0) ++inter;
  const size_t uni = sa.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

NbcfRecommender::NbcfRecommender(NbcfOptions options) : options_(options) {}

Status NbcfRecommender::Fit(const RecContext& ctx) {
  if (ctx.train_papers.empty())
    return Status::InvalidArgument("NBCF: no training papers");
  return Status::Ok();
}

double NbcfRecommender::ItemSimilarity(const corpus::Paper& a,
                                       const corpus::Paper& b) const {
  return Jaccard(a.references, b.references) +
         options_.keyword_weight * KeywordJaccard(a.keywords, b.keywords);
}

std::vector<double> NbcfRecommender::Score(
    const RecContext& ctx, const UserQuery& query,
    const std::vector<corpus::PaperId>& candidates) const {
  const corpus::Corpus& corpus = *ctx.corpus;
  const auto items = UserInteractions(ctx, query.user);
  std::vector<double> scores(candidates.size(), 0.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    const corpus::Paper& cand = corpus.paper(candidates[c]);
    double total = 0.0;
    for (corpus::PaperId item : items)
      total += ItemSimilarity(corpus.paper(item), cand);
    scores[c] = total;
  }
  return scores;
}

}  // namespace subrec::rec
