#ifndef SUBREC_REC_SVD_H_
#define SUBREC_REC_SVD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rec/recommender.h"

namespace subrec::rec {

struct SvdOptions {
  size_t factors = 16;
  int epochs = 10;
  double learning_rate = 0.03;
  double regularization = 0.01;
  /// Sampled non-interactions per positive during SGD.
  int negatives = 4;
  uint64_t seed = 41;
};

/// FunkSVD-style matrix factorization [46] on the implicit author x paper
/// citation matrix, trained with logistic SGD. New (post-split) candidates
/// have no interactions, so their latent factor is bridged from the mean
/// factor of the train papers they cite — the standard content fallback;
/// its weakness on cold items is exactly why SVD trails in Tab. IV.
class SvdRecommender final : public Recommender {
 public:
  explicit SvdRecommender(SvdOptions options = {});

  std::string name() const override { return "SVD"; }
  Status Fit(const RecContext& ctx) override;
  std::vector<double> Score(
      const RecContext& ctx, const UserQuery& query,
      const std::vector<corpus::PaperId>& candidates) const override;

 private:
  std::vector<double> ItemFactor(const RecContext& ctx,
                                 corpus::PaperId paper) const;

  SvdOptions options_;
  std::unordered_map<corpus::AuthorId, std::vector<double>> user_factors_;
  std::unordered_map<corpus::PaperId, std::vector<double>> item_factors_;
};

}  // namespace subrec::rec

#endif  // SUBREC_REC_SVD_H_
