#include "rec/ripplenet.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace subrec::rec {

RippleNetRecommender::RippleNetRecommender(RippleNetOptions options)
    : options_(options) {}

Status RippleNetRecommender::Fit(const RecContext& ctx) {
  if (ctx.paper_text == nullptr)
    return Status::InvalidArgument("RippleNet: paper_text required");
  return Status::Ok();
}

std::vector<std::vector<corpus::PaperId>> RippleNetRecommender::BuildRippleSets(
    const RecContext& ctx, const UserQuery& query) const {
  const corpus::Corpus& corpus = *ctx.corpus;
  Rng rng(options_.seed + static_cast<uint64_t>(query.user));
  std::vector<std::vector<corpus::PaperId>> hops;
  std::unordered_set<corpus::PaperId> visited;

  std::vector<corpus::PaperId> frontier;
  for (corpus::PaperId pid : query.profile) {
    if (visited.insert(pid).second) frontier.push_back(pid);
    for (corpus::PaperId ref : corpus.paper(pid).references) {
      if (corpus.paper(ref).year <= ctx.split_year &&
          visited.insert(ref).second)
        frontier.push_back(ref);
    }
  }
  hops.push_back(frontier);

  for (int h = 1; h <= options_.hops; ++h) {
    std::vector<corpus::PaperId> next;
    for (corpus::PaperId pid : hops.back()) {
      for (corpus::PaperId ref : corpus.paper(pid).references) {
        if (corpus.paper(ref).year <= ctx.split_year &&
            visited.insert(ref).second)
          next.push_back(ref);
      }
    }
    if (next.size() > static_cast<size_t>(options_.max_ripple_size)) {
      rng.Shuffle(next);
      next.resize(static_cast<size_t>(options_.max_ripple_size));
    }
    hops.push_back(std::move(next));
    if (hops.back().empty()) break;
  }
  return hops;
}

std::vector<double> RippleNetRecommender::Score(
    const RecContext& ctx, const UserQuery& query,
    const std::vector<corpus::PaperId>& candidates) const {
  const auto& text = *ctx.paper_text;
  const std::vector<std::vector<corpus::PaperId>> hops =
      BuildRippleSets(ctx, query);
  std::unordered_set<corpus::PaperId> ripple_all;
  for (const auto& hop : hops) ripple_all.insert(hop.begin(), hop.end());

  std::vector<double> scores(candidates.size(), 0.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    const corpus::Paper& cand = ctx.corpus->paper(candidates[c]);
    const auto& cand_text = text[static_cast<size_t>(candidates[c])];
    double score = 0.0;
    double decay = 1.0;
    for (const auto& hop : hops) {
      if (!hop.empty()) {
        // Attention over hop items by text affinity (softmax-weighted mean
        // of the similarities == smooth max preference response).
        std::vector<double> sims(hop.size());
        for (size_t i = 0; i < hop.size(); ++i) {
          sims[i] = la::CosineSimilarity(
              text[static_cast<size_t>(hop[i])], cand_text);
        }
        std::vector<double> attn = sims;
        for (double& a : attn) a *= 4.0;  // attention temperature
        la::SoftmaxInPlace(attn);
        double hop_score = 0.0;
        for (size_t i = 0; i < hop.size(); ++i) hop_score += attn[i] * sims[i];
        score += decay * hop_score;
      }
      decay *= options_.hop_decay;
    }
    // Structural term: how much of the candidate's bibliography falls
    // inside the user's ripple set.
    if (!cand.references.empty()) {
      int inside = 0;
      for (corpus::PaperId ref : cand.references)
        if (ripple_all.count(ref) > 0) ++inside;
      score += options_.overlap_weight * static_cast<double>(inside) /
               static_cast<double>(cand.references.size());
    }
    scores[c] = score;
  }
  return scores;
}

}  // namespace subrec::rec
