#ifndef SUBREC_EVAL_METRICS_H_
#define SUBREC_EVAL_METRICS_H_

#include <vector>

namespace subrec::eval {

/// Pearson linear correlation; 0 for degenerate (constant) inputs.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation [33] with average ranks on ties — the
/// agreement measure between predicted difference rankings and citation
/// rankings in Tab. I / Fig. 2.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Kendall's tau-a (provided as a robustness cross-check on Spearman).
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

/// Average ranks (1-based; ties share the mean rank).
std::vector<double> RankWithTies(const std::vector<double>& values);

/// nDCG@k of the paper's Sec. IV-D form: the candidate list is already in
/// recommendation order; `relevant[i]` says whether position i is actually
/// cited. Every cited paper has gain `rel_value` (paper: 5); IDCG places
/// all |Ref| cited papers first.
double NdcgAtK(const std::vector<bool>& relevant, int k,
               double rel_value = 5.0);

/// Reciprocal rank of the first relevant item within the top-k (0 when
/// none).
double ReciprocalRank(const std::vector<bool>& relevant, int k);

/// Average precision over the full ranked list (0 when nothing relevant).
double AveragePrecision(const std::vector<bool>& relevant);

}  // namespace subrec::eval

#endif  // SUBREC_EVAL_METRICS_H_
