#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace subrec::eval {

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<double> RankWithTies(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return values[x] < values[y]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(RankWithTies(a), RankWithTies(b));
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  long concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double x = (a[i] - a[j]) * (b[i] - b[j]);
      if (x > 0) ++concordant;
      else if (x < 0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

double NdcgAtK(const std::vector<bool>& relevant, int k, double rel_value) {
  SUBREC_CHECK_GT(k, 0);
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), relevant.size());
  double dcg = 0.0;
  for (size_t i = 0; i < kk; ++i) {
    if (relevant[i])
      dcg += rel_value / std::log2(static_cast<double>(i) + 2.0);
  }
  const size_t total_relevant =
      static_cast<size_t>(std::count(relevant.begin(), relevant.end(), true));
  if (total_relevant == 0) return 0.0;
  double idcg = 0.0;
  for (size_t i = 0; i < total_relevant; ++i)
    idcg += rel_value / std::log2(static_cast<double>(i) + 2.0);
  return dcg / idcg;
}

double ReciprocalRank(const std::vector<bool>& relevant, int k) {
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), relevant.size());
  for (size_t i = 0; i < kk; ++i) {
    if (relevant[i]) return 1.0 / (static_cast<double>(i) + 1.0);
  }
  return 0.0;
}

double AveragePrecision(const std::vector<bool>& relevant) {
  double hits = 0.0, sum = 0.0;
  for (size_t i = 0; i < relevant.size(); ++i) {
    if (relevant[i]) {
      hits += 1.0;
      sum += hits / (static_cast<double>(i) + 1.0);
    }
  }
  return hits > 0.0 ? sum / hits : 0.0;
}

}  // namespace subrec::eval
