#include "eval/ranking.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace subrec::eval {

std::vector<size_t> SortIndicesDescending(const std::vector<double>& scores) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return idx;
}

std::vector<bool> ReorderByRanking(const std::vector<double>& scores,
                                   const std::vector<bool>& flags) {
  SUBREC_CHECK_EQ(scores.size(), flags.size());
  const std::vector<size_t> order = SortIndicesDescending(scores);
  std::vector<bool> out(flags.size());
  for (size_t r = 0; r < order.size(); ++r) out[r] = flags[order[r]];
  return out;
}

}  // namespace subrec::eval
