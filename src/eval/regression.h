#ifndef SUBREC_EVAL_REGRESSION_H_
#define SUBREC_EVAL_REGRESSION_H_

#include <vector>

namespace subrec::eval {

/// Ordinary least squares line y = slope * x + intercept, with the Pearson
/// r of the fit. Used for the regression-line slopes of Fig. 3 (which
/// subspace's difference tracks citations most strongly per discipline).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;
};

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace subrec::eval

#endif  // SUBREC_EVAL_REGRESSION_H_
