#ifndef SUBREC_EVAL_RANKING_H_
#define SUBREC_EVAL_RANKING_H_

#include <cstddef>
#include <vector>

namespace subrec::eval {

/// Indices of `scores` sorted descending (ties by smaller index).
std::vector<size_t> SortIndicesDescending(const std::vector<double>& scores);

/// Reorders a parallel boolean array by a score ranking: out[r] = flags of
/// the item ranked r-th.
std::vector<bool> ReorderByRanking(const std::vector<double>& scores,
                                   const std::vector<bool>& flags);

}  // namespace subrec::eval

#endif  // SUBREC_EVAL_RANKING_H_
