#include "eval/regression.h"

#include <cmath>

#include "common/check.h"
#include "eval/metrics.h"

namespace subrec::eval {

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  SUBREC_CHECK_EQ(x.size(), y.size());
  LinearFit fit;
  const size_t n = x.size();
  if (n < 2) return fit;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r = PearsonCorrelation(x, y);
  return fit;
}

}  // namespace subrec::eval
