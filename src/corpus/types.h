#ifndef SUBREC_CORPUS_TYPES_H_
#define SUBREC_CORPUS_TYPES_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace subrec::corpus {

/// Dense index of a paper within a Corpus.
using PaperId = int;
/// Dense index of an author within a Corpus.
using AuthorId = int;

/// The three commonly recognized content subspaces of Sec. III. The number
/// of subspaces is configurable in the models (paper: "K can be adjusted");
/// the synthetic generator emits these three roles.
enum class SubspaceRole : int { kBackground = 0, kMethod = 1, kResult = 2 };

/// Default subspace count K used throughout the experiments.
inline constexpr int kDefaultNumSubspaces = 3;

/// Stable display names ("background", "method", "result").
inline const char* SubspaceRoleName(int role) {
  switch (role) {
    case 0:
      return "background";
    case 1:
      return "method";
    case 2:
      return "result";
    default:
      return "subspace";
  }
}

/// One abstract sentence with its ground-truth function role (when known;
/// -1 otherwise). Real-world corpora have roles only on PubMedRCT; the
/// synthetic generator always knows them, and experiments decide whether to
/// expose them (labeler training) or hide them (labeler inference).
struct Sentence {
  std::string text;
  int role = -1;
};

/// A paper with the metadata the paper's datasets provide: title, abstract,
/// citations, field label, keywords, authors, venue, year, CCS path.
struct Paper {
  PaperId id = -1;
  std::string title;
  std::vector<Sentence> abstract_sentences;
  std::vector<std::string> keywords;
  /// Node ids along the path root->leaf in the dataset's category tree.
  std::vector<int> ccs_path;
  int discipline = 0;
  int topic = 0;
  int year = 0;
  int venue = -1;
  std::vector<AuthorId> authors;
  /// Cited papers (always older than this paper).
  std::vector<PaperId> references;
  /// Realized citation count at the evaluation horizon.
  int citation_count = 0;
  /// Ground-truth latent innovation per subspace (generator-only signal,
  /// used to validate recovered correlations — never fed to models).
  std::array<double, 3> latent_innovation = {0.0, 0.0, 0.0};
};

/// A researcher: authored papers define interests; citations received
/// define influence.
struct Author {
  AuthorId id = -1;
  std::string name;
  int affiliation = -1;
  /// Latent authority scalar used by the citation process (generator-only).
  double authority = 1.0;
  /// Interest mixture over corpus topics (generator-only).
  std::vector<double> interests;
  std::vector<PaperId> papers;
};

/// A full dataset: papers + authors + dataset-level vocabularies of
/// categorical attributes. Which attributes are present varies by preset
/// (the patent preset has no venues/keywords/CCS — Tab. III).
struct Corpus {
  std::vector<Paper> papers;
  std::vector<Author> authors;
  std::vector<std::string> discipline_names;
  int num_topics = 0;
  int num_venues = 0;
  int num_affiliations = 0;
  /// Number of nodes in the associated category tree (0 when absent).
  int num_ccs_nodes = 0;

  const Paper& paper(PaperId id) const { return papers[static_cast<size_t>(id)]; }
  const Author& author(AuthorId id) const {
    return authors[static_cast<size_t>(id)];
  }

  /// Abstract sentences of `id` as plain strings.
  std::vector<std::string> AbstractOf(PaperId id) const {
    std::vector<std::string> out;
    const Paper& p = paper(id);
    out.reserve(p.abstract_sentences.size());
    for (const auto& s : p.abstract_sentences) out.push_back(s.text);
    return out;
  }
};

}  // namespace subrec::corpus

#endif  // SUBREC_CORPUS_TYPES_H_
