#include "subspace/triplet_miner.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::subspace {

std::vector<Triplet> MineTriplets(
    const corpus::Corpus& corpus,
    const std::vector<corpus::PaperId>& paper_ids,
    const std::vector<rules::PaperContentFeatures>& features,
    const rules::ExpertRuleEngine& engine, const rules::RuleFusion& fusion,
    const TripletMinerOptions& options) {
  SUBREC_TRACE_SPAN("sem/mine_triplets");
  SUBREC_CHECK_GE(paper_ids.size(), 3u);
  Rng rng(options.seed);
  std::vector<Triplet> triplets;
  const size_t n = paper_ids.size();
  for (int c = 0; c < options.num_candidates; ++c) {
    const corpus::PaperId p = paper_ids[rng.UniformInt(n)];
    const corpus::PaperId q = paper_ids[rng.UniformInt(n)];
    const corpus::PaperId q2 = paper_ids[rng.UniformInt(n)];
    if (p == q || p == q2 || q == q2) continue;
    const auto sp = engine.AllScores(corpus.paper(p),
                                     features[static_cast<size_t>(p)],
                                     corpus.paper(q),
                                     features[static_cast<size_t>(q)]);
    const auto sp2 = engine.AllScores(corpus.paper(p),
                                      features[static_cast<size_t>(p)],
                                      corpus.paper(q2),
                                      features[static_cast<size_t>(q2)]);
    const std::vector<double> fq = fusion.FuseAll(sp);
    const std::vector<double> fq2 = fusion.FuseAll(sp2);
    for (int k = 0; k < fusion.num_subspaces(); ++k) {
      const double gap = fq[static_cast<size_t>(k)] - fq2[static_cast<size_t>(k)];
      if (std::fabs(gap) < options.min_gap) continue;
      Triplet t;
      t.anchor = p;
      t.subspace = k;
      t.gap = std::fabs(gap);
      if (gap > 0) {
        t.positive = q;   // (p,q) is the more-different pair
        t.negative = q2;
      } else {
        t.positive = q2;
        t.negative = q;
      }
      triplets.push_back(t);
    }
  }
  static obs::Counter* const mined =
      obs::MetricsRegistry::Global().GetCounter("sem.triplets_mined");
  mined->Increment(static_cast<int64_t>(triplets.size()));
  return triplets;
}

Status CalibrateFusion(
    const corpus::Corpus& corpus,
    const std::vector<corpus::PaperId>& paper_ids,
    const std::vector<rules::PaperContentFeatures>& features,
    const rules::ExpertRuleEngine& engine, int num_pairs, uint64_t seed,
    rules::RuleFusion* fusion) {
  if (paper_ids.size() < 2)
    return Status::InvalidArgument("CalibrateFusion: need >= 2 papers");
  Rng rng(seed);
  std::vector<std::vector<std::vector<double>>> samples;
  samples.reserve(static_cast<size_t>(num_pairs));
  const size_t n = paper_ids.size();
  for (int i = 0; i < num_pairs; ++i) {
    const corpus::PaperId p = paper_ids[rng.UniformInt(n)];
    const corpus::PaperId q = paper_ids[rng.UniformInt(n)];
    if (p == q) continue;
    samples.push_back(engine.AllScores(corpus.paper(p),
                                       features[static_cast<size_t>(p)],
                                       corpus.paper(q),
                                       features[static_cast<size_t>(q)]));
  }
  return fusion->FitNormalization(samples);
}

}  // namespace subrec::subspace
