#ifndef SUBREC_SUBSPACE_TWIN_NETWORK_H_
#define SUBREC_SUBSPACE_TWIN_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/parameter.h"
#include "subspace/subspace_encoder.h"

namespace subrec::subspace {

/// The twin (Siamese) network of Sec. III-B: both branches share one
/// SubspaceEncoderNet whose parameters live in this object's store. The
/// model distance is the paper's indicator D^k(p,q) = -c_p^k . c_q^k.
class TwinNetwork {
 public:
  TwinNetwork(const SubspaceEncoderOptions& options, uint64_t seed);

  /// Embeds one paper's content on a caller-managed tape (training path).
  std::vector<autodiff::VarId> EmbedOnTape(
      autodiff::Tape* tape, nn::TapeBinding* binding,
      const rules::PaperContentFeatures& features) const;

  /// D^k as a 1x1 node: the negative inner product of two subspace
  /// embedding nodes.
  autodiff::VarId DistanceOnTape(autodiff::Tape* tape, autodiff::VarId cp,
                                 autodiff::VarId cq) const;

  /// Inference: K embedding vectors (each 2*hidden wide) for one paper.
  std::vector<std::vector<double>> Embed(
      const rules::PaperContentFeatures& features) const;

  /// Inference distance D^k between two papers in subspace k.
  double Distance(const rules::PaperContentFeatures& p,
                  const rules::PaperContentFeatures& q, int k) const;

  nn::ParameterStore* store() { return &store_; }
  const SubspaceEncoderOptions& options() const { return net_.options(); }
  size_t embedding_dim() const { return net_.output_dim(); }

 private:
  nn::ParameterStore store_;
  SubspaceEncoderNet net_;
};

}  // namespace subrec::subspace

#endif  // SUBREC_SUBSPACE_TWIN_NETWORK_H_
