#ifndef SUBREC_SUBSPACE_TRAINER_H_
#define SUBREC_SUBSPACE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/training_observer.h"
#include "rules/expert_rules.h"
#include "subspace/triplet_miner.h"
#include "subspace/twin_network.h"

namespace subrec::subspace {

/// Optimization hyperparameters of the twin-network fine-tuning loop
/// (Sec. III-D, Eq. 14).
struct SemTrainerOptions {
  int epochs = 3;
  /// Triplets per optimizer step (gradient accumulation).
  int batch_size = 8;
  double learning_rate = 3e-3;
  /// Hinge margin epsilon of Eq. 14.
  double margin = 0.2;
  /// L2 regularization lambda of Eq. 14.
  double lambda = 1e-5;
  double clip_norm = 5.0;
  uint64_t seed = 23;
  /// Optional per-epoch progress callback (model = "sem"). Invoked from the
  /// training thread after each epoch; empty means no reporting.
  obs::TrainingObserver observer;
};

/// Progress of one training run.
struct SemTrainStats {
  std::vector<double> epoch_loss;
  /// Fraction of triplets whose model distances already satisfy the rule
  /// ordering after training.
  double final_order_accuracy = 0.0;
};

/// Fine-tunes `net` on mined triplets with the hinge contrast loss
/// max(0, D(p,q') - D(p,q) + eps) + lambda*||theta||^2, Adam, and gradient
/// clipping. `features` is indexed by PaperId.
Result<SemTrainStats> TrainTwinNetwork(
    const std::vector<rules::PaperContentFeatures>& features,
    const std::vector<Triplet>& triplets, const SemTrainerOptions& options,
    TwinNetwork* net);

}  // namespace subrec::subspace

#endif  // SUBREC_SUBSPACE_TRAINER_H_
