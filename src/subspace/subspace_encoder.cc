#include "subspace/subspace_encoder.h"

#include "la/ops.h"
#include "nn/init.h"

namespace subrec::subspace {

using autodiff::Tape;
using autodiff::VarId;

SubspaceEncoderNet::SubspaceEncoderNet(nn::ParameterStore* store,
                                       const SubspaceEncoderOptions& options,
                                       Rng& rng)
    : options_(options) {
  SUBREC_CHECK_GT(options_.num_subspaces, 0);
  SUBREC_CHECK_GT(options_.mlp_layers, 0);
  if (options_.residual) {
    SUBREC_CHECK_EQ(options_.hidden_dim, options_.input_dim)
        << "residual subspace encoder needs hidden_dim == input_dim";
  }
  const int k = options_.num_subspaces;
  mlp_.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    std::vector<nn::Dense> stack;
    for (int l = 0; l < options_.mlp_layers; ++l) {
      const size_t in = l == 0 ? options_.input_dim : options_.hidden_dim;
      stack.emplace_back(store,
                         "sem.mlp" + std::to_string(s) + "." + std::to_string(l),
                         in, options_.hidden_dim, rng, nn::Activation::kTanh);
    }
    mlp_.push_back(std::move(stack));
  }
  attn_m_ = store->Create(
      "sem.attn.m",
      nn::GlorotUniform(options_.hidden_dim, options_.attention_dim, rng));
  attn_b_ = store->Create("sem.attn.b", la::Matrix(1, options_.attention_dim));
  for (int s = 0; s < k; ++s) {
    attn_probe_.push_back(store->Create(
        "sem.attn.probe" + std::to_string(s),
        nn::GlorotUniform(options_.attention_dim, 1, rng)));
  }
}

std::vector<VarId> SubspaceEncoderNet::Forward(
    Tape* tape, nn::TapeBinding* binding,
    const std::vector<std::vector<double>>& sentence_vectors,
    const std::vector<int>& roles) const {
  SUBREC_CHECK_EQ(sentence_vectors.size(), roles.size());
  const int k = options_.num_subspaces;

  // Eq. 5-6: gather the sentence rows of each subspace (selection is
  // equivalent to the paper's indicator masking for the pooled result).
  std::vector<VarId> pooled;  // c_hat_k, each 1 x hidden.
  pooled.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    std::vector<std::vector<double>> rows;
    for (size_t i = 0; i < roles.size(); ++i)
      if (roles[i] == s) rows.push_back(sentence_vectors[i]);
    if (rows.empty())
      rows.emplace_back(options_.input_dim, 0.0);  // learned default response
    VarId x = tape->Constant(la::StackRows(rows));

    // Eqs. 7-8: tanh MLP.
    VarId h = x;
    for (const nn::Dense& layer : mlp_[static_cast<size_t>(s)])
      h = layer.Forward(tape, binding, h);

    // Eq. 9: global attention pooling  c_hat = softmax(m^k tanh(hM+b)) . h
    VarId proj = tape->Tanh(tape->AddRowBroadcast(
        tape->MatMul(h, binding->Use(attn_m_)), binding->Use(attn_b_)));
    VarId scores =
        tape->MatMul(proj, binding->Use(attn_probe_[static_cast<size_t>(s)]));
    // scores is n x 1; softmax over the n sentences as a row.
    VarId weights = tape->RowSoftmax(tape->Transpose(scores));  // 1 x n
    VarId c_hat = tape->MatMul(weights, h);        // 1 x hidden
    if (options_.residual) {
      VarId base = tape->Constant(la::ColMean(tape->value(x)));
      c_hat = tape->Add(base, tape->Scale(c_hat, options_.residual_scale));
    }
    pooled.push_back(c_hat);
  }

  // Eqs. 10-11: cross-subspace attention (excluding self).
  VarId all = tape->ConcatRows(pooled);  // K x hidden
  std::vector<VarId> out;
  out.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    VarId sims = tape->MatMulTransB(pooled[static_cast<size_t>(s)], all);
    // Mask out j == s with a large negative constant before the softmax.
    la::Matrix mask(1, static_cast<size_t>(k));
    mask(0, static_cast<size_t>(s)) = -1e9;
    VarId attn = tape->RowSoftmax(tape->Add(sims, tape->Constant(mask)));
    VarId c_tilde = tape->MatMul(attn, all);  // 1 x hidden
    // Eq. 12: c_k = [c_hat_k ; c_tilde_k].
    out.push_back(
        tape->ConcatCols({pooled[static_cast<size_t>(s)], c_tilde}));
  }
  return out;
}

}  // namespace subrec::subspace
