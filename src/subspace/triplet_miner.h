#ifndef SUBREC_SUBSPACE_TRIPLET_MINER_H_
#define SUBREC_SUBSPACE_TRIPLET_MINER_H_

#include <cstdint>
#include <vector>

#include "corpus/types.h"
#include "rules/expert_rules.h"
#include "rules/rule_fusion.h"

namespace subrec::subspace {

/// One training triplet of Sec. III-D: under the fused expert rules, the
/// pair (anchor, positive) is MORE different than (anchor, negative) in
/// `subspace`, by `gap` (in fused z-score units). The twin network learns
/// to order its distances the same way.
struct Triplet {
  corpus::PaperId anchor;
  corpus::PaperId positive;
  corpus::PaperId negative;
  int subspace;
  double gap;
};

struct TripletMinerOptions {
  /// How many (p,q,q') candidate draws to make; each draw yields at most
  /// one triplet per subspace.
  int num_candidates = 2000;
  /// Minimum fused-score gap for a candidate to become a triplet (filters
  /// ties the rules cannot order confidently).
  double min_gap = 0.25;
  uint64_t seed = 11;
};

/// Samples training triplets from `paper_ids` using an already-calibrated
/// RuleFusion. `features` is indexed by PaperId over the whole corpus.
std::vector<Triplet> MineTriplets(
    const corpus::Corpus& corpus, const std::vector<corpus::PaperId>& paper_ids,
    const std::vector<rules::PaperContentFeatures>& features,
    const rules::ExpertRuleEngine& engine, const rules::RuleFusion& fusion,
    const TripletMinerOptions& options);

/// Convenience: calibrates `fusion`'s normalization on `num_pairs` random
/// pairs from `paper_ids` (Sec. III-B's bias elimination) before mining.
Status CalibrateFusion(const corpus::Corpus& corpus,
                       const std::vector<corpus::PaperId>& paper_ids,
                       const std::vector<rules::PaperContentFeatures>& features,
                       const rules::ExpertRuleEngine& engine, int num_pairs,
                       uint64_t seed, rules::RuleFusion* fusion);

}  // namespace subrec::subspace

#endif  // SUBREC_SUBSPACE_TRIPLET_MINER_H_
