#ifndef SUBREC_SUBSPACE_SUBSPACE_ENCODER_H_
#define SUBREC_SUBSPACE_SUBSPACE_ENCODER_H_

#include <cstddef>
#include <vector>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/dense.h"
#include "nn/parameter.h"
#include "rules/expert_rules.h"

namespace subrec::subspace {

/// Architecture hyperparameters of the subspace embedding network
/// (Eqs. 5-12).
struct SubspaceEncoderOptions {
  /// Sentence-encoder dimension d (input).
  size_t input_dim = 96;
  int num_subspaces = corpus::kDefaultNumSubspaces;
  /// Width of the per-subspace MLP and of the pooled embedding.
  size_t hidden_dim = 32;
  /// Number of tanh MLP layers (Eqs. 7-8).
  int mlp_layers = 2;
  /// Width of the global-attention projection (Eq. 9).
  size_t attention_dim = 16;
  /// Residual mode: c_hat_k = mean(masked sentences) + residual_scale *
  /// attention-pooled MLP output. This mirrors the paper's *fine-tuning*
  /// of a pretrained encoder — the trained embedding stays on the frozen
  /// encoder's manifold (so density analyses like LOF keep working) while
  /// the network nudges it toward the expert-rule ordering. Requires
  /// hidden_dim == input_dim.
  bool residual = true;
  double residual_scale = 0.15;
};

/// The subspace fusion network of Fig. 1 (top): per subspace k, masked
/// sentence vectors flow through a tanh MLP (Eqs. 5-8), are pooled with a
/// global attention head (Eq. 9) into c_hat_k, then cross-subspace
/// attention (Eqs. 10-11) yields c_tilde_k, and the subspace embedding is
/// the concatenation c_k = [c_hat_k ; c_tilde_k] (Eq. 12), of width
/// 2*hidden_dim.
class SubspaceEncoderNet {
 public:
  SubspaceEncoderNet(nn::ParameterStore* store,
                     const SubspaceEncoderOptions& options, Rng& rng);

  /// Builds the K subspace embeddings of one paper on `tape`. Each returned
  /// node is 1 x (2*hidden_dim). Sentences with out-of-range roles are
  /// ignored; an empty subspace contributes a zero input row (its embedding
  /// degenerates to the learned bias response, a learned "no content here"
  /// code).
  std::vector<autodiff::VarId> Forward(
      autodiff::Tape* tape, nn::TapeBinding* binding,
      const std::vector<std::vector<double>>& sentence_vectors,
      const std::vector<int>& roles) const;

  const SubspaceEncoderOptions& options() const { return options_; }
  /// Width of each produced subspace embedding (2*hidden_dim).
  size_t output_dim() const { return 2 * options_.hidden_dim; }

 private:
  SubspaceEncoderOptions options_;
  // Per-subspace MLP stacks [k][layer].
  std::vector<std::vector<nn::Dense>> mlp_;
  // Global-attention parameters: shared projection M (Eq. 9)...
  nn::Parameter* attn_m_;
  nn::Parameter* attn_b_;
  // ...and per-subspace probe vectors m^k.
  std::vector<nn::Parameter*> attn_probe_;
};

}  // namespace subrec::subspace

#endif  // SUBREC_SUBSPACE_SUBSPACE_ENCODER_H_
