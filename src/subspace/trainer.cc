#include "subspace/trainer.h"

#include "common/rng.h"
#include "la/check_finite.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace subrec::subspace {

Result<SemTrainStats> TrainTwinNetwork(
    const std::vector<rules::PaperContentFeatures>& features,
    const std::vector<Triplet>& triplets, const SemTrainerOptions& options,
    TwinNetwork* net) {
  if (triplets.empty())
    return Status::InvalidArgument("TrainTwinNetwork: no triplets");
  for (const Triplet& t : triplets) {
    const auto valid = [&](corpus::PaperId id) {
      return id >= 0 && static_cast<size_t>(id) < features.size();
    };
    if (!valid(t.anchor) || !valid(t.positive) || !valid(t.negative))
      return Status::InvalidArgument("TrainTwinNetwork: triplet id out of range");
    if (t.subspace < 0 || t.subspace >= net->options().num_subspaces)
      return Status::InvalidArgument("TrainTwinNetwork: bad subspace");
  }

  SUBREC_TRACE_SPAN("sem/train");
  static obs::Counter* const steps =
      obs::MetricsRegistry::Global().GetCounter("sem.trainer_steps");
  static obs::Histogram* const loss_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "sem.triplet_loss", {0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0});
  const int64_t train_start_ns = obs::NowNs();
  nn::Adam optimizer(options.learning_rate);
  const std::vector<nn::Parameter*> params = net->store()->params();
  Rng rng(options.seed);
  std::vector<size_t> order(triplets.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  SemTrainStats stats;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    SUBREC_TRACE_SPAN("sem/epoch");
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int in_batch = 0;
    for (size_t idx : order) {
      const Triplet& t = triplets[idx];
      autodiff::Tape tape;
      nn::TapeBinding binding(&tape);
      const auto cp = net->EmbedOnTape(
          &tape, &binding, features[static_cast<size_t>(t.anchor)]);
      const auto cq = net->EmbedOnTape(
          &tape, &binding, features[static_cast<size_t>(t.positive)]);
      const auto cq2 = net->EmbedOnTape(
          &tape, &binding, features[static_cast<size_t>(t.negative)]);
      const size_t k = static_cast<size_t>(t.subspace);
      autodiff::VarId d_pos = net->DistanceOnTape(&tape, cp[k], cq[k]);
      autodiff::VarId d_neg = net->DistanceOnTape(&tape, cp[k], cq2[k]);
      autodiff::VarId loss =
          nn::TripletHingeLoss(&tape, d_pos, d_neg, options.margin);
      loss = nn::AddL2Regularizer(&tape, &binding, loss, params,
                                  options.lambda);
      tape.Backward(loss);
      binding.PullGradients();
      SUBREC_CHECK_FINITE(tape.value(loss)(0, 0), "SEM trainer triplet loss");
      epoch_loss += tape.value(loss)(0, 0);
      loss_hist->Observe(tape.value(loss)(0, 0));
      if (++in_batch >= options.batch_size) {
        nn::ClipGradNorm(params, options.clip_norm);
        optimizer.Step(params);
        steps->Increment();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      nn::ClipGradNorm(params, options.clip_norm);
      optimizer.Step(params);
      steps->Increment();
    }
    const double mean_loss =
        epoch_loss / static_cast<double>(triplets.size());
    stats.epoch_loss.push_back(mean_loss);
    if (options.observer) {
      obs::TrainingEvent ev;
      ev.model = "sem";
      ev.epoch = epoch + 1;
      ev.total_epochs = options.epochs;
      ev.loss = mean_loss;
      ev.samples = static_cast<int64_t>(triplets.size());
      ev.elapsed_seconds =
          static_cast<double>(obs::NowNs() - train_start_ns) / 1e9;
      options.observer(ev);
    }
  }

  // Order accuracy: does D(anchor, positive) exceed D(anchor, negative)?
  int correct = 0;
  for (const Triplet& t : triplets) {
    const double dp = net->Distance(features[static_cast<size_t>(t.anchor)],
                                    features[static_cast<size_t>(t.positive)],
                                    t.subspace);
    const double dn = net->Distance(features[static_cast<size_t>(t.anchor)],
                                    features[static_cast<size_t>(t.negative)],
                                    t.subspace);
    if (dp > dn) ++correct;
  }
  stats.final_order_accuracy =
      static_cast<double>(correct) / static_cast<double>(triplets.size());
  return stats;
}

}  // namespace subrec::subspace
