#include "subspace/trainer.h"

#include <algorithm>
#include <memory>

#include "autodiff/tape_pool.h"
#include "common/rng.h"
#include "la/check_finite.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"

namespace subrec::subspace {
namespace {

/// One triplet's forward/backward state, built in parallel within a batch.
/// Parameters only change at the optimizer step (a batch boundary), so the
/// per-item tapes read frozen values; gradients are pulled serially in item
/// order afterwards, reproducing the sequential schedule bit for bit.
struct TripletWork {
  std::unique_ptr<autodiff::Tape> tape;
  std::unique_ptr<nn::TapeBinding> binding;
  autodiff::VarId loss = 0;
};

}  // namespace

Result<SemTrainStats> TrainTwinNetwork(
    const std::vector<rules::PaperContentFeatures>& features,
    const std::vector<Triplet>& triplets, const SemTrainerOptions& options,
    TwinNetwork* net) {
  if (triplets.empty())
    return Status::InvalidArgument("TrainTwinNetwork: no triplets");
  for (const Triplet& t : triplets) {
    const auto valid = [&](corpus::PaperId id) {
      return id >= 0 && static_cast<size_t>(id) < features.size();
    };
    if (!valid(t.anchor) || !valid(t.positive) || !valid(t.negative))
      return Status::InvalidArgument("TrainTwinNetwork: triplet id out of range");
    if (t.subspace < 0 || t.subspace >= net->options().num_subspaces)
      return Status::InvalidArgument("TrainTwinNetwork: bad subspace");
  }

  SUBREC_TRACE_SPAN("sem/train");
  static obs::Counter* const steps =
      obs::MetricsRegistry::Global().GetCounter("sem.trainer_steps");
  static obs::Histogram* const loss_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "sem.triplet_loss", {0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0});
  const int64_t train_start_ns = obs::NowNs();
  nn::Adam optimizer(options.learning_rate);
  const std::vector<nn::Parameter*> params = net->store()->params();
  Rng rng(options.seed);
  std::vector<size_t> order(triplets.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  SemTrainStats stats;
  // Tapes are pooled across items so each worker reuses a warmed-up node
  // arena; work slots keep their TapeBinding so its bound-leaf vector is
  // recycled too. Which arena an item lands on affects only memory reuse,
  // never the floating-point schedule.
  autodiff::TapePool tape_pool;
  std::vector<TripletWork> work;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    SUBREC_TRACE_SPAN("sem/epoch");
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    const size_t batch =
        options.batch_size > 0 ? static_cast<size_t>(options.batch_size) : 1;
    for (size_t b0 = 0; b0 < order.size(); b0 += batch) {
      const size_t b1 = std::min(order.size(), b0 + batch);
      // Forward/backward for each batch item on its own tape. Parameter
      // values are frozen until the step below, so the items are
      // independent and the chunking cannot change any result.
      work.resize(b1 - b0);
      par::ParallelFor(b1 - b0, 1, [&](size_t w_begin, size_t w_end) {
        for (size_t w = w_begin; w < w_end; ++w) {
          const Triplet& t = triplets[order[b0 + w]];
          std::unique_ptr<autodiff::Tape> tape = tape_pool.Acquire();
          if (work[w].binding == nullptr)
            work[w].binding = std::make_unique<nn::TapeBinding>();
          nn::TapeBinding* binding = work[w].binding.get();
          binding->Reset(tape.get());
          const auto cp = net->EmbedOnTape(
              tape.get(), binding,
              features[static_cast<size_t>(t.anchor)]);
          const auto cq = net->EmbedOnTape(
              tape.get(), binding,
              features[static_cast<size_t>(t.positive)]);
          const auto cq2 = net->EmbedOnTape(
              tape.get(), binding,
              features[static_cast<size_t>(t.negative)]);
          const size_t k = static_cast<size_t>(t.subspace);
          autodiff::VarId d_pos = net->DistanceOnTape(tape.get(), cp[k], cq[k]);
          autodiff::VarId d_neg =
              net->DistanceOnTape(tape.get(), cp[k], cq2[k]);
          autodiff::VarId loss =
              nn::TripletHingeLoss(tape.get(), d_pos, d_neg, options.margin);
          loss = nn::AddL2Regularizer(tape.get(), binding, loss, params,
                                      options.lambda);
          tape->Backward(loss);
          work[w].tape = std::move(tape);
          work[w].loss = loss;
        }
      });
      // Gradient accumulation stays serial and in item order — the same
      // floating-point addition sequence the sequential trainer performs.
      for (TripletWork& tw : work) {
        tw.binding->PullGradients();
        const double lv = tw.tape->value(tw.loss)(0, 0);
        SUBREC_CHECK_FINITE(lv, "SEM trainer triplet loss");
        epoch_loss += lv;
        loss_hist->Observe(lv);
        tape_pool.Release(std::move(tw.tape));
      }
      nn::ClipGradNorm(params, options.clip_norm);
      optimizer.Step(params);
      steps->Increment();
    }
    const double mean_loss =
        epoch_loss / static_cast<double>(triplets.size());
    stats.epoch_loss.push_back(mean_loss);
    if (options.observer) {
      obs::TrainingEvent ev;
      ev.model = "sem";
      ev.epoch = epoch + 1;
      ev.total_epochs = options.epochs;
      ev.loss = mean_loss;
      ev.samples = static_cast<int64_t>(triplets.size());
      ev.elapsed_seconds =
          static_cast<double>(obs::NowNs() - train_start_ns) / 1e9;
      options.observer(ev);
    }
  }

  // Order accuracy: does D(anchor, positive) exceed D(anchor, negative)?
  int correct = 0;
  for (const Triplet& t : triplets) {
    const double dp = net->Distance(features[static_cast<size_t>(t.anchor)],
                                    features[static_cast<size_t>(t.positive)],
                                    t.subspace);
    const double dn = net->Distance(features[static_cast<size_t>(t.anchor)],
                                    features[static_cast<size_t>(t.negative)],
                                    t.subspace);
    if (dp > dn) ++correct;
  }
  stats.final_order_accuracy =
      static_cast<double>(correct) / static_cast<double>(triplets.size());
  return stats;
}

}  // namespace subrec::subspace
