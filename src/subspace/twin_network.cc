#include "subspace/twin_network.h"

namespace subrec::subspace {

namespace {

SubspaceEncoderNet MakeNet(nn::ParameterStore* store,
                           const SubspaceEncoderOptions& options,
                           uint64_t seed) {
  Rng rng(seed);
  return SubspaceEncoderNet(store, options, rng);
}

}  // namespace

TwinNetwork::TwinNetwork(const SubspaceEncoderOptions& options, uint64_t seed)
    : net_(MakeNet(&store_, options, seed)) {}

std::vector<autodiff::VarId> TwinNetwork::EmbedOnTape(
    autodiff::Tape* tape, nn::TapeBinding* binding,
    const rules::PaperContentFeatures& features) const {
  return net_.Forward(tape, binding, features.sentence_vectors,
                      features.roles);
}

autodiff::VarId TwinNetwork::DistanceOnTape(autodiff::Tape* tape,
                                            autodiff::VarId cp,
                                            autodiff::VarId cq) const {
  return tape->Scale(tape->MatMulTransB(cp, cq), -1.0);
}

std::vector<std::vector<double>> TwinNetwork::Embed(
    const rules::PaperContentFeatures& features) const {
  autodiff::Tape tape;
  nn::TapeBinding binding(&tape);
  const std::vector<autodiff::VarId> nodes =
      EmbedOnTape(&tape, &binding, features);
  std::vector<std::vector<double>> out;
  out.reserve(nodes.size());
  for (autodiff::VarId id : nodes) out.push_back(tape.value(id).RowToVector(0));
  return out;
}

double TwinNetwork::Distance(const rules::PaperContentFeatures& p,
                             const rules::PaperContentFeatures& q,
                             int k) const {
  const auto ep = Embed(p);
  const auto eq = Embed(q);
  SUBREC_CHECK(k >= 0 && static_cast<size_t>(k) < ep.size());
  double dot = 0.0;
  for (size_t i = 0; i < ep[static_cast<size_t>(k)].size(); ++i)
    dot += ep[static_cast<size_t>(k)][i] * eq[static_cast<size_t>(k)][i];
  return -dot;
}

}  // namespace subrec::subspace
