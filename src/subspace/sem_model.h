#ifndef SUBREC_SUBSPACE_SEM_MODEL_H_
#define SUBREC_SUBSPACE_SEM_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "la/matrix.h"
#include "rules/rule_fusion.h"
#include "subspace/trainer.h"
#include "subspace/triplet_miner.h"
#include "subspace/twin_network.h"

namespace subrec::subspace {

/// End-to-end configuration of the Subspace Embedding Method.
struct SemModelOptions {
  SubspaceEncoderOptions encoder;
  TripletMinerOptions miner;
  SemTrainerOptions trainer;
  /// Random pairs used to standardize rule scores before mining.
  int calibration_pairs = 500;
  /// Fusion weights over the expert rules [f_c, f_r, f_w, f_t], applied to
  /// every subspace. The abstract rule f_t is the only subspace-specific
  /// signal, and Sec. III-A notes the subspace differences "are learned
  /// mostly depending on this part", so it dominates by default.
  std::vector<double> rule_weights = {0.15, 0.15, 0.15, 0.55};
  uint64_t seed = 42;
};

/// Facade over the full SEM pipeline of Fig. 1: rule calibration ->
/// triplet mining -> twin-network fine-tuning -> subspace embeddings.
/// SEM-B / SEM-M / SEM-R of the paper are the k = 0/1/2 outputs.
class SemModel {
 public:
  explicit SemModel(const SemModelOptions& options);

  /// Calibrates the fusion, mines triplets from `train_ids` and trains the
  /// twin network. `features` must be indexed by PaperId across the corpus.
  Result<SemTrainStats> Fit(
      const corpus::Corpus& corpus,
      const std::vector<corpus::PaperId>& train_ids,
      const std::vector<rules::PaperContentFeatures>& features,
      const rules::ExpertRuleEngine& engine);

  /// Subspace embeddings (K vectors) of one paper.
  std::vector<std::vector<double>> Embed(
      const rules::PaperContentFeatures& features) const;

  /// Rows = papers (in `ids` order), columns = embedding of subspace `k`.
  la::Matrix SubspaceEmbeddingMatrix(
      const std::vector<rules::PaperContentFeatures>& features,
      const std::vector<corpus::PaperId>& ids, int k) const;

  const rules::RuleFusion& fusion() const { return fusion_; }
  rules::RuleFusion* mutable_fusion() { return &fusion_; }
  TwinNetwork* network() { return &network_; }
  const TwinNetwork& network() const { return network_; }
  int num_subspaces() const { return options_.encoder.num_subspaces; }
  bool fitted() const { return fitted_; }

 private:
  SemModelOptions options_;
  rules::RuleFusion fusion_;
  TwinNetwork network_;
  bool fitted_ = false;
};

}  // namespace subrec::subspace

#endif  // SUBREC_SUBSPACE_SEM_MODEL_H_
