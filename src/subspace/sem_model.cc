#include "subspace/sem_model.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace subrec::subspace {

SemModel::SemModel(const SemModelOptions& options)
    : options_(options),
      fusion_(options.encoder.num_subspaces),
      network_(options.encoder, options.seed) {}

Result<SemTrainStats> SemModel::Fit(
    const corpus::Corpus& corpus,
    const std::vector<corpus::PaperId>& train_ids,
    const std::vector<rules::PaperContentFeatures>& features,
    const rules::ExpertRuleEngine& engine) {
  SUBREC_TRACE_SPAN("sem/fit");
  for (int k = 0; k < options_.encoder.num_subspaces; ++k)
    SUBREC_RETURN_NOT_OK(fusion_.SetWeights(k, options_.rule_weights));
  {
    SUBREC_TRACE_SPAN("sem/calibrate_fusion");
    SUBREC_RETURN_NOT_OK(CalibrateFusion(corpus, train_ids, features, engine,
                                         options_.calibration_pairs,
                                         options_.seed + 1, &fusion_));
  }
  const std::vector<Triplet> triplets = MineTriplets(
      corpus, train_ids, features, engine, fusion_, options_.miner);
  SUBREC_LOG(Info) << "SemModel: mined " << triplets.size() << " triplets";
  auto stats = TrainTwinNetwork(features, triplets, options_.trainer,
                                &network_);
  if (stats.ok()) fitted_ = true;
  return stats;
}

std::vector<std::vector<double>> SemModel::Embed(
    const rules::PaperContentFeatures& features) const {
  return network_.Embed(features);
}

la::Matrix SemModel::SubspaceEmbeddingMatrix(
    const std::vector<rules::PaperContentFeatures>& features,
    const std::vector<corpus::PaperId>& ids, int k) const {
  SUBREC_CHECK(k >= 0 && k < num_subspaces());
  la::Matrix m(ids.size(), network_.embedding_dim());
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto emb = Embed(features[static_cast<size_t>(ids[i])]);
    m.SetRow(i, emb[static_cast<size_t>(k)]);
  }
  return m;
}

}  // namespace subrec::subspace
