#include "common/string_util.h"

#include <cstdio>

namespace subrec {

std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

uint64_t Fnv1aHash(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace subrec
