#ifndef SUBREC_COMMON_MUTEX_H_
#define SUBREC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace subrec::common {

/// Annotated wrapper over std::mutex — the ONLY lock type allowed in src/
/// (the no-raw-concurrency-primitive lint rule bans the std primitives
/// everywhere outside this header). The annotation makes every guarded
/// field access checkable by Clang's thread-safety analysis, which the
/// clang-dev preset escalates to a compile error.
///
/// Same non-recursive, non-shared semantics as std::mutex; prefer the RAII
/// MutexLock over manual Lock/Unlock pairs.
class SUBREC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SUBREC_ACQUIRE() { mu_.lock(); }
  void Unlock() SUBREC_RELEASE() { mu_.unlock(); }
  bool TryLock() SUBREC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Annotation-only claim that the calling thread holds this mutex, for
  /// helper functions reached exclusively from under the lock where the
  /// REQUIRES contract cannot be spelled (e.g. type-erased callbacks).
  void AssertHeld() const SUBREC_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (the std::lock_guard replacement):
///
///   common::MutexLock lock(&mu_);
///   ... guarded fields are accessible here ...
class SUBREC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SUBREC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SUBREC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait REQUIRES the mutex held and
/// atomically releases/reacquires it, so the analysis sees the lock held
/// across the call. Deliberately no predicate overload: the analysis cannot
/// attach a REQUIRES contract to a lambda, so waiters spell the guarded
/// condition as an explicit loop —
///
///   common::MutexLock lock(&mu_);
///   while (!condition_involving_guarded_fields) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; may wake spuriously (callers loop).
  void Wait(Mutex* mu) SUBREC_REQUIRES(mu) {
    // Adopt the already-held native handle for the wait, then release the
    // unique_lock so ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace subrec::common

#endif  // SUBREC_COMMON_MUTEX_H_
