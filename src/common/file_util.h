#ifndef SUBREC_COMMON_FILE_UTIL_H_
#define SUBREC_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace subrec {

/// Reads the whole file at `path` into a string (binary mode, no newline
/// translation). NotFound when the file cannot be opened, Internal on a read
/// failure mid-stream. Never aborts — snapshot loading feeds untrusted bytes
/// through here.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` (binary mode, truncating). The write is not
/// atomic; callers that need crash-safe publication should write to a
/// temporary path and rename. Internal on open/write failure.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace subrec

#endif  // SUBREC_COMMON_FILE_UTIL_H_
