#ifndef SUBREC_COMMON_RNG_H_
#define SUBREC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace subrec {

/// Deterministic, seedable PRNG (xoshiro256**). Every stochastic component
/// in the library takes an Rng (or a seed) so experiments reproduce
/// bit-for-bit across runs and platforms.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  /// method for small means and a normal approximation above 64.
  int Poisson(double mean);

  /// Gamma(shape, scale) via Marsaglia-Tsang; shape > 0, scale > 0.
  double Gamma(double shape, double scale);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index from unnormalized non-negative weights. At least one
  /// weight must be positive.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates in-place shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks a new independent stream; deterministic given this Rng's state.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace subrec

#endif  // SUBREC_COMMON_RNG_H_
