#ifndef SUBREC_COMMON_STATUS_H_
#define SUBREC_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace subrec {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error result for fallible operations. Cheap to copy in the
/// OK case (no allocation); error states carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// themselves return Status.
#define SUBREC_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::subrec::Status _subrec_status = (expr);       \
    if (!_subrec_status.ok()) return _subrec_status; \
  } while (false)

}  // namespace subrec

#endif  // SUBREC_COMMON_STATUS_H_
