#ifndef SUBREC_COMMON_RESULT_H_
#define SUBREC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace subrec {

/// Value-or-Status, in the style of arrow::Result. Accessing the value of an
/// errored Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SUBREC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SUBREC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SUBREC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SUBREC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define SUBREC_RESULT_CONCAT_INNER_(a, b) a##b
#define SUBREC_RESULT_CONCAT_(a, b) SUBREC_RESULT_CONCAT_INNER_(a, b)

#define SUBREC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// Status out of the enclosing Status- (or Result-) returning function.
/// __LINE__ is expanded before pasting, so one function can use the macro on
/// several lines without temporaries colliding.
#define SUBREC_ASSIGN_OR_RETURN(lhs, expr)                                 \
  SUBREC_ASSIGN_OR_RETURN_IMPL_(                                           \
      SUBREC_RESULT_CONCAT_(subrec_result_tmp_, __LINE__), lhs, expr)

}  // namespace subrec

#endif  // SUBREC_COMMON_RESULT_H_
