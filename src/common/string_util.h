#ifndef SUBREC_COMMON_STRING_UTIL_H_
#define SUBREC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace subrec {

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// FNV-1a 64-bit hash; the stable hash used for feature hashing so encoders
/// are deterministic across platforms.
uint64_t Fnv1aHash(std::string_view s);

/// Combines a hash with an extra word (for n-gram / namespaced features).
uint64_t HashCombine(uint64_t h, uint64_t v);

/// Formats a double with fixed precision (printf "%.*f").
std::string FormatDouble(double v, int precision);

}  // namespace subrec

#endif  // SUBREC_COMMON_STRING_UTIL_H_
