#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <utility>

namespace subrec {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Serializes line emission so concurrent SUBREC_LOG statements never
/// interleave, and guards the sink pointer swap.
common::Mutex& EmitMutex() {
  static common::Mutex* const mu = new common::Mutex();
  return *mu;
}

/// Active sink; an empty function means "write to stderr". Guarded by
/// EmitMutex().
LogSink& ActiveSink() {
  static LogSink* const sink = new LogSink();
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// Monotonic seconds since the first log statement in this process.
double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Small dense id for the calling thread (mirrors obs::DenseThreadId, but
/// common/ must not depend on obs/).
int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogSink SetLogSink(LogSink sink) {
  common::MutexLock lock(&EmitMutex());
  LogSink previous = std::move(ActiveSink());
  ActiveSink() = std::move(sink);
  return previous;
}

LogCapture::LogCapture() : state_(std::make_shared<State>()) {
  std::shared_ptr<State> state = state_;
  previous_ = SetLogSink([state](LogLevel, const std::string& line) {
    common::MutexLock lock(&state->mu);
    state->lines.push_back(line);
  });
}

LogCapture::~LogCapture() { SetLogSink(std::move(previous_)); }

std::vector<std::string> LogCapture::lines() const {
  common::MutexLock lock(&state_->mu);
  return state_->lines;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "[%10.6f T%02d %s ",
                  SecondsSinceStart(), LogThreadId(), LevelName(level));
    stream_ << prefix << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string line = stream_.str();
  common::MutexLock lock(&EmitMutex());
  if (ActiveSink()) {
    ActiveSink()(level_, line);
  } else {
    std::cerr << line << "\n";
  }
}

}  // namespace internal_logging
}  // namespace subrec
