#ifndef SUBREC_COMMON_WIRE_H_
#define SUBREC_COMMON_WIRE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace subrec::wire {

/// Little-endian primitive encoders shared by every on-disk format in the
/// repo (serving snapshots, ANN indexes). Integers are encoded LSB-first;
/// doubles as their raw IEEE-754 bit pattern, so round-trips are bit-exact.

inline void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void AppendI32(std::string* out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

inline void AppendDouble(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

inline void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over untrusted bytes. Every read that
/// would run past the end returns OutOfRange instead of touching memory,
/// so parsers built on it never abort on corrupt or truncated input.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU32(uint32_t* out) {
    SUBREC_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  Status ReadU64(uint64_t* out) {
    SUBREC_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    pos_ += 8;
    *out = v;
    return Status::Ok();
  }

  Status ReadI32(int32_t* out) {
    uint32_t v = 0;
    SUBREC_RETURN_NOT_OK(ReadU32(&v));
    *out = static_cast<int32_t>(v);
    return Status::Ok();
  }

  Status ReadDouble(double* out) {
    uint64_t v = 0;
    SUBREC_RETURN_NOT_OK(ReadU64(&v));
    *out = std::bit_cast<double>(v);
    return Status::Ok();
  }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    SUBREC_RETURN_NOT_OK(ReadU32(&len));
    SUBREC_RETURN_NOT_OK(Need(len));
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::Ok();
  }

  /// A length-checked sub-view over the next `len` bytes.
  Status ReadView(uint64_t len, std::string_view* out) {
    SUBREC_RETURN_NOT_OK(Need(len));
    *out = data_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::Ok();
  }

 private:
  Status Need(uint64_t n) const {
    if (n > data_.size() - pos_)
      return Status::OutOfRange("wire: truncated input: need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(data_.size() - pos_));
    return Status::Ok();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace subrec::wire

#endif  // SUBREC_COMMON_WIRE_H_
