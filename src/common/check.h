#ifndef SUBREC_COMMON_CHECK_H_
#define SUBREC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace subrec::internal_check {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Invariant violations are programmer errors; recoverable conditions use
/// Status instead.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace subrec::internal_check

/// Aborts with a message when `cond` is false. Supports streaming extra
/// context: SUBREC_CHECK(i < n) << "i=" << i;
#define SUBREC_CHECK(cond)                                               \
  while (!(cond))                                                        \
  ::subrec::internal_check::CheckFailure(__FILE__, __LINE__, #cond)

#define SUBREC_CHECK_EQ(a, b) SUBREC_CHECK((a) == (b))
#define SUBREC_CHECK_NE(a, b) SUBREC_CHECK((a) != (b))
#define SUBREC_CHECK_LT(a, b) SUBREC_CHECK((a) < (b))
#define SUBREC_CHECK_LE(a, b) SUBREC_CHECK((a) <= (b))
#define SUBREC_CHECK_GT(a, b) SUBREC_CHECK((a) > (b))
#define SUBREC_CHECK_GE(a, b) SUBREC_CHECK((a) >= (b))

#endif  // SUBREC_COMMON_CHECK_H_
