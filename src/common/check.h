#ifndef SUBREC_COMMON_CHECK_H_
#define SUBREC_COMMON_CHECK_H_

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace subrec::internal_check {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Invariant violations are programmer errors; recoverable conditions use
/// Status instead.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

template <typename T>
concept Streamable = requires(std::ostream& os, const T& v) { os << v; };

/// Renders an operand for a failure message; falls back for types without
/// operator<< so SUBREC_CHECK_EQ stays usable on any equality-comparable type.
template <typename T>
std::string FormatOperand(const T& v) {
  if constexpr (Streamable<T>) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

/// Holds both operands of a binary check so each side is evaluated exactly
/// once and its value can be printed on failure.
template <typename A, typename B>
struct Operands {
  A lhs;
  B rhs;
};

template <typename A, typename B>
Operands<std::decay_t<A>, std::decay_t<B>> Capture(A&& a, B&& b) {
  return {std::forward<A>(a), std::forward<B>(b)};
}

/// Operands of SUBREC_CHECK_NEAR. NaN on either side fails the check.
struct NearOperands {
  double lhs;
  double rhs;
  double tolerance;
  bool ok() const { return std::fabs(lhs - rhs) <= tolerance; }
};

}  // namespace subrec::internal_check

/// Aborts with a message when `cond` is false. Supports streaming extra
/// context: SUBREC_CHECK(i < n) << "i=" << i;
#define SUBREC_CHECK(cond)                                               \
  while (!(cond))                                                        \
  ::subrec::internal_check::CheckFailure(__FILE__, __LINE__, #cond)

/// Binary checks print both operand values on failure:
///   CHECK failed at f.cc:12: a == b (3 vs 7)
#define SUBREC_CHECK_OP_(opstr, op, a, b)                                   \
  if (auto subrec_check_ops_ =                                              \
          ::subrec::internal_check::Capture((a), (b));                      \
      subrec_check_ops_.lhs op subrec_check_ops_.rhs) {                     \
  } else /* NOLINT(readability-braces-around-statements) */                 \
    ::subrec::internal_check::CheckFailure(__FILE__, __LINE__,              \
                                           #a " " opstr " " #b)             \
        << "("                                                              \
        << ::subrec::internal_check::FormatOperand(subrec_check_ops_.lhs)   \
        << " vs "                                                           \
        << ::subrec::internal_check::FormatOperand(subrec_check_ops_.rhs)   \
        << ") "

#define SUBREC_CHECK_EQ(a, b) SUBREC_CHECK_OP_("==", ==, a, b)
#define SUBREC_CHECK_NE(a, b) SUBREC_CHECK_OP_("!=", !=, a, b)
#define SUBREC_CHECK_LT(a, b) SUBREC_CHECK_OP_("<", <, a, b)
#define SUBREC_CHECK_LE(a, b) SUBREC_CHECK_OP_("<=", <=, a, b)
#define SUBREC_CHECK_GT(a, b) SUBREC_CHECK_OP_(">", >, a, b)
#define SUBREC_CHECK_GE(a, b) SUBREC_CHECK_OP_(">=", >=, a, b)

/// |a - b| <= tol, with all three values printed on failure. Fails on NaN.
#define SUBREC_CHECK_NEAR(a, b, tol)                                        \
  if (::subrec::internal_check::NearOperands subrec_check_near_{            \
          static_cast<double>(a), static_cast<double>(b),                   \
          static_cast<double>(tol)};                                        \
      subrec_check_near_.ok()) {                                            \
  } else /* NOLINT(readability-braces-around-statements) */                 \
    ::subrec::internal_check::CheckFailure(__FILE__, __LINE__,              \
                                           #a " ~= " #b)                    \
        << "(" << subrec_check_near_.lhs << " vs " << subrec_check_near_.rhs \
        << ", tol " << subrec_check_near_.tolerance << ") "

/// Debug-only checks: active when NDEBUG is unset (or SUBREC_FORCE_DCHECK is
/// defined, which lets sanitizer builds of any build type keep them on). In
/// release builds the condition is NOT evaluated — no side effects, no cost.
#if !defined(NDEBUG) || defined(SUBREC_FORCE_DCHECK)
#define SUBREC_DCHECK_IS_ON 1
#else
#define SUBREC_DCHECK_IS_ON 0
#endif

#if SUBREC_DCHECK_IS_ON
#define SUBREC_DCHECK(cond) SUBREC_CHECK(cond)
#define SUBREC_DCHECK_EQ(a, b) SUBREC_CHECK_EQ(a, b)
#define SUBREC_DCHECK_NE(a, b) SUBREC_CHECK_NE(a, b)
#define SUBREC_DCHECK_LT(a, b) SUBREC_CHECK_LT(a, b)
#define SUBREC_DCHECK_LE(a, b) SUBREC_CHECK_LE(a, b)
#define SUBREC_DCHECK_GT(a, b) SUBREC_CHECK_GT(a, b)
#define SUBREC_DCHECK_GE(a, b) SUBREC_CHECK_GE(a, b)
#else
// `false && (cond)` keeps the condition type-checked but never evaluated,
// and the dead loop body (including streamed operands) folds away entirely.
#define SUBREC_DCHECK(cond)                                              \
  while (false && static_cast<bool>(cond))                               \
  ::subrec::internal_check::CheckFailure(__FILE__, __LINE__, #cond)
#define SUBREC_DCHECK_EQ(a, b) SUBREC_DCHECK((a) == (b))
#define SUBREC_DCHECK_NE(a, b) SUBREC_DCHECK((a) != (b))
#define SUBREC_DCHECK_LT(a, b) SUBREC_DCHECK((a) < (b))
#define SUBREC_DCHECK_LE(a, b) SUBREC_DCHECK((a) <= (b))
#define SUBREC_DCHECK_GT(a, b) SUBREC_DCHECK((a) > (b))
#define SUBREC_DCHECK_GE(a, b) SUBREC_DCHECK((a) >= (b))
#endif  // SUBREC_DCHECK_IS_ON

#endif  // SUBREC_COMMON_CHECK_H_
