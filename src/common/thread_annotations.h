#ifndef SUBREC_COMMON_THREAD_ANNOTATIONS_H_
#define SUBREC_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros, compiled away on every
/// other compiler. Annotate every lock-protected field and every function
/// with a locking contract; the clang-dev preset turns violations into
/// compile errors (-Werror=thread-safety-analysis), so the locking protocol
/// is checked on every compile instead of probabilistically under TSan.
///
/// The vocabulary (mirrors the upstream Clang docs):
///   SUBREC_CAPABILITY(name)     class is a lockable capability (e.g. Mutex)
///   SUBREC_SCOPED_CAPABILITY    RAII type that acquires in its constructor
///                               and releases in its destructor (MutexLock)
///   SUBREC_GUARDED_BY(mu)       field may only be touched while mu is held
///   SUBREC_PT_GUARDED_BY(mu)    pointee may only be touched while mu is held
///   SUBREC_REQUIRES(mu)         caller must already hold mu
///   SUBREC_ACQUIRE(mu)          function acquires mu and does not release it
///   SUBREC_RELEASE(mu)          function releases mu
///   SUBREC_TRY_ACQUIRE(b, mu)   acquires mu iff the function returns b
///   SUBREC_EXCLUDES(mu)         caller must NOT hold mu (deadlock guard)
///   SUBREC_ASSERT_CAPABILITY(mu) runtime claim that mu is held
///   SUBREC_RETURN_CAPABILITY(mu) function returns a reference to mu
///   SUBREC_NO_THREAD_SAFETY_ANALYSIS  opt a function out of the analysis;
///                               every use must carry a comment justifying
///                               why the protocol cannot be expressed
///   SUBREC_UNGUARDED(why)       expands to nothing; documents a field of a
///                               Mutex-owning class that is deliberately
///                               outside that mutex's protection (atomic,
///                               construction-immutable, or internally
///                               synchronized). The guarded-by-required lint
///                               rule accepts it in place of
///                               SUBREC_GUARDED_BY.

#if defined(__clang__) && !defined(SWIG)
#define SUBREC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SUBREC_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define SUBREC_CAPABILITY(x) SUBREC_THREAD_ANNOTATION_(capability(x))

#define SUBREC_SCOPED_CAPABILITY SUBREC_THREAD_ANNOTATION_(scoped_lockable)

#define SUBREC_GUARDED_BY(x) SUBREC_THREAD_ANNOTATION_(guarded_by(x))

#define SUBREC_PT_GUARDED_BY(x) SUBREC_THREAD_ANNOTATION_(pt_guarded_by(x))

#define SUBREC_ACQUIRED_BEFORE(...) \
  SUBREC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define SUBREC_ACQUIRED_AFTER(...) \
  SUBREC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define SUBREC_REQUIRES(...) \
  SUBREC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define SUBREC_REQUIRES_SHARED(...) \
  SUBREC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define SUBREC_ACQUIRE(...) \
  SUBREC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define SUBREC_ACQUIRE_SHARED(...) \
  SUBREC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define SUBREC_RELEASE(...) \
  SUBREC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define SUBREC_RELEASE_SHARED(...) \
  SUBREC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define SUBREC_TRY_ACQUIRE(...) \
  SUBREC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define SUBREC_EXCLUDES(...) \
  SUBREC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define SUBREC_ASSERT_CAPABILITY(x) \
  SUBREC_THREAD_ANNOTATION_(assert_capability(x))

#define SUBREC_RETURN_CAPABILITY(x) SUBREC_THREAD_ANNOTATION_(lock_returned(x))

#define SUBREC_NO_THREAD_SAFETY_ANALYSIS \
  SUBREC_THREAD_ANNOTATION_(no_thread_safety_analysis)

#define SUBREC_UNGUARDED(why)  // documentation + lint marker only

#endif  // SUBREC_COMMON_THREAD_ANNOTATIONS_H_
