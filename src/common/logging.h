#ifndef SUBREC_COMMON_LOGGING_H_
#define SUBREC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace subrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level emitted by SUBREC_LOG. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// One log statement; flushes a single line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace subrec

#define SUBREC_LOG(level)                                        \
  ::subrec::internal_logging::LogMessage(::subrec::LogLevel::k##level, \
                                         __FILE__, __LINE__)

#endif  // SUBREC_COMMON_LOGGING_H_
