#ifndef SUBREC_COMMON_LOGGING_H_
#define SUBREC_COMMON_LOGGING_H_

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level emitted by SUBREC_LOG. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives one fully formatted log line (no trailing newline). Called under
/// the global emission mutex, so lines never interleave and the sink needs no
/// locking of its own — but it must not log back into SUBREC_LOG.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the process-wide log sink and returns the previous one. Passing
/// nullptr restores the default sink (stderr). Thread-safe.
LogSink SetLogSink(LogSink sink);

/// RAII helper that captures log lines for the duration of a test scope,
/// restoring the previous sink on destruction:
///
///   LogCapture capture;
///   SUBREC_LOG(Warning) << "boom";
///   EXPECT_NE(capture.lines()[0].find("boom"), std::string::npos);
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  /// Snapshot of the lines captured so far (formatted, prefix included).
  std::vector<std::string> lines() const;

 private:
  struct State {
    mutable common::Mutex mu;
    std::vector<std::string> lines SUBREC_GUARDED_BY(mu);
  };
  std::shared_ptr<State> state_;
  LogSink previous_;
};

namespace internal_logging {

/// One log statement; on destruction hands a single formatted line — prefixed
/// with monotonic seconds since first log, dense thread id, level, and
/// file:line — to the active sink under the emission mutex.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace subrec

#define SUBREC_LOG(level)                                        \
  ::subrec::internal_logging::LogMessage(::subrec::LogLevel::k##level, \
                                         __FILE__, __LINE__)

#endif  // SUBREC_COMMON_LOGGING_H_
