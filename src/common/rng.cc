#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace subrec {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& lane : s_) lane = SplitMix64(x);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SUBREC_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(kTwoPi * u2);
  has_cached_gaussian_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  SUBREC_CHECK_GT(lambda, 0.0);
  double u = UniformDouble();
  while (u <= 1e-300) u = UniformDouble();
  return -std::log(u) / lambda;
}

int Rng::Poisson(double mean) {
  SUBREC_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double v = Gaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double prod = UniformDouble();
  while (prod > limit) {
    ++k;
    prod *= UniformDouble();
  }
  return k;
}

double Rng::Gamma(double shape, double scale) {
  SUBREC_CHECK_GT(shape, 0.0);
  SUBREC_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with a power of a uniform.
    const double u = std::max(UniformDouble(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  SUBREC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SUBREC_CHECK_GE(w, 0.0);
    total += w;
  }
  SUBREC_CHECK_GT(total, 0.0) << "all categorical weights are zero";
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SUBREC_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index array; O(n) memory, fine at our scale.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace subrec
