#include "common/file_util.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace subrec {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for read: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read failed: " + path);
  }
  return std::move(buf).str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open for write: " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace subrec
