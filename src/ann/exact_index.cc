#include "ann/exact_index.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace subrec::ann {

ExactIndex::ExactIndex(std::vector<int32_t> ids, std::vector<double> vectors,
                       size_t dim)
    : ids_(std::move(ids)), vectors_(std::move(vectors)), dim_(dim) {
  SUBREC_CHECK(vectors_.size() == ids_.size() * dim_)
      << "ExactIndex: " << ids_.size() << " ids x dim " << dim_
      << " != " << vectors_.size() << " vector values";
}

Status ExactIndex::Search(const std::vector<double>& query, int k, int ef,
                          std::vector<Neighbor>* out,
                          SearchStats* stats) const {
  (void)ef;  // Beam width is meaningless for a full scan.
  if (k <= 0) return Status::InvalidArgument("ann: k must be positive");
  if (query.size() != dim_)
    return Status::InvalidArgument("ann: query dim " +
                                   std::to_string(query.size()) +
                                   " != index dim " + std::to_string(dim_));
  const size_t n = ids_.size();
  std::vector<Neighbor> scored(n);
  for (size_t i = 0; i < n; ++i) {
    const double* v = vectors_.data() + i * dim_;
    double dot = 0.0;
    for (size_t d = 0; d < dim_; ++d) dot += query[d] * v[d];
    scored[i] = Neighbor{ids_[i], dot};
  }
  const auto better = [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  const size_t keep = std::min(static_cast<size_t>(k), n);
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<ptrdiff_t>(keep),
                    scored.end(), better);
  scored.resize(keep);
  *out = std::move(scored);
  if (stats != nullptr) {
    stats->nodes_visited += static_cast<int64_t>(n);
    stats->distance_evals += static_cast<int64_t>(n);
  }
  return Status::Ok();
}

}  // namespace subrec::ann
