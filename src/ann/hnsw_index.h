#ifndef SUBREC_ANN_HNSW_INDEX_H_
#define SUBREC_ANN_HNSW_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ann/index.h"
#include "common/result.h"
#include "common/status.h"

namespace subrec::ann {

/// Build parameters for HnswIndex. The defaults are the bench/ann_recall
/// sweet spot for the repo's 32–64-dim embedding matrices: recall@10 well
/// above 0.95 at search ef ~128 on 1e5 items.
struct HnswOptions {
  /// Max out-degree per node on levels >= 1; level 0 allows 2*M. More
  /// links -> better recall, bigger index, slower build.
  int M = 16;
  /// Beam width while constructing: how many candidates each insertion
  /// examines per level before the M-way neighbor selection.
  int ef_construction = 200;
  /// Seed for the per-node level assignment. Two builds over the same
  /// vectors with the same options and seed are byte-identical.
  uint64_t seed = 0x5EEDF00DULL;
  /// A/B baseline: build with the pre-arena implementation — nested-vector
  /// links, per-insertion heap allocations, scalar one-at-a-time distances
  /// — then pack the result into the arena. Produces the same graph as the
  /// default path, byte for byte (the golden-snapshot test pins both
  /// against a pre-refactor Serialize()); it exists so the bench can
  /// measure the data-structure + kernel redesign on the same host
  /// (ann.build.speedup_vs_baseline). Not serialized: a deserialized index
  /// carries no record of which path built it.
  bool legacy_build = false;
};

/// Hierarchical navigable small world graph over frozen item vectors,
/// searched by maximum inner product (the quantity NPRec's pair score is
/// monotone in). Approximate: Search walks the graph greedily and can miss
/// true neighbors; ExactIndex is the oracle it is measured against.
///
/// Determinism contract (same as src/par): the built graph — and therefore
/// Serialize() — is a pure function of (ids, vectors, options). The bulk
/// build parallelizes over geometrically growing insertion batches; within
/// a batch every insertion plans its links against the frozen pre-batch
/// graph (read-only, safe to race), and plans are committed serially —
/// back-link writes grouped by level and neighbor, replaying each row's
/// append/re-select events in ascending node order, which reproduces the
/// per-node commit sequence's link structure exactly. Chunk boundaries
/// come from par::ParallelFor's thread-count-independent grid, so
/// SUBREC_NUM_THREADS never changes the result, only the wall clock.
///
/// Hot-structure layout (the 1e6-corpus redesign): links live in flat
/// CSR-style arenas with fixed per-row capacity — one slab for the level-0
/// band (rows of 1 + 2M int32, count-prefixed) and one for all upper
/// levels (rows of 1 + M, a node's levels 1..L packed consecutively) — so
/// a traversal step is one indexed load instead of three pointer chases,
/// and distance evaluations run through the batched SIMD kernel
/// la::AnnDotBatch (bit-identical to the scalar loop by construction).
class HnswIndex : public Index {
 public:
  /// Builds the graph over `ids`/`vectors` (row-major, ids.size() * dim
  /// values). InvalidArgument on shape mismatch or nonsensical options.
  static Result<std::unique_ptr<HnswIndex>> Build(std::vector<int32_t> ids,
                                                  std::vector<double> vectors,
                                                  size_t dim,
                                                  const HnswOptions& options);

  /// Reconstructs an index from Serialize() output. Every malformed input
  /// — truncation, bad magic/version, out-of-range neighbors, level skew,
  /// link counts above the M/2M row capacity — returns an error Status;
  /// this path never aborts on untrusted bytes.
  static Result<std::unique_ptr<HnswIndex>> Deserialize(
      std::string_view bytes);

  /// Self-contained little-endian encoding of the full index (options,
  /// ids, vectors, graph). Deterministic: byte-identical for equal builds,
  /// and the wire format is unchanged from the pre-arena layout (nested
  /// count-prefixed link lists) — old bytes load, new bytes are readable
  /// by old readers.
  std::string Serialize() const;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return dim_; }
  /// External ids, one per indexed item. Deserialize treats them as opaque
  /// — callers embedding the index in a larger structure (the serving
  /// snapshot) must validate them against their own id space.
  const std::vector<int32_t>& ids() const { return ids_; }
  int M() const { return M_; }
  int ef_construction() const { return ef_construction_; }
  uint64_t seed() const { return seed_; }
  /// Top graph level (-1 when the index is empty).
  int32_t max_level() const { return max_level_; }

  /// Allocation-free in the steady state: per-thread search scratch
  /// (visited stamps, heaps, distance batches) lives in a thread-local
  /// pool and only grows, and `out` is reused as the caller provides it —
  /// after one warm call per thread, queries never touch the heap.
  Status Search(const std::vector<double>& query, int k, int ef,
                std::vector<Neighbor>* out,
                SearchStats* stats = nullptr) const override;

 private:
  /// (distance, internal node) — distance is the negated inner product, so
  /// lexicographic pair order means "closer first, lower node on ties",
  /// which is what makes every traversal decision a total order.
  using DistNode = std::pair<double, int32_t>;

  /// Per-search working memory, pooled thread-locally for serve-time
  /// queries and per-chunk for build-time planning. Everything is
  /// grow-only; the visited markers are epoch-stamped so reuse across
  /// layers and consecutive searches costs one counter bump instead of a
  /// clear.
  struct SearchScratch {
    std::vector<uint8_t> stamp;
    uint8_t epoch = 0;
    /// Min-heap of unexpanded candidates (closest on top).
    std::vector<DistNode> frontier;
    /// Max-heap of the ef best seen so far (worst on top).
    std::vector<DistNode> best;
    /// SearchLayer output: the ef best as a 4-ary min-heap (closest on
    /// top). Heapified in O(n) instead of sorted — SelectNeighbors pops
    /// lazily and rarely needs the full order.
    std::vector<DistNode> found;
    /// Unvisited neighbors of the node being expanded + their inner
    /// products, the batch fed to la::AnnDotBatch.
    std::vector<int32_t> batch_ids;
    std::vector<double> batch_dots;
    /// SelectNeighbors output, the commit path's re-selection candidate
    /// heap, and the per-chunk distance slots of the diversity check.
    std::vector<int32_t> selected;
    std::vector<DistNode> resort;
    std::vector<double> sel_dots;
    void NextEpoch(size_t n);
    bool Visited(int32_t node) const {
      return stamp[static_cast<size_t>(node)] == epoch;
    }
    void Mark(int32_t node) { stamp[static_cast<size_t>(node)] = epoch; }
  };

  /// Links selected for one pending insertion, computed against the frozen
  /// pre-batch graph. Fixed-stride rows (level L at L * (1 + M), count
  /// first) so CommitBatch can address any level directly — one allocation
  /// per plan instead of one per level.
  struct InsertPlan {
    std::vector<int32_t> flat;
  };

  HnswIndex() = default;

  /// Arena row for (node, level): row[0] = link count, row[1..] = links.
  /// Level 0 rows live in level0_ (capacity 2M); levels >= 1 live in
  /// upper_ at (upper_row_[node] + level - 1) rows in (capacity M).
  int32_t* LinkRow(size_t node, int32_t level);
  const int32_t* LinkRow(size_t node, int32_t level) const;
  size_t RowCapacity(int32_t level) const {
    return level == 0 ? 2 * static_cast<size_t>(M_)
                      : static_cast<size_t>(M_);
  }
  /// Sizes the arenas for the already-populated levels_ array.
  void AllocateArena();

  double Dist(int32_t node, const double* query) const;
  /// Greedy best-first descent within one level (ef=1 search).
  void GreedyStep(const double* query, int32_t level, int32_t* cur,
                  double* cur_dist, SearchScratch* scratch,
                  SearchStats* stats) const;
  /// Beam search within one level; `out` is a min-heap, closest on top.
  void SearchLayer(const double* query, int32_t entry, size_t ef,
                   int32_t level, SearchScratch* scratch,
                   std::vector<DistNode>* out, SearchStats* stats) const;
  /// The HNSW diversity heuristic: walks `candidates` closest-first and
  /// keeps those closer to the target than to anything already kept,
  /// writing the survivors into `out` (grow-only scratch). Consumes the
  /// candidate min-heap by lazy pops and checks each pop against the kept
  /// list in kernel-batched chunks — same kept set as the nested scalar
  /// loop, without ordering candidates the walk never reaches.
  void SelectNeighbors(std::vector<DistNode>* candidates, size_t max_links,
                       SearchScratch* scratch,
                       std::vector<int32_t>* out) const;
  InsertPlan PlanInsert(size_t node, SearchScratch* scratch) const;
  /// Applies one batch of plans serially: forward rows first (ascending
  /// node), then back-links grouped by level and neighbor — replaying
  /// each row's appends and over-degree re-selections in ascending node
  /// order, so the result matches the per-node commit sequence byte for
  /// byte — then the entry/max-level update in ascending node order.
  void CommitBatch(size_t start, size_t count, std::vector<InsertPlan>* plans,
                   SearchScratch* scratch);
  /// The pre-arena reference build (HnswOptions::legacy_build).
  void BuildLegacy();

  size_t dim_ = 0;
  int M_ = 0;
  int ef_construction_ = 0;
  uint64_t seed_ = 0;
  int32_t max_level_ = -1;
  int32_t entry_ = -1;
  std::vector<int32_t> ids_;
  std::vector<double> vectors_;
  std::vector<int32_t> levels_;
  /// Level-0 band: node's row at node * (1 + 2M).
  std::vector<int32_t> level0_;
  /// Upper bands: node's rows for levels 1..levels_[node] packed
  /// consecutively starting at row upper_row_[node], stride 1 + M.
  std::vector<int32_t> upper_;
  std::vector<size_t> upper_row_;
};

}  // namespace subrec::ann

#endif  // SUBREC_ANN_HNSW_INDEX_H_
