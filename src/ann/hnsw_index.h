#ifndef SUBREC_ANN_HNSW_INDEX_H_
#define SUBREC_ANN_HNSW_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ann/index.h"
#include "common/result.h"
#include "common/status.h"

namespace subrec::ann {

/// Build parameters for HnswIndex. The defaults are the bench/ann_recall
/// sweet spot for the repo's 32–64-dim embedding matrices: recall@10 well
/// above 0.95 at search ef ~128 on 1e5 items.
struct HnswOptions {
  /// Max out-degree per node on levels >= 1; level 0 allows 2*M. More
  /// links -> better recall, bigger index, slower build.
  int M = 16;
  /// Beam width while constructing: how many candidates each insertion
  /// examines per level before the M-way neighbor selection.
  int ef_construction = 200;
  /// Seed for the per-node level assignment. Two builds over the same
  /// vectors with the same options and seed are byte-identical.
  uint64_t seed = 0x5EEDF00DULL;
};

/// Hierarchical navigable small world graph over frozen item vectors,
/// searched by maximum inner product (the quantity NPRec's pair score is
/// monotone in). Approximate: Search walks the graph greedily and can miss
/// true neighbors; ExactIndex is the oracle it is measured against.
///
/// Determinism contract (same as src/par): the built graph — and therefore
/// Serialize() — is a pure function of (ids, vectors, options). The bulk
/// build parallelizes over geometrically growing insertion batches; within
/// a batch every insertion plans its links against the frozen pre-batch
/// graph (read-only, safe to race), and plans are committed serially in
/// ascending node order. Chunk boundaries come from par::ParallelFor's
/// thread-count-independent grid, so SUBREC_NUM_THREADS never changes the
/// result, only the wall clock.
class HnswIndex : public Index {
 public:
  /// Builds the graph over `ids`/`vectors` (row-major, ids.size() * dim
  /// values). InvalidArgument on shape mismatch or nonsensical options.
  static Result<std::unique_ptr<HnswIndex>> Build(std::vector<int32_t> ids,
                                                  std::vector<double> vectors,
                                                  size_t dim,
                                                  const HnswOptions& options);

  /// Reconstructs an index from Serialize() output. Every malformed input
  /// — truncation, bad magic/version, out-of-range neighbors, level skew —
  /// returns an error Status; this path never aborts on untrusted bytes.
  static Result<std::unique_ptr<HnswIndex>> Deserialize(
      std::string_view bytes);

  /// Self-contained little-endian encoding of the full index (options,
  /// ids, vectors, graph). Deterministic: byte-identical for equal builds.
  std::string Serialize() const;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return dim_; }
  /// External ids, one per indexed item. Deserialize treats them as opaque
  /// — callers embedding the index in a larger structure (the serving
  /// snapshot) must validate them against their own id space.
  const std::vector<int32_t>& ids() const { return ids_; }
  int M() const { return M_; }
  int ef_construction() const { return ef_construction_; }
  uint64_t seed() const { return seed_; }
  /// Top graph level (-1 when the index is empty).
  int32_t max_level() const { return max_level_; }

  Status Search(const std::vector<double>& query, int k, int ef,
                std::vector<Neighbor>* out,
                SearchStats* stats = nullptr) const override;

 private:
  /// (distance, internal node) — distance is the negated inner product, so
  /// lexicographic pair order means "closer first, lower node on ties",
  /// which is what makes every traversal decision a total order.
  using DistNode = std::pair<double, int32_t>;

  /// Per-search visited markers, epoch-stamped so reuse across layers and
  /// consecutive insertions costs one counter bump instead of a clear.
  struct Scratch {
    std::vector<uint8_t> stamp;
    uint8_t epoch = 0;
    void NextEpoch(size_t n);
    bool Visited(int32_t node) const {
      return stamp[static_cast<size_t>(node)] == epoch;
    }
    void Mark(int32_t node) { stamp[static_cast<size_t>(node)] = epoch; }
  };

  /// Links selected for one pending insertion, one list per level in
  /// [0, node_level]; computed against the frozen pre-batch graph.
  struct InsertPlan {
    std::vector<std::vector<int32_t>> links;
  };

  HnswIndex() = default;

  double Dist(int32_t node, const double* query) const;
  /// Greedy best-first descent within one level (ef=1 search).
  void GreedyStep(const double* query, int32_t level, int32_t* cur,
                  double* cur_dist, SearchStats* stats) const;
  /// Beam search within one level; `out` is sorted closest-first.
  void SearchLayer(const double* query, int32_t entry, size_t ef,
                   int32_t level, Scratch* scratch,
                   std::vector<DistNode>* out, SearchStats* stats) const;
  /// The HNSW diversity heuristic: walks `candidates` closest-first and
  /// keeps those closer to the target than to anything already kept.
  std::vector<int32_t> SelectNeighbors(const std::vector<DistNode>& candidates,
                                       size_t max_links) const;
  InsertPlan PlanInsert(size_t node, Scratch* scratch) const;
  void CommitInsert(size_t node, InsertPlan plan);

  size_t dim_ = 0;
  int M_ = 0;
  int ef_construction_ = 0;
  uint64_t seed_ = 0;
  int32_t max_level_ = -1;
  int32_t entry_ = -1;
  std::vector<int32_t> ids_;
  std::vector<double> vectors_;
  std::vector<int32_t> levels_;
  /// links_[node][level] = out-neighbors, level in [0, levels_[node]].
  std::vector<std::vector<std::vector<int32_t>>> links_;
};

}  // namespace subrec::ann

#endif  // SUBREC_ANN_HNSW_INDEX_H_
