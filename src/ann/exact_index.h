#ifndef SUBREC_ANN_EXACT_INDEX_H_
#define SUBREC_ANN_EXACT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ann/index.h"
#include "common/status.h"

namespace subrec::ann {

/// Brute-force maximum-inner-product scan: evaluates every item per query.
/// O(n·dim) per search, exact by construction — the recall oracle and
/// latency baseline that HnswIndex is measured against in bench/ann_recall,
/// and the fallback when a snapshot carries no serialized graph.
class ExactIndex : public Index {
 public:
  /// Takes ownership of `ids` (external ids, one per item) and `vectors`
  /// (row-major, ids.size() * dim values). Checked programmer error if the
  /// shapes disagree.
  ExactIndex(std::vector<int32_t> ids, std::vector<double> vectors,
             size_t dim);

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return dim_; }

  Status Search(const std::vector<double>& query, int k, int ef,
                std::vector<Neighbor>* out,
                SearchStats* stats = nullptr) const override;

 private:
  std::vector<int32_t> ids_;
  std::vector<double> vectors_;
  size_t dim_ = 0;
};

}  // namespace subrec::ann

#endif  // SUBREC_ANN_EXACT_INDEX_H_
