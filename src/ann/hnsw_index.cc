#include "ann/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "common/wire.h"
#include "la/ann_kernel.h"
#include "par/parallel.h"

// Beam search is memory-latency bound: each expansion gathers up to 2M
// link rows and vectors scattered across the arena. Hinting the next
// frontier candidate's row while the current one is scored hides a good
// part of that latency; on non-GNU compilers the hint just disappears.
#if defined(__GNUC__) || defined(__clang__)
#define SUBREC_ANN_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define SUBREC_ANN_PREFETCH(addr)
#endif

namespace subrec::ann {
namespace {

// "SUBRANN1" read as a little-endian u64.
constexpr uint64_t kMagic = 0x314E4E4152425553ULL;
constexpr uint32_t kVersion = 1;
// Geometric levels rarely exceed ~log_M(n); the cap only bounds adversarial
// deserialized input and the (astronomically unlikely) long random tail.
constexpr int32_t kMaxLevelCap = 30;
// Insertion batches double in size up to this cap. Within a batch nodes
// plan against the pre-batch graph only, so the cap bounds how much of the
// corpus any insertion is blind to once the graph is large.
constexpr size_t kMaxBatch = 1024;
// Insertions per ParallelFor chunk: amortizes one scratch allocation per
// chunk without starving the pool on mid-sized batches.
constexpr size_t kBuildGrain = 16;
// Upper bound on ef_construction, enforced identically by Build and
// Deserialize so every index that can be built can also be loaded.
constexpr uint32_t kMaxEfConstruction = uint32_t{1} << 20;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Level for node `i`: geometric with ratio 1/M, from a hash of (seed, i)
/// alone — independent of thread count, insertion order, and batch shape.
int32_t LevelForNode(uint64_t seed, size_t i, double mult) {
  const uint64_t h = SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(i)));
  // (0, 1]: +1 keeps log() finite; >> 11 keeps the 53-bit double mantissa.
  const double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
  const auto level = static_cast<int32_t>(-std::log(u) * mult);
  return std::min(level, kMaxLevelCap);
}

/// 4-ary heap primitives over a reused vector; `top_before(a, b)` says a
/// belongs above b (std::less -> min-heap, std::greater -> max-heap). The
/// top element and pop order are value-determined, and every DistNode in a
/// layer search is distinct (one entry per node, ids break distance ties),
/// so replacing the binary std::push_heap/pop_heap with a shallower 4-ary
/// tree changes no traversal decision — only the constant factor on the
/// tens of millions of sift steps a bulk build performs.
template <typename T, typename Cmp>
void HeapPush(std::vector<T>* heap, const T item, Cmp top_before) {
  auto& v = *heap;
  size_t i = v.size();
  v.push_back(item);
  while (i > 0) {
    const size_t p = (i - 1) >> 2;
    if (!top_before(item, v[p])) break;
    v[i] = v[p];
    i = p;
  }
  v[i] = item;
}

/// Replaces the top element and restores the heap in one sift-down. For a
/// full bounded heap this is the same resulting set as push-then-pop when
/// the new item beats the top (the displaced element is exactly the old
/// top), at roughly half the sift work.
template <typename T, typename Cmp>
void HeapReplaceTop(std::vector<T>* heap, const T item, Cmp top_before) {
  auto& v = *heap;
  const size_t n = v.size();
  size_t i = 0;
  for (;;) {
    const size_t c0 = 4 * i + 1;
    if (c0 >= n) break;
    size_t m = c0;
    const size_t end = c0 + 4 < n ? c0 + 4 : n;
    for (size_t c = c0 + 1; c < end; ++c)
      if (top_before(v[c], v[m])) m = c;
    if (!top_before(v[m], item)) break;
    v[i] = v[m];
    i = m;
  }
  v[i] = item;
}

template <typename T, typename Cmp>
void HeapPop(std::vector<T>* heap, Cmp top_before) {
  auto& v = *heap;
  const T item = v.back();
  v.pop_back();
  const size_t n = v.size();
  if (n == 0) return;
  size_t i = 0;
  for (;;) {
    const size_t c0 = 4 * i + 1;
    if (c0 >= n) break;
    size_t m = c0;
    const size_t end = c0 + 4 < n ? c0 + 4 : n;
    for (size_t c = c0 + 1; c < end; ++c)
      if (top_before(v[c], v[m])) m = c;
    if (!top_before(v[m], item)) break;
    v[i] = v[m];
    i = m;
  }
  v[i] = item;
}

/// Floyd bottom-up heapify: O(n) sift-downs, against the O(n log n) full
/// sort it replaces on the SearchLayer result. Consumers pop lazily and
/// the neighbor selection usually stops well before draining the heap, so
/// most of the ordering work the sort used to do is never needed. Popping
/// distinct elements ascending is exactly the sorted order, so nothing
/// downstream can tell the difference decision-wise.
template <typename T, typename Cmp>
void Heapify(std::vector<T>* heap, Cmp top_before) {
  auto& v = *heap;
  const size_t n = v.size();
  if (n < 2) return;
  for (size_t i = ((n - 2) >> 2) + 1; i-- > 0;) {
    const T item = v[i];
    size_t j = i;
    for (;;) {
      const size_t c0 = 4 * j + 1;
      if (c0 >= n) break;
      size_t m = c0;
      const size_t end = c0 + 4 < n ? c0 + 4 : n;
      for (size_t c = c0 + 1; c < end; ++c)
        if (top_before(v[c], v[m])) m = c;
      if (!top_before(v[m], item)) break;
      v[j] = v[m];
      j = m;
    }
    v[j] = item;
  }
}

}  // namespace

void HnswIndex::SearchScratch::NextEpoch(size_t n) {
  if (stamp.size() < n) stamp.assign(n, 0);
  ++epoch;
  if (epoch == 0) {  // uint8 wrapped: stale stamps could alias, clear.
    std::fill(stamp.begin(), stamp.end(), uint8_t{0});
    epoch = 1;
  }
}

int32_t* HnswIndex::LinkRow(size_t node, int32_t level) {
  if (level == 0)
    return level0_.data() + node * (1 + 2 * static_cast<size_t>(M_));
  return upper_.data() + (upper_row_[node] + static_cast<size_t>(level) - 1) *
                             (1 + static_cast<size_t>(M_));
}

const int32_t* HnswIndex::LinkRow(size_t node, int32_t level) const {
  if (level == 0)
    return level0_.data() + node * (1 + 2 * static_cast<size_t>(M_));
  return upper_.data() + (upper_row_[node] + static_cast<size_t>(level) - 1) *
                             (1 + static_cast<size_t>(M_));
}

void HnswIndex::AllocateArena() {
  const size_t n = ids_.size();
  level0_.assign(n * (1 + 2 * static_cast<size_t>(M_)), 0);
  upper_row_.resize(n);
  size_t rows = 0;
  for (size_t i = 0; i < n; ++i) {
    upper_row_[i] = rows;
    rows += static_cast<size_t>(levels_[i]);
  }
  upper_.assign(rows * (1 + static_cast<size_t>(M_)), 0);
}

double HnswIndex::Dist(int32_t node, const double* query) const {
  const double* v = vectors_.data() + static_cast<size_t>(node) * dim_;
  double dot = 0.0;
  for (size_t d = 0; d < dim_; ++d) dot += query[d] * v[d];
  return -dot;  // Max inner product as min distance.
}

void HnswIndex::GreedyStep(const double* query, int32_t level, int32_t* cur,
                           double* cur_dist, SearchScratch* scratch,
                           SearchStats* stats) const {
  if (scratch->batch_dots.size() < RowCapacity(0))
    scratch->batch_dots.resize(RowCapacity(0));
  bool improved = true;
  while (improved) {
    improved = false;
    if (stats != nullptr) ++stats->nodes_visited;
    const int32_t* row = LinkRow(static_cast<size_t>(*cur), level);
    const auto count = static_cast<size_t>(row[0]);
    if (count == 0) break;
    // Link rows are contiguous, so the row feeds the batched kernel
    // directly. The dots are a pure function of the graph, so evaluating
    // them up front and scanning sequentially takes the exact decisions
    // the one-at-a-time loop took.
    la::AnnDotBatch(query, vectors_.data(), dim_, row + 1, count,
                    scratch->batch_dots.data());
    if (stats != nullptr) stats->distance_evals += static_cast<int64_t>(count);
    for (size_t t = 0; t < count; ++t) {
      const int32_t nb = row[1 + t];
      const double d = -scratch->batch_dots[t];
      // Strict improvement, node id as tiebreak: a total order, so the
      // walk can neither cycle nor depend on evaluation timing.
      if (d < *cur_dist || (d == *cur_dist && nb < *cur)) {
        *cur_dist = d;
        *cur = nb;
        improved = true;
      }
    }
  }
}

void HnswIndex::SearchLayer(const double* query, int32_t entry, size_t ef,
                            int32_t level, SearchScratch* scratch,
                            std::vector<DistNode>* out,
                            SearchStats* stats) const {
  scratch->NextEpoch(ids_.size());
  // `frontier` pops closest-first; `best` tracks the ef closest seen so
  // far with its worst member on top. Pair order ties on node id, so the
  // expansion sequence is a pure function of the graph. Both heaps live
  // on reused scratch vectors so a warmed search never allocates.
  auto& frontier = scratch->frontier;
  auto& best = scratch->best;
  frontier.clear();
  best.clear();
  auto& batch = scratch->batch_ids;
  if (batch.size() < RowCapacity(0)) {
    batch.resize(RowCapacity(0));
    scratch->batch_dots.resize(RowCapacity(0));
  }
  const double entry_dist = Dist(entry, query);
  if (stats != nullptr) ++stats->distance_evals;
  frontier.emplace_back(entry_dist, entry);
  best.emplace_back(entry_dist, entry);
  scratch->Mark(entry);
  while (!frontier.empty()) {
    const DistNode cand = frontier.front();
    if (best.size() >= ef && cand > best.front()) break;
    HeapPop(&frontier, std::less<DistNode>{});
    if (!frontier.empty()) {
      const auto next = static_cast<size_t>(frontier.front().second);
      SUBREC_ANN_PREFETCH(vectors_.data() + next * dim_);
      SUBREC_ANN_PREFETCH(LinkRow(next, level));
    }
    if (stats != nullptr) ++stats->nodes_visited;
    const int32_t* row = LinkRow(static_cast<size_t>(cand.second), level);
    const auto count = static_cast<size_t>(row[0]);
    // Gather the unvisited neighbors in link order, then score the whole
    // batch in one kernel call. Marking before scoring is equivalent to
    // the interleaved loop: links within a row are distinct, and the heap
    // pushes below neither read nor write the visited stamps.
    int32_t* bp = batch.data();
    size_t bn = 0;
    // Branchless compaction: the fresh/visited split is data-dependent
    // 50/50 noise the branch predictor can't learn, so write every link
    // and advance the cursor by the freshness flag instead. Re-stamping a
    // visited node is a no-op, and slots past `bn` are dead by contract.
    const uint8_t epoch = scratch->epoch;
    uint8_t* stamp = scratch->stamp.data();
    for (size_t t = 0; t < count; ++t) {
      const int32_t nb = row[1 + t];
      const uint8_t fresh = stamp[nb] != epoch;
      stamp[nb] = epoch;
      bp[bn] = nb;
      bn += fresh;
    }
    if (bn == 0) continue;
    // Hint every other cache line of the fresh rows before the kernel (the
    // adjacent-line prefetcher pairs the rest): one line is not enough for
    // a dim~48 row spanning six lines, and the kernel touches all of them
    // within a few hundred cycles. Filtering first halves the hints issued
    // — roughly every other link was already visited.
    for (size_t t = 0; t < bn; ++t) {
      const double* v = vectors_.data() + static_cast<size_t>(bp[t]) * dim_;
      for (size_t d = 0; d < dim_; d += 16) SUBREC_ANN_PREFETCH(v + d);
    }
    la::AnnDotBatch(query, vectors_.data(), dim_, bp, bn,
                    scratch->batch_dots.data());
    if (stats != nullptr) stats->distance_evals += bn;
    for (size_t t = 0; t < bn; ++t) {
      const int32_t nb = bp[t];
      const double d = -scratch->batch_dots[t];
      if (best.size() < ef) {
        HeapPush(&frontier, DistNode(d, nb), std::less<DistNode>{});
        HeapPush(&best, DistNode(d, nb), std::greater<DistNode>{});
      } else if (DistNode(d, nb) < best.front()) {
        HeapPush(&frontier, DistNode(d, nb), std::less<DistNode>{});
        HeapReplaceTop(&best, DistNode(d, nb), std::greater<DistNode>{});
      }
    }
  }
  out->assign(best.begin(), best.end());
  Heapify(out, std::less<DistNode>{});
}

void HnswIndex::SelectNeighbors(std::vector<DistNode>* candidates,
                                size_t max_links, SearchScratch* scratch,
                                std::vector<int32_t>* out) const {
  // Closest-first diversity heuristic: keep a candidate only if it is
  // closer to the target than to every neighbor already kept, so the kept
  // set spreads across directions instead of clumping in one cluster.
  //
  // `candidates` arrives as a min-heap and is consumed by lazy pops:
  // selection usually saturates max_links long before the heap is empty,
  // so candidates past that point are never even ordered — that is the
  // other half of the sort SearchLayer no longer pays for. Each popped
  // candidate is checked against the kept list in kernel-batched chunks;
  // the chunk may score a few positions past the first violation, but
  // whether ANY kept neighbor violates is order-independent, the dot is
  // commutative bit-for-bit, and distinct-element pops reproduce sorted
  // order exactly, so the kept set matches the classic nested scalar loop
  // byte for byte. Unlike the search-layer batches the kept rows (at most
  // max_links of them, re-read for every candidate) are L1-resident, which
  // is what makes small-batch kernel calls worth it here.
  auto& heap = *candidates;
  auto& selected = *out;
  selected.clear();
  auto& dots = scratch->sel_dots;
  constexpr size_t kChunk = 8;
  if (dots.size() < kChunk) dots.resize(kChunk);
  while (!heap.empty() && selected.size() < max_links) {
    const DistNode cand = heap.front();
    HeapPop(&heap, std::less<DistNode>{});
    const double* cand_vec =
        vectors_.data() + static_cast<size_t>(cand.second) * dim_;
    const size_t kept = selected.size();
    bool keep = true;
    for (size_t j = 0; j < kept && keep; j += kChunk) {
      const size_t m = kept - j < kChunk ? kept - j : kChunk;
      la::AnnDotBatch(cand_vec, vectors_.data(), dim_, selected.data() + j, m,
                      dots.data());
      for (size_t q = 0; q < m; ++q) {
        if (-dots[q] < cand.first) {  // Clumps behind a kept neighbor: drop.
          keep = false;
          break;
        }
      }
    }
    if (keep) selected.push_back(cand.second);
  }
  // Deliberately NO backfill of pruned candidates ("keepPrunedConnections"):
  // measured on the 1e5 bench/ann_recall preset, saturating neighbor sets
  // with near-duplicates drops recall@10 from 0.97 to ~0.75-0.80 at ef=128.
  // The cost is that very small graphs can leave a node with in-degree 0;
  // callers needing exhaustive retrieval at that scale should use
  // ExactIndex (the serving path only builds HNSW over real pools).
}

HnswIndex::InsertPlan HnswIndex::PlanInsert(size_t node,
                                            SearchScratch* scratch) const {
  const double* query = vectors_.data() + node * dim_;
  const int32_t node_level = levels_[node];
  const size_t stride = 1 + static_cast<size_t>(M_);
  InsertPlan plan;
  plan.flat.assign((static_cast<size_t>(node_level) + 1) * stride, 0);
  int32_t cur = entry_;
  double cur_dist = Dist(cur, query);
  for (int32_t lev = max_level_; lev > node_level; --lev)
    GreedyStep(query, lev, &cur, &cur_dist, scratch, nullptr);
  for (int32_t lev = std::min(node_level, max_level_); lev >= 0; --lev) {
    SearchLayer(query, cur, static_cast<size_t>(ef_construction_), lev,
                scratch, &scratch->found, nullptr);
    // Heap top = closest found, the entry for the next level down. Read it
    // before SelectNeighbors consumes the heap.
    cur = scratch->found.front().second;
    cur_dist = scratch->found.front().first;
    SelectNeighbors(&scratch->found, static_cast<size_t>(M_), scratch,
                    &scratch->selected);
    int32_t* row = plan.flat.data() + static_cast<size_t>(lev) * stride;
    row[0] = static_cast<int32_t>(scratch->selected.size());
    std::copy(scratch->selected.begin(), scratch->selected.end(), row + 1);
  }
  return plan;
}

void HnswIndex::CommitBatch(size_t start, size_t count,
                            std::vector<InsertPlan>* plans,
                            SearchScratch* scratch) {
  const size_t stride = 1 + static_cast<size_t>(M_);
  // Phase 1: forward rows, ascending node order. Plans only reference
  // pre-batch nodes (they were computed against the frozen graph), so
  // these writes can never alias the back-link rows phase 2 touches.
  int32_t batch_top = 0;
  for (size_t j = 0; j < count; ++j) {
    const size_t node = start + j;
    const int32_t node_level = levels_[node];
    batch_top = std::max(batch_top, std::min(node_level, max_level_));
    for (int32_t lev = 0; lev <= node_level; ++lev) {
      const int32_t* src =
          (*plans)[j].flat.data() + static_cast<size_t>(lev) * stride;
      int32_t* dst = LinkRow(node, lev);
      std::copy(src, src + 1 + src[0], dst);
    }
  }
  // Phase 2: back-links, grouped by level. Grouping is a pure reordering:
  // a row (neighbor, level) is only ever mutated by its own back-link
  // appends, each append event carries the same (inserting node, link)
  // order the per-node commit sequence used, and rows never read each
  // other — so replaying the events grouped by level, then by neighbor,
  // yields the exact link structure (and Serialize() bytes) the per-node
  // schedule produced, while touching each arena row once per batch
  // instead of scattering writes across the whole level every insertion.
  // A once-per-node union re-selection was measured here too: it commits
  // faster still, but the diversity heuristic is not associative — the
  // graphs drifted from the pre-refactor snapshots and recall on small
  // graphs moved. Replay keeps the bytes pinned.
  std::vector<std::pair<int32_t, int32_t>> backlinks;  // (neighbor, new node)
  for (int32_t lev = 0; lev <= batch_top; ++lev) {
    const size_t cap = RowCapacity(lev);
    backlinks.clear();
    for (size_t j = 0; j < count; ++j) {
      const size_t node = start + j;
      if (lev > levels_[node]) continue;
      const int32_t* row =
          (*plans)[j].flat.data() + static_cast<size_t>(lev) * stride;
      const auto self = static_cast<int32_t>(node);
      for (int32_t t = 0; t < row[0]; ++t)
        backlinks.emplace_back(row[1 + t], self);
    }
    if (backlinks.empty()) continue;
    // Pairs were pushed in ascending (batch node, link) order and are
    // distinct (a plan links each neighbor at most once per level), so a
    // plain sort groups by neighbor while keeping each group's back-links
    // in the order the per-node commits appended them.
    std::sort(backlinks.begin(), backlinks.end());
    size_t g = 0;
    while (g < backlinks.size()) {
      const int32_t nb = backlinks[g].first;
      size_t h = g;
      while (h < backlinks.size() && backlinks[h].first == nb) ++h;
      int32_t* back = LinkRow(static_cast<size_t>(nb), lev);
      const double* nb_vec = vectors_.data() + static_cast<size_t>(nb) * dim_;
      for (size_t q = g; q < h; ++q) {
        const int32_t self = backlinks[q].second;
        if (static_cast<size_t>(back[0]) < cap) {
          back[1 + back[0]] = self;
          ++back[0];
          continue;
        }
        // Over-degree: re-select the neighbor's links with the same
        // diversity heuristic, from its own vantage point. The freshly
        // added back-link competes on equal terms and may be dropped.
        auto& cand_ids = scratch->batch_ids;
        cand_ids.clear();
        for (int32_t t = 0; t < back[0]; ++t) cand_ids.push_back(back[1 + t]);
        cand_ids.push_back(self);
        if (scratch->batch_dots.size() < cand_ids.size())
          scratch->batch_dots.resize(cand_ids.size());
        la::AnnDotBatch(nb_vec, vectors_.data(), dim_, cand_ids.data(),
                        cand_ids.size(), scratch->batch_dots.data());
        auto& resort = scratch->resort;
        resort.clear();
        for (size_t t = 0; t < cand_ids.size(); ++t)
          resort.emplace_back(-scratch->batch_dots[t], cand_ids[t]);
        Heapify(&resort, std::less<DistNode>{});
        SelectNeighbors(&resort, cap, scratch, &scratch->selected);
        back[0] = static_cast<int32_t>(scratch->selected.size());
        std::copy(scratch->selected.begin(), scratch->selected.end(),
                  back + 1);
      }
      g = h;
    }
  }
  // Phase 3: entry point, ascending node order — the same winner the
  // per-node commit sequence would have crowned.
  for (size_t j = 0; j < count; ++j) {
    const int32_t node_level = levels_[start + j];
    if (node_level > max_level_) {
      max_level_ = node_level;
      entry_ = static_cast<int32_t>(start + j);
    }
  }
}

namespace {

/// The pre-arena build algorithm, preserved bit-for-bit for same-host A/B
/// benchmarking (ann.build.speedup_vs_baseline) and for the golden
/// pre-refactor snapshot test: nested-vector links, per-search heap
/// allocations, scalar one-at-a-time distances, and a diversity
/// re-selection after EVERY over-capacity back-link. Structurally a copy
/// of the old HnswIndex internals operating on borrowed index fields; the
/// result is packed into the arena when it finishes.
struct LegacyBuilder {
  using DistNode = std::pair<double, int32_t>;

  struct Scratch {
    std::vector<uint8_t> stamp;
    uint8_t epoch = 0;
    void NextEpoch(size_t n) {
      if (stamp.size() < n) stamp.assign(n, 0);
      ++epoch;
      if (epoch == 0) {
        std::fill(stamp.begin(), stamp.end(), uint8_t{0});
        epoch = 1;
      }
    }
    bool Visited(int32_t node) const {
      return stamp[static_cast<size_t>(node)] == epoch;
    }
    void Mark(int32_t node) { stamp[static_cast<size_t>(node)] = epoch; }
  };

  struct Plan {
    std::vector<std::vector<int32_t>> links;
  };

  size_t dim;
  int M;
  int ef_construction;
  const std::vector<double>& vectors;
  const std::vector<int32_t>& levels;
  std::vector<std::vector<std::vector<int32_t>>> links;
  int32_t max_level = -1;
  int32_t entry = -1;

  double Dist(int32_t node, const double* query) const {
    const double* v = vectors.data() + static_cast<size_t>(node) * dim;
    double dot = 0.0;
    for (size_t d = 0; d < dim; ++d) dot += query[d] * v[d];
    return -dot;
  }

  void GreedyStep(const double* query, int32_t level, int32_t* cur,
                  double* cur_dist) const {
    bool improved = true;
    while (improved) {
      improved = false;
      for (int32_t nb :
           links[static_cast<size_t>(*cur)][static_cast<size_t>(level)]) {
        const double d = Dist(nb, query);
        if (d < *cur_dist || (d == *cur_dist && nb < *cur)) {
          *cur_dist = d;
          *cur = nb;
          improved = true;
        }
      }
    }
  }

  void SearchLayer(const double* query, int32_t first, size_t ef,
                   int32_t level, Scratch* scratch,
                   std::vector<DistNode>* out) const {
    scratch->NextEpoch(levels.size());
    std::priority_queue<DistNode, std::vector<DistNode>,
                        std::greater<DistNode>>
        frontier;
    std::priority_queue<DistNode> best;
    const double entry_dist = Dist(first, query);
    frontier.emplace(entry_dist, first);
    best.emplace(entry_dist, first);
    scratch->Mark(first);
    while (!frontier.empty()) {
      const DistNode cand = frontier.top();
      if (best.size() >= ef && cand > best.top()) break;
      frontier.pop();
      for (int32_t nb : links[static_cast<size_t>(cand.second)]
                             [static_cast<size_t>(level)]) {
        if (scratch->Visited(nb)) continue;
        scratch->Mark(nb);
        const double d = Dist(nb, query);
        if (best.size() < ef || DistNode(d, nb) < best.top()) {
          frontier.emplace(d, nb);
          best.emplace(d, nb);
          if (best.size() > ef) best.pop();
        }
      }
    }
    out->clear();
    out->resize(best.size());
    for (size_t i = best.size(); i-- > 0;) {
      (*out)[i] = best.top();
      best.pop();
    }
  }

  std::vector<int32_t> SelectNeighbors(const std::vector<DistNode>& candidates,
                                       size_t max_links) const {
    std::vector<int32_t> selected;
    selected.reserve(std::min(max_links, candidates.size()));
    for (const DistNode& cand : candidates) {
      if (selected.size() >= max_links) break;
      const double* cand_vec =
          vectors.data() + static_cast<size_t>(cand.second) * dim;
      bool diverse = true;
      for (int32_t kept : selected) {
        if (Dist(kept, cand_vec) < cand.first) {
          diverse = false;
          break;
        }
      }
      if (diverse) selected.push_back(cand.second);
    }
    return selected;
  }

  Plan PlanInsert(size_t node, Scratch* scratch) const {
    const double* query = vectors.data() + node * dim;
    const int32_t node_level = levels[node];
    Plan plan;
    plan.links.resize(static_cast<size_t>(node_level) + 1);
    int32_t cur = entry;
    double cur_dist = Dist(cur, query);
    for (int32_t lev = max_level; lev > node_level; --lev)
      GreedyStep(query, lev, &cur, &cur_dist);
    std::vector<DistNode> candidates;
    for (int32_t lev = std::min(node_level, max_level); lev >= 0; --lev) {
      SearchLayer(query, cur, static_cast<size_t>(ef_construction), lev,
                  scratch, &candidates);
      plan.links[static_cast<size_t>(lev)] =
          SelectNeighbors(candidates, static_cast<size_t>(M));
      cur = candidates.front().second;
      cur_dist = candidates.front().first;
    }
    return plan;
  }

  void CommitInsert(size_t node, Plan plan) {
    const int32_t node_level = levels[node];
    for (size_t lev = 0; lev < plan.links.size(); ++lev)
      links[node][lev] = std::move(plan.links[lev]);
    const auto self = static_cast<int32_t>(node);
    for (size_t lev = 0; lev < links[node].size(); ++lev) {
      const size_t cap =
          lev == 0 ? 2 * static_cast<size_t>(M) : static_cast<size_t>(M);
      for (int32_t nb : links[node][lev]) {
        auto& back = links[static_cast<size_t>(nb)][lev];
        back.push_back(self);
        if (back.size() <= cap) continue;
        const double* nb_vec =
            vectors.data() + static_cast<size_t>(nb) * dim;
        std::vector<DistNode> resort(back.size());
        for (size_t j = 0; j < back.size(); ++j)
          resort[j] = DistNode(Dist(back[j], nb_vec), back[j]);
        std::sort(resort.begin(), resort.end());
        back = SelectNeighbors(resort, cap);
      }
    }
    if (node_level > max_level) {
      max_level = node_level;
      entry = self;
    }
  }

  void Run() {
    const size_t n = levels.size();
    links.resize(n);
    for (size_t i = 0; i < n; ++i)
      links[i].resize(static_cast<size_t>(levels[i]) + 1);
    if (n == 0) return;
    entry = 0;
    max_level = levels[0];
    size_t start = 1;
    std::vector<Plan> plans;
    while (start < n) {
      const size_t batch = std::min({start, kMaxBatch, n - start});
      plans.clear();
      plans.resize(batch);
      const LegacyBuilder* frozen = this;
      par::ParallelFor(batch, kBuildGrain,
                       [frozen, &plans, start](size_t begin, size_t end) {
                         Scratch scratch;
                         for (size_t j = begin; j < end; ++j)
                           plans[j] = frozen->PlanInsert(start + j, &scratch);
                       });
      for (size_t j = 0; j < batch; ++j)
        CommitInsert(start + j, std::move(plans[j]));
      start += batch;
    }
  }
};

}  // namespace

void HnswIndex::BuildLegacy() {
  LegacyBuilder builder{dim_, M_, ef_construction_, vectors_, levels_, {}};
  builder.Run();
  max_level_ = builder.max_level;
  entry_ = builder.entry;
  for (size_t i = 0; i < ids_.size(); ++i) {
    for (int32_t lev = 0; lev <= levels_[i]; ++lev) {
      const auto& level_links = builder.links[i][static_cast<size_t>(lev)];
      int32_t* row = LinkRow(i, lev);
      row[0] = static_cast<int32_t>(level_links.size());
      std::copy(level_links.begin(), level_links.end(), row + 1);
    }
  }
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Build(
    std::vector<int32_t> ids, std::vector<double> vectors, size_t dim,
    const HnswOptions& options) {
  if (dim == 0) return Status::InvalidArgument("hnsw: dim must be positive");
  if (vectors.size() != ids.size() * dim)
    return Status::InvalidArgument(
        "hnsw: " + std::to_string(ids.size()) + " ids x dim " +
        std::to_string(dim) + " != " + std::to_string(vectors.size()) +
        " vector values");
  if (options.M < 2 || options.M > 256)
    return Status::InvalidArgument("hnsw: M out of range [2, 256]");
  if (options.ef_construction < options.M ||
      static_cast<uint32_t>(options.ef_construction) > kMaxEfConstruction)
    return Status::InvalidArgument("hnsw: ef_construction out of range [M, " +
                                   std::to_string(kMaxEfConstruction) + "]");

  auto index = std::unique_ptr<HnswIndex>(new HnswIndex());
  index->dim_ = dim;
  index->M_ = options.M;
  index->ef_construction_ = options.ef_construction;
  index->seed_ = options.seed;
  index->ids_ = std::move(ids);
  index->vectors_ = std::move(vectors);
  const size_t n = index->ids_.size();
  const double mult = 1.0 / std::log(static_cast<double>(options.M));
  index->levels_.resize(n);
  for (size_t i = 0; i < n; ++i)
    index->levels_[i] = LevelForNode(options.seed, i, mult);
  index->AllocateArena();
  if (n == 0) return index;

  if (options.legacy_build) {
    index->BuildLegacy();
    return index;
  }

  index->entry_ = 0;
  index->max_level_ = index->levels_[0];
  // Doubling batches: plan all insertions of a batch in parallel against
  // the frozen pre-batch graph, then commit the batch serially. Each batch
  // at most doubles the graph (and is capped), so every node still links
  // into a graph holding at least half the corpus below it, while the plan
  // phase — all the distance work — parallelizes.
  size_t start = 1;
  std::vector<InsertPlan> plans;
  SearchScratch commit_scratch;
  while (start < n) {
    const size_t batch = std::min({start, kMaxBatch, n - start});
    plans.clear();
    plans.resize(batch);
    const HnswIndex* frozen = index.get();
    par::ParallelFor(batch, kBuildGrain,
                     [frozen, &plans, start](size_t begin, size_t end) {
                       SearchScratch scratch;
                       for (size_t j = begin; j < end; ++j)
                         plans[j] = frozen->PlanInsert(start + j, &scratch);
                     });
    index->CommitBatch(start, batch, &plans, &commit_scratch);
    start += batch;
  }
  return index;
}

Status HnswIndex::Search(const std::vector<double>& query, int k, int ef,
                         std::vector<Neighbor>* out,
                         SearchStats* stats) const {
  if (k <= 0) return Status::InvalidArgument("ann: k must be positive");
  if (query.size() != dim_)
    return Status::InvalidArgument("ann: query dim " +
                                   std::to_string(query.size()) +
                                   " != index dim " + std::to_string(dim_));
  out->clear();
  if (ids_.empty()) return Status::Ok();
  // One scratch pool per serving thread, shared across every HnswIndex:
  // grow-only buffers plus epoch-stamped visited markers (each SearchLayer
  // bumps the epoch, so stamps left by other indexes can never read as
  // visited). After one warm query per thread the whole search path stops
  // allocating — the zero-allocation probe in tests/obs_serving_test.cc
  // holds this path to that.
  static thread_local SearchScratch scratch;
  const size_t beam = static_cast<size_t>(std::max(ef, k));
  int32_t cur = entry_;
  double cur_dist = Dist(cur, query.data());
  if (stats != nullptr) ++stats->distance_evals;
  for (int32_t lev = max_level_; lev >= 1; --lev)
    GreedyStep(query.data(), lev, &cur, &cur_dist, &scratch, stats);
  SearchLayer(query.data(), cur, beam, 0, &scratch, &scratch.found, stats);
  const auto& found = scratch.found;
  out->reserve(std::min(found.size(), static_cast<size_t>(k)));
  for (const DistNode& f : found)
    out->push_back(Neighbor{ids_[static_cast<size_t>(f.second)], -f.first});
  // Graph order ties on internal node; callers are promised external-id
  // tie order, identical to ExactIndex.
  std::sort(out->begin(), out->end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (out->size() > static_cast<size_t>(k))
    out->resize(static_cast<size_t>(k));
  return Status::Ok();
}

std::string HnswIndex::Serialize() const {
  std::string out;
  wire::AppendU64(&out, kMagic);
  wire::AppendU32(&out, kVersion);
  wire::AppendU32(&out, static_cast<uint32_t>(dim_));
  wire::AppendU64(&out, ids_.size());
  wire::AppendU32(&out, static_cast<uint32_t>(M_));
  wire::AppendU32(&out, static_cast<uint32_t>(ef_construction_));
  wire::AppendU64(&out, seed_);
  wire::AppendI32(&out, max_level_);
  wire::AppendI32(&out, entry_);
  for (int32_t level : levels_) wire::AppendI32(&out, level);
  for (int32_t id : ids_) wire::AppendI32(&out, id);
  for (double v : vectors_) wire::AppendDouble(&out, v);
  // Arena rows print as the same nested count-prefixed lists the pre-arena
  // encoder wrote: the capacity padding never reaches the wire.
  for (size_t i = 0; i < ids_.size(); ++i) {
    for (int32_t lev = 0; lev <= levels_[i]; ++lev) {
      const int32_t* row = LinkRow(i, lev);
      wire::AppendU32(&out, static_cast<uint32_t>(row[0]));
      for (int32_t t = 0; t < row[0]; ++t) wire::AppendI32(&out, row[1 + t]);
    }
  }
  return out;
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Deserialize(
    std::string_view bytes) {
  wire::Cursor c(bytes);
  uint64_t magic = 0, n = 0, seed = 0;
  uint32_t version = 0, dim = 0, m = 0, ef_construction = 0;
  SUBREC_RETURN_NOT_OK(c.ReadU64(&magic));
  if (magic != kMagic)
    return Status::InvalidArgument("hnsw: bad magic (not an ann index?)");
  SUBREC_RETURN_NOT_OK(c.ReadU32(&version));
  if (version != kVersion)
    return Status::InvalidArgument("hnsw: unsupported version " +
                                   std::to_string(version));
  SUBREC_RETURN_NOT_OK(c.ReadU32(&dim));
  SUBREC_RETURN_NOT_OK(c.ReadU64(&n));
  SUBREC_RETURN_NOT_OK(c.ReadU32(&m));
  SUBREC_RETURN_NOT_OK(c.ReadU32(&ef_construction));
  SUBREC_RETURN_NOT_OK(c.ReadU64(&seed));
  // Re-validate like Build would, then bound every count by the bytes
  // actually present BEFORE allocating — a crafted header must not be able
  // to reserve gigabytes or index out of range.
  if (dim == 0) return Status::InvalidArgument("hnsw: dim must be positive");
  if (m < 2 || m > 256)
    return Status::InvalidArgument("hnsw: M out of range [2, 256]");
  if (ef_construction < m || ef_construction > kMaxEfConstruction)
    return Status::InvalidArgument("hnsw: ef_construction out of range");
  if (n > c.remaining() / 4)
    return Status::OutOfRange("hnsw: node count larger than its payload");
  if (n > 0 && dim > c.remaining() / 8)
    return Status::OutOfRange("hnsw: dim larger than its payload");

  auto index = std::unique_ptr<HnswIndex>(new HnswIndex());
  index->dim_ = dim;
  index->M_ = static_cast<int>(m);
  index->seed_ = seed;
  SUBREC_RETURN_NOT_OK(c.ReadI32(&index->max_level_));
  SUBREC_RETURN_NOT_OK(c.ReadI32(&index->entry_));
  if (n > 0 && (index->entry_ < 0 || static_cast<uint64_t>(index->entry_) >= n))
    return Status::InvalidArgument("hnsw: entry point out of range");
  if (n == 0 && (index->entry_ != -1 || index->max_level_ != -1))
    return Status::InvalidArgument("hnsw: empty index with entry point");
  if (index->max_level_ > kMaxLevelCap || index->max_level_ < -1)
    return Status::InvalidArgument("hnsw: max level out of range");

  index->levels_.resize(static_cast<size_t>(n));
  for (int32_t& level : index->levels_) {
    SUBREC_RETURN_NOT_OK(c.ReadI32(&level));
    if (level < 0 || level > index->max_level_)
      return Status::InvalidArgument("hnsw: node level out of range");
  }
  if (n > 0 &&
      index->levels_[static_cast<size_t>(index->entry_)] != index->max_level_)
    return Status::InvalidArgument("hnsw: entry point level skew");
  index->ids_.resize(static_cast<size_t>(n));
  for (int32_t& id : index->ids_) SUBREC_RETURN_NOT_OK(c.ReadI32(&id));
  if (static_cast<uint64_t>(dim) * n > c.remaining() / 8)
    return Status::OutOfRange("hnsw: vectors larger than their payload");
  index->vectors_.resize(static_cast<size_t>(n) * dim);
  for (double& v : index->vectors_) SUBREC_RETURN_NOT_OK(c.ReadDouble(&v));
  index->AllocateArena();
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    for (int32_t lev = 0; lev <= index->levels_[i]; ++lev) {
      uint32_t count = 0;
      SUBREC_RETURN_NOT_OK(c.ReadU32(&count));
      // The arena rows have fixed capacity, and no well-formed encoder
      // could exceed it: Build never links a node past M (2M at level 0).
      if (count > index->RowCapacity(lev))
        return Status::InvalidArgument(
            "hnsw: link count exceeds level capacity");
      if (count > c.remaining() / 4)
        return Status::OutOfRange("hnsw: link list larger than its payload");
      int32_t* row = index->LinkRow(i, lev);
      row[0] = static_cast<int32_t>(count);
      for (uint32_t t = 0; t < count; ++t) {
        int32_t nb = 0;
        SUBREC_RETURN_NOT_OK(c.ReadI32(&nb));
        if (nb < 0 || static_cast<uint64_t>(nb) >= n)
          return Status::InvalidArgument("hnsw: neighbor out of range");
        // A link at level L to a node that does not reach level L would
        // send Search indexing past that node's link rows.
        if (index->levels_[static_cast<size_t>(nb)] < lev)
          return Status::InvalidArgument("hnsw: neighbor level skew");
        row[1 + t] = nb;
      }
    }
  }
  if (c.remaining() != 0)
    return Status::InvalidArgument("hnsw: trailing bytes after index");
  index->ef_construction_ = static_cast<int>(ef_construction);
  return index;
}

}  // namespace subrec::ann
