#include "ann/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "common/wire.h"
#include "par/parallel.h"

namespace subrec::ann {
namespace {

// "SUBRANN1" read as a little-endian u64.
constexpr uint64_t kMagic = 0x314E4E4152425553ULL;
constexpr uint32_t kVersion = 1;
// Geometric levels rarely exceed ~log_M(n); the cap only bounds adversarial
// deserialized input and the (astronomically unlikely) long random tail.
constexpr int32_t kMaxLevelCap = 30;
// Insertion batches double in size up to this cap. Within a batch nodes
// plan against the pre-batch graph only, so the cap bounds how much of the
// corpus any insertion is blind to once the graph is large.
constexpr size_t kMaxBatch = 1024;
// Insertions per ParallelFor chunk: amortizes one Scratch allocation per
// chunk without starving the pool on mid-sized batches.
constexpr size_t kBuildGrain = 16;
// Upper bound on ef_construction, enforced identically by Build and
// Deserialize so every index that can be built can also be loaded.
constexpr uint32_t kMaxEfConstruction = uint32_t{1} << 20;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Level for node `i`: geometric with ratio 1/M, from a hash of (seed, i)
/// alone — independent of thread count, insertion order, and batch shape.
int32_t LevelForNode(uint64_t seed, size_t i, double mult) {
  const uint64_t h = SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(i)));
  // (0, 1]: +1 keeps log() finite; >> 11 keeps the 53-bit double mantissa.
  const double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
  const auto level = static_cast<int32_t>(-std::log(u) * mult);
  return std::min(level, kMaxLevelCap);
}

}  // namespace

void HnswIndex::Scratch::NextEpoch(size_t n) {
  if (stamp.size() < n) stamp.assign(n, 0);
  ++epoch;
  if (epoch == 0) {  // uint8 wrapped: stale stamps could alias, clear.
    std::fill(stamp.begin(), stamp.end(), uint8_t{0});
    epoch = 1;
  }
}

double HnswIndex::Dist(int32_t node, const double* query) const {
  const double* v = vectors_.data() + static_cast<size_t>(node) * dim_;
  double dot = 0.0;
  for (size_t d = 0; d < dim_; ++d) dot += query[d] * v[d];
  return -dot;  // Max inner product as min distance.
}

void HnswIndex::GreedyStep(const double* query, int32_t level, int32_t* cur,
                           double* cur_dist, SearchStats* stats) const {
  bool improved = true;
  while (improved) {
    improved = false;
    if (stats != nullptr) ++stats->nodes_visited;
    for (int32_t nb : links_[static_cast<size_t>(*cur)]
                            [static_cast<size_t>(level)]) {
      const double d = Dist(nb, query);
      if (stats != nullptr) ++stats->distance_evals;
      // Strict improvement, node id as tiebreak: a total order, so the
      // walk can neither cycle nor depend on evaluation timing.
      if (d < *cur_dist || (d == *cur_dist && nb < *cur)) {
        *cur_dist = d;
        *cur = nb;
        improved = true;
      }
    }
  }
}

void HnswIndex::SearchLayer(const double* query, int32_t entry, size_t ef,
                            int32_t level, Scratch* scratch,
                            std::vector<DistNode>* out,
                            SearchStats* stats) const {
  scratch->NextEpoch(ids_.size());
  // `frontier` pops closest-first; `best` tracks the ef closest seen so
  // far with its worst member on top. Pair order ties on node id, so the
  // expansion sequence is a pure function of the graph.
  std::priority_queue<DistNode, std::vector<DistNode>,
                      std::greater<DistNode>>
      frontier;
  std::priority_queue<DistNode> best;
  const double entry_dist = Dist(entry, query);
  if (stats != nullptr) ++stats->distance_evals;
  frontier.emplace(entry_dist, entry);
  best.emplace(entry_dist, entry);
  scratch->Mark(entry);
  while (!frontier.empty()) {
    const DistNode cand = frontier.top();
    if (best.size() >= ef && cand > best.top()) break;
    frontier.pop();
    if (stats != nullptr) ++stats->nodes_visited;
    for (int32_t nb : links_[static_cast<size_t>(cand.second)]
                            [static_cast<size_t>(level)]) {
      if (scratch->Visited(nb)) continue;
      scratch->Mark(nb);
      const double d = Dist(nb, query);
      if (stats != nullptr) ++stats->distance_evals;
      if (best.size() < ef || DistNode(d, nb) < best.top()) {
        frontier.emplace(d, nb);
        best.emplace(d, nb);
        if (best.size() > ef) best.pop();
      }
    }
  }
  out->clear();
  out->resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    (*out)[i] = best.top();
    best.pop();
  }
}

std::vector<int32_t> HnswIndex::SelectNeighbors(
    const std::vector<DistNode>& candidates, size_t max_links) const {
  // Closest-first diversity heuristic: keep a candidate only if it is
  // closer to the target than to every neighbor already kept, so the kept
  // set spreads across directions instead of clumping in one cluster.
  std::vector<int32_t> selected;
  selected.reserve(std::min(max_links, candidates.size()));
  for (const DistNode& cand : candidates) {
    if (selected.size() >= max_links) break;
    const double* cand_vec =
        vectors_.data() + static_cast<size_t>(cand.second) * dim_;
    bool diverse = true;
    for (int32_t kept : selected) {
      if (Dist(kept, cand_vec) < cand.first) {
        diverse = false;
        break;
      }
    }
    if (diverse) selected.push_back(cand.second);
  }
  // Deliberately NO backfill of pruned candidates ("keepPrunedConnections"):
  // measured on the 1e5 bench/ann_recall preset, saturating neighbor sets
  // with near-duplicates drops recall@10 from 0.97 to ~0.75-0.80 at ef=128.
  // The cost is that very small graphs can leave a node with in-degree 0;
  // callers needing exhaustive retrieval at that scale should use
  // ExactIndex (the serving path only builds HNSW over real pools).
  return selected;
}

HnswIndex::InsertPlan HnswIndex::PlanInsert(size_t node,
                                            Scratch* scratch) const {
  const double* query = vectors_.data() + node * dim_;
  const int32_t node_level = levels_[node];
  InsertPlan plan;
  plan.links.resize(static_cast<size_t>(node_level) + 1);
  int32_t cur = entry_;
  double cur_dist = Dist(cur, query);
  for (int32_t lev = max_level_; lev > node_level; --lev)
    GreedyStep(query, lev, &cur, &cur_dist, nullptr);
  std::vector<DistNode> candidates;
  for (int32_t lev = std::min(node_level, max_level_); lev >= 0; --lev) {
    SearchLayer(query, cur, static_cast<size_t>(ef_construction_), lev,
                scratch, &candidates, nullptr);
    plan.links[static_cast<size_t>(lev)] =
        SelectNeighbors(candidates, static_cast<size_t>(M_));
    cur = candidates.front().second;
    cur_dist = candidates.front().first;
  }
  return plan;
}

void HnswIndex::CommitInsert(size_t node, InsertPlan plan) {
  const int32_t node_level = levels_[node];
  for (size_t lev = 0; lev < plan.links.size(); ++lev)
    links_[node][lev] = std::move(plan.links[lev]);
  const auto self = static_cast<int32_t>(node);
  for (size_t lev = 0; lev < links_[node].size(); ++lev) {
    const size_t cap =
        lev == 0 ? 2 * static_cast<size_t>(M_) : static_cast<size_t>(M_);
    for (int32_t nb : links_[node][lev]) {
      auto& back = links_[static_cast<size_t>(nb)][lev];
      back.push_back(self);
      if (back.size() <= cap) continue;
      // Over-degree: re-select the neighbor's links with the same
      // diversity heuristic, from its own vantage point. The freshly
      // added back-link competes on equal terms and may be dropped.
      const double* nb_vec =
          vectors_.data() + static_cast<size_t>(nb) * dim_;
      std::vector<DistNode> resort(back.size());
      for (size_t j = 0; j < back.size(); ++j)
        resort[j] = DistNode(Dist(back[j], nb_vec), back[j]);
      std::sort(resort.begin(), resort.end());
      back = SelectNeighbors(resort, cap);
    }
  }
  if (node_level > max_level_) {
    max_level_ = node_level;
    entry_ = self;
  }
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Build(
    std::vector<int32_t> ids, std::vector<double> vectors, size_t dim,
    const HnswOptions& options) {
  if (dim == 0) return Status::InvalidArgument("hnsw: dim must be positive");
  if (vectors.size() != ids.size() * dim)
    return Status::InvalidArgument(
        "hnsw: " + std::to_string(ids.size()) + " ids x dim " +
        std::to_string(dim) + " != " + std::to_string(vectors.size()) +
        " vector values");
  if (options.M < 2 || options.M > 256)
    return Status::InvalidArgument("hnsw: M out of range [2, 256]");
  if (options.ef_construction < options.M ||
      static_cast<uint32_t>(options.ef_construction) > kMaxEfConstruction)
    return Status::InvalidArgument("hnsw: ef_construction out of range [M, " +
                                   std::to_string(kMaxEfConstruction) + "]");

  auto index = std::unique_ptr<HnswIndex>(new HnswIndex());
  index->dim_ = dim;
  index->M_ = options.M;
  index->ef_construction_ = options.ef_construction;
  index->seed_ = options.seed;
  index->ids_ = std::move(ids);
  index->vectors_ = std::move(vectors);
  const size_t n = index->ids_.size();
  const double mult = 1.0 / std::log(static_cast<double>(options.M));
  index->levels_.resize(n);
  index->links_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    index->levels_[i] = LevelForNode(options.seed, i, mult);
    index->links_[i].resize(static_cast<size_t>(index->levels_[i]) + 1);
  }
  if (n == 0) return index;

  index->entry_ = 0;
  index->max_level_ = index->levels_[0];
  // Doubling batches: plan all insertions of a batch in parallel against
  // the frozen pre-batch graph, then commit serially in ascending node
  // order. Each batch at most doubles the graph (and is capped), so every
  // node still links into a graph holding at least half the corpus below
  // it, while the plan phase — all the distance work — parallelizes.
  size_t start = 1;
  std::vector<InsertPlan> plans;
  while (start < n) {
    const size_t batch = std::min({start, kMaxBatch, n - start});
    plans.clear();
    plans.resize(batch);
    const HnswIndex* frozen = index.get();
    par::ParallelFor(batch, kBuildGrain,
                     [frozen, &plans, start](size_t begin, size_t end) {
                       Scratch scratch;
                       for (size_t j = begin; j < end; ++j)
                         plans[j] = frozen->PlanInsert(start + j, &scratch);
                     });
    for (size_t j = 0; j < batch; ++j)
      index->CommitInsert(start + j, std::move(plans[j]));
    start += batch;
  }
  return index;
}

Status HnswIndex::Search(const std::vector<double>& query, int k, int ef,
                         std::vector<Neighbor>* out,
                         SearchStats* stats) const {
  if (k <= 0) return Status::InvalidArgument("ann: k must be positive");
  if (query.size() != dim_)
    return Status::InvalidArgument("ann: query dim " +
                                   std::to_string(query.size()) +
                                   " != index dim " + std::to_string(dim_));
  out->clear();
  if (ids_.empty()) return Status::Ok();
  const size_t beam = static_cast<size_t>(std::max(ef, k));
  int32_t cur = entry_;
  double cur_dist = Dist(cur, query.data());
  if (stats != nullptr) ++stats->distance_evals;
  for (int32_t lev = max_level_; lev >= 1; --lev)
    GreedyStep(query.data(), lev, &cur, &cur_dist, stats);
  Scratch scratch;
  std::vector<DistNode> found;
  SearchLayer(query.data(), cur, beam, 0, &scratch, &found, stats);
  out->reserve(std::min(found.size(), static_cast<size_t>(k)));
  for (const DistNode& f : found)
    out->push_back(
        Neighbor{ids_[static_cast<size_t>(f.second)], -f.first});
  // Graph order ties on internal node; callers are promised external-id
  // tie order, identical to ExactIndex.
  std::sort(out->begin(), out->end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (out->size() > static_cast<size_t>(k))
    out->resize(static_cast<size_t>(k));
  return Status::Ok();
}

std::string HnswIndex::Serialize() const {
  std::string out;
  wire::AppendU64(&out, kMagic);
  wire::AppendU32(&out, kVersion);
  wire::AppendU32(&out, static_cast<uint32_t>(dim_));
  wire::AppendU64(&out, ids_.size());
  wire::AppendU32(&out, static_cast<uint32_t>(M_));
  wire::AppendU32(&out, static_cast<uint32_t>(ef_construction_));
  wire::AppendU64(&out, seed_);
  wire::AppendI32(&out, max_level_);
  wire::AppendI32(&out, entry_);
  for (int32_t level : levels_) wire::AppendI32(&out, level);
  for (int32_t id : ids_) wire::AppendI32(&out, id);
  for (double v : vectors_) wire::AppendDouble(&out, v);
  for (const auto& node_links : links_) {
    for (const auto& level_links : node_links) {
      wire::AppendU32(&out, static_cast<uint32_t>(level_links.size()));
      for (int32_t nb : level_links) wire::AppendI32(&out, nb);
    }
  }
  return out;
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Deserialize(
    std::string_view bytes) {
  wire::Cursor c(bytes);
  uint64_t magic = 0, n = 0, seed = 0;
  uint32_t version = 0, dim = 0, m = 0, ef_construction = 0;
  SUBREC_RETURN_NOT_OK(c.ReadU64(&magic));
  if (magic != kMagic)
    return Status::InvalidArgument("hnsw: bad magic (not an ann index?)");
  SUBREC_RETURN_NOT_OK(c.ReadU32(&version));
  if (version != kVersion)
    return Status::InvalidArgument("hnsw: unsupported version " +
                                   std::to_string(version));
  SUBREC_RETURN_NOT_OK(c.ReadU32(&dim));
  SUBREC_RETURN_NOT_OK(c.ReadU64(&n));
  SUBREC_RETURN_NOT_OK(c.ReadU32(&m));
  SUBREC_RETURN_NOT_OK(c.ReadU32(&ef_construction));
  SUBREC_RETURN_NOT_OK(c.ReadU64(&seed));
  // Re-validate like Build would, then bound every count by the bytes
  // actually present BEFORE allocating — a crafted header must not be able
  // to reserve gigabytes or index out of range.
  if (dim == 0) return Status::InvalidArgument("hnsw: dim must be positive");
  if (m < 2 || m > 256)
    return Status::InvalidArgument("hnsw: M out of range [2, 256]");
  if (ef_construction < m || ef_construction > kMaxEfConstruction)
    return Status::InvalidArgument("hnsw: ef_construction out of range");
  if (n > c.remaining() / 4)
    return Status::OutOfRange("hnsw: node count larger than its payload");
  if (n > 0 && dim > c.remaining() / 8)
    return Status::OutOfRange("hnsw: dim larger than its payload");

  auto index = std::unique_ptr<HnswIndex>(new HnswIndex());
  index->dim_ = dim;
  index->M_ = static_cast<int>(m);
  index->seed_ = seed;
  SUBREC_RETURN_NOT_OK(c.ReadI32(&index->max_level_));
  SUBREC_RETURN_NOT_OK(c.ReadI32(&index->entry_));
  if (n > 0 && (index->entry_ < 0 || static_cast<uint64_t>(index->entry_) >= n))
    return Status::InvalidArgument("hnsw: entry point out of range");
  if (n == 0 && (index->entry_ != -1 || index->max_level_ != -1))
    return Status::InvalidArgument("hnsw: empty index with entry point");
  if (index->max_level_ > kMaxLevelCap || index->max_level_ < -1)
    return Status::InvalidArgument("hnsw: max level out of range");

  index->levels_.resize(static_cast<size_t>(n));
  for (int32_t& level : index->levels_) {
    SUBREC_RETURN_NOT_OK(c.ReadI32(&level));
    if (level < 0 || level > index->max_level_)
      return Status::InvalidArgument("hnsw: node level out of range");
  }
  if (n > 0 &&
      index->levels_[static_cast<size_t>(index->entry_)] != index->max_level_)
    return Status::InvalidArgument("hnsw: entry point level skew");
  index->ids_.resize(static_cast<size_t>(n));
  for (int32_t& id : index->ids_) SUBREC_RETURN_NOT_OK(c.ReadI32(&id));
  if (static_cast<uint64_t>(dim) * n > c.remaining() / 8)
    return Status::OutOfRange("hnsw: vectors larger than their payload");
  index->vectors_.resize(static_cast<size_t>(n) * dim);
  for (double& v : index->vectors_) SUBREC_RETURN_NOT_OK(c.ReadDouble(&v));
  index->links_.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < index->links_.size(); ++i) {
    index->links_[i].resize(static_cast<size_t>(index->levels_[i]) + 1);
    for (size_t lev = 0; lev < index->links_[i].size(); ++lev) {
      uint32_t count = 0;
      SUBREC_RETURN_NOT_OK(c.ReadU32(&count));
      if (count > c.remaining() / 4)
        return Status::OutOfRange("hnsw: link list larger than its payload");
      auto& level_links = index->links_[i][lev];
      level_links.resize(count);
      for (int32_t& nb : level_links) {
        SUBREC_RETURN_NOT_OK(c.ReadI32(&nb));
        if (nb < 0 || static_cast<uint64_t>(nb) >= n)
          return Status::InvalidArgument("hnsw: neighbor out of range");
        // A link at level L to a node that does not reach level L would
        // send Search indexing past that node's link arrays.
        if (static_cast<size_t>(
                index->levels_[static_cast<size_t>(nb)]) < lev)
          return Status::InvalidArgument("hnsw: neighbor level skew");
      }
    }
  }
  if (c.remaining() != 0)
    return Status::InvalidArgument("hnsw: trailing bytes after index");
  index->ef_construction_ = static_cast<int>(ef_construction);
  return index;
}

}  // namespace subrec::ann
