#ifndef SUBREC_ANN_INDEX_H_
#define SUBREC_ANN_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace subrec::ann {

/// One retrieval hit: the caller-supplied external id (PaperId in serving)
/// and its similarity to the query. Similarity is the raw inner product
/// <query, item> — the quantity NPRec's PairScore is monotone in for a
/// single profile paper — so higher is better.
struct Neighbor {
  int32_t id = 0;
  double score = 0.0;
};

/// Per-query work counters, filled by Search when the caller passes a
/// non-null stats pointer. The exact scan reports every item as both
/// visited and evaluated, which makes `distance_evals` a directly
/// comparable work metric across implementations.
struct SearchStats {
  int64_t nodes_visited = 0;
  int64_t distance_evals = 0;
};

/// Maximum-inner-product retrieval over a frozen set of item vectors.
/// Implementations: HnswIndex (approximate, graph-walk) and ExactIndex
/// (brute force, the recall oracle). Both order results by descending
/// score with ties broken by ascending id, so equal inputs give equal
/// outputs regardless of implementation details.
class Index {
 public:
  virtual ~Index() = default;

  /// Number of indexed items.
  virtual size_t size() const = 0;

  /// Dimensionality every indexed and query vector must have.
  virtual size_t dim() const = 0;

  /// Writes up to `k` neighbors of `query` into `out` (descending score,
  /// ties by ascending id). `ef` is the beam width for approximate
  /// implementations — wider explores more of the graph — and is ignored
  /// by the exact scan; values below `k` are clamped up to `k`.
  /// InvalidArgument on dimension mismatch or non-positive k.
  virtual Status Search(const std::vector<double>& query, int k, int ef,
                        std::vector<Neighbor>* out,
                        SearchStats* stats = nullptr) const = 0;
};

}  // namespace subrec::ann

#endif  // SUBREC_ANN_INDEX_H_
