#include "graph/academic_graph.h"

#include "common/check.h"

namespace subrec::graph {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kPaper:
      return "paper";
    case EntityType::kAuthor:
      return "author";
    case EntityType::kAffiliation:
      return "affiliation";
    case EntityType::kVenue:
      return "venue";
    case EntityType::kClassification:
      return "classification";
    case EntityType::kKeyword:
      return "keyword";
    case EntityType::kYear:
      return "year";
  }
  return "?";
}

const char* RelationTypeName(RelationType type) {
  switch (type) {
    case RelationType::kCites:
      return "cite";
    case RelationType::kWrittenBy:
      return "written";
    case RelationType::kPublishedIn:
      return "published in";
    case RelationType::kPublishedYear:
      return "published year is";
    case RelationType::kUnitIs:
      return "unit is";
    case RelationType::kHasKeyword:
      return "keywords include";
    case RelationType::kClassifiedAs:
      return "specialty classification is";
  }
  return "?";
}

NodeId AcademicGraph::AddNode(EntityType type, int external_id) {
  const NodeId id = static_cast<NodeId>(types_.size());
  types_.push_back(type);
  external_ids_.push_back(external_id);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

void AcademicGraph::AddEdge(NodeId a, NodeId b, RelationType rel) {
  SUBREC_CHECK(a >= 0 && static_cast<size_t>(a) < types_.size());
  SUBREC_CHECK(b >= 0 && static_cast<size_t>(b) < types_.size());
  out_[static_cast<size_t>(a)].push_back({b, rel});
  in_[static_cast<size_t>(b)].push_back({a, rel});
  ++num_edges_;
  if (rel != RelationType::kCites) {
    // Two-way association: mirror into the other endpoint's lists.
    out_[static_cast<size_t>(b)].push_back({a, rel});
    in_[static_cast<size_t>(a)].push_back({b, rel});
  }
}

EntityType AcademicGraph::type(NodeId n) const {
  SUBREC_CHECK(n >= 0 && static_cast<size_t>(n) < types_.size());
  return types_[static_cast<size_t>(n)];
}

int AcademicGraph::external_id(NodeId n) const {
  SUBREC_CHECK(n >= 0 && static_cast<size_t>(n) < external_ids_.size());
  return external_ids_[static_cast<size_t>(n)];
}

const std::vector<Edge>& AcademicGraph::OutEdges(NodeId n) const {
  SUBREC_CHECK(n >= 0 && static_cast<size_t>(n) < out_.size());
  return out_[static_cast<size_t>(n)];
}

const std::vector<Edge>& AcademicGraph::InEdges(NodeId n) const {
  SUBREC_CHECK(n >= 0 && static_cast<size_t>(n) < in_.size());
  return in_[static_cast<size_t>(n)];
}

std::vector<Edge> AcademicGraph::InterestNeighborhood(NodeId n) const {
  // Out-list already holds both-way relations plus out-citations.
  return OutEdges(n);
}

std::vector<Edge> AcademicGraph::InfluenceNeighborhood(NodeId n) const {
  std::vector<Edge> result;
  for (const Edge& e : OutEdges(n))
    if (e.rel != RelationType::kCites) result.push_back(e);
  for (const Edge& e : InEdges(n))
    if (e.rel == RelationType::kCites) result.push_back(e);
  return result;
}

GraphIndex BuildAcademicGraph(const corpus::Corpus& corpus,
                              const GraphBuildOptions& options) {
  GraphIndex index;
  AcademicGraph& g = index.graph;

  index.paper_nodes.resize(corpus.papers.size());
  for (const corpus::Paper& p : corpus.papers)
    index.paper_nodes[static_cast<size_t>(p.id)] =
        g.AddNode(EntityType::kPaper, p.id);

  if (options.include_authors) {
    index.author_nodes.resize(corpus.authors.size());
    for (const corpus::Author& a : corpus.authors)
      index.author_nodes[static_cast<size_t>(a.id)] =
          g.AddNode(EntityType::kAuthor, a.id);
  }

  std::vector<NodeId> affiliation_nodes;
  if (options.include_affiliations) {
    for (int i = 0; i < corpus.num_affiliations; ++i)
      affiliation_nodes.push_back(g.AddNode(EntityType::kAffiliation, i));
  }
  std::vector<NodeId> venue_nodes;
  if (options.include_venues) {
    for (int i = 0; i < corpus.num_venues; ++i)
      venue_nodes.push_back(g.AddNode(EntityType::kVenue, i));
  }
  std::vector<NodeId> ccs_nodes;
  if (options.include_classification) {
    for (int i = 0; i < corpus.num_ccs_nodes; ++i)
      ccs_nodes.push_back(g.AddNode(EntityType::kClassification, i));
  }
  std::unordered_map<std::string, NodeId> keyword_nodes;
  std::unordered_map<int, NodeId> year_nodes;

  for (const corpus::Paper& p : corpus.papers) {
    const NodeId pn = index.paper_nodes[static_cast<size_t>(p.id)];
    for (corpus::PaperId ref : p.references) {
      if (corpus.paper(ref).year <= options.citation_year_cutoff) {
        g.AddEdge(pn, index.paper_nodes[static_cast<size_t>(ref)],
                  RelationType::kCites);
      }
    }
    if (options.include_authors) {
      for (corpus::AuthorId a : p.authors)
        g.AddEdge(pn, index.author_nodes[static_cast<size_t>(a)],
                  RelationType::kWrittenBy);
    }
    if (options.include_venues && p.venue >= 0 &&
        p.venue < corpus.num_venues) {
      g.AddEdge(pn, venue_nodes[static_cast<size_t>(p.venue)],
                RelationType::kPublishedIn);
    }
    if (options.include_classification && !p.ccs_path.empty()) {
      const int leaf = p.ccs_path.back();
      if (leaf >= 0 && leaf < corpus.num_ccs_nodes)
        g.AddEdge(pn, ccs_nodes[static_cast<size_t>(leaf)],
                  RelationType::kClassifiedAs);
    }
    if (options.include_keywords) {
      for (const std::string& kw : p.keywords) {
        auto [it, inserted] = keyword_nodes.try_emplace(kw, 0);
        if (inserted) it->second = g.AddNode(EntityType::kKeyword, 0);
        g.AddEdge(pn, it->second, RelationType::kHasKeyword);
      }
    }
    if (options.include_years) {
      auto [it, inserted] = year_nodes.try_emplace(p.year, 0);
      if (inserted) it->second = g.AddNode(EntityType::kYear, p.year);
      g.AddEdge(pn, it->second, RelationType::kPublishedYear);
    }
  }

  if (options.include_authors && options.include_affiliations) {
    for (const corpus::Author& a : corpus.authors) {
      if (a.affiliation >= 0 && a.affiliation < corpus.num_affiliations) {
        g.AddEdge(index.author_nodes[static_cast<size_t>(a.id)],
                  affiliation_nodes[static_cast<size_t>(a.affiliation)],
                  RelationType::kUnitIs);
      }
    }
  }
  return index;
}

}  // namespace subrec::graph
