#ifndef SUBREC_GRAPH_ACADEMIC_GRAPH_H_
#define SUBREC_GRAPH_ACADEMIC_GRAPH_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/types.h"

namespace subrec::graph {

/// The 7 entity types of the heterogeneous academic network G (Sec. IV-A).
enum class EntityType : int {
  kPaper = 0,
  kAuthor,
  kAffiliation,
  kVenue,
  kClassification,
  kKeyword,
  kYear,
};
inline constexpr int kNumEntityTypes = 7;

/// The 7 relation types of T_R. kCites is the single ONE-WAY relation
/// (academic influence flows from cited to citing); the rest are two-way.
enum class RelationType : int {
  kCites = 0,
  kWrittenBy,
  kPublishedIn,
  kPublishedYear,
  kUnitIs,
  kHasKeyword,
  kClassifiedAs,
};
inline constexpr int kNumRelationTypes = 7;

const char* EntityTypeName(EntityType type);
const char* RelationTypeName(RelationType type);

/// Global node id within an AcademicGraph.
using NodeId = int;

struct Edge {
  NodeId dst;
  RelationType rel;
};

/// Heterogeneous academic network with asymmetric citation handling.
/// Two-way relations appear in the out-lists of both endpoints; the
/// citation relation appears only in the citing paper's out-list and the
/// cited paper's in-list, which is what makes the interest / influence
/// neighborhoods of Sec. IV-A differ.
class AcademicGraph {
 public:
  /// Adds a node of `type` carrying the dataset-level id (PaperId,
  /// AuthorId, venue index, ...).
  NodeId AddNode(EntityType type, int external_id);

  /// Adds a relation a -> b. Two-way relations are mirrored automatically.
  void AddEdge(NodeId a, NodeId b, RelationType rel);

  size_t num_nodes() const { return types_.size(); }
  size_t num_edges() const { return num_edges_; }
  EntityType type(NodeId n) const;
  int external_id(NodeId n) const;

  const std::vector<Edge>& OutEdges(NodeId n) const;
  const std::vector<Edge>& InEdges(NodeId n) const;

  /// N_left(p) of the paper: two-way neighbors plus papers p CITES. Feeds
  /// the interest embedding (what p builds on).
  std::vector<Edge> InterestNeighborhood(NodeId n) const;

  /// N_right(p): two-way neighbors plus papers CITING p. Feeds the
  /// influence embedding (who p reaches).
  std::vector<Edge> InfluenceNeighborhood(NodeId n) const;

 private:
  std::vector<EntityType> types_;
  std::vector<int> external_ids_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  size_t num_edges_ = 0;
};

/// Which entity/relation families to materialize (the patent preset of
/// Sec. IV-I has only papers + authors — Tab. III).
struct GraphBuildOptions {
  bool include_authors = true;
  bool include_affiliations = true;
  bool include_venues = true;
  bool include_keywords = true;
  bool include_classification = true;
  bool include_years = true;
  /// Citation edges are added only when the CITED paper's year is <= this
  /// (train/test hygiene: held-out post-split citations of post-split
  /// papers never enter the graph, while a new paper's reference list —
  /// public at publication time — stays available). INT32_MAX keeps all.
  int citation_year_cutoff = 0x7fffffff;
};

/// Maps between a Corpus and its graph nodes.
struct GraphIndex {
  AcademicGraph graph;
  std::vector<NodeId> paper_nodes;   // by PaperId
  std::vector<NodeId> author_nodes;  // by AuthorId
};

/// Materializes the network of Sec. IV-A from a corpus.
GraphIndex BuildAcademicGraph(const corpus::Corpus& corpus,
                              const GraphBuildOptions& options = {});

}  // namespace subrec::graph

#endif  // SUBREC_GRAPH_ACADEMIC_GRAPH_H_
