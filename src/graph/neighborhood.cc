#include "graph/neighborhood.h"

#include <algorithm>

#include "common/check.h"

namespace subrec::graph {

std::vector<Edge> SampleNeighbors(const AcademicGraph& graph, NodeId node,
                                  NeighborhoodKind kind, int k, Rng& rng) {
  SUBREC_CHECK_GT(k, 0);
  std::vector<Edge> all = kind == NeighborhoodKind::kInterest
                              ? graph.InterestNeighborhood(node)
                              : graph.InfluenceNeighborhood(node);
  if (all.size() <= static_cast<size_t>(k)) return all;
  std::vector<size_t> pick =
      rng.SampleWithoutReplacement(all.size(), static_cast<size_t>(k));
  std::vector<Edge> out;
  out.reserve(pick.size());
  for (size_t i : pick) out.push_back(all[i]);
  return out;
}

DegreeStats ComputeDegreeStats(const AcademicGraph& graph) {
  DegreeStats stats;
  if (graph.num_nodes() == 0) return stats;
  double total = 0.0;
  for (size_t n = 0; n < graph.num_nodes(); ++n) {
    const double deg =
        static_cast<double>(graph.OutEdges(static_cast<NodeId>(n)).size());
    total += deg;
    stats.max_out = std::max(stats.max_out, deg);
  }
  stats.mean_out = total / static_cast<double>(graph.num_nodes());
  return stats;
}

}  // namespace subrec::graph
