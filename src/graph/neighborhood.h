#ifndef SUBREC_GRAPH_NEIGHBORHOOD_H_
#define SUBREC_GRAPH_NEIGHBORHOOD_H_

#include <vector>

#include "common/rng.h"
#include "graph/academic_graph.h"

namespace subrec::graph {

/// Which asymmetric neighborhood of a paper node to expand (Sec. IV-A).
/// Non-paper entities have symmetric neighborhoods, so both modes coincide.
enum class NeighborhoodKind { kInterest, kInfluence };

/// Samples up to `k` neighbors of `node` without replacement (all of them
/// when the neighborhood is smaller). Deterministic given `rng` state —
/// the GCN's fixed-size receptive field sampler.
std::vector<Edge> SampleNeighbors(const AcademicGraph& graph, NodeId node,
                                  NeighborhoodKind kind, int k, Rng& rng);

/// Degree statistics used in tests and experiment logging.
struct DegreeStats {
  double mean_out = 0.0;
  double max_out = 0.0;
};
DegreeStats ComputeDegreeStats(const AcademicGraph& graph);

}  // namespace subrec::graph

#endif  // SUBREC_GRAPH_NEIGHBORHOOD_H_
