// Low-resource reusability (the Sec. IV-I use case): run the full NPRec
// pipeline on a patent-like corpus that has NO venues, keywords, CCS
// labels or affiliations — only text, inventors and citations — and
// compare against a collaborative-filtering baseline that suffers on cold
// items.
//
// Build & run:  cmake --build build && ./build/examples/patent_cold_start

#include <cstdio>

#include "common/rng.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "graph/academic_graph.h"
#include "la/ops.h"
#include "rec/candidate_sets.h"
#include "rec/nprec.h"
#include "rec/svd.h"
#include "text/hashed_ngram_encoder.h"

using namespace subrec;

int main() {
  auto generated = datagen::GenerateCorpus(
      datagen::PatentLikeOptions(datagen::DatasetScale::kTiny, 31));
  if (!generated.ok()) return 1;
  const corpus::Corpus& corpus = generated.value().corpus;
  std::printf("patent corpus: %zu patents, %zu inventors — no venues, "
              "keywords or classes (Tab. III)\n",
              corpus.papers.size(), corpus.authors.size());

  const int split_year = 2016;
  const datagen::YearSplit split = datagen::SplitByYear(corpus, split_year);
  graph::GraphBuildOptions graph_options;
  graph_options.citation_year_cutoff = split_year;
  const graph::GraphIndex index =
      graph::BuildAcademicGraph(corpus, graph_options);

  // Text still exists for patents; pool the frozen encoder by gold roles.
  text::HashedNgramEncoder encoder;
  rec::SubspaceEmbeddings subspace;
  std::vector<std::vector<double>> text;
  for (const auto& p : corpus.papers) {
    std::vector<std::vector<double>> subs(3,
                                          std::vector<double>(encoder.dim()));
    std::vector<int> counts(3, 0);
    for (const auto& s : p.abstract_sentences) {
      la::AxpyVec(1.0, encoder.Encode(s.text),
                  subs[static_cast<size_t>(s.role)]);
      ++counts[static_cast<size_t>(s.role)];
    }
    std::vector<double> fused(encoder.dim(), 0.0);
    for (int k = 0; k < 3; ++k) {
      if (counts[static_cast<size_t>(k)] > 0)
        for (double& x : subs[static_cast<size_t>(k)])
          x /= counts[static_cast<size_t>(k)];
      la::AxpyVec(1.0 / 3.0, subs[static_cast<size_t>(k)], fused);
    }
    subspace.push_back(std::move(subs));
    text.push_back(std::move(fused));
  }

  rec::RecContext ctx;
  ctx.corpus = &corpus;
  ctx.graph = &index;
  ctx.split_year = split_year;
  ctx.train_papers = split.train;
  ctx.test_papers = split.test;
  ctx.paper_text = &text;

  const auto users = datagen::SelectUsers(corpus, split_year, 2);
  Rng rng(5);
  std::vector<rec::CandidateSet> sets;
  for (corpus::AuthorId u : users)
    sets.push_back(rec::BuildCandidateSet(ctx, u, 20, rng));
  std::printf("evaluating on %zu inventors with held-out citations\n",
              sets.size());

  rec::NPRecOptions options;
  options.sampler.max_positives = 600;
  rec::NPRec nprec(options, &subspace);
  rec::SvdRecommender svd;
  if (!nprec.Fit(ctx).ok() || !svd.Fit(ctx).ok()) return 1;

  const auto n = rec::EvaluateRecommender(ctx, nprec, sets, 20);
  const auto s = rec::EvaluateRecommender(ctx, svd, sets, 20);
  std::printf("\nnDCG@20  NPRec %.3f   SVD %.3f\n", n.ndcg, s.ndcg);
  std::printf("MRR@20   NPRec %.3f   SVD %.3f\n", n.mrr, s.mrr);
  std::printf(
      "NPRec keeps working without metadata because the text channel and "
      "the asymmetric citation structure survive (Fig. 6's point).\n");
  return 0;
}
