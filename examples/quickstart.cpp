// Quickstart: the SEM pipeline end to end on a tiny synthetic corpus.
//
//   1. generate an ACM-like corpus,
//   2. train the sentence-function labeler on 60 gold abstracts,
//   3. build expert-rule content features for two papers,
//   4. score their difference under each expert rule,
//   5. train the subspace twin network and compare the learned
//      per-subspace distances.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "labeling/trainer.h"
#include "rules/expert_rules.h"
#include "subspace/sem_model.h"
#include "text/hashed_ngram_encoder.h"

using namespace subrec;

int main() {
  // 1. Synthetic corpus (stand-in for the ACM Digital Library).
  auto generated = datagen::GenerateCorpus(
      datagen::AcmLikeOptions(datagen::DatasetScale::kTiny, 7));
  if (!generated.ok()) {
    std::printf("corpus generation failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  const datagen::GeneratedDataset& dataset = generated.value();
  const corpus::Corpus& corpus = dataset.corpus;
  std::printf("generated %zu papers, %zu authors\n", corpus.papers.size(),
              corpus.authors.size());

  // 2. Sentence-function labeler (background / method / result).
  std::vector<std::vector<std::string>> abstracts;
  std::vector<std::vector<int>> roles;
  for (int i = 0; i < 60; ++i) {
    abstracts.push_back(corpus.AbstractOf(i));
    std::vector<int> row;
    for (const auto& s : corpus.papers[static_cast<size_t>(i)].abstract_sentences)
      row.push_back(s.role);
    roles.push_back(std::move(row));
  }
  labeling::SentenceLabeler labeler(3);
  if (!labeler.Train(abstracts, roles).ok()) return 1;
  std::printf("labeler trained; accuracy on its training slice: %.3f\n",
              labeler.Evaluate(abstracts, roles));

  // 3. Content features via the frozen sentence encoder + predicted roles.
  text::HashedNgramEncoder encoder;
  rules::ExpertRuleEngine engine(&dataset.ccs, &encoder, nullptr);
  std::vector<rules::PaperContentFeatures> features;
  for (const auto& p : corpus.papers)
    features.push_back(
        engine.ComputeFeatures(p, labeler.Label(corpus.AbstractOf(p.id))));

  // 4. Expert-rule difference scores for one pair.
  const corpus::Paper& p = corpus.papers[100];
  const corpus::Paper& q = corpus.papers[101];
  std::printf("\nexpert rules for papers #%d vs #%d:\n", p.id, q.id);
  std::printf("  classification f_c = %.4f\n", engine.ClassificationScore(p, q));
  std::printf("  references     f_r = %.4f\n", engine.ReferenceScore(p, q));
  const auto ft = engine.AbstractSubspaceScores(features[100], features[101]);
  for (int k = 0; k < 3; ++k)
    std::printf("  abstract f_t[%s] = %.4f\n", corpus::SubspaceRoleName(k),
                ft[static_cast<size_t>(k)]);

  // 5. Twin network fine-tuning + learned subspace distances.
  subspace::SemModelOptions options;
  options.encoder.input_dim = encoder.dim();
  options.encoder.hidden_dim = encoder.dim();  // residual fine-tuning
  options.miner.num_candidates = 400;
  options.trainer.epochs = 2;
  subspace::SemModel sem(options);
  std::vector<corpus::PaperId> train_ids;
  for (int i = 0; i < 200; ++i) train_ids.push_back(i);
  auto stats = sem.Fit(corpus, train_ids, features, engine);
  if (!stats.ok()) {
    std::printf("SEM training failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSEM trained (triplet order accuracy %.3f)\n",
              stats.value().final_order_accuracy);
  for (int k = 0; k < 3; ++k) {
    std::printf("  learned D^%s(p,q) = %.4f\n", corpus::SubspaceRoleName(k),
                sem.network()->Distance(features[100], features[101], k));
  }
  return 0;
}
