// Serving-path observability CLI: stand up RecommendService on a frozen
// snapshot with the observer enabled, drive a short mixed workload (cold
// misses, then cache hits), and render the live operator views.
//
//   serve_statusz                  statusz text page (default)
//   serve_statusz --json           machine-readable metrics JSON
//   serve_statusz --prometheus     Prometheus text exposition
//   serve_statusz path.snap        serve an existing snapshot file instead
//                                  of freezing a tiny model in-process
//
// Build & run:  cmake --build build && ./build/examples/serve_statusz

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "graph/academic_graph.h"
#include "la/ops.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rec/nprec.h"
#include "serve/freeze.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "text/hashed_ngram_encoder.h"

using namespace subrec;

namespace {

/// Trains a tiny NPRec on a synthetic ACM-like corpus and freezes it —
/// the same offline pipeline as the paper_recommendation example, cut down
/// to what serving needs.
bool BuildTinySnapshot(serve::SnapshotData* out) {
  auto generated = datagen::GenerateCorpus(
      datagen::AcmLikeOptions(datagen::DatasetScale::kTiny, 21));
  if (!generated.ok()) return false;
  const corpus::Corpus& corpus = generated.value().corpus;
  const int split_year = 2014;
  const datagen::YearSplit split = datagen::SplitByYear(corpus, split_year);

  graph::GraphBuildOptions graph_options;
  graph_options.citation_year_cutoff = split_year;
  const graph::GraphIndex index =
      graph::BuildAcademicGraph(corpus, graph_options);

  // Role-pooled frozen-encoder embeddings (see paper_recommendation for the
  // SEM-trained variant — serving is identical either way).
  text::HashedNgramEncoder encoder;
  rec::SubspaceEmbeddings subspace;
  std::vector<std::vector<double>> text;
  for (const auto& p : corpus.papers) {
    std::vector<std::vector<double>> subs(3,
                                          std::vector<double>(encoder.dim()));
    std::vector<int> counts(3, 0);
    for (const auto& s : p.abstract_sentences) {
      la::AxpyVec(1.0, encoder.Encode(s.text),
                  subs[static_cast<size_t>(s.role)]);
      ++counts[static_cast<size_t>(s.role)];
    }
    std::vector<double> fused(encoder.dim(), 0.0);
    for (int k = 0; k < 3; ++k) {
      if (counts[static_cast<size_t>(k)] > 0)
        for (double& x : subs[static_cast<size_t>(k)])
          x /= counts[static_cast<size_t>(k)];
      la::AxpyVec(1.0 / 3.0, subs[static_cast<size_t>(k)], fused);
    }
    subspace.push_back(std::move(subs));
    text.push_back(std::move(fused));
  }

  rec::RecContext ctx;
  ctx.corpus = &corpus;
  ctx.graph = &index;
  ctx.split_year = split_year;
  ctx.train_papers = split.train;
  ctx.test_papers = split.test;
  ctx.paper_text = &text;

  rec::NPRecOptions options;
  options.sampler.max_positives = 600;
  rec::NPRec model(options, &subspace);
  const Status status = model.Fit(ctx);
  if (!status.ok()) {
    std::printf("NPRec training failed: %s\n", status.ToString().c_str());
    return false;
  }
  *out = serve::FreezeNPRec(ctx, model, "acm_like");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  bool want_prometheus = false;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      want_json = true;
    } else if (std::strcmp(argv[i], "--prometheus") == 0) {
      want_prometheus = true;
    } else {
      snapshot_path = argv[i];
    }
  }

  const int64_t boot_ns = obs::NowNs();
  serve::ServeOptions options;
  options.num_threads = 2;
  options.observer.enabled = true;
  options.observer.sample_every_n = 2;
  options.observer.recorder.recent_capacity = 32;
  options.observer.recorder.slow_log_threshold_ns = 10'000'000;
  serve::RecommendService service(options);

  if (!snapshot_path.empty()) {
    const Status loaded = service.LoadSnapshotFile(snapshot_path);
    if (!loaded.ok()) {
      std::printf("cannot load %s: %s\n", snapshot_path.c_str(),
                  loaded.ToString().c_str());
      return 1;
    }
  } else {
    serve::SnapshotData data;
    if (!BuildTinySnapshot(&data)) return 1;
    auto state = serve::ServingState::FromSnapshot(std::move(data),
                                                  options.index);
    if (!state.ok()) {
      std::printf("snapshot rejected: %s\n",
                  state.status().ToString().c_str());
      return 1;
    }
    service.Swap(std::move(state).value());
  }

  // A short mixed workload so every view below has live data: the first
  // pass is all cache misses (full candidate/score path), the second is
  // mostly cache hits.
  const std::shared_ptr<const serve::ServingState> state = service.state();
  std::vector<int32_t> users;
  for (size_t u = 0; u < state->profiles.size() && users.size() < 16; ++u) {
    if (!state->profiles[u].empty()) users.push_back(static_cast<int32_t>(u));
  }
  if (users.empty()) {
    std::printf("snapshot has no servable users\n");
    return 1;
  }
  std::vector<serve::RecRequest> requests;
  for (int i = 0; i < 400; ++i) {
    requests.push_back({users[static_cast<size_t>(i) % users.size()], 10});
  }
  service.TopNBatch(requests);
  service.TopNBatch(requests);

  const obs::WindowSnapshot window =
      service.observer().window()->Snapshot(obs::NowNs());
  const std::vector<obs::StageStat> stages = service.observer().StageStats();
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().Snapshot();
  obs::StatuszData data;
  data.uptime_ns = obs::NowNs() - boot_ns;
  data.metrics = &metrics;
  data.window = &window;
  data.stages = &stages;
  data.recorder = service.observer().recorder();

  if (want_json) {
    std::printf("%s\n", obs::ExportMetricsJson(data).c_str());
  } else if (want_prometheus) {
    std::printf("%s", obs::ExportPrometheus(data).c_str());
  } else {
    std::printf("%s", obs::ExportStatusz(data).c_str());
  }
  return 0;
}
