// Innovation analysis (the Sec. III use case): embed a discipline's papers
// in the three content subspaces, compute each new paper's LOF outlier
// score per subspace, and list the papers the model flags as most
// innovative — alongside the citations they actually earned.
//
// Build & run:  cmake --build build && ./build/examples/innovation_analysis

#include <cstdio>

#include "cluster/lof.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "eval/metrics.h"
#include "la/ops.h"
#include "labeling/trainer.h"
#include "rules/expert_rules.h"
#include "subspace/sem_model.h"
#include "text/hashed_ngram_encoder.h"

using namespace subrec;

int main() {
  auto generated = datagen::GenerateCorpus(
      datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 11));
  if (!generated.ok()) return 1;
  const auto& dataset = generated.value();
  const corpus::Corpus& corpus = dataset.corpus;

  // Labeler on gold roles, features with predicted roles.
  std::vector<std::vector<std::string>> abstracts;
  std::vector<std::vector<int>> roles;
  for (int i = 0; i < 80; ++i) {
    abstracts.push_back(corpus.AbstractOf(i));
    std::vector<int> row;
    for (const auto& s : corpus.papers[static_cast<size_t>(i)].abstract_sentences)
      row.push_back(s.role);
    roles.push_back(std::move(row));
  }
  labeling::SentenceLabeler labeler(3);
  if (!labeler.Train(abstracts, roles).ok()) return 1;

  text::HashedNgramEncoder encoder;
  rules::ExpertRuleEngine engine(&dataset.ccs, &encoder, nullptr);
  std::vector<rules::PaperContentFeatures> features;
  for (const auto& p : corpus.papers)
    features.push_back(
        engine.ComputeFeatures(p, labeler.Label(corpus.AbstractOf(p.id))));

  // Train SEM on pre-2013 computer-science history.
  const auto history = datagen::PapersOfDiscipline(corpus, 0, 2008, 2012);
  subspace::SemModelOptions options;
  options.encoder.input_dim = encoder.dim();
  options.encoder.hidden_dim = encoder.dim();
  options.miner.num_candidates = 600;
  subspace::SemModel sem(options);
  if (!sem.Fit(corpus, history, features, engine).ok()) return 1;

  // New 2013 CS papers, scored by LOF in each subspace.
  const auto fresh = datagen::PapersOfDiscipline(corpus, 0, 2013, 2013);
  std::vector<corpus::PaperId> all = history;
  all.insert(all.end(), fresh.begin(), fresh.end());
  std::printf("analyzing %zu new CS papers against %zu historical papers\n",
              fresh.size(), history.size());

  for (int k = 0; k < 3; ++k) {
    const la::Matrix emb = sem.SubspaceEmbeddingMatrix(features, all, k);
    auto lof = cluster::LocalOutlierFactor(emb, 10);
    if (!lof.ok()) return 1;
    std::vector<double> scores(lof.value().end() -
                                   static_cast<long>(fresh.size()),
                               lof.value().end());
    std::vector<double> citations;
    for (corpus::PaperId id : fresh)
      citations.push_back(static_cast<double>(corpus.paper(id).citation_count));

    std::printf("\nsubspace '%s': Spearman(LOF, citations) = %.3f\n",
                corpus::SubspaceRoleName(k),
                eval::SpearmanCorrelation(scores, citations));
    const auto top = la::TopKIndices(scores, 5);
    std::printf("  most different new papers (LOF | citations earned):\n");
    for (size_t idx : top) {
      const corpus::Paper& p = corpus.paper(fresh[idx]);
      std::printf("    #%-5d  lof=%.2f  citations=%-4d  \"%s\"\n", p.id,
                  scores[idx], p.citation_count, p.title.c_str());
    }
  }
  return 0;
}
