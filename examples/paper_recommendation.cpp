// New-paper recommendation (the Sec. IV use case): build the heterogeneous
// academic network, train NPRec on pre-split citations with the de-fuzzing
// sampler, and recommend new papers to one researcher — showing which of
// the recommendations the researcher actually went on to cite.
//
// Build & run:  cmake --build build && ./build/examples/paper_recommendation

#include <cstdio>
#include <unordered_set>

#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "graph/academic_graph.h"
#include "la/ops.h"
#include "rec/nprec.h"
#include "text/hashed_ngram_encoder.h"

using namespace subrec;

int main() {
  auto generated = datagen::GenerateCorpus(
      datagen::AcmLikeOptions(datagen::DatasetScale::kTiny, 21));
  if (!generated.ok()) return 1;
  const corpus::Corpus& corpus = generated.value().corpus;
  const int split_year = 2014;
  const datagen::YearSplit split = datagen::SplitByYear(corpus, split_year);

  // Academic network with held-out citations excluded.
  graph::GraphBuildOptions graph_options;
  graph_options.citation_year_cutoff = split_year;
  const graph::GraphIndex index =
      graph::BuildAcademicGraph(corpus, graph_options);
  std::printf("academic network: %zu nodes, %zu edges\n",
              index.graph.num_nodes(), index.graph.num_edges());

  // Subspace text embeddings. For brevity this example pools the frozen
  // encoder by gold roles; innovation_analysis shows the SEM-trained path.
  text::HashedNgramEncoder encoder;
  rec::SubspaceEmbeddings subspace;
  std::vector<std::vector<double>> text;
  for (const auto& p : corpus.papers) {
    std::vector<std::vector<double>> subs(3,
                                          std::vector<double>(encoder.dim()));
    std::vector<int> counts(3, 0);
    for (const auto& s : p.abstract_sentences) {
      la::AxpyVec(1.0, encoder.Encode(s.text),
                  subs[static_cast<size_t>(s.role)]);
      ++counts[static_cast<size_t>(s.role)];
    }
    std::vector<double> fused(encoder.dim(), 0.0);
    for (int k = 0; k < 3; ++k) {
      if (counts[static_cast<size_t>(k)] > 0)
        for (double& x : subs[static_cast<size_t>(k)])
          x /= counts[static_cast<size_t>(k)];
      la::AxpyVec(1.0 / 3.0, subs[static_cast<size_t>(k)], fused);
    }
    subspace.push_back(std::move(subs));
    text.push_back(std::move(fused));
  }

  rec::RecContext ctx;
  ctx.corpus = &corpus;
  ctx.graph = &index;
  ctx.split_year = split_year;
  ctx.train_papers = split.train;
  ctx.test_papers = split.test;
  ctx.paper_text = &text;

  rec::NPRecOptions options;
  options.sampler.max_positives = 600;
  rec::NPRec model(options, &subspace);
  const Status status = model.Fit(ctx);
  if (!status.ok()) {
    std::printf("NPRec training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Pick a researcher with held-out ground truth and rank ALL new papers.
  const auto users = datagen::SelectUsers(corpus, split_year, 2);
  if (users.empty()) return 1;
  const corpus::AuthorId user = users[0];
  rec::UserQuery query{user, rec::UserProfile(ctx, user)};
  const auto scores = model.Score(ctx, query, split.test);

  const std::vector<corpus::PaperId> truth =
      datagen::HeldOutCitations(corpus, user, split_year);
  std::unordered_set<corpus::PaperId> truth_set(truth.begin(), truth.end());
  std::printf(
      "\nresearcher %s: %zu prior papers, actually cited %zu new papers\n",
      corpus.author(user).name.c_str(), query.profile.size(), truth.size());
  std::printf("top-10 recommended new papers (* = actually cited later):\n");
  for (size_t rank_index : la::TopKIndices(scores, 10)) {
    const corpus::Paper& p = corpus.paper(split.test[rank_index]);
    std::printf("  %c score=%.3f  #%-5d  \"%s\"\n",
                truth_set.count(p.id) > 0 ? '*' : ' ', scores[rank_index],
                p.id, p.title.c_str());
  }
  return 0;
}
