#!/usr/bin/env bash
# Runs clang-tidy over the tree with the checked-in .clang-tidy profile.
# The WarningsAsErrors set there turns findings into a non-zero exit, so
# this doubles as the CI gate. Skips gracefully (exit 0 with a notice)
# when clang-tidy is not installed, so local runs on minimal toolchains
# do not fail spuriously.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#   build-dir: existing or to-be-created CMake binary dir with
#              compile_commands.json (default: build/tidy).
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found; skipping (install clang-tidy to run the static-analysis gate)"
  exit 0
fi

BUILD_DIR="${1:-build/tidy}"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# Translation units only; headers are covered through HeaderFilterRegex.
# tests/negcompile/ holds TUs that are deliberately ill-formed under the
# thread-safety gate — not tidy material.
mapfile -t FILES < <(find src tools bench tests examples \
  \( -name '*.cc' -o -name '*.cpp' \) -not -path 'tests/negcompile/*' \
  -not -path '*/testdata/*' | sort)

echo "run_clang_tidy: ${#FILES[@]} files, build dir ${BUILD_DIR}"
clang-tidy -p "${BUILD_DIR}" -quiet "${FILES[@]}"
echo "run_clang_tidy: clean"
