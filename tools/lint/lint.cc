#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace subrec::lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

SourceFile MakeSourceFile(const std::string& logical_path,
                          const std::string& content) {
  SourceFile f;
  f.path = logical_path;
  f.is_header = EndsWith(logical_path, ".h");

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string raw, code, comments;
  auto emit = [&](char r, char c, char m) {
    raw += r;
    code += c;
    comments += m;
  };
  auto flush_line = [&] {
    f.lines.push_back(raw);
    f.code.push_back(code);
    f.comments.push_back(comments);
    raw.clear();
    code.clear();
    comments.clear();
  };

  const size_t n = content.size();
  size_t i = 0;
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      flush_line();
      if (state == State::kLineComment) state = State::kCode;
      ++i;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          emit('/', ' ', ' ');
          emit('/', ' ', ' ');
          i += 2;
          state = State::kLineComment;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          emit('/', ' ', ' ');
          emit('*', ' ', ' ');
          i += 2;
          state = State::kBlockComment;
        } else if (c == '"') {
          emit('"', '"', ' ');
          ++i;
          state = State::kString;
        } else if (c == '\'') {
          emit('\'', '\'', ' ');
          ++i;
          state = State::kChar;
        } else {
          emit(c, c, ' ');
          ++i;
        }
        break;
      case State::kLineComment:
        emit(c, ' ', c);
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          emit('*', ' ', ' ');
          emit('/', ' ', ' ');
          i += 2;
          state = State::kCode;
        } else {
          emit(c, ' ', c);
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          emit('\\', ' ', ' ');
          emit(content[i + 1], ' ', ' ');
          i += 2;
        } else if (c == '"') {
          emit('"', '"', ' ');
          ++i;
          state = State::kCode;
        } else {
          emit(c, ' ', ' ');
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          emit('\\', ' ', ' ');
          emit(content[i + 1], ' ', ' ');
          i += 2;
        } else if (c == '\'') {
          emit('\'', '\'', ' ');
          ++i;
          state = State::kCode;
        } else {
          emit(c, ' ', ' ');
          ++i;
        }
        break;
    }
  }
  if (!raw.empty()) flush_line();
  return f;
}

SourceFile LoadFileAs(const std::string& disk_path,
                      const std::string& logical_path) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) {
    std::cerr << "subrec_lint: cannot read " << disk_path << std::endl;
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return MakeSourceFile(logical_path, buf.str());
}

namespace {

/// Declarative per-line regex rule over the code or comments view.
class RegexRule final : public Rule {
 public:
  explicit RegexRule(RegexRuleSpec spec)
      : spec_(std::move(spec)), re_(spec_.pattern) {}

  const std::string& name() const override { return spec_.name; }

  void Check(const SourceFile& file,
             std::vector<Violation>* out) const override {
    if (spec_.headers_only && !file.is_header) return;
    if (!spec_.path_prefix.empty() &&
        !StartsWith(file.path, spec_.path_prefix)) {
      return;
    }
    for (const std::string& exempt : spec_.exempt_prefixes) {
      if (StartsWith(file.path, exempt)) return;
    }
    const std::vector<std::string>& view =
        spec_.comments_view ? file.comments : file.code;
    for (size_t i = 0; i < view.size(); ++i) {
      if (std::regex_search(view[i], re_)) {
        out->push_back({file.path, i + 1, spec_.name, spec_.message});
      }
    }
  }

 private:
  RegexRuleSpec spec_;
  std::regex re_;
};

/// Serving code stores per-paper vector sets as contiguous la::Matrix
/// slabs (one allocation, GEMM-ready rows); a vector-of-vectors of doubles
/// reintroduces one heap allocation per row and pointer-chasing on the
/// scoring hot path. Genuinely ragged data (per-request score buffers,
/// transitional decode input) opts out with a
/// SUBREC_NESTED_VECTOR_OK(reason) comment on the same line or the line
/// above — the reason is mandatory, a bare marker does not count.
class NestedVectorMatrixRule final : public Rule {
 public:
  const std::string& name() const override { return name_; }

  void Check(const SourceFile& file,
             std::vector<Violation>* out) const override {
    if (!StartsWith(file.path, "src/serve/")) return;
    static const std::regex nested_re(
        "std::vector\\s*<\\s*std::vector\\s*<\\s*double\\b");
    static const std::regex optout_re(
        "SUBREC_NESTED_VECTOR_OK\\s*\\([^)]+\\)");
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (!std::regex_search(file.code[i], nested_re)) continue;
      const bool allowed =
          std::regex_search(file.comments[i], optout_re) ||
          (i > 0 && std::regex_search(file.comments[i - 1], optout_re));
      if (allowed) continue;
      out->push_back(
          {file.path, i + 1, name_,
           "serving code keeps per-row vector sets as contiguous la::Matrix "
           "slabs, not vector-of-vectors of double; genuinely ragged data "
           "may opt out with a SUBREC_NESTED_VECTOR_OK(reason) comment"});
    }
  }

 private:
  std::string name_ = "no-nested-vector-matrix";
};

/// Header guards must spell the repo path: src/la/matrix.h uses
/// SUBREC_LA_MATRIX_H_, bench/bench_common.h uses SUBREC_BENCH_BENCH_COMMON_H_
/// (the src/ prefix is dropped, everything else is kept).
class IncludeGuardRule final : public Rule {
 public:
  const std::string& name() const override { return name_; }

  static std::string ExpectedGuard(const std::string& path) {
    std::string p = path;
    if (StartsWith(p, "src/")) p = p.substr(4);
    std::string guard = "SUBREC_";
    for (char c : p) {
      if (c == '/' || c == '.' || c == '-') {
        guard += '_';
      } else {
        guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
    }
    guard += '_';
    return guard;
  }

  void Check(const SourceFile& file,
             std::vector<Violation>* out) const override {
    if (!file.is_header) return;
    const std::string expected = ExpectedGuard(file.path);
    static const std::regex ifndef_re("^\\s*#ifndef\\s+(\\S+)");
    static const std::regex define_re("^\\s*#define\\s+(\\S+)");
    std::smatch m;
    size_t ifndef_line = 0;
    std::string got;
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (std::regex_search(file.code[i], m, ifndef_re)) {
        ifndef_line = i + 1;
        got = m[1];
        break;
      }
    }
    if (ifndef_line == 0) {
      out->push_back({file.path, 1, name_, "missing include guard #ifndef"});
      return;
    }
    if (got != expected) {
      out->push_back({file.path, ifndef_line, name_,
                      "include guard '" + got + "' should be '" + expected +
                          "' (derived from the file path)"});
      return;
    }
    for (size_t i = ifndef_line; i < file.code.size(); ++i) {
      if (std::regex_search(file.code[i], m, define_re)) {
        if (m[1] != expected) {
          out->push_back({file.path, i + 1, name_,
                          "guard #define '" + std::string(m[1]) +
                              "' does not match #ifndef '" + expected + "'"});
        }
        return;
      }
    }
    out->push_back(
        {file.path, ifndef_line, name_, "include guard missing #define"});
  }

 private:
  std::string name_ = "include-guard";
};

/// Comment-view TODO lines must carry an owner: TODO(name): message.
class TodoFormatRule final : public Rule {
 public:
  const std::string& name() const override { return name_; }

  void Check(const SourceFile& file,
             std::vector<Violation>* out) const override {
    static const std::regex todo_re("\\bTODO\\b");
    static const std::regex ok_re("TODO\\([A-Za-z0-9_.-]+\\):");
    for (size_t i = 0; i < file.comments.size(); ++i) {
      if (std::regex_search(file.comments[i], todo_re) &&
          !std::regex_search(file.comments[i], ok_re)) {
        out->push_back({file.path, i + 1, name_,
                        "format as TODO(name): description"});
      }
    }
  }

 private:
  std::string name_ = "todo-format";
};

/// Headers must directly #include the standard header providing each symbol
/// they use, for a checked list of common symbols. Extending the list is one
/// table row.
class IncludeHygieneRule final : public Rule {
 public:
  const std::string& name() const override { return name_; }

  void Check(const SourceFile& file,
             std::vector<Violation>* out) const override {
    if (!file.is_header) return;
    struct Entry {
      const char* pattern;
      std::vector<const char*> providers;
    };
    static const std::vector<Entry> kEntries = {
        {"std::vector<", {"<vector>"}},
        {"std::string\\b", {"<string>"}},
        {"std::(o|i)?stringstream\\b", {"<sstream>"}},
        {"std::ostream\\b", {"<ostream>", "<iostream>", "<sstream>"}},
        {"std::unordered_map<", {"<unordered_map>"}},
        {"std::unordered_set<", {"<unordered_set>"}},
        {"std::function<", {"<functional>"}},
        {"std::(unique_ptr|shared_ptr|make_unique|make_shared)<",
         {"<memory>"}},
        {"std::array<", {"<array>"}},
        {"std::(pair<|move\\(|forward<)", {"<utility>"}},
        {"std::optional<", {"<optional>"}},
        {"\\bu?int(8|16|32|64)_t\\b", {"<cstdint>"}},
        {"\\bsize_t\\b", {"<cstddef>"}},
    };
    for (const Entry& e : kEntries) {
      const std::regex sym_re(e.pattern);
      size_t first_use = 0;
      for (size_t i = 0; i < file.code.size(); ++i) {
        if (std::regex_search(file.code[i], sym_re)) {
          first_use = i + 1;
          break;
        }
      }
      if (first_use == 0) continue;
      bool included = false;
      for (const char* provider : e.providers) {
        const std::string inc = std::string("#include ") + provider;
        for (const std::string& line : file.code) {
          if (line.find(inc) != std::string::npos) {
            included = true;
            break;
          }
        }
        if (included) break;
      }
      if (!included) {
        out->push_back({file.path, first_use, name_,
                        std::string("uses a symbol matching '") + e.pattern +
                            "' but does not include " + e.providers[0]});
      }
    }
  }

 private:
  std::string name_ = "include-hygiene";
};

/// Fields of a class that owns a common::Mutex by value must declare their
/// relationship to the lock: SUBREC_GUARDED_BY / SUBREC_PT_GUARDED_BY for
/// protected state, SUBREC_UNGUARDED(reason) for deliberate opt-outs.
/// Exempt: the mutex itself, CondVar members, std::atomic members, and
/// static/constexpr/using/typedef/friend declarations.
///
/// This is a light structural scan (brace + statement tracking over the
/// code view), not a parser: member statements it cannot classify are
/// skipped rather than flagged, so the rule under-approximates and never
/// blocks on syntax it does not model. alignas(...) specifiers are
/// stripped before classification, so cache-line-padded fields of
/// lock-striped classes are checked like any other member.
class GuardedByRule final : public Rule {
 public:
  const std::string& name() const override { return name_; }

  void Check(const SourceFile& file,
             std::vector<Violation>* out) const override {
    if (!StartsWith(file.path, "src/")) return;
    // The wrapper definitions themselves (Mutex owns the raw std::mutex).
    if (file.path == "src/common/mutex.h") return;

    struct Frame {
      bool is_class = false;
      std::string header;  // declaration text that preceded this '{'
      std::vector<Member> members;
    };

    static const std::regex class_re("(^|[^\\w])(class|struct)\\s+[A-Za-z_]");
    static const std::regex enum_re("\\benum\\b");

    std::vector<Frame> frames;
    std::string pending;
    size_t pending_line = 0;
    bool swallow_semi = false;  // the ';' that closes a class definition

    auto record_member = [&] {
      const std::string text = Trim(pending);
      pending.clear();
      if (text.empty()) return;
      if (!frames.empty() && frames.back().is_class) {
        frames.back().members.push_back({text, pending_line});
      }
    };

    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      if (IsPreprocessor(line)) continue;
      for (const char c : line) {
        if (c == '{') {
          Frame f;
          f.header = Trim(pending);
          f.is_class = std::regex_search(f.header, class_re) &&
                       !std::regex_search(f.header, enum_re);
          pending.clear();
          frames.push_back(std::move(f));
        } else if (c == '}') {
          if (frames.empty()) continue;
          Frame f = std::move(frames.back());
          frames.pop_back();
          if (f.is_class) {
            ReportClass(file, f.members, out);
            swallow_semi = true;  // the '};' terminator is not a member
          } else if (!f.header.empty() &&
                     (f.header.back() == '=' || f.header.back() == '(' ||
                      f.header.back() == ',')) {
            // Braced initializer in expression position — a default
            // argument (`Ctor(Options o = {})`) or list element — never
            // ends the declaration, even when the header looks
            // function-shaped; keep accumulating until its ';'.
            pending = f.header;
          } else if (!LooksLikeFunction(f.header)) {
            // Braced initializer (e.g. `std::atomic<bool> done{false}`):
            // the declaration continues until its ';'.
            pending = f.header;
          }
        } else if (c == ';') {
          if (swallow_semi) {
            swallow_semi = false;
            pending.clear();
          } else {
            record_member();
          }
        } else {
          if (Trim(pending).empty() && !std::isspace(static_cast<unsigned char>(c))) {
            pending_line = i + 1;
          }
          pending += c;
        }
      }
      pending += ' ';  // line break acts as whitespace in the statement
    }
  }

 private:
  struct Member {
    std::string text;  // joined statement text, ';' excluded
    size_t line = 0;   // 1-based first line of the statement
  };

  static std::string Trim(const std::string& s) {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
  }

  static bool IsPreprocessor(const std::string& line) {
    const std::string t = Trim(line);
    return !t.empty() && t[0] == '#';
  }

  /// Statement text with annotation macros removed, alignas specifiers
  /// dropped, default initializers cut at '=', access-specifier labels
  /// dropped, and template argument lists stripped — what remains
  /// classifies as function vs data member by the presence of '('.
  static std::string Normalize(const std::string& text) {
    static const std::regex ann_re(
        "SUBREC_(PT_)?GUARDED_BY\\s*\\([^)]*\\)|"
        "SUBREC_UNGUARDED\\s*\\([^)]*\\)");
    // Cache-line padding is idiomatic on lock-striped members
    // (`alignas(64) double rate_`); without this strip, the '(' would make
    // such fields look function-shaped and silently skip the rule.
    static const std::regex alignas_re("\\balignas\\s*\\([^()]*\\)");
    static const std::regex access_re("\\b(public|private|protected)\\s*:");
    static const std::regex operator_re("\\boperator[^\\s(]*");
    static const std::regex angle_re("<[^<>]*>");
    std::string s = std::regex_replace(text, ann_re, "");
    s = std::regex_replace(s, alignas_re, "");
    s = std::regex_replace(s, access_re, "");
    // `operator=(...)` must not be mistaken for a default initializer.
    s = std::regex_replace(s, operator_re, "op");
    const size_t eq = s.find('=');
    if (eq != std::string::npos) s = s.substr(0, eq);
    std::string prev;
    do {
      prev = s;
      s = std::regex_replace(s, angle_re, "");
    } while (s != prev);
    return Trim(s);
  }

  static bool LooksLikeFunction(const std::string& text) {
    return Normalize(text).find('(') != std::string::npos;
  }

  static bool OwnsMutex(const std::string& normalized) {
    static const std::regex owner_re(
        "(^|[^\\w:<,&*])((subrec::)?common::)?Mutex\\s+[A-Za-z_]\\w*\\s*$");
    return std::regex_search(normalized, owner_re);
  }

  void ReportClass(const SourceFile& file, const std::vector<Member>& members,
                   std::vector<Violation>* out) const {
    static const std::regex condvar_re("\\b(common::)?CondVar\\b");
    static const std::regex keyword_re(
        "^(static|constexpr|using|typedef|friend|enum)\\b");
    static const std::regex name_re("([A-Za-z_]\\w*)\\s*$");

    bool owns = false;
    for (const Member& m : members) {
      if (OwnsMutex(Normalize(m.text))) {
        owns = true;
        break;
      }
    }
    if (!owns) return;

    for (const Member& m : members) {
      const std::string n = Normalize(m.text);
      if (n.empty() || OwnsMutex(n)) continue;
      if (std::regex_search(n, condvar_re)) continue;
      if (m.text.find("std::atomic") != std::string::npos) continue;
      if (std::regex_search(n, keyword_re)) continue;
      if (n.find('(') != std::string::npos) continue;  // function-shaped
      const bool annotated =
          m.text.find("SUBREC_GUARDED_BY(") != std::string::npos ||
          m.text.find("SUBREC_PT_GUARDED_BY(") != std::string::npos ||
          m.text.find("SUBREC_UNGUARDED(") != std::string::npos;
      if (annotated) continue;
      std::smatch nm;
      const std::string field =
          std::regex_search(n, nm, name_re) ? nm[1].str() : n;
      out->push_back(
          {file.path, m.line, name_,
           "field '" + field +
               "' lives in a class that owns a common::Mutex; declare its "
               "locking relationship with SUBREC_GUARDED_BY(mu), "
               "SUBREC_PT_GUARDED_BY(mu), or SUBREC_UNGUARDED(\"reason\")"});
    }
  }

  std::string name_ = "guarded-by-required";
};

}  // namespace

std::vector<std::unique_ptr<Rule>> BuildDefaultRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<IncludeGuardRule>());
  rules.push_back(std::make_unique<RegexRule>(RegexRuleSpec{
      "no-std-rand",
      "std::rand\\b|\\bsrand\\s*\\(",
      "use subrec::Rng (common/rng.h); global C RNG state breaks "
      "reproducibility",
      /*headers_only=*/false,
      /*comments_view=*/false,
      /*path_prefix=*/"",
      /*exempt_prefixes=*/{}}));
  rules.push_back(std::make_unique<RegexRule>(RegexRuleSpec{
      "no-using-namespace-header",
      "\\busing\\s+namespace\\b",
      "headers must not inject namespaces into every includer",
      /*headers_only=*/true,
      /*comments_view=*/false,
      /*path_prefix=*/"",
      /*exempt_prefixes=*/{}}));
  rules.push_back(std::make_unique<RegexRule>(RegexRuleSpec{
      "no-raw-stdio",
      "std::cout\\b|std::cerr\\b|\\b(std::)?(v?f?printf|puts|fputs|putchar)\\s*\\(",
      "library code emits through SUBREC_LOG / obs::JsonWriter, not raw "
      "streams or printf",
      /*headers_only=*/false,
      /*comments_view=*/false,
      /*path_prefix=*/"src/",
      /*exempt_prefixes=*/{"src/common/logging", "src/common/check"}}));
  rules.push_back(std::make_unique<RegexRule>(RegexRuleSpec{
      "no-float",
      "\\bfloat\\b",
      "numeric code is double-only; float silently halves precision",
      /*headers_only=*/false,
      /*comments_view=*/false,
      /*path_prefix=*/"src/",
      /*exempt_prefixes=*/{}}));
  rules.push_back(std::make_unique<RegexRule>(RegexRuleSpec{
      "no-thread-sleep",
      "std::this_thread::sleep_(for|until)\\b",
      "library code must not sleep: serving hot paths block on condvars or "
      "futures; benches and tests pace themselves outside src/",
      /*headers_only=*/false,
      /*comments_view=*/false,
      /*path_prefix=*/"src/",
      /*exempt_prefixes=*/{}}));
  rules.push_back(std::make_unique<RegexRule>(RegexRuleSpec{
      "no-raw-concurrency-primitive",
      "std::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
      "unique_lock|scoped_lock|shared_lock|condition_variable)\\b",
      "library code locks through common::Mutex / common::MutexLock / "
      "common::CondVar (common/mutex.h) so Clang thread-safety analysis "
      "sees every acquire and release",
      /*headers_only=*/false,
      /*comments_view=*/false,
      /*path_prefix=*/"src/",
      /*exempt_prefixes=*/{"src/common/mutex.h"}}));
  rules.push_back(std::make_unique<TodoFormatRule>());
  rules.push_back(std::make_unique<IncludeHygieneRule>());
  rules.push_back(std::make_unique<GuardedByRule>());
  rules.push_back(std::make_unique<NestedVectorMatrixRule>());
  return rules;
}

std::vector<std::string> CollectSourceFiles(
    const std::string& repo_root, const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(repo_root) / dir;
    if (!fs::exists(base)) continue;
    for (fs::recursive_directory_iterator it(base), end; it != end; ++it) {
      const fs::path& p = it->path();
      const std::string fname = p.filename().string();
      if (it->is_directory()) {
        if (fname == "testdata" || StartsWith(fname, "build") ||
            StartsWith(fname, ".")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = p.extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      out.push_back(fs::relative(p, repo_root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Violation> RunRules(const std::vector<std::unique_ptr<Rule>>& rules,
                                const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const SourceFile& f : files) {
    for (const auto& rule : rules) rule->Check(f, &out);
  }
  return out;
}

std::vector<Violation> LintTree(const std::string& repo_root,
                                const std::vector<std::string>& dirs) {
  std::vector<SourceFile> files;
  for (const std::string& rel : CollectSourceFiles(repo_root, dirs)) {
    files.push_back(LoadFileAs(repo_root + "/" + rel, rel));
  }
  return RunRules(BuildDefaultRules(), files);
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return os.str();
}

}  // namespace subrec::lint
