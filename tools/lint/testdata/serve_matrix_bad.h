#ifndef SUBREC_SERVE_SERVE_MATRIX_BAD_H_
#define SUBREC_SERVE_SERVE_MATRIX_BAD_H_

#include <vector>

namespace subrec::serve {

// Every shape the slab rule must flag when the file lives in src/serve/.
struct NestedState {
  std::vector<std::vector<double>> interest;
  std::vector<std::vector<std::vector<double>>> samples;
  // SUBREC_NESTED_VECTOR_OK
  std::vector<std::vector<double>> bare_marker_is_not_an_optout;
  std::vector<std::vector<int>> profiles_are_fine;
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_SERVE_MATRIX_BAD_H_
