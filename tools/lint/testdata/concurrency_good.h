#ifndef SUBREC_GOOD_CONCURRENCY_GOOD_H_
#define SUBREC_GOOD_CONCURRENCY_GOOD_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace subrec::good {

// Every field shape the guarded-by-required rule must accept inside a
// Mutex-owning class: annotated members, deliberate opt-outs, and the
// exempt categories (the lock itself, condvars, atomics, statics, usings).
class AnnotatedQueue {
 public:
  struct Options {
    size_t limit = 16;
  };

  explicit AnnotatedQueue(size_t limit) : limit_(limit) {}

  // A braced default argument must not derail statement tracking: the
  // `{}` is an initializer in expression position, so the declaration
  // runs on to its ';' (a naive brace tracker reports the trailing ')'
  // as an unannotated field).
  explicit AnnotatedQueue(Options options = {});

  AnnotatedQueue(const AnnotatedQueue&) = delete;
  AnnotatedQueue& operator=(const AnnotatedQueue&) = delete;

  void Push(const std::string& item) {
    common::MutexLock lock(&mu_);
    items_.push_back(item);
    cv_.NotifyOne();
  }

  size_t approx_size() const {
    return size_hint_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kDefaultLimit = 16;
  using Batch = std::vector<std::string>;

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::vector<std::string> items_ SUBREC_GUARDED_BY(mu_);
  std::vector<std::string> overflow_
      SUBREC_GUARDED_BY(mu_);
  std::string* last_ SUBREC_PT_GUARDED_BY(mu_) = nullptr;
  std::atomic<size_t> size_hint_{0};
  const size_t limit_ SUBREC_UNGUARDED("set in the constructor, read-only");
};

// The windowed-histogram shape from src/obs: a lock-striped aggregator
// whose nested per-stripe struct is cache-line padded, owns its own Mutex,
// and pads an annotated member with alignas too. The rule must accept all
// of it — alignas(...) is stripped before classification, so these fields
// are checked (and here, satisfied) rather than silently skipped.
class StripedWindow {
 public:
  void Record(size_t stripe, double value);

 private:
  struct alignas(64) Stripe {
    mutable common::Mutex mu;
    std::vector<double> slices SUBREC_GUARDED_BY(mu);
    alignas(16) double last_value SUBREC_GUARDED_BY(mu) = 0.0;
  };

  static constexpr size_t kNumStripes = 8;
  std::vector<Stripe*> stripes_;
};

}  // namespace subrec::good

#endif  // SUBREC_GOOD_CONCURRENCY_GOOD_H_
