#ifndef SUBREC_GOOD_GOOD_HEADER_H_
#define SUBREC_GOOD_GOOD_HEADER_H_

#include <cstddef>
#include <vector>

namespace subrec::good {

// TODO(alice): widen to a strided view once the batch API lands.
inline double SumAll(const std::vector<double>& v) {
  double total = 0.0;
  for (size_t i = 0; i < v.size(); ++i) total += v[i];
  return total;
}

}  // namespace subrec::good

#endif  // SUBREC_GOOD_GOOD_HEADER_H_
