#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

// TODO fix the precision loss someday
using namespace std;

inline float HalfPrecision() {
  std::vector<int> v;
  (void)v;
  std::cout << std::rand();
  std::printf("raw stdio\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return 0.0f;
}

inline std::mutex g_bad_raw_lock;

class BadCounter {
 public:
  int Get() const;

 private:
  mutable common::Mutex mu_;
  int count_ = 0;
};

#endif  // WRONG_GUARD_H
