#ifndef SUBREC_BAD_CONCURRENCY_BAD_H_
#define SUBREC_BAD_CONCURRENCY_BAD_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace subrec::bad {

// The one line the raw-primitive ban must flag.
inline std::mutex g_raw_mutex;

class UnannotatedCounter {
 public:
  void Add(int delta);

 private:
  mutable common::Mutex mu_;
  int total_ = 0;
  std::vector<std::string>
      history_;
  alignas(16) double rate_ = 0.0;
};

struct NoMutexHere {
  int fine_without_annotations = 0;
};

}  // namespace subrec::bad

#endif  // SUBREC_BAD_CONCURRENCY_BAD_H_
