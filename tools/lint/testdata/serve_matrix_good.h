#ifndef SUBREC_SERVE_SERVE_MATRIX_GOOD_H_
#define SUBREC_SERVE_SERVE_MATRIX_GOOD_H_

#include <vector>

#include "la/matrix.h"

namespace subrec::serve {

// Contiguous slabs are the rule; genuinely ragged data carries a reasoned
// opt-out on the same line or the line above.
struct SlabState {
  la::Matrix interest;
  la::Matrix influence;
  // SUBREC_NESTED_VECTOR_OK(per-request score buffers are ragged by nature)
  std::vector<std::vector<double>> per_request_scores;
  std::vector<std::vector<double>> rows;  // SUBREC_NESTED_VECTOR_OK(ragged)
  std::vector<std::vector<int>> profiles;
};

}  // namespace subrec::serve

#endif  // SUBREC_SERVE_SERVE_MATRIX_GOOD_H_
