#ifndef SUBREC_TOOLS_LINT_LINT_H_
#define SUBREC_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace subrec::lint {

/// One rule violation at a location. `line` is 1-based; 0 means file-level.
struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// A source file split into three per-line views so rules can target exactly
/// the text class they care about:
///   lines    — raw text;
///   code     — comments and string/char literals blanked with spaces
///              (columns preserved), the view for banned-token rules;
///   comments — only comment text kept, everything else blanked, the view
///              for comment-annotation rules.
struct SourceFile {
  std::string path;  // logical repo-relative path, '/'-separated
  bool is_header = false;
  std::vector<std::string> lines;
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Builds the three views from raw file content. `logical_path` controls
/// which path-scoped rules apply (e.g. src/-only rules), independent of
/// where the bytes came from — tests lint fixture files under fake paths.
SourceFile MakeSourceFile(const std::string& logical_path,
                          const std::string& content);

/// Reads `disk_path` and parses it as `logical_path`. Aborts if unreadable.
SourceFile LoadFileAs(const std::string& disk_path,
                      const std::string& logical_path);

/// A lint rule. Rules are stateless; one instance checks many files.
/// Adding a rule = subclass (or a RegexRuleSpec entry) + registration in
/// BuildDefaultRules + a fixture in testdata/.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const std::string& name() const = 0;
  virtual void Check(const SourceFile& file,
                     std::vector<Violation>* out) const = 0;
};

/// Declarative single-regex rule applied to one line view.
struct RegexRuleSpec {
  std::string name;
  std::string pattern;  // ECMAScript, applied per line of the chosen view
  std::string message;
  bool headers_only = false;
  bool comments_view = false;  // match the comments view instead of code
  std::string path_prefix;     // only files under this prefix; "" = all
  std::vector<std::string> exempt_prefixes;
};

/// The repo rule set:
///   include-guard     guards must spell the file path (SUBREC_LA_MATRIX_H_)
///   no-std-rand       std::rand/srand banned (use common/rng)
///   no-using-namespace-header
///   no-raw-stdio      std::cout/std::cerr/printf in src/ outside logging/check
///   no-float          float in numeric code (src/), doubles only
///   no-thread-sleep   std::this_thread::sleep_for/until in src/ (serving
///                     code blocks on condvars/futures, never naps)
///   no-raw-concurrency-primitive
///                     std::mutex/lock_guard/unique_lock/condition_variable
///                     in src/ outside common/mutex.h (use the annotated
///                     common::Mutex wrappers)
///   todo-format       TODO(name): with owner
///   include-hygiene   headers directly include what they use (checked list)
///   guarded-by-required
///                     fields of a class owning a common::Mutex carry
///                     SUBREC_GUARDED_BY / SUBREC_PT_GUARDED_BY /
///                     SUBREC_UNGUARDED(reason)
///   no-nested-vector-matrix
///                     vector<vector<double>> in src/serve — per-row
///                     matrices live in contiguous la::Matrix slabs; ragged
///                     data opts out with a SUBREC_NESTED_VECTOR_OK(reason)
///                     comment
std::vector<std::unique_ptr<Rule>> BuildDefaultRules();

/// Recursively collects .h/.cc/.cpp files under `dirs` (repo-relative),
/// returning sorted repo-relative paths. Skips build*/ and testdata/.
std::vector<std::string> CollectSourceFiles(const std::string& repo_root,
                                            const std::vector<std::string>& dirs);

/// Runs every rule over every file.
std::vector<Violation> RunRules(const std::vector<std::unique_ptr<Rule>>& rules,
                                const std::vector<SourceFile>& files);

/// Convenience driver used by the CLI: collect, load, lint.
std::vector<Violation> LintTree(const std::string& repo_root,
                                const std::vector<std::string>& dirs);

/// "path:line: [rule] message" rendering for CLI output and test failures.
std::string FormatViolation(const Violation& v);

}  // namespace subrec::lint

#endif  // SUBREC_TOOLS_LINT_LINT_H_
