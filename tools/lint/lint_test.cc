// Self-test for subrec_lint: parses fixture files with known violations and
// asserts that every rule in the default set fires where expected, and that
// a clean fixture stays clean.
#include "lint.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace subrec::lint {
namespace {

std::vector<Violation> LintFixtureAs(const std::string& fixture,
                                     const std::string& logical_path) {
  const std::string disk =
      std::string(SUBREC_LINT_TESTDATA_DIR) + "/" + fixture;
  std::vector<SourceFile> files = {LoadFileAs(disk, logical_path)};
  return RunRules(BuildDefaultRules(), files);
}

std::set<std::string> FiredRules(const std::vector<Violation>& vs) {
  std::set<std::string> names;
  for (const Violation& v : vs) names.insert(v.rule);
  return names;
}

TEST(LintViews, BlanksCommentsAndStrings) {
  SourceFile f = MakeSourceFile(
      "src/x/y.h",
      "int a = 1;  // trailing comment\n"
      "const char* s = \"std::rand inside a string\";\n"
      "/* block\n   spanning */ int b;\n");
  ASSERT_EQ(f.code.size(), 4u);
  EXPECT_EQ(f.code[0].find("trailing"), std::string::npos);
  EXPECT_EQ(f.code[1].find("std::rand"), std::string::npos);
  EXPECT_EQ(f.code[2].find("block"), std::string::npos);
  EXPECT_NE(f.code[3].find("int b;"), std::string::npos);
  EXPECT_NE(f.comments[0].find("trailing comment"), std::string::npos);
  EXPECT_EQ(f.comments[1].find("string"), std::string::npos);
  EXPECT_NE(f.comments[2].find("block"), std::string::npos);
}

TEST(LintSelfTest, EveryRuleFiresOnBadFixture) {
  const std::vector<Violation> vs =
      LintFixtureAs("bad_header.h", "src/bad/bad_header.h");
  const std::set<std::string> fired = FiredRules(vs);
  const std::vector<std::string> expected = {
      "include-guard",    "no-std-rand",  "no-using-namespace-header",
      "no-raw-stdio",     "no-float",     "no-thread-sleep",
      "todo-format",      "include-hygiene",
      "no-raw-concurrency-primitive",     "guarded-by-required"};
  for (const std::string& rule : expected) {
    EXPECT_TRUE(fired.count(rule)) << "rule did not fire: " << rule;
  }
}

TEST(LintSelfTest, ViolationsCarryLinesAndMessages) {
  const std::vector<Violation> vs =
      LintFixtureAs("bad_header.h", "src/bad/bad_header.h");
  for (const Violation& v : vs) {
    EXPECT_GT(v.line, 0u) << FormatViolation(v);
    EXPECT_FALSE(v.message.empty());
    EXPECT_EQ(v.file, "src/bad/bad_header.h");
  }
  const auto guard = std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
    return v.rule == "include-guard";
  });
  ASSERT_NE(guard, vs.end());
  EXPECT_NE(guard->message.find("SUBREC_BAD_BAD_HEADER_H_"),
            std::string::npos)
      << guard->message;
}

TEST(LintSelfTest, GoodFixtureIsClean) {
  const std::vector<Violation> vs =
      LintFixtureAs("good_header.h", "src/good/good_header.h");
  for (const Violation& v : vs) ADD_FAILURE() << FormatViolation(v);
}

TEST(LintSelfTest, RulesScopeByPath) {
  // The same bad content outside src/ is exempt from the src/-only rules
  // (raw stdio, float) but still subject to the global ones.
  const std::vector<Violation> vs =
      LintFixtureAs("bad_header.h", "tools/bad/bad_header.h");
  const std::set<std::string> fired = FiredRules(vs);
  EXPECT_FALSE(fired.count("no-raw-stdio"));
  EXPECT_FALSE(fired.count("no-float"));
  EXPECT_FALSE(fired.count("no-thread-sleep"));
  EXPECT_FALSE(fired.count("no-raw-concurrency-primitive"));
  EXPECT_FALSE(fired.count("guarded-by-required"));
  EXPECT_TRUE(fired.count("no-std-rand"));
  EXPECT_TRUE(fired.count("no-using-namespace-header"));
}

TEST(LintConcurrency, GoodFixtureIsClean) {
  const std::vector<Violation> vs =
      LintFixtureAs("concurrency_good.h", "src/good/concurrency_good.h");
  for (const Violation& v : vs) ADD_FAILURE() << FormatViolation(v);
}

TEST(LintConcurrency, BadFixtureFiresBothRulesAtExpectedLines) {
  const std::vector<Violation> vs =
      LintFixtureAs("concurrency_bad.h", "src/bad/concurrency_bad.h");
  std::vector<size_t> guarded_lines;
  std::vector<size_t> raw_lines;
  for (const Violation& v : vs) {
    if (v.rule == "guarded-by-required") guarded_lines.push_back(v.line);
    if (v.rule == "no-raw-concurrency-primitive") raw_lines.push_back(v.line);
  }
  std::sort(guarded_lines.begin(), guarded_lines.end());
  ASSERT_EQ(raw_lines.size(), 1u);
  EXPECT_EQ(raw_lines[0], 13u);  // inline std::mutex g_raw_mutex;
  ASSERT_EQ(guarded_lines.size(), 3u);
  EXPECT_EQ(guarded_lines[0], 21u);  // int total_ = 0;
  EXPECT_EQ(guarded_lines[1], 22u);  // multi-line history_ declaration
  EXPECT_EQ(guarded_lines[2], 24u);  // alignas(16) double rate_ = 0.0;
}

TEST(LintConcurrency, RulesScopeToSrc) {
  // The same content under tools/ is outside the concurrency rules' scope.
  const std::vector<Violation> vs =
      LintFixtureAs("concurrency_bad.h", "tools/bad/concurrency_bad.h");
  const std::set<std::string> fired = FiredRules(vs);
  EXPECT_FALSE(fired.count("no-raw-concurrency-primitive"));
  EXPECT_FALSE(fired.count("guarded-by-required"));
}

TEST(LintConcurrency, MutexWrapperHeaderMayNameRawPrimitives) {
  // common/mutex.h is the one src/ file allowed to touch std primitives:
  // it is where they get wrapped.
  const std::vector<Violation> vs = RunRules(
      BuildDefaultRules(),
      {MakeSourceFile("src/common/mutex.h",
                      "std::mutex raw_;\n"
                      "std::condition_variable cv_;\n")});
  const std::set<std::string> fired = FiredRules(vs);
  EXPECT_FALSE(fired.count("no-raw-concurrency-primitive"));
  EXPECT_FALSE(fired.count("guarded-by-required"));
}

TEST(LintServeMatrix, BadFixtureFiresAtExpectedLines) {
  const std::vector<Violation> vs =
      LintFixtureAs("serve_matrix_bad.h", "src/serve/serve_matrix_bad.h");
  std::vector<size_t> lines;
  for (const Violation& v : vs) {
    if (v.rule == "no-nested-vector-matrix") lines.push_back(v.line);
  }
  std::sort(lines.begin(), lines.end());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], 10u);  // interest member
  EXPECT_EQ(lines[1], 11u);  // triply nested samples
  EXPECT_EQ(lines[2], 13u);  // bare marker without a reason is no opt-out
}

TEST(LintServeMatrix, GoodFixtureIsClean) {
  const std::vector<Violation> vs =
      LintFixtureAs("serve_matrix_good.h", "src/serve/serve_matrix_good.h");
  for (const Violation& v : vs) ADD_FAILURE() << FormatViolation(v);
}

TEST(LintServeMatrix, RuleScopesToServe) {
  // The identical content anywhere else in src/ (or outside src/) is out of
  // the slab rule's scope — training code legitimately builds row vectors.
  for (const std::string& path :
       {std::string("src/rec/serve_matrix_bad.h"),
        std::string("tools/serve_matrix_bad.h")}) {
    const std::vector<Violation> vs = LintFixtureAs("serve_matrix_bad.h", path);
    EXPECT_FALSE(FiredRules(vs).count("no-nested-vector-matrix")) << path;
  }
}

TEST(LintCollect, SkipsTestdataAndNonSources) {
  // Collecting over tools/ must not pick up the fixtures this test lints.
  const std::vector<std::string> files =
      CollectSourceFiles(SUBREC_LINT_REPO_ROOT, {"tools"});
  EXPECT_FALSE(files.empty());
  for (const std::string& f : files) {
    EXPECT_EQ(f.find("testdata"), std::string::npos) << f;
  }
}

}  // namespace
}  // namespace subrec::lint
