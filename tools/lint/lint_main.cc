// subrec_lint: enforces repo invariants over the C++ tree. Registered as the
// `lint` ctest case; exits non-zero when any rule fires.
//
// Usage: subrec_lint <repo_root> [dir ...]   (default dirs: src tests bench
// examples tools)
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: subrec_lint <repo_root> [dir ...]" << std::endl;
    return 2;
  }
  const std::string repo_root = argv[1];
  std::vector<std::string> dirs;
  for (int i = 2; i < argc; ++i) dirs.push_back(argv[i]);
  if (dirs.empty()) dirs = {"src", "tests", "bench", "examples", "tools"};

  const std::vector<subrec::lint::Violation> violations =
      subrec::lint::LintTree(repo_root, dirs);
  for (const auto& v : violations) {
    std::cout << subrec::lint::FormatViolation(v) << "\n";
  }
  const size_t files =
      subrec::lint::CollectSourceFiles(repo_root, dirs).size();
  if (files == 0) {
    // Zero files means the root or every dir was wrong; a typo'd CI path
    // must not read as a clean pass.
    std::cerr << "subrec_lint: no source files found under '" << repo_root
              << "' (wrong repo root?)" << std::endl;
    return 2;
  }
  if (!violations.empty()) {
    std::cout << "subrec_lint: " << violations.size() << " violation(s) in "
              << files << " files" << std::endl;
    return 1;
  }
  std::cout << "subrec_lint: clean over " << files << " files" << std::endl;
  return 0;
}
