// Reproduces Tab. I: Spearman correlation between each method's predicted
// quality/difference ranking of NEW papers (published in 2013, evaluated by
// citations up to 2017) and the actual citation ranking, per Scopus
// discipline. 200 new papers per discipline, per the paper's protocol;
// results are averaged over two corpus seeds to damp 200-sample noise.
// Expected shape: SEM subspaces beat the text-quality scores CLT/CSJ, and
// the best SEM subspace per discipline follows the discipline's innovation
// profile (CS -> method/result, Medicine -> result, Sociology ->
// background/method).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cluster/lof.h"
#include "eval/metrics.h"
#include "rec/baselines_quality.h"

namespace {

using namespace subrec;  // bench binary: brevity over purity

std::vector<double> CitationsOf(const corpus::Corpus& corpus,
                                const std::vector<corpus::PaperId>& ids) {
  std::vector<double> out;
  out.reserve(ids.size());
  for (corpus::PaperId id : ids)
    out.push_back(static_cast<double>(corpus.paper(id).citation_count));
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table I: correlation between paper difference and citations (Scopus)");
  obs::RunReport report = bench::OpenReport("table1_sem_correlation");
  report.set_dataset("scopus-like/small");

  std::vector<uint64_t> seeds = {101, 202};
  if (bench::SmokeMode()) seeds.resize(1);
  std::vector<std::vector<double>> table(6, std::vector<double>(3, 0.0));

  for (uint64_t seed : seeds) {
    auto corpus_options =
        datagen::ScopusLikeOptions(datagen::DatasetScale::kSmall, seed);
    corpus_options.papers_per_year = 600;  // 200 new papers per discipline
    corpus_options.num_authors = 500;
    if (bench::SmokeMode()) {
      corpus_options.papers_per_year = 150;
      corpus_options.num_authors = 150;
    }
    auto world = bench::BuildSemWorld(corpus_options, {});
    const corpus::Corpus& corpus = world->dataset.corpus;
    bench::StampCorpus(&report, corpus.papers.size());
    std::printf("seed %llu: %zu papers, labeler accuracy %.3f\n",
                static_cast<unsigned long long>(seed), corpus.papers.size(),
                world->labeler_accuracy);

    // One SEM trained on all pre-2013 history.
    std::vector<corpus::PaperId> history;
    for (const auto& p : corpus.papers)
      if (p.year < 2013) history.push_back(p.id);
    auto sem = bench::TrainSem(*world, history);

    for (int d = 0; d < 3; ++d) {
      std::vector<corpus::PaperId> fresh =
          datagen::PapersOfDiscipline(corpus, d, 2013, 2013);
      if (fresh.size() > 200) fresh.resize(200);
      std::vector<corpus::PaperId> context =
          datagen::PapersOfDiscipline(corpus, d, 2010, 2012);
      const std::vector<double> citations = CitationsOf(corpus, fresh);
      const size_t sd = static_cast<size_t>(d);

      table[0][sd] += eval::SpearmanCorrelation(
          rec::CltScores(corpus, fresh), citations);
      table[1][sd] += eval::SpearmanCorrelation(
          rec::CsjScores(corpus, fresh), citations);
      table[2][sd] += eval::SpearmanCorrelation(
          rec::HpScores(corpus, fresh), citations);

      // SEM-B/M/R: LOF outlier score of each new paper among its
      // discipline corpus, per subspace, ranked against citations.
      std::vector<corpus::PaperId> all = context;
      all.insert(all.end(), fresh.begin(), fresh.end());
      for (int k = 0; k < 3; ++k) {
        const la::Matrix emb =
            sem->SubspaceEmbeddingMatrix(world->features, all, k);
        auto lof = cluster::LocalOutlierFactor(emb, 15);
        SUBREC_CHECK(lof.ok());
        std::vector<double> fresh_lof(
            lof.value().end() - static_cast<long>(fresh.size()),
            lof.value().end());
        table[3 + static_cast<size_t>(k)][sd] +=
            eval::SpearmanCorrelation(fresh_lof, citations);
      }
    }
  }
  for (auto& row : table)
    for (double& v : row) v /= static_cast<double>(seeds.size());

  std::printf("%-12s  %8s  %8s  %8s\n", "Model", "CompSci", "Medicine",
              "Sociology");
  const char* names[6] = {"CLT", "CSJ", "HP", "SEM-B", "SEM-M", "SEM-R"};
  for (int m = 0; m < 6; ++m)
    std::printf("%s\n",
                bench::Row(names[m], table[static_cast<size_t>(m)]).c_str());

  std::printf(
      "\npaper reports (Tab. I): CLT .27/.21/.39  CSJ .20/.16/.08  "
      "HP .33/.39/.31  SEM-B .56/.49/.62  SEM-M .87/.31/.68  "
      "SEM-R .72/.70/.51\n");

  const char* disciplines[3] = {"cs", "medicine", "sociology"};
  const char* model_keys[6] = {"clt", "csj", "hp", "sem_b", "sem_m", "sem_r"};
  for (int m = 0; m < 6; ++m) {
    for (int d = 0; d < 3; ++d) {
      report.AddScalar(std::string("spearman.") + model_keys[m] + "." +
                           disciplines[d],
                       table[static_cast<size_t>(m)][static_cast<size_t>(d)]);
    }
  }
  bench::WriteReport(&report);
  return 0;
}
