#include "bench_common.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "text/tokenizer.h"

#ifndef SUBREC_GIT_DESCRIBE
#define SUBREC_GIT_DESCRIBE "unknown"
#endif

namespace subrec::bench {

std::unique_ptr<SemWorld> BuildSemWorld(
    const datagen::CorpusGeneratorOptions& corpus_options,
    const SemWorldOptions& options) {
  auto world = std::make_unique<SemWorld>();
  auto generated = datagen::GenerateCorpus(corpus_options);
  SUBREC_CHECK(generated.ok()) << generated.status().ToString();
  world->dataset = std::move(generated).value();
  const corpus::Corpus& corpus = world->dataset.corpus;

  text::HashedNgramEncoderOptions enc_options;
  enc_options.dim = options.encoder_dim;
  enc_options.use_bigrams = options.encoder_bigrams;
  enc_options.seed = options.seed;
  world->encoder = std::make_unique<text::HashedNgramEncoder>(enc_options);

  // Keyword vectors: word2vec trained on abstracts + keyword lists.
  {
    std::vector<std::vector<std::string>> sentences;
    for (const auto& p : corpus.papers) {
      for (const auto& s : p.abstract_sentences)
        sentences.push_back(text::Tokenize(s.text));
      if (!p.keywords.empty()) sentences.push_back(p.keywords);
    }
    text::Word2VecOptions w2v_options;
    w2v_options.dim = 32;
    w2v_options.epochs = 1;
    w2v_options.seed = options.seed + 1;
    world->keyword_vectors = std::make_unique<text::Word2Vec>(w2v_options);
    const Status s = world->keyword_vectors->Train(sentences);
    SUBREC_CHECK(s.ok()) << s.ToString();
  }

  // Labeler trained on a gold slice, evaluated on the next slice.
  {
    const int train_docs =
        std::min<int>(options.labeler_train_docs,
                      static_cast<int>(corpus.papers.size()) / 2);
    std::vector<std::vector<std::string>> abstracts, eval_abstracts;
    std::vector<std::vector<int>> roles, eval_roles;
    for (int i = 0; i < train_docs * 2; ++i) {
      std::vector<int> row;
      for (const auto& s : corpus.papers[static_cast<size_t>(i)].abstract_sentences)
        row.push_back(s.role);
      if (i < train_docs) {
        abstracts.push_back(corpus.AbstractOf(i));
        roles.push_back(std::move(row));
      } else {
        eval_abstracts.push_back(corpus.AbstractOf(i));
        eval_roles.push_back(std::move(row));
      }
    }
    world->labeler = std::make_unique<labeling::SentenceLabeler>(3);
    const Status s = world->labeler->Train(abstracts, roles);
    SUBREC_CHECK(s.ok()) << s.ToString();
    world->labeler_accuracy =
        world->labeler->Evaluate(eval_abstracts, eval_roles);
  }

  world->engine = std::make_unique<rules::ExpertRuleEngine>(
      &world->dataset.ccs, world->encoder.get(),
      world->keyword_vectors.get());

  world->features.reserve(corpus.papers.size());
  for (const auto& p : corpus.papers) {
    world->features.push_back(world->engine->ComputeFeatures(
        p, world->labeler->Label(corpus.AbstractOf(p.id))));
  }
  return world;
}

std::unique_ptr<subspace::SemModel> TrainSem(
    const SemWorld& world, const std::vector<corpus::PaperId>& history,
    int epochs, uint64_t seed) {
  subspace::SemModelOptions options;
  options.encoder.input_dim = world.encoder->dim();
  // Residual fine-tuning keeps hidden == input.
  options.encoder.hidden_dim = world.encoder->dim();
  options.encoder.attention_dim = 16;
  options.miner.num_candidates = 1200;
  options.trainer.epochs = epochs;
  options.seed = seed;
  auto model = std::make_unique<subspace::SemModel>(options);
  auto stats = model->Fit(world.dataset.corpus, history, world.features,
                          *world.engine);
  SUBREC_CHECK(stats.ok()) << stats.status().ToString();
  return model;
}

std::unique_ptr<RecWorld> BuildRecWorld(std::unique_ptr<SemWorld> sem,
                                        const RecWorldOptions& options) {
  auto world = std::make_unique<RecWorld>();
  world->sem = std::move(sem);
  const corpus::Corpus& corpus = world->sem->dataset.corpus;
  const datagen::YearSplit split =
      datagen::SplitByYear(corpus, options.split_year);

  graph::GraphBuildOptions graph_options;
  graph_options.citation_year_cutoff = options.split_year;
  world->graph = graph::BuildAcademicGraph(corpus, graph_options);

  // SEM-trained subspace embeddings for every paper.
  world->sem_model = TrainSem(*world->sem, split.train);
  for (const auto& p : corpus.papers) {
    auto subs =
        world->sem_model->Embed(world->sem->features[static_cast<size_t>(p.id)]);
    std::vector<double> fused(subs[0].size(), 0.0);
    for (const auto& s : subs)
      for (size_t j = 0; j < s.size(); ++j) fused[j] += s[j] / 3.0;
    world->subspace.push_back(std::move(subs));
    world->text.push_back(std::move(fused));
  }

  world->ctx.corpus = &corpus;
  world->ctx.graph = &world->graph;
  world->ctx.split_year = options.split_year;
  world->ctx.train_papers = split.train;
  world->ctx.test_papers = split.test;
  world->ctx.paper_text = &world->text;

  world->users = datagen::SelectUsers(corpus, options.split_year,
                                      options.min_train_papers);
  if (static_cast<int>(world->users.size()) > options.max_users)
    world->users.resize(static_cast<size_t>(options.max_users));
  Rng rng(options.seed);
  for (corpus::AuthorId u : world->users)
    world->sets.push_back(rec::BuildCandidateSet(
        world->ctx, u, options.candidates_per_user, rng));
  return world;
}

std::vector<rec::CandidateSet> BuildCandidateSets(
    const rec::RecContext& ctx, const std::vector<corpus::AuthorId>& users,
    int k, uint64_t seed) {
  Rng rng(seed);
  std::vector<rec::CandidateSet> sets;
  sets.reserve(users.size());
  for (corpus::AuthorId u : users)
    sets.push_back(rec::BuildCandidateSet(ctx, u, k, rng));
  return sets;
}

std::string Row(const std::string& name, const std::vector<double>& values) {
  char buf[32];
  std::string out = name;
  if (out.size() < 12) out += std::string(12 - out.size(), ' ');
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "  %8.4f", v);
    out += buf;
  }
  return out;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string Slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c))
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : '_';
  }
  return out;
}

bool SmokeMode() {
  const char* env = std::getenv("SUBREC_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

bool SingleCoreHost() { return par::HardwareThreads() <= 1; }

obs::RunReport OpenReport(const std::string& name, bool enable_tracing) {
  obs::RunReport report(name);
  report.set_build_id(SUBREC_GIT_DESCRIBE);
  if (SmokeMode()) report.AddString("mode", "smoke");
  report.AddScalar("host.hardware_concurrency",
                   static_cast<double>(par::HardwareThreads()));
  report.AddScalar("host.single_core", SingleCoreHost() ? 1.0 : 0.0);
  obs::MetricsRegistry::Global().Reset();
  if (enable_tracing) obs::TraceRecorder::Global().Enable();
  return report;
}

void StampCorpus(obs::RunReport* report, size_t num_papers) {
  report->AddScalar("dataset.num_papers",
                    report->scalar_or("dataset.num_papers", 0.0) +
                        static_cast<double>(num_papers));
}

void WriteReport(obs::RunReport* report) {
  SUBREC_CHECK(report->has_scalar("dataset.num_papers"))
      << "bench honesty: report '" << report->name()
      << "' never called StampCorpus — numbers without their corpus size "
         "are not comparable across commits";
  report->AddScalar("wall_seconds", report->ElapsedSeconds());
  report->CaptureMetrics();
  report->CaptureSpans();
  std::string path;
  const Status status = report->WriteFile("", &path);
  SUBREC_CHECK(status.ok()) << status.ToString();
  std::printf("report: %s\n", path.c_str());
  const char* dump = std::getenv("SUBREC_TRACE_DUMP");
  if (dump != nullptr && dump[0] != '\0' && dump[0] != '0' &&
      obs::TraceRecorder::Global().enabled()) {
    const std::string trace_path = "TRACE_" + report->name() + ".json";
    std::ofstream out(trace_path, std::ios::trunc);
    SUBREC_CHECK(out.is_open()) << "cannot open " << trace_path;
    out << obs::TraceRecorder::Global().ChromeTraceJson() << "\n";
    std::printf("trace: %s\n", trace_path.c_str());
  }
  obs::TraceRecorder::Global().Disable();
}

}  // namespace subrec::bench
