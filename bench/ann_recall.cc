// bench/ann_recall: HNSW recall@N vs latency against the exact oracle.
//
// The headline gate for src/ann: over the streaming corpus's new-paper
// pool (the exact population FreezeNPRec indexes), sweep the search beam
// width ef and report, per ef, recall@10 measured against ExactIndex and
// the ANN latency distribution. The unsuffixed "recall.at_10" /
// "ann.p99_us" scalars are the defaults the serving path uses (ef=128);
// CI asserts recall.at_10 >= 0.95 and the full preset must show ANN mean
// latency at least 5x below the exact scan.
//
// Preset selection: --preset=smoke-4e3|full-1e5|xl-1e6 (default full-1e5).
// SUBREC_BENCH_SMOKE=1 forces smoke-4e3 regardless of the flag, so the CI
// harness never accidentally runs the big scales. xl-1e6 is the
// 10^6-paper scale run (~2-3 GB peak); it skips the legacy-build baseline,
// which would take tens of minutes at that size.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ann/exact_index.h"
#include "ann/hnsw_index.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "datagen/streaming.h"
#include "obs/run_report.h"
#include "par/parallel.h"

namespace subrec {
namespace {

/// The serving default (CandidateIndexOptions::ann_ef) sits in the middle
/// of the sweep; its row is also exported unsuffixed as the headline.
constexpr int kHeadlineEf = 128;
constexpr int kTopK = 10;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double PercentileUs(std::vector<int64_t> ns, double q) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const size_t idx = std::min(
      ns.size() - 1, static_cast<size_t>(q * static_cast<double>(ns.size())));
  return static_cast<double>(ns[idx]) / 1e3;
}

double MeanUs(const std::vector<int64_t>& ns) {
  if (ns.empty()) return 0.0;
  double total = 0.0;
  for (int64_t v : ns) total += static_cast<double>(v);
  return total / static_cast<double>(ns.size()) / 1e3;
}

/// User-profile-shaped queries: each is the mean interest vector of a few
/// pre-split (history) papers, exactly what CandidateIndex sends to the
/// index at serve time.
std::vector<std::vector<double>> BuildQueries(
    const datagen::StreamingCorpusGenerator& gen, size_t history_papers,
    size_t num_queries, uint64_t seed) {
  const size_t dim = gen.options().embedding_dim;
  constexpr size_t kPapersPerProfile = 5;
  Rng rng(seed);
  std::vector<std::vector<double>> queries;
  queries.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<double> profile(dim, 0.0);
    for (size_t p = 0; p < kPapersPerProfile; ++p) {
      const auto paper = gen.PaperAt(rng.UniformInt(history_papers));
      for (size_t j = 0; j < dim; ++j) profile[j] += paper.interest[j];
    }
    for (double& v : profile) v /= static_cast<double>(kPapersPerProfile);
    queries.push_back(std::move(profile));
  }
  return queries;
}

double RecallAt10(const std::vector<ann::Neighbor>& approx,
                  const std::vector<ann::Neighbor>& exact) {
  if (exact.empty()) return 1.0;
  size_t hit = 0;
  for (const ann::Neighbor& e : exact) {
    for (const ann::Neighbor& a : approx) {
      if (a.id == e.id) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

/// Wall-clock one HnswIndex::Build; the returned index is discarded unless
/// the caller keeps it.
double TimedBuildSeconds(const std::vector<int32_t>& ids,
                         const std::vector<double>& vectors, size_t dim,
                         const ann::HnswOptions& options,
                         std::unique_ptr<ann::HnswIndex>* keep) {
  const int64_t t0 = NowNs();
  auto built = ann::HnswIndex::Build(ids, vectors, dim, options);
  SUBREC_CHECK(built.ok()) << built.status().ToString();
  const double seconds = static_cast<double>(NowNs() - t0) / 1e9;
  if (keep != nullptr) *keep = std::move(built).value();
  return seconds;
}

}  // namespace

int RunAnnRecall(int argc, char** argv) {
  // SUBREC_BENCH_SMOKE wins over the flag: the CI smoke lane sets the env
  // var globally and must stay at 4e3 even if a preset leaks into argv.
  const char* preset = "full-1e5";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) preset = argv[i] + 9;
  }
  if (bench::SmokeMode()) preset = "smoke-4e3";
  datagen::AnnCorpusScale scale;
  if (std::strcmp(preset, "smoke-4e3") == 0) {
    scale = datagen::AnnCorpusScale::kSmoke;
  } else if (std::strcmp(preset, "full-1e5") == 0) {
    scale = datagen::AnnCorpusScale::kFull;
  } else if (std::strcmp(preset, "xl-1e6") == 0) {
    scale = datagen::AnnCorpusScale::kXl;
  } else {
    std::fprintf(stderr,
                 "unknown --preset=%s (want smoke-4e3|full-1e5|xl-1e6)\n",
                 preset);
    return 1;
  }
  const bool smoke = scale == datagen::AnnCorpusScale::kSmoke;
  const bool xl = scale == datagen::AnnCorpusScale::kXl;

  bench::PrintHeader("ann_recall: HNSW recall@10 vs latency (exact oracle)");
  obs::RunReport report = bench::OpenReport("ann_recall");
  report.set_dataset(std::string("streaming/") + preset);

  auto created =
      datagen::StreamingCorpusGenerator::Create(datagen::AnnRecallPreset(
          scale, /*seed=*/909));
  SUBREC_CHECK(created.ok()) << created.status().ToString();
  datagen::StreamingCorpusGenerator gen = std::move(created).value();
  const size_t dim = gen.options().embedding_dim;
  bench::StampCorpus(&report, gen.num_papers());

  // Stream the corpus once; the new-paper pool (year > split) becomes the
  // index population, mirroring FreezeNPRec. Peak memory is one batch plus
  // the flat new-pool matrix the index needs anyway.
  std::vector<int32_t> ids;
  std::vector<double> vectors;
  size_t history_papers = 0;
  {
    std::vector<datagen::StreamedPaper> batch;
    while (gen.NextBatch(1024, &batch) > 0) {
      for (const auto& p : batch) {
        if (p.year <= gen.split_year()) {
          ++history_papers;
          continue;
        }
        ids.push_back(p.id);
        vectors.insert(vectors.end(), p.influence.begin(), p.influence.end());
      }
    }
  }
  SUBREC_CHECK(history_papers > 0 && !ids.empty());
  report.AddScalar("dataset.new_pool", static_cast<double>(ids.size()));
  std::printf("corpus: %zu papers (%zu history, %zu new-pool), dim %zu\n",
              gen.num_papers(), history_papers, ids.size(), dim);

  const auto queries =
      BuildQueries(gen, history_papers, smoke ? 64 : 200, /*seed=*/31);

  // Build-throughput section: the arena + SIMD-kernel build against the
  // pre-refactor nested-vector baseline (HnswOptions::legacy_build), both
  // single-threaded on this host back to back so the speedup ratio cancels
  // host drift. The xl preset skips the baseline — the legacy path at 5e5
  // nodes would take tens of minutes and proves nothing the 1e5 A/B
  // doesn't. Both paths produce byte-identical graphs (tests/ann_test.cc
  // pins them to a pre-refactor golden), so the sweep below is unaffected
  // by which build is kept.
  const double pool_nodes = static_cast<double>(ids.size());
  {
    par::ScopedNumThreads single(1);
    const double arena_t1 =
        TimedBuildSeconds(ids, vectors, dim, ann::HnswOptions{}, nullptr);
    report.AddScalar("ann.build.seconds.t1", arena_t1);
    std::printf("hnsw build (threads=1): %.3fs (%.0f nodes/s)\n", arena_t1,
                pool_nodes / arena_t1);
    if (!xl) {
      ann::HnswOptions legacy;
      legacy.legacy_build = true;
      const double legacy_t1 =
          TimedBuildSeconds(ids, vectors, dim, legacy, nullptr);
      report.AddScalar("ann.build.seconds.legacy_t1", legacy_t1);
      report.AddScalar("ann.build.speedup_vs_baseline", legacy_t1 / arena_t1);
      std::printf("legacy build (threads=1): %.3fs -> speedup %.2fx\n",
                  legacy_t1, legacy_t1 / arena_t1);
    }
  }
  ann::ExactIndex exact(ids, vectors, dim);
  std::unique_ptr<ann::HnswIndex> hnsw;
  const double build_seconds =
      TimedBuildSeconds(ids, vectors, dim, ann::HnswOptions{}, &hnsw);
  report.AddScalar("ann.build.seconds.default", build_seconds);
  report.AddScalar("ann.build.nodes_per_s", pool_nodes / build_seconds);
  report.AddScalar("hnsw.build_seconds", build_seconds);
  report.AddScalar("hnsw.index_bytes",
                   static_cast<double>(hnsw->Serialize().size()));
  std::printf(
      "hnsw build (default threads): %.3fs (%.0f nodes/s, M=%d "
      "ef_construction=%d, max level %d)\n",
      build_seconds, pool_nodes / build_seconds, hnsw->M(),
      hnsw->ef_construction(), hnsw->max_level());

  // Exact oracle: ground-truth top-10 per query, timed as the baseline the
  // >= 5x latency acceptance is measured against.
  std::vector<std::vector<ann::Neighbor>> truth(queries.size());
  std::vector<int64_t> exact_ns;
  exact_ns.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const int64_t t0 = NowNs();
    SUBREC_CHECK(exact.Search(queries[q], kTopK, 0, &truth[q]).ok());
    exact_ns.push_back(NowNs() - t0);
  }
  report.AddScalar("exact.mean_us", MeanUs(exact_ns));
  report.AddScalar("exact.p99_us", PercentileUs(exact_ns, 0.99));

  // The sweep: one pass per ef, three timing repetitions per query so p99
  // is not a single-sample artifact. Recall is ef-dependent, timing-pass
  // independent.
  const std::vector<int> efs = {16, 32, 64, 128, 256};
  constexpr int kTimingPasses = 3;
  std::printf("%6s %12s %12s %12s %12s\n", "ef", "recall@10", "mean_us",
              "p50_us", "p99_us");
  for (int ef : efs) {
    std::vector<int64_t> ann_ns;
    ann_ns.reserve(queries.size() * kTimingPasses);
    double recall_sum = 0.0;
    std::vector<ann::Neighbor> out;
    for (int pass = 0; pass < kTimingPasses; ++pass) {
      for (size_t q = 0; q < queries.size(); ++q) {
        const int64_t t0 = NowNs();
        SUBREC_CHECK(hnsw->Search(queries[q], kTopK, ef, &out).ok());
        ann_ns.push_back(NowNs() - t0);
        if (pass == 0) recall_sum += RecallAt10(out, truth[q]);
      }
    }
    const double recall = recall_sum / static_cast<double>(queries.size());
    const double mean_us = MeanUs(ann_ns);
    const double p50_us = PercentileUs(ann_ns, 0.50);
    const double p99_us = PercentileUs(ann_ns, 0.99);
    const std::string suffix = ".ef" + std::to_string(ef);
    report.AddScalar("recall.at_10" + suffix, recall);
    report.AddScalar("ann.mean_us" + suffix, mean_us);
    report.AddScalar("ann.p99_us" + suffix, p99_us);
    std::printf("%6d %12.4f %12.2f %12.2f %12.2f\n", ef, recall, mean_us,
                p50_us, p99_us);
    if (ef == kHeadlineEf) {
      report.AddScalar("recall.at_10", recall);
      report.AddScalar("ann.mean_us", mean_us);
      report.AddScalar("ann.p99_us", p99_us);
      report.AddScalar("speedup.exact_over_ann",
                       mean_us > 0.0 ? MeanUs(exact_ns) / mean_us : 0.0);
    }
  }
  std::printf("exact scan:  mean %.2fus  p99 %.2fus  -> speedup at ef=%d: "
              "%.1fx\n",
              report.scalar_or("exact.mean_us", 0.0),
              report.scalar_or("exact.p99_us", 0.0), kHeadlineEf,
              report.scalar_or("speedup.exact_over_ann", 0.0));

  bench::WriteReport(&report);
  return 0;
}

}  // namespace subrec

int main(int argc, char** argv) { return subrec::RunAnnRecall(argc, argv); }
