// Reproduces Tab. V: effect of the number of representative papers (#rp)
// used to model the user, plus MRR and MAP. Expected shape: every method
// improves from #rp=3 to #rp=5, NPRec leads all columns, and NPRec's MRR /
// MAP beat the baselines by a clear margin.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "rec/jtie.h"
#include "rec/kgcn.h"
#include "rec/mlp_ncf.h"
#include "rec/nbcf.h"
#include "rec/nprec.h"
#include "rec/ripplenet.h"
#include "rec/wnmf.h"

namespace {

using namespace subrec;

rec::NPRecOptions BenchNPRecOptions() {
  rec::NPRecOptions options;
  options.sampler.max_positives = 1500;
  return options;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table V: comparison on different publication numbers (#rp)");
  obs::RunReport report = bench::OpenReport("table5_publication_counts");
  report.set_dataset("acm-like+scopus-like/small");

  // ACM world carries the nDCG/MRR/MAP columns; Scopus adds nDCG@20.
  auto acm = bench::BuildRecWorld(
      bench::BuildSemWorld(
          datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303), {}),
      [] {
        bench::RecWorldOptions o;
        o.max_users = 150;
        return o;
      }());
  auto scopus = bench::BuildRecWorld(
      bench::BuildSemWorld(
          datagen::ScopusLikeOptions(datagen::DatasetScale::kSmall, 404), {}),
      [] {
        bench::RecWorldOptions o;
        o.max_users = 100;
        return o;
      }());
  bench::StampCorpus(&report, acm->ctx.corpus->papers.size());
  bench::StampCorpus(&report, scopus->ctx.corpus->papers.size());

  std::vector<std::unique_ptr<rec::Recommender>> models;
  models.push_back(std::make_unique<rec::WnmfRecommender>());
  models.push_back(std::make_unique<rec::NbcfRecommender>());
  models.push_back(std::make_unique<rec::MlpRecommender>());
  models.push_back(std::make_unique<rec::JtieRecommender>());
  models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnOptions(BenchNPRecOptions()), &acm->subspace));
  models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnLsOptions(BenchNPRecOptions()), &acm->subspace));
  models.push_back(std::make_unique<rec::RippleNetRecommender>());
  models.push_back(
      std::make_unique<rec::NPRec>(BenchNPRecOptions(), &acm->subspace));
  // Scopus needs its own NPRec-family fits (different graph/embeddings).
  std::vector<std::unique_ptr<rec::Recommender>> scopus_models;
  scopus_models.push_back(std::make_unique<rec::WnmfRecommender>());
  scopus_models.push_back(std::make_unique<rec::NbcfRecommender>());
  scopus_models.push_back(std::make_unique<rec::MlpRecommender>());
  scopus_models.push_back(std::make_unique<rec::JtieRecommender>());
  scopus_models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnOptions(BenchNPRecOptions()), &scopus->subspace));
  scopus_models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnLsOptions(BenchNPRecOptions()), &scopus->subspace));
  scopus_models.push_back(std::make_unique<rec::RippleNetRecommender>());
  scopus_models.push_back(
      std::make_unique<rec::NPRec>(BenchNPRecOptions(), &scopus->subspace));

  const auto acm_sets = bench::BuildCandidateSets(acm->ctx, acm->users, 20, 7);
  const auto scopus_sets =
      bench::BuildCandidateSets(scopus->ctx, scopus->users, 20, 7);

  std::printf(
      "%-12s  ACM@20rp3  ACM@20rp5   MRR(rp5)   MAP(rp5)  Sco@20rp3  "
      "Sco@20rp5\n",
      "Model");
  for (size_t i = 0; i < models.size(); ++i) {
    Status status = models[i]->Fit(acm->ctx);
    SUBREC_CHECK(status.ok()) << models[i]->name() << status.ToString();
    status = scopus_models[i]->Fit(scopus->ctx);
    SUBREC_CHECK(status.ok()) << status.ToString();

    const auto acm3 =
        rec::EvaluateRecommender(acm->ctx, *models[i], acm_sets, 20, 3);
    const auto acm5 =
        rec::EvaluateRecommender(acm->ctx, *models[i], acm_sets, 20, 5);
    const auto sco3 = rec::EvaluateRecommender(scopus->ctx, *scopus_models[i],
                                               scopus_sets, 20, 3);
    const auto sco5 = rec::EvaluateRecommender(scopus->ctx, *scopus_models[i],
                                               scopus_sets, 20, 5);
    std::printf("%s\n",
                bench::Row(models[i]->name(),
                           {acm3.ndcg, acm5.ndcg, acm5.mrr, acm5.map,
                            sco3.ndcg, sco5.ndcg})
                    .c_str());
    const std::string slug = bench::Slug(models[i]->name());
    report.AddScalar("ndcg.acm_like." + slug + ".rp3", acm3.ndcg);
    report.AddScalar("ndcg.acm_like." + slug + ".rp5", acm5.ndcg);
    report.AddScalar("mrr.acm_like." + slug + ".rp5", acm5.mrr);
    report.AddScalar("map.acm_like." + slug + ".rp5", acm5.map);
    report.AddScalar("ndcg.scopus_like." + slug + ".rp3", sco3.ndcg);
    report.AddScalar("ndcg.scopus_like." + slug + ".rp5", sco5.ndcg);
  }

  std::printf(
      "\npaper reports (Tab. V, ACM rp3/rp5/MRR/MAP): WNMF .76/.79/.15/.33 "
      " NBCF .77/.82/.21/.40  MLP .85/.87/.24/.44  JTIE .86/.87/.35/.53  "
      "KGCN .88/.89/.36/.65  KGCN-LS .92/.92/.46/.67  RippleNet "
      ".92/.93/.58/.71  NPRec .97/.98/.71/.82\n");
  bench::WriteReport(&report);
  return 0;
}
