// Training-step throughput of the arena-backed tape: times one SEM
// twin-network fit and one NPRec fit with the pooled/recycled tape against
// the legacy allocate-per-item path (toggled via SetTapeLegacyMode in the
// same binary), at 1 thread and at the default thread count. Also proves
// the two contracts the rewrite must keep: per-epoch losses are bitwise
// identical across all paths/thread counts, and a warmed-up tape performs
// zero slab allocations across Reset/rebuild cycles.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "bench_common.h"
#include "datagen/split.h"
#include "la/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "rec/nprec.h"
#include "rules/rule_fusion.h"
#include "subspace/trainer.h"
#include "subspace/triplet_miner.h"
#include "subspace/twin_network.h"

namespace {

using namespace subrec;

/// One timed fit: throughput plus the evidence needed for the parity and
/// allocation checks.
struct FitRun {
  double steps_per_s = 0.0;
  std::vector<double> losses;
  int64_t tape_nodes = 0;
};

obs::Counter* NodesBuiltCounter() {
  return obs::MetricsRegistry::Global().GetCounter("tape.nodes_built");
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

// --- SEM twin network ------------------------------------------------------

FitRun RunSemFit(const bench::SemWorld& world,
                 const std::vector<subspace::Triplet>& triplets,
                 const subspace::SubspaceEncoderOptions& encoder_options,
                 int epochs, size_t threads, bool legacy) {
  autodiff::SetTapeLegacyMode(legacy);
  par::ScopedNumThreads scoped(threads);
  subspace::TwinNetwork net(encoder_options, /*seed=*/21);
  subspace::SemTrainerOptions trainer_options;
  trainer_options.epochs = epochs;

  const int64_t nodes0 = NodesBuiltCounter()->value();
  const int64_t t0 = obs::NowNs();
  auto stats =
      subspace::TrainTwinNetwork(world.features, triplets, trainer_options, &net);
  const double seconds = static_cast<double>(obs::NowNs() - t0) / 1e9;
  autodiff::SetTapeLegacyMode(false);
  SUBREC_CHECK(stats.ok()) << stats.status().ToString();

  const size_t batch = static_cast<size_t>(trainer_options.batch_size);
  const size_t steps_per_epoch = (triplets.size() + batch - 1) / batch;
  FitRun run;
  run.steps_per_s =
      static_cast<double>(epochs) * static_cast<double>(steps_per_epoch) /
      std::max(seconds, 1e-9);
  run.losses = stats.value().epoch_loss;
  run.tape_nodes = NodesBuiltCounter()->value() - nodes0;
  return run;
}

// --- NPRec -----------------------------------------------------------------

FitRun RunNPRecFit(const bench::RecWorld& world, int epochs, int max_positives,
                   size_t threads, bool legacy) {
  autodiff::SetTapeLegacyMode(legacy);
  par::ScopedNumThreads scoped(threads);
  rec::NPRecOptions options;
  options.epochs = epochs;
  options.use_raw_text_channel = true;  // exercises the per-batch raw cache
  options.sampler.max_positives = max_positives;
  rec::NPRec model(options, &world.subspace);

  const int64_t nodes0 = NodesBuiltCounter()->value();
  const Status status = model.Fit(world.ctx);
  autodiff::SetTapeLegacyMode(false);
  SUBREC_CHECK(status.ok()) << status.ToString();

  const rec::NPRecTrainStats& stats = model.train_stats();
  const size_t batch = static_cast<size_t>(options.batch_size);
  const size_t steps_per_epoch = (stats.num_pairs + batch - 1) / batch;
  FitRun run;
  run.steps_per_s =
      static_cast<double>(epochs) * static_cast<double>(steps_per_epoch) /
      std::max(stats.train_seconds, 1e-9);
  run.losses = stats.epoch_loss;
  run.tape_nodes = NodesBuiltCounter()->value() - nodes0;
  return run;
}

/// Runs {legacy, arena} x {1 thread, default threads} for one model, records
/// throughput + speedups, and checks the losses are bitwise identical
/// everywhere. The default-thread ratio is the headline number: on
/// multi-core hosts the legacy path's per-item slabs sit right at the
/// allocator's mmap threshold and contend on the kernel's mmap lock exactly
/// where the pooled tapes run allocation-free (on a single-core host the
/// two ratios coincide up to noise). Both fit ratios share the model's
/// full GEMM/elementwise compute; RunTapeMachinery below isolates the
/// machinery cost the rewrite removed.
void RunModel(const std::string& key,
              const std::function<FitRun(size_t, bool)>& fit,
              obs::RunReport* report) {
  const FitRun legacy1 = fit(1, true);
  const FitRun new1 = fit(1, false);
  const FitRun legacy_default = fit(0, true);
  const FitRun new_default = fit(0, false);

  SUBREC_CHECK(SameBits(legacy1.losses, new1.losses))
      << key << ": legacy vs arena losses differ";
  SUBREC_CHECK(SameBits(new1.losses, new_default.losses))
      << key << ": 1-thread vs default-thread losses differ";
  SUBREC_CHECK(SameBits(legacy1.losses, legacy_default.losses))
      << key << ": legacy 1-thread vs default-thread losses differ";

  const double speedup1 = new1.steps_per_s / legacy1.steps_per_s;
  const double speedup_default =
      new_default.steps_per_s / legacy_default.steps_per_s;
  report->AddScalar("steps_per_s." + key + ".legacy_threads1",
                    legacy1.steps_per_s);
  report->AddScalar("steps_per_s." + key + ".legacy_threads_default",
                    legacy_default.steps_per_s);
  report->AddScalar("steps_per_s." + key + ".threads1", new1.steps_per_s);
  report->AddScalar("steps_per_s." + key + ".threads_default",
                    new_default.steps_per_s);
  report->AddScalar("speedup." + key, speedup_default);
  report->AddScalar("speedup." + key + ".threads1", speedup1);
  report->AddScalar("tape_nodes." + key,
                    static_cast<double>(new1.tape_nodes));
  report->AddScalar("loss_bitwise_match." + key, 1.0);
  std::printf(
      "%-6s  1 thread: legacy %8.1f  arena %8.1f steps/s  x%.2f   "
      "default threads: legacy %8.1f  arena %8.1f steps/s  x%.2f\n",
      key.c_str(), legacy1.steps_per_s, new1.steps_per_s, speedup1,
      legacy_default.steps_per_s, new_default.steps_per_s, speedup_default);
}

/// Times the tape machinery itself — Reset + node construction + closure
/// vs. opcode backward — on a graph of small matrices where per-node
/// bookkeeping, not model FLOPs, dominates. The SEM/NPRec fits above share
/// their (identical) GEMM/elementwise compute between both paths, which
/// bounds their end-to-end ratio; this probe isolates the cost the rewrite
/// actually removed. Same bitwise contract: the loss must match exactly.
void RunTapeMachinery(obs::RunReport* report) {
  la::Matrix x(1, 8), w(8, 8), b(1, 8);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = 0.02 * (i % 23) - 0.2;
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = 0.01 * (i % 31) - 0.15;
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = 0.005 * (i % 7) - 0.01;

  const auto one_pass = [&](autodiff::Tape* tape) {
    tape->Reset();
    autodiff::VarId in = tape->Input(x, /*requires_grad=*/false);
    autodiff::VarId wid = tape->Input(w);
    autodiff::VarId bid = tape->Input(b);
    autodiff::VarId h = in;
    for (int layer = 0; layer < 200; ++layer) {
      h = tape->Tanh(
          tape->AddRowBroadcast(tape->MatMul(h, wid), bid));
    }
    autodiff::VarId loss = tape->SumSquares(h);
    tape->Backward(loss);
    return tape->value(loss)(0, 0);
  };

  const auto run = [&](bool legacy) {
    autodiff::SetTapeLegacyMode(legacy);
    const int passes = bench::SmokeMode() ? 300 : 1500;
    double loss = 0.0;
    // Legacy mode allocates a fresh tape per pass, like the old
    // tape-per-item training loops; the arena path recycles one.
    autodiff::Tape arena_tape;
    const int64_t t0 = obs::NowNs();
    for (int p = 0; p < passes; ++p) {
      if (legacy) {
        autodiff::Tape fresh;
        loss = one_pass(&fresh);
      } else {
        loss = one_pass(&arena_tape);
      }
    }
    const double seconds = static_cast<double>(obs::NowNs() - t0) / 1e9;
    autodiff::SetTapeLegacyMode(false);
    return std::make_pair(passes / std::max(seconds, 1e-9), loss);
  };

  const auto [legacy_rate, legacy_loss] = run(true);
  const auto [arena_rate, arena_loss] = run(false);
  SUBREC_CHECK(legacy_loss == arena_loss)
      << "tape machinery: legacy vs arena loss differs";
  report->AddScalar("steps_per_s.tape_machinery.legacy", legacy_rate);
  report->AddScalar("steps_per_s.tape_machinery", arena_rate);
  report->AddScalar("speedup.tape_machinery", arena_rate / legacy_rate);
  std::printf("tape machinery (604-node small-matrix graph): legacy %8.1f  "
              "arena %8.1f passes/s  x%.2f\n",
              legacy_rate, arena_rate, arena_rate / legacy_rate);
}

/// Direct zero-allocation probe: after one warmup pass, Reset + rebuild of
/// a representative graph must not grow the arena and must recycle every
/// node slab.
void ProbeSteadyStateAllocations(obs::RunReport* report) {
  autodiff::Tape tape;
  la::Matrix x(16, 16);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = 0.01 * (i % 37) - 0.1;
  const auto pass = [&]() {
    autodiff::VarId in = tape.Input(x);
    autodiff::VarId h = tape.Tanh(tape.MatMul(in, in));
    autodiff::VarId loss = tape.SumSquares(tape.RowMean(h));
    tape.Backward(loss);
  };
  pass();
  tape.Reset();
  const size_t warm_bytes = tape.bytes_reserved();
  const uint64_t hits0 = tape.slab_reuse_hits();
  pass();
  tape.Reset();
  const size_t steady_bytes = tape.bytes_reserved();
  const uint64_t reuse_hits = tape.slab_reuse_hits() - hits0;

  SUBREC_CHECK_EQ(warm_bytes, steady_bytes)
      << "steady-state rebuild grew the tape arena";
  SUBREC_CHECK_GT(reuse_hits, 0u) << "steady-state rebuild recycled no slabs";
  report->AddScalar("tape.arena_bytes_warm",
                    static_cast<double>(warm_bytes));
  report->AddScalar("tape.arena_bytes_steady",
                    static_cast<double>(steady_bytes));
  report->AddScalar("tape.steady_state_reuse_hits",
                    static_cast<double>(reuse_hits));
  std::printf("tape probe: %zu arena bytes flat across reset, %llu slab "
              "reuse hits\n",
              steady_bytes, static_cast<unsigned long long>(reuse_hits));
}

}  // namespace

int main() {
  obs::RunReport report = bench::OpenReport("train_step",
                                            /*enable_tracing=*/false);
  const bool smoke = bench::SmokeMode();
  if (bench::SingleCoreHost()) {
    std::printf("note: single-core host — default-thread speedups measure "
                "the serial code path only\n");
  }

  ProbeSteadyStateAllocations(&report);
  RunTapeMachinery(&report);

  // SEM: mine the triplets once (deterministic), then time TrainTwinNetwork
  // over them — the part of SemModel::Fit the tape rewrite touches.
  const auto scale =
      smoke ? datagen::DatasetScale::kTiny : datagen::DatasetScale::kSmall;
  auto sem_world = bench::BuildSemWorld(
      datagen::ScopusLikeOptions(scale, /*seed=*/404), {});
  const datagen::YearSplit split =
      datagen::SplitByYear(sem_world->dataset.corpus, 2014);
  bench::StampCorpus(&report, sem_world->dataset.corpus.papers.size());

  subspace::SubspaceEncoderOptions encoder_options;
  encoder_options.input_dim = sem_world->encoder->dim();
  encoder_options.hidden_dim = sem_world->encoder->dim();
  encoder_options.attention_dim = 16;
  rules::RuleFusion fusion(encoder_options.num_subspaces);
  for (int k = 0; k < encoder_options.num_subspaces; ++k)
    SUBREC_CHECK(fusion.SetWeights(k, {0.15, 0.15, 0.15, 0.55}).ok());
  SUBREC_CHECK(subspace::CalibrateFusion(sem_world->dataset.corpus, split.train,
                                         sem_world->features, *sem_world->engine,
                                         /*num_pairs=*/smoke ? 120 : 500,
                                         /*seed=*/43, &fusion)
                   .ok());
  subspace::TripletMinerOptions miner_options;
  miner_options.num_candidates = smoke ? 300 : 1200;
  const std::vector<subspace::Triplet> triplets = subspace::MineTriplets(
      sem_world->dataset.corpus, split.train, sem_world->features,
      *sem_world->engine, fusion, miner_options);
  std::printf("SEM: %zu triplets\n", triplets.size());
  report.AddScalar("sem.triplets", static_cast<double>(triplets.size()));

  const int sem_epochs = smoke ? 1 : 2;
  RunModel("sem",
           [&](size_t threads, bool legacy) {
             return RunSemFit(*sem_world, triplets, encoder_options, sem_epochs,
                              threads, legacy);
           },
           &report);

  // NPRec: build the rec world (trains a fresh SEM internally), then time
  // NPRec::Fit's optimization loop via train_stats().train_seconds.
  bench::RecWorldOptions rec_options;
  rec_options.max_users = smoke ? 20 : 60;
  auto rec_world = bench::BuildRecWorld(std::move(sem_world), rec_options);
  const int nprec_epochs = smoke ? 1 : 2;
  const int nprec_positives = smoke ? 150 : 600;
  RunModel("nprec",
           [&](size_t threads, bool legacy) {
             return RunNPRecFit(*rec_world, nprec_epochs, nprec_positives,
                                threads, legacy);
           },
           &report);

  bench::WriteReport(&report);
  return 0;
}
