// Reproduces Tab. VIII: NPRec module ablations against the GCN depth H.
// Expected shape: H=2 is the sweet spot (enough propagation without
// over-smoothing / receptive-field blowup); the full model tops every
// column. Neighbor sampling is reduced (K=4) to keep deep receptive
// fields tractable, mirroring standard practice.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "rec/nprec.h"

namespace {

using namespace subrec;

rec::NPRecOptions BaseOptions() {
  rec::NPRecOptions options;
  options.sampler.max_positives = 800;
  options.epochs = 2;
  options.neighbor_samples = 4;
  return options;
}

double Run(rec::NPRecOptions options, bench::RecWorld* world,
           const std::vector<rec::CandidateSet>& sets) {
  (void)sets;
  rec::NPRec model(options, &world->subspace);
  const Status status = model.Fit(world->ctx);
  SUBREC_CHECK(status.ok()) << status.ToString();
  // Average over three candidate-set draws to damp evaluation noise.
  double total = 0.0;
  for (uint64_t s : {13ULL, 113ULL, 213ULL}) {
    const auto draw = bench::BuildCandidateSets(world->ctx, world->users, 20, s);
    total += rec::EvaluateRecommender(world->ctx, model, draw, 20).ndcg;
  }
  return total / 3.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Table VIII: model variants vs GCN depth H");
  obs::RunReport report = bench::OpenReport("table8_ablation_h");
  report.set_dataset("acm-like/small");

  auto world = bench::BuildRecWorld(
      bench::BuildSemWorld(
          datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303), {}),
      [] {
        bench::RecWorldOptions o;
        o.max_users = 120;
        return o;
      }());
  const auto sets =
      bench::BuildCandidateSets(world->ctx, world->users, 20, 17);
  bench::StampCorpus(&report, world->ctx.corpus->papers.size());

  const std::vector<int> hs = {1, 2, 3, 4};
  std::printf("%-12s", "nDCG@20");
  for (int h : hs) std::printf("  %7s%d", "H=", h);
  std::printf("\n");

  {
    rec::NPRecOptions o = BaseOptions();
    o.display_name = "NPRec+SC";
    o.use_graph = false;
    const double v = Run(o, world.get(), sets);
    std::printf("%-12s  %8.4f  (H-independent)\n", "NPRec+SC", v);
    report.AddScalar("ndcg.nprec_sc.k20", v);
  }
  struct Variant {
    const char* name;
    bool use_text;
    bool defuzz;
  };
  for (const Variant& variant :
       {Variant{"NPRec+SN", false, true}, Variant{"NPRec+CN", true, false},
        Variant{"NPRec", true, true}}) {
    std::vector<double> row;
    for (int h : hs) {
      rec::NPRecOptions o = BaseOptions();
      o.display_name = variant.name;
      o.use_text = variant.use_text;
      o.sampler.use_defuzzing = variant.defuzz;
      o.depth = h;
      row.push_back(Run(o, world.get(), sets));
    }
    std::printf("%s\n", bench::Row(variant.name, row).c_str());
    for (size_t i = 0; i < hs.size(); ++i) {
      report.AddScalar("ndcg." + bench::Slug(variant.name) + ".H" +
                           std::to_string(hs[i]),
                       row[i]);
    }
  }

  std::printf(
      "\npaper reports (Tab. VIII, H=1..4): +SC .898 (H-independent)  +SN "
      ".882/.896/.871/.897  +CN .934/.949/.897/.881  NPRec "
      ".961/.968/.946/.951\n");
  bench::WriteReport(&report);
  return 0;
}
