// Reproduces Tab. VII: NPRec module ablations against the neighbor sample
// size K. Variants: +SC (subspace text only; unaffected by K), +SN (graph
// only), +CN (citation-only labels, no de-fuzzing), and the full model.
// Expected shape: the full model tops every column; mid-range K (8/16)
// beats the extremes.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "rec/nprec.h"

namespace {

using namespace subrec;

rec::NPRecOptions BaseOptions() {
  rec::NPRecOptions options;
  options.sampler.max_positives = 1200;
  options.epochs = 2;
  return options;
}

double Run(rec::NPRecOptions options, bench::RecWorld* world,
           const std::vector<rec::CandidateSet>& sets) {
  (void)sets;
  rec::NPRec model(options, &world->subspace);
  const Status status = model.Fit(world->ctx);
  SUBREC_CHECK(status.ok()) << status.ToString();
  // Average over three candidate-set draws to damp evaluation noise.
  double total = 0.0;
  for (uint64_t s : {13ULL, 113ULL, 213ULL}) {
    const auto draw = bench::BuildCandidateSets(world->ctx, world->users, 20, s);
    total += rec::EvaluateRecommender(world->ctx, model, draw, 20).ndcg;
  }
  return total / 3.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Table VII: model variants vs neighbor count K");
  obs::RunReport report = bench::OpenReport("table7_ablation_k");
  report.set_dataset("acm-like/small");

  auto world = bench::BuildRecWorld(
      bench::BuildSemWorld(
          datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303), {}),
      [] {
        bench::RecWorldOptions o;
        o.max_users = 120;
        return o;
      }());
  const auto sets =
      bench::BuildCandidateSets(world->ctx, world->users, 20, 13);
  bench::StampCorpus(&report, world->ctx.corpus->papers.size());

  const std::vector<int> ks = {2, 4, 8, 16, 32};
  std::printf("%-12s", "nDCG@20");
  for (int k : ks) std::printf("  %7s%d", "K=", k);
  std::printf("\n");

  // +SC is K-independent (no graph), one value replicated per the paper.
  {
    rec::NPRecOptions o = BaseOptions();
    o.display_name = "NPRec+SC";
    o.use_graph = false;
    const double v = Run(o, world.get(), sets);
    std::printf("%-12s  %8.4f  (K-independent)\n", "NPRec+SC", v);
    report.AddScalar("ndcg.nprec_sc.k20", v);
  }
  struct Variant {
    const char* name;
    bool use_text;
    bool defuzz;
  };
  for (const Variant& variant :
       {Variant{"NPRec+SN", false, true}, Variant{"NPRec+CN", true, false},
        Variant{"NPRec", true, true}}) {
    std::vector<double> row;
    for (int k : ks) {
      rec::NPRecOptions o = BaseOptions();
      o.display_name = variant.name;
      o.use_text = variant.use_text;
      o.sampler.use_defuzzing = variant.defuzz;
      o.neighbor_samples = k;
      row.push_back(Run(o, world.get(), sets));
    }
    std::printf("%s\n", bench::Row(variant.name, row).c_str());
    for (size_t i = 0; i < ks.size(); ++i) {
      report.AddScalar("ndcg." + bench::Slug(variant.name) + ".K" +
                           std::to_string(ks[i]),
                       row[i]);
    }
  }

  std::printf(
      "\npaper reports (Tab. VII, K=2..32): +SC .898 (K-independent)  +SN "
      ".900/.886/.892/.884/.904  +CN .918/.919/.919/.943/.908  NPRec "
      ".952/.958/.968/.974/.947\n");
  bench::WriteReport(&report);
  return 0;
}
