// Engineering microbenchmarks (google-benchmark): the hot kernels under
// every experiment — dense matmul, autodiff forward/backward, the hashed
// sentence encoder, CRF Viterbi decoding, GMM EM, LOF, and corpus
// generation throughput. Useful for tracking performance regressions; no
// paper table corresponds to this binary.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "autodiff/tape.h"
#include "bench_common.h"
#include "cluster/gmm.h"
#include "cluster/lof.h"
#include "common/rng.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "labeling/trainer.h"
#include "la/ops.h"
#include "la/serve_kernel.h"
#include "par/parallel.h"
#include "serve/frozen_scorer.h"
#include "serve/snapshot.h"
#include "text/hashed_ngram_encoder.h"

namespace {

using namespace subrec;

// The parallel kernels take a trailing `threads` argument: 1 pins the
// shared runtime to serial execution, 0 leaves the SUBREC_NUM_THREADS /
// hardware default in place. The ratio of the two is the scaling factor
// recorded in BENCH_micro_kernels.json.
constexpr int64_t kSerial = 1;
constexpr int64_t kDefaultThreads = 0;

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  par::ScopedNumThreads scoped(static_cast<size_t>(state.range(1)));
  Rng rng(1);
  la::Matrix a = la::Matrix::Random(n, n, rng);
  la::Matrix b = la::Matrix::Random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::MatMul(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)
    ->Args({32, kSerial})
    ->Args({64, kSerial})
    ->Args({128, kSerial})
    ->Args({32, kDefaultThreads})
    ->Args({64, kDefaultThreads})
    ->Args({128, kDefaultThreads});

void BM_TapeMlpForwardBackward(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(2);
  la::Matrix x = la::Matrix::Random(8, d, rng);
  la::Matrix w1 = la::Matrix::Random(d, d, rng);
  la::Matrix w2 = la::Matrix::Random(d, 1, rng);
  for (auto _ : state) {
    autodiff::Tape tape;
    autodiff::VarId xi = tape.Constant(x);
    autodiff::VarId v1 = tape.Input(w1, true);
    autodiff::VarId v2 = tape.Input(w2, true);
    autodiff::VarId loss =
        tape.SumSquares(tape.MatMul(tape.Tanh(tape.MatMul(xi, v1)), v2));
    tape.Backward(loss);
    benchmark::DoNotOptimize(tape.grad(v1));
  }
}
BENCHMARK(BM_TapeMlpForwardBackward)->Arg(32)->Arg(96);

void BM_HashedEncoder(benchmark::State& state) {
  text::HashedNgramEncoder encoder;
  const std::string sentence =
      "we propose a novel graph convolutional recommendation model with "
      "asymmetric influence propagation over heterogeneous networks";
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(sentence));
  }
}
BENCHMARK(BM_HashedEncoder);

void BM_CrfViterbi(benchmark::State& state) {
  labeling::LinearChainCrf crf(3, 1 << 14);
  Rng rng(3);
  std::vector<std::vector<size_t>> feats(12);
  for (auto& f : feats)
    for (int i = 0; i < 20; ++i) f.push_back(rng.UniformInt(1 << 14));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Decode(feats));
  }
}
BENCHMARK(BM_CrfViterbi);

void BM_GmmFit(benchmark::State& state) {
  par::ScopedNumThreads scoped(static_cast<size_t>(state.range(0)));
  Rng rng(4);
  la::Matrix data(300, 8);
  for (size_t i = 0; i < data.size(); ++i) data[i] = rng.Gaussian();
  for (auto _ : state) {
    cluster::GaussianMixture gmm(cluster::GmmOptions{.num_components = 3,
                                                     .max_iterations = 20});
    benchmark::DoNotOptimize(gmm.Fit(data));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 300);
}
BENCHMARK(BM_GmmFit)->Arg(kSerial)->Arg(kDefaultThreads);

void BM_Lof(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  par::ScopedNumThreads scoped(static_cast<size_t>(state.range(1)));
  Rng rng(5);
  la::Matrix data(n, 16);
  for (size_t i = 0; i < data.size(); ++i) data[i] = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::LocalOutlierFactor(data, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Lof)
    ->Args({200, kSerial})
    ->Args({600, kSerial})
    ->Args({200, kDefaultThreads})
    ->Args({600, kDefaultThreads});

// --- Serving-path scoring kernels ------------------------------------
//
// The batched scorer's GEMM is tall-skinny: |stacked profiles| x dim x
// |candidates|, with m in the tens, k the embedding dim, and n in the
// thousands. The shapes below pin the acceptance geometry (16x32x4096)
// plus the single-request row (1x32x4096).

void BM_ServeGemm(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = 32;
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(6);
  std::vector<double> a(m * k), bt(k * n), c(m * n);
  for (double& v : a) v = rng.Gaussian();
  for (double& v : bt) v = rng.Gaussian();
  for (auto _ : state) {
    la::ServeGemm(a.data(), k, bt.data(), n, c.data(), n, m, k, n);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m * k * n));
}
BENCHMARK(BM_ServeGemm)->Args({1, 4096})->Args({16, 4096});

/// A synthetic frozen model sized like a serving snapshot: `papers`
/// interest/influence rows of width `dim`, deterministic fill.
serve::FrozenScorer SyntheticScorer(size_t papers, size_t dim) {
  Rng rng(7);
  serve::SnapshotData data;
  data.interest = la::Matrix::Random(papers, dim, rng);
  data.influence = la::Matrix::Random(papers, dim, rng);
  return serve::FrozenScorer(std::move(data));
}

/// Full batched pipeline (gather -> GEMM -> fused sigmoid/mean epilogue)
/// for one 16-paper profile against all candidates; items/s counts scored
/// candidates. The first call outside the timed loop warms the
/// thread-local scratch so the steady-state loop is allocation-free.
void BM_ServeScoreBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  serve::FrozenScorer scorer = SyntheticScorer(n, 32);
  std::vector<int32_t> profile(16);
  std::iota(profile.begin(), profile.end(), 0);
  std::vector<int32_t> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 0);
  std::vector<double> scores;
  scorer.ScoreBatchInto(profile, candidates, &scores, nullptr);
  for (auto _ : state) {
    scorer.ScoreBatchInto(profile, candidates, &scores, nullptr);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ServeScoreBatch)->Arg(4096);

/// The per-pair oracle over the same workload; the ratio against
/// BM_ServeScoreBatch is the micro-level GEMM speedup recorded as
/// speedup.serve_score_gemm_n4096.
void BM_ServeScorePairwise(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  serve::FrozenScorer scorer = SyntheticScorer(n, 32);
  std::vector<int32_t> profile(16);
  std::iota(profile.begin(), profile.end(), 0);
  std::vector<int32_t> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.Score(profile, candidates));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ServeScorePairwise)->Arg(4096);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto result = datagen::GenerateCorpus(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 99));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CorpusGeneration);

/// Console reporter that also records each benchmark's adjusted real time
/// into the run report (and a side map for derived scalars), so
/// BENCH_micro_kernels.json carries one scalar per benchmark for
/// regression tracking.
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  ReportingReporter(obs::RunReport* report,
                    std::map<std::string, double>* times)
      : report_(report), times_(times) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string slug = bench::Slug(run.benchmark_name());
      const double t = run.GetAdjustedRealTime();
      report_->AddScalar("time_ns." + slug, t);
      (*times_)[slug] = t;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::RunReport* report_;
  std::map<std::string, double>* times_;
};

}  // namespace

int main(int argc, char** argv) {
  // Tracing stays off here: these loops are the ones the <2% tracing
  // overhead budget is measured against.
  obs::RunReport report =
      bench::OpenReport("micro_kernels", /*enable_tracing=*/false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::map<std::string, double> times;
  ReportingReporter reporter(&report, &times);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Kernel timings run on synthetic matrices, not a generated corpus; the
  // honesty stamp records that explicitly as zero papers.
  bench::StampCorpus(&report, 0);

  // Host parallelism context: with how many threads did the "/0" (default)
  // variants actually run? (host.* scalars come from OpenReport.)
  report.AddScalar("par.num_threads", static_cast<double>(par::NumThreads()));
  if (bench::SingleCoreHost()) {
    std::printf("note: single-core host — scaling.* ratios compare two "
                "schedules on one cpu, not parallel speedup\n");
  }

  // Derived scalars: serial-over-default scaling ratios (> 1 means the
  // parallel default is faster) and kernel throughput at the default
  // thread count.
  const auto time_of = [&](const std::string& slug) {
    const auto it = times.find(slug);
    return it == times.end() ? 0.0 : it->second;
  };
  const auto add_ratio = [&](const std::string& key,
                             const std::string& serial,
                             const std::string& parallel) {
    const double ts = time_of(serial), tp = time_of(parallel);
    if (ts > 0.0 && tp > 0.0) report.AddScalar(key, ts / tp);
  };
  add_ratio("scaling.matmul_n128", "bm_matmul_128_1", "bm_matmul_128_0");
  add_ratio("scaling.gmm_fit", "bm_gmmfit_1", "bm_gmmfit_0");
  add_ratio("scaling.lof_n600", "bm_lof_600_1", "bm_lof_600_0");
  const double t_mm = time_of("bm_matmul_128_0");
  if (t_mm > 0.0)
    report.AddScalar("gflops.matmul_n128", 2.0 * 128.0 * 128.0 * 128.0 / t_mm);
  const double t_gmm = time_of("bm_gmmfit_0");
  if (t_gmm > 0.0) report.AddScalar("items_per_s.gmm_fit", 300.0 * 1e9 / t_gmm);
  const double t_lof = time_of("bm_lof_600_0");
  if (t_lof > 0.0) report.AddScalar("items_per_s.lof_n600", 600.0 * 1e9 / t_lof);
  const double t_sg = time_of("bm_servegemm_16_4096");
  if (t_sg > 0.0)
    report.AddScalar("gflops.serve_gemm_16x32x4096",
                     2.0 * 16.0 * 32.0 * 4096.0 / t_sg);
  const double t_sb = time_of("bm_servescorebatch_4096");
  if (t_sb > 0.0)
    report.AddScalar("items_per_s.serve_score_batch_4096", 4096.0 * 1e9 / t_sb);
  add_ratio("speedup.serve_score_gemm_n4096", "bm_servescorepairwise_4096",
            "bm_servescorebatch_4096");

  bench::WriteReport(&report);
  return 0;
}
