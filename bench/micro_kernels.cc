// Engineering microbenchmarks (google-benchmark): the hot kernels under
// every experiment — dense matmul, autodiff forward/backward, the hashed
// sentence encoder, CRF Viterbi decoding, GMM EM, LOF, and corpus
// generation throughput. Useful for tracking performance regressions; no
// paper table corresponds to this binary.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "bench_common.h"
#include "cluster/gmm.h"
#include "cluster/lof.h"
#include "common/rng.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "labeling/trainer.h"
#include "la/ops.h"
#include "text/hashed_ngram_encoder.h"

namespace {

using namespace subrec;

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  la::Matrix a = la::Matrix::Random(n, n, rng);
  la::Matrix b = la::Matrix::Random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::MatMul(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_TapeMlpForwardBackward(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(2);
  la::Matrix x = la::Matrix::Random(8, d, rng);
  la::Matrix w1 = la::Matrix::Random(d, d, rng);
  la::Matrix w2 = la::Matrix::Random(d, 1, rng);
  for (auto _ : state) {
    autodiff::Tape tape;
    autodiff::VarId xi = tape.Constant(x);
    autodiff::VarId v1 = tape.Input(w1, true);
    autodiff::VarId v2 = tape.Input(w2, true);
    autodiff::VarId loss =
        tape.SumSquares(tape.MatMul(tape.Tanh(tape.MatMul(xi, v1)), v2));
    tape.Backward(loss);
    benchmark::DoNotOptimize(tape.grad(v1));
  }
}
BENCHMARK(BM_TapeMlpForwardBackward)->Arg(32)->Arg(96);

void BM_HashedEncoder(benchmark::State& state) {
  text::HashedNgramEncoder encoder;
  const std::string sentence =
      "we propose a novel graph convolutional recommendation model with "
      "asymmetric influence propagation over heterogeneous networks";
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(sentence));
  }
}
BENCHMARK(BM_HashedEncoder);

void BM_CrfViterbi(benchmark::State& state) {
  labeling::LinearChainCrf crf(3, 1 << 14);
  Rng rng(3);
  std::vector<std::vector<size_t>> feats(12);
  for (auto& f : feats)
    for (int i = 0; i < 20; ++i) f.push_back(rng.UniformInt(1 << 14));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Decode(feats));
  }
}
BENCHMARK(BM_CrfViterbi);

void BM_GmmFit(benchmark::State& state) {
  Rng rng(4);
  la::Matrix data(300, 8);
  for (size_t i = 0; i < data.size(); ++i) data[i] = rng.Gaussian();
  for (auto _ : state) {
    cluster::GaussianMixture gmm(cluster::GmmOptions{.num_components = 3,
                                                     .max_iterations = 20});
    benchmark::DoNotOptimize(gmm.Fit(data));
  }
}
BENCHMARK(BM_GmmFit);

void BM_Lof(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  la::Matrix data(n, 16);
  for (size_t i = 0; i < data.size(); ++i) data[i] = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::LocalOutlierFactor(data, 10));
  }
}
BENCHMARK(BM_Lof)->Arg(200)->Arg(600);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto result = datagen::GenerateCorpus(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 99));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CorpusGeneration);

/// Console reporter that also records each benchmark's adjusted real time
/// into the run report, so BENCH_micro_kernels.json carries one scalar per
/// benchmark for regression tracking.
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(obs::RunReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_->AddScalar("time_ns." + bench::Slug(run.benchmark_name()),
                         run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::RunReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  // Tracing stays off here: these loops are the ones the <2% tracing
  // overhead budget is measured against.
  obs::RunReport report =
      bench::OpenReport("micro_kernels", /*enable_tracing=*/false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ReportingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  bench::WriteReport(&report);
  return 0;
}
