// Reproduces Fig. 5 quantitatively. The figure shows t-SNE maps of (a/c/e)
// author text / interest / influence embeddings and (b/d/f) paper
// embeddings under NPRec. The claims we verify numerically:
//   (a) co-authors (teams) cluster in author TEXT embeddings;
//   (c) co-authors share citation habits -> teams also cohere in INTEREST
//       space, and highly productive+cited authors sit close together;
//   (e) highly cited authors cluster tightly in INFLUENCE space;
//   (b/d/f) papers near a highly cited paper in text space need not stay
//       near it in interest/influence space.
// For each claim we print mean intra-group vs global distance ratios
// (smaller = tighter clustering), plus 2-D t-SNE coordinates for the
// author maps (first 40 authors) so the figure can be re-plotted.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cluster/tsne.h"
#include "la/ops.h"
#include "rec/nprec.h"

namespace {

using namespace subrec;

/// mean pairwise distance within groups / mean pairwise distance overall.
double CohesionRatio(const std::vector<std::vector<double>>& vecs,
                     const std::vector<int>& group) {
  double within = 0.0, total = 0.0;
  long nw = 0, nt = 0;
  for (size_t i = 0; i < vecs.size(); ++i) {
    for (size_t j = i + 1; j < vecs.size(); ++j) {
      const double d = la::EuclideanDistance(vecs[i], vecs[j]);
      total += d;
      ++nt;
      if (group[i] == group[j]) {
        within += d;
        ++nw;
      }
    }
  }
  if (nw == 0 || nt == 0) return 1.0;
  return (within / static_cast<double>(nw)) /
         (total / static_cast<double>(nt));
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 5: author & paper combined embeddings (NPRec)");
  obs::RunReport report = bench::OpenReport("fig5_embedding_visualization");
  report.set_dataset("acm-like/small");

  auto world = bench::BuildRecWorld(
      bench::BuildSemWorld(
          datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303), {}),
      {});
  const corpus::Corpus& corpus = *world->ctx.corpus;
  bench::StampCorpus(&report, corpus.papers.size());

  rec::NPRecOptions options;
  options.sampler.max_positives = 1500;
  rec::NPRec model(options, &world->subspace);
  const Status status = model.Fit(world->ctx);
  SUBREC_CHECK(status.ok()) << status.ToString();

  // Author embeddings: expectation of their papers' vectors (Sec. IV-G).
  std::vector<std::vector<double>> author_text, author_interest,
      author_influence;
  std::vector<int> team_of;       // co-author group (generation teams)
  std::vector<int> total_citations;
  std::vector<size_t> paper_counts;
  const int team_size = 4;        // matches the generator default
  for (const corpus::Author& a : corpus.authors) {
    if (a.papers.size() < 3) continue;
    std::vector<double> text, interest, influence;
    int citations = 0;
    for (corpus::PaperId pid : a.papers) {
      const auto t = model.PaperTextVector(pid);
      const auto& i = model.PaperInterestVector(pid);
      const auto& f = model.PaperInfluenceVector(pid);
      if (text.empty()) {
        text.assign(t.size(), 0.0);
        interest.assign(i.size(), 0.0);
        influence.assign(f.size(), 0.0);
      }
      la::AxpyVec(1.0, t, text);
      la::AxpyVec(1.0, i, interest);
      la::AxpyVec(1.0, f, influence);
      citations += corpus.paper(pid).citation_count;
    }
    const double inv = 1.0 / static_cast<double>(a.papers.size());
    for (double& x : text) x *= inv;
    for (double& x : interest) x *= inv;
    for (double& x : influence) x *= inv;
    author_text.push_back(std::move(text));
    author_interest.push_back(std::move(interest));
    author_influence.push_back(std::move(influence));
    team_of.push_back(a.id / team_size);
    total_citations.push_back(citations);
    paper_counts.push_back(a.papers.size());
  }
  // Prolific + highly cited: top decile of citation mass among the
  // analyzed authors, with an above-median publication count.
  std::vector<int> sorted_cites = total_citations;
  std::sort(sorted_cites.begin(), sorted_cites.end());
  const int cite_cut = sorted_cites[sorted_cites.size() * 9 / 10];
  std::vector<bool> prolific(total_citations.size());
  for (size_t i = 0; i < prolific.size(); ++i)
    prolific[i] = total_citations[i] >= cite_cut && paper_counts[i] >= 6;
  std::printf("authors analyzed: %zu (prolific+cited: %ld)\n",
              author_text.size(),
              std::count(prolific.begin(), prolific.end(), true));

  // (a) team cohesion in text space, (c) interest, (e) influence.
  std::printf(
      "co-author (team) cohesion ratio   text %.3f   interest %.3f   "
      "influence %.3f\n",
      CohesionRatio(author_text, team_of),
      CohesionRatio(author_interest, team_of),
      CohesionRatio(author_influence, team_of));
  report.AddScalar("cohesion.team.text", CohesionRatio(author_text, team_of));
  report.AddScalar("cohesion.team.interest",
                   CohesionRatio(author_interest, team_of));
  report.AddScalar("cohesion.team.influence",
                   CohesionRatio(author_influence, team_of));

  // Prolific/high-cited author cohesion (group = prolific flag; ratio of
  // their mutual distances to global).
  std::vector<int> prolific_group(prolific.size(), -1);
  {
    int g = 0;
    for (size_t i = 0; i < prolific.size(); ++i)
      if (prolific[i]) prolific_group[i] = 1000 + (g = 1);
  }
  std::printf(
      "prolific-author cohesion ratio    interest %.3f   influence %.3f   "
      "(<1 = authoritative authors cluster, Fig. 5c/5e)\n",
      CohesionRatio(author_interest, prolific_group),
      CohesionRatio(author_influence, prolific_group));
  report.AddScalar("cohesion.prolific.interest",
                   CohesionRatio(author_interest, prolific_group));
  report.AddScalar("cohesion.prolific.influence",
                   CohesionRatio(author_influence, prolific_group));

  // (b/d/f): take the highest-cited paper; its 20 text-nearest neighbors;
  // how many remain among its 20 nearest in interest / influence space?
  {
    corpus::PaperId star = 0;
    for (const auto& p : corpus.papers)
      if (p.citation_count > corpus.paper(star).citation_count) star = p.id;
    auto nearest = [&](auto&& vec_of, corpus::PaperId center) {
      std::vector<std::pair<double, corpus::PaperId>> d;
      for (const auto& p : corpus.papers) {
        if (p.id == center) continue;
        d.emplace_back(
            la::EuclideanDistance(vec_of(center), vec_of(p.id)), p.id);
      }
      std::sort(d.begin(), d.end());
      std::vector<corpus::PaperId> out;
      for (int i = 0; i < 20; ++i) out.push_back(d[static_cast<size_t>(i)].second);
      return out;
    };
    const auto text_nn =
        nearest([&](corpus::PaperId p) { return model.PaperTextVector(p); },
                star);
    const auto int_nn = nearest(
        [&](corpus::PaperId p) { return model.PaperInterestVector(p); }, star);
    const auto inf_nn = nearest(
        [&](corpus::PaperId p) { return model.PaperInfluenceVector(p); }, star);
    auto overlap = [&](const std::vector<corpus::PaperId>& a,
                       const std::vector<corpus::PaperId>& b) {
      int n = 0;
      for (corpus::PaperId x : a)
        if (std::find(b.begin(), b.end(), x) != b.end()) ++n;
      return n;
    };
    std::printf(
        "highest-cited paper #%d (%d cites): of its 20 text-nearest papers, "
        "%d stay in its interest top-20 and %d in its influence top-20\n"
        "(churn = content-similar papers diverge in interest/influence "
        "space, Fig. 5b/5d/5f)\n",
        star, corpus.paper(star).citation_count, overlap(text_nn, int_nn),
        overlap(text_nn, inf_nn));
    report.AddScalar("overlap.text_interest", overlap(text_nn, int_nn));
    report.AddScalar("overlap.text_influence", overlap(text_nn, inf_nn));
  }

  // 2-D coordinates for replotting Fig. 5a (first 40 analyzed authors).
  {
    la::Matrix m(author_text.size(), author_text[0].size());
    for (size_t i = 0; i < author_text.size(); ++i) m.SetRow(i, author_text[i]);
    auto coords = cluster::Tsne(m, [] {
      cluster::TsneOptions o;
      o.iterations = 250;
      return o;
    }());
    SUBREC_CHECK(coords.ok());
    std::printf("\nt-SNE of author text embeddings (first 40): team x y\n");
    for (size_t i = 0; i < std::min<size_t>(40, coords.value().rows()); ++i) {
      std::printf("  %3d  %8.2f  %8.2f\n", team_of[i], coords.value()(i, 0),
                  coords.value()(i, 1));
    }
  }
  report.AddScalar("authors_analyzed", static_cast<double>(author_text.size()));
  bench::WriteReport(&report);
  return 0;
}
