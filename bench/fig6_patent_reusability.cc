// Reproduces Fig. 6: personalized recommendation on the low-resource
// patent corpus (authors + citations only; no venues, keywords or CCS —
// Tab. III), nDCG@20 of all nine methods. Expected shape: everything drops
// relative to the full-featured corpora, but NPRec still leads because the
// text channel and the asymmetric citation structure survive the missing
// metadata.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "rec/jtie.h"
#include "rec/kgcn.h"
#include "rec/mlp_ncf.h"
#include "rec/nbcf.h"
#include "rec/nprec.h"
#include "rec/ripplenet.h"
#include "rec/svd.h"
#include "rec/wnmf.h"

namespace {

using namespace subrec;

}  // namespace

int main() {
  bench::PrintHeader("Fig. 6: patent (low-resource) recommendation");
  obs::RunReport report = bench::OpenReport("fig6_patent_reusability");
  report.set_dataset("patent-like/small");

  auto corpus_options =
      datagen::PatentLikeOptions(datagen::DatasetScale::kSmall, 606);
  auto sem = bench::BuildSemWorld(corpus_options, {});
  bench::RecWorldOptions rec_options;
  rec_options.split_year = 2016;  // patents: short history, recent split
  rec_options.max_users = 50;     // the paper evaluates 50 patent authors
  auto world = bench::BuildRecWorld(std::move(sem), rec_options);
  std::printf("patent corpus: %zu patents, %zu users, labeler acc %.3f\n",
              world->ctx.corpus->papers.size(), world->users.size(),
              world->sem->labeler_accuracy);
  bench::StampCorpus(&report, world->ctx.corpus->papers.size());

  rec::NPRecOptions nprec_options;
  nprec_options.sampler.max_positives = 1500;

  std::vector<std::unique_ptr<rec::Recommender>> models;
  models.push_back(std::make_unique<rec::SvdRecommender>());
  models.push_back(std::make_unique<rec::WnmfRecommender>());
  models.push_back(std::make_unique<rec::NbcfRecommender>());
  models.push_back(std::make_unique<rec::MlpRecommender>());
  models.push_back(std::make_unique<rec::JtieRecommender>());
  models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnOptions(nprec_options), &world->subspace));
  models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnLsOptions(nprec_options), &world->subspace));
  models.push_back(std::make_unique<rec::RippleNetRecommender>());
  models.push_back(
      std::make_unique<rec::NPRec>(nprec_options, &world->subspace));

  std::printf("%-12s  %8s\n", "Model", "nDCG@20");
  for (auto& model : models) {
    const Status status = model->Fit(world->ctx);
    SUBREC_CHECK(status.ok()) << model->name() << ": " << status.ToString();
    double total = 0.0;
    for (uint64_t s : {21ULL, 121ULL, 221ULL}) {
      const auto sets =
          bench::BuildCandidateSets(world->ctx, world->users, 20, s);
      total += rec::EvaluateRecommender(world->ctx, *model, sets, 20).ndcg;
    }
    std::printf("%s\n", bench::Row(model->name(), {total / 3.0}).c_str());
    report.AddScalar("ndcg." + bench::Slug(model->name()) + ".k20",
                     total / 3.0);
  }

  std::printf(
      "\npaper (Fig. 6, approximate): SVD ~.55, WNMF ~.66, NBCF ~.67, MLP "
      "~.7, JTIE ~.72, KGCN ~.74, KGCN-LS ~.76, RippleNet ~.78, NPRec "
      "~.85\n");
  bench::WriteReport(&report);
  return 0;
}
