// Reproduces Tab. IV: new-paper recommendation comparison — nDCG@{20,30,50}
// of SVD / WNMF / NBCF / MLP / JTIE / KGCN / KGCN-LS / RippleNet / NPRec on
// ACM-like and Scopus-like corpora. Expected shape: CF methods trail,
// graph-convolution methods lead them, NPRec leads everything.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rec/jtie.h"
#include "rec/kgcn.h"
#include "rec/mlp_ncf.h"
#include "rec/nbcf.h"
#include "rec/nprec.h"
#include "rec/ripplenet.h"
#include "rec/svd.h"
#include "rec/wnmf.h"

namespace {

using namespace subrec;

rec::NPRecOptions BenchNPRecOptions() {
  rec::NPRecOptions options;
  options.sampler.max_positives = 1500;
  return options;
}

using bench::Slug;

void RunDataset(const char* name, std::unique_ptr<bench::SemWorld> sem,
                int max_users, obs::RunReport* report) {
  bench::RecWorldOptions rec_options;
  rec_options.max_users = max_users;
  rec_options.candidates_per_user = 50;
  auto world = bench::BuildRecWorld(std::move(sem), rec_options);
  bench::StampCorpus(report, world->ctx.corpus->papers.size());
  std::printf("\n--- %s: %zu papers, %zu users ---\n", name,
              world->ctx.corpus->papers.size(), world->users.size());

  std::vector<std::unique_ptr<rec::Recommender>> models;
  models.push_back(std::make_unique<rec::SvdRecommender>());
  models.push_back(std::make_unique<rec::WnmfRecommender>());
  models.push_back(std::make_unique<rec::NbcfRecommender>());
  models.push_back(std::make_unique<rec::MlpRecommender>());
  models.push_back(std::make_unique<rec::JtieRecommender>());
  models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnOptions(BenchNPRecOptions()), &world->subspace));
  models.push_back(std::make_unique<rec::NPRec>(
      rec::KgcnLsOptions(BenchNPRecOptions()), &world->subspace));
  models.push_back(std::make_unique<rec::RippleNetRecommender>());
  models.push_back(
      std::make_unique<rec::NPRec>(BenchNPRecOptions(), &world->subspace));

  std::printf("%-12s  %8s  %8s  %8s\n", "nDCG@k", "k=20", "k=30", "k=50");
  for (auto& model : models) {
    const Status status = model->Fit(world->ctx);
    SUBREC_CHECK(status.ok()) << model->name() << ": " << status.ToString();
    if (const auto* nprec = dynamic_cast<const rec::NPRec*>(model.get())) {
      const rec::NPRecTrainStats& stats = nprec->train_stats();
      std::printf(
          "    [%s train: %zu pairs (%zu pos), %.1fs, loss %.4f -> %.4f]\n",
          model->name().c_str(), stats.num_pairs, stats.num_positives,
          stats.train_seconds, stats.epoch_loss.front(),
          stats.epoch_loss.back());
      const std::string prefix =
          std::string("train.") + Slug(name) + "." + Slug(model->name());
      report->AddScalar(prefix + ".final_loss", stats.epoch_loss.back());
      report->AddScalar(prefix + ".num_pairs",
                        static_cast<double>(stats.num_pairs));
      report->AddScalar(prefix + ".seconds", stats.train_seconds);
    }
    std::vector<double> row;
    for (int k : {20, 30, 50}) {
      // Average over three candidate-set draws to damp sampling noise.
      double total = 0.0;
      for (uint64_t s : {99ULL, 199ULL, 299ULL}) {
        const auto sets =
            bench::BuildCandidateSets(world->ctx, world->users, k, s + k);
        total += rec::EvaluateRecommender(world->ctx, *model, sets, k).ndcg;
      }
      row.push_back(total / 3.0);
    }
    std::printf("%s\n", bench::Row(model->name(), row).c_str());
    const int ks[3] = {20, 30, 50};
    for (int i = 0; i < 3; ++i) {
      report->AddScalar(std::string("ndcg.") + Slug(name) + "." +
                            Slug(model->name()) + ".k" + std::to_string(ks[i]),
                        row[static_cast<size_t>(i)]);
    }
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Table IV: new paper recommendation comparison");
  obs::RunReport report = bench::OpenReport("table4_recommendation");
  report.set_dataset("acm-like+scopus-like/small");

  RunDataset("ACM-like",
             bench::BuildSemWorld(
                 datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303),
                 {}),
             300, &report);
  RunDataset("Scopus-like",
             bench::BuildSemWorld(
                 datagen::ScopusLikeOptions(datagen::DatasetScale::kSmall, 404),
                 {}),
             100, &report);

  std::printf(
      "\npaper reports (Tab. IV, ACM k=20..50): SVD .68/.66/.60  WNMF "
      ".83/.79/.73  NBCF .83/.80/.73  MLP .84/.80/.76  JTIE .87/.85/.81  "
      "KGCN .87/.86/.84  KGCN-LS .91/.90/.89  RippleNet .92/.91/.90  "
      "NPRec .97/.97/.96\n");
  bench::WriteReport(&report);
  return 0;
}
