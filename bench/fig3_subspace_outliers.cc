// Reproduces Fig. 3. Left nine panels: per discipline x subspace, the
// relation between a paper's normalized LOF (its subspace difference) and
// its citations — we print the regression slope and correlation of each
// panel; the paper's qualitative claim is positive slopes everywhere, with
// the steepest subspace matching the discipline's innovation profile.
// Right column: GMM clustering (BIC-selected) of one ACM CCS field's
// papers in each subspace + 2-D t-SNE coordinates; we print cluster counts
// and the cross-subspace assignment agreement (papers clustered together
// in one subspace often split in another — low agreement is the point).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/gmm.h"
#include "cluster/lof.h"
#include "cluster/tsne.h"
#include "eval/metrics.h"
#include "eval/regression.h"

namespace {

using namespace subrec;

/// Adjusted Rand-free simple agreement: fraction of point pairs whose
/// same-cluster relation matches between two assignments.
double PairAgreement(const std::vector<int>& a, const std::vector<int>& b) {
  SUBREC_CHECK_EQ(a.size(), b.size());
  long match = 0, total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      const bool sa = a[i] == a[j];
      const bool sb = b[i] == b[j];
      if (sa == sb) ++match;
      ++total;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(match) / static_cast<double>(total);
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 3: subspace outliers vs citations + clustering");
  obs::RunReport report = bench::OpenReport("fig3_subspace_outliers");
  report.set_dataset("scopus-like+acm-like/small");

  // Left panels: Scopus disciplines.
  {
    auto corpus_options =
        datagen::ScopusLikeOptions(datagen::DatasetScale::kSmall, 101);
    corpus_options.papers_per_year = 600;
    corpus_options.num_authors = 500;
    auto world = bench::BuildSemWorld(corpus_options, {});
    const corpus::Corpus& corpus = world->dataset.corpus;
    bench::StampCorpus(&report, corpus.papers.size());
    std::vector<corpus::PaperId> history;
    for (const auto& p : corpus.papers)
      if (p.year < 2013) history.push_back(p.id);
    auto sem = bench::TrainSem(*world, history);

    std::printf(
        "\nnormalized-LOF vs citations (slope of regression, r in parens):\n"
        "%-16s  %-22s  %-22s  %-22s\n",
        "discipline", "background", "method", "result");
    for (int d = 0; d < 3; ++d) {
      // The paper samples 80 papers of assorted citation levels per field.
      std::vector<corpus::PaperId> fresh =
          datagen::PapersOfDiscipline(corpus, d, 2013, 2013);
      if (fresh.size() > 80) fresh.resize(80);
      const std::vector<corpus::PaperId> context =
          datagen::PapersOfDiscipline(corpus, d, 2010, 2012);
      std::vector<corpus::PaperId> all = context;
      all.insert(all.end(), fresh.begin(), fresh.end());
      std::vector<double> citations;
      for (corpus::PaperId id : fresh)
        citations.push_back(std::log1p(
            static_cast<double>(corpus.paper(id).citation_count)));

      const std::string disc =
          bench::Slug(corpus.discipline_names[static_cast<size_t>(d)]);
      std::printf("%-16s", corpus.discipline_names[static_cast<size_t>(d)].c_str());
      for (int k = 0; k < 3; ++k) {
        const la::Matrix emb =
            sem->SubspaceEmbeddingMatrix(world->features, all, k);
        auto lof = cluster::LocalOutlierFactor(emb, 15);
        SUBREC_CHECK(lof.ok());
        std::vector<double> fresh_lof(
            lof.value().end() - static_cast<long>(fresh.size()),
            lof.value().end());
        const std::vector<double> norm = cluster::MinMaxNormalize(fresh_lof);
        // x axis: citations (log), y axis: normalized LOF -> report the
        // slope of LOF on citations, as in the figure's regression lines.
        const eval::LinearFit fit = eval::FitLine(citations, norm);
        std::printf("  %8.4f (r=%+.2f)", fit.slope, fit.r);
        const std::string prefix =
            "slope." + disc + "." + bench::Slug(corpus::SubspaceRoleName(k));
        report.AddScalar(prefix, fit.slope);
        report.AddScalar(prefix + ".r", fit.r);
      }
      std::printf("\n");
    }
  }

  // Right panels: GMM clustering of one ACM field per subspace.
  {
    auto world = bench::BuildSemWorld(
        datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303), {});
    const corpus::Corpus& corpus = world->dataset.corpus;
    bench::StampCorpus(&report, corpus.papers.size());
    std::vector<corpus::PaperId> history;
    for (const auto& p : corpus.papers)
      if (p.year < 2015) history.push_back(p.id);
    auto sem = bench::TrainSem(*world, history);

    // "Information Systems" = topic 0 of the ACM preset; 80 papers.
    std::vector<corpus::PaperId> field;
    for (const auto& p : corpus.papers) {
      if (p.topic == 0 && static_cast<int>(field.size()) < 80)
        field.push_back(p.id);
    }
    std::printf("\nACM Information Systems (%zu papers), per-subspace GMM:\n",
                field.size());
    std::vector<std::vector<int>> assignments;
    for (int k = 0; k < 3; ++k) {
      const la::Matrix emb =
          sem->SubspaceEmbeddingMatrix(world->features, field, k);
      auto gmm = cluster::FitGmmWithBic(emb, 2, 6);
      SUBREC_CHECK(gmm.ok());
      assignments.push_back(gmm.value().Predict(emb));
      report.AddScalar(
          "gmm.clusters." + bench::Slug(corpus::SubspaceRoleName(k)),
          gmm.value().num_components());
      auto coords = cluster::Tsne(emb, [] {
        cluster::TsneOptions o;
        o.iterations = 250;
        return o;
      }());
      SUBREC_CHECK(coords.ok());
      double spread = 0.0;
      for (size_t i = 0; i < coords.value().rows(); ++i)
        spread += std::hypot(coords.value()(i, 0), coords.value()(i, 1));
      std::printf(
          "  subspace %-10s  BIC-selected clusters: %d   t-SNE mean radius "
          "%.2f\n",
          corpus::SubspaceRoleName(k), gmm.value().num_components(),
          spread / static_cast<double>(coords.value().rows()));
    }
    std::printf(
        "  pairwise cluster agreement across subspaces: B/M %.3f  B/R %.3f  "
        "M/R %.3f\n  (well below 1.0 => the same papers cluster differently "
        "per subspace,\n   the paper's argument for needing subspaces)\n",
        PairAgreement(assignments[0], assignments[1]),
        PairAgreement(assignments[0], assignments[2]),
        PairAgreement(assignments[1], assignments[2]));
    report.AddScalar("agreement.b_m",
                     PairAgreement(assignments[0], assignments[1]));
    report.AddScalar("agreement.b_r",
                     PairAgreement(assignments[0], assignments[2]));
    report.AddScalar("agreement.m_r",
                     PairAgreement(assignments[1], assignments[2]));
  }
  bench::WriteReport(&report);
  return 0;
}
