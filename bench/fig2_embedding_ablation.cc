// Reproduces Fig. 2: correlation between paper outlierness and citations
// for different embedding methods (SHPE, Doc2Vec, BERT-avg, SEM) on the
// Scopus-like corpus, per discipline. SEM's per-subspace structure plus
// expert-rule fine-tuning should beat the undifferentiated whole-abstract
// embeddings; the pretrained-encoder-only baseline ("BERT") produces small
// differences, as the paper observes. Also prints an internal ablation:
// SEM with the cross-subspace attention half dropped.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cluster/lof.h"
#include "eval/metrics.h"
#include "rec/embedding_baselines.h"

namespace {

using namespace subrec;

/// Spearman(LOF of `rows` over the combined set, citations of the fresh
/// suffix).
double LofCitationCorrelation(const la::Matrix& rows, size_t num_fresh,
                              const std::vector<double>& citations) {
  auto lof = cluster::LocalOutlierFactor(rows, 15);
  SUBREC_CHECK(lof.ok());
  std::vector<double> fresh(lof.value().end() - static_cast<long>(num_fresh),
                            lof.value().end());
  return eval::SpearmanCorrelation(fresh, citations);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 2: paper outlier vs citations, by embedding method (Scopus)");
  obs::RunReport report = bench::OpenReport("fig2_embedding_ablation");
  report.set_dataset("scopus-like/small");

  auto corpus_options =
      datagen::ScopusLikeOptions(datagen::DatasetScale::kSmall, 101);
  corpus_options.papers_per_year = 600;
  corpus_options.num_authors = 500;
  auto world = bench::BuildSemWorld(corpus_options, {});
  const corpus::Corpus& corpus = world->dataset.corpus;
  bench::StampCorpus(&report, corpus.papers.size());

  std::vector<corpus::PaperId> history;
  for (const auto& p : corpus.papers)
    if (p.year < 2013) history.push_back(p.id);
  auto sem = bench::TrainSem(*world, history);

  // Method rows x discipline columns.
  std::vector<std::string> names = {"SHPE", "Doc2Vec", "BERT", "SEM",
                                    "SEM-best-k"};
  std::vector<std::vector<double>> table(names.size());

  for (int d = 0; d < 3; ++d) {
    std::vector<corpus::PaperId> fresh =
        datagen::PapersOfDiscipline(corpus, d, 2013, 2013);
    if (fresh.size() > 200) fresh.resize(200);
    const std::vector<corpus::PaperId> context =
        datagen::PapersOfDiscipline(corpus, d, 2010, 2012);
    std::vector<corpus::PaperId> all = context;
    all.insert(all.end(), fresh.begin(), fresh.end());
    std::vector<double> citations;
    for (corpus::PaperId id : fresh)
      citations.push_back(static_cast<double>(corpus.paper(id).citation_count));

    auto shpe = rec::ShpeEmbeddings(corpus, all, 1000 + d);
    SUBREC_CHECK(shpe.ok());
    table[0].push_back(
        LofCitationCorrelation(shpe.value(), fresh.size(), citations));

    auto d2v = rec::Doc2VecEmbeddings(corpus, all, 2000 + d);
    SUBREC_CHECK(d2v.ok());
    table[1].push_back(
        LofCitationCorrelation(d2v.value(), fresh.size(), citations));

    table[2].push_back(LofCitationCorrelation(
        rec::BertAvgEmbeddings(corpus, all, *world->encoder), fresh.size(),
        citations));

    // SEM: all three subspace embeddings concatenated (the model's full
    // paper representation), plus the best single subspace as an internal
    // ablation (disciplines value different subspaces).
    std::vector<la::Matrix> per_subspace;
    double best_single = -1.0;
    for (int k = 0; k < 3; ++k) {
      per_subspace.push_back(
          sem->SubspaceEmbeddingMatrix(world->features, all, k));
      best_single =
          std::max(best_single, LofCitationCorrelation(per_subspace.back(),
                                                       fresh.size(), citations));
    }
    la::Matrix concat(all.size(),
                      per_subspace[0].cols() * per_subspace.size());
    for (size_t i = 0; i < all.size(); ++i) {
      size_t c = 0;
      for (const la::Matrix& m : per_subspace)
        for (size_t j = 0; j < m.cols(); ++j) concat(i, c++) = m(i, j);
    }
    table[3].push_back(LofCitationCorrelation(concat, fresh.size(), citations));
    table[4].push_back(best_single);
  }

  std::printf("%-12s  %8s  %8s  %8s\n", "Method", "CompSci", "Medicine",
              "Sociology");
  const char* disciplines[3] = {"cs", "medicine", "sociology"};
  for (size_t m = 0; m < names.size(); ++m) {
    std::printf("%s\n", bench::Row(names[m], table[m]).c_str());
    for (size_t d = 0; d < table[m].size() && d < 3; ++d) {
      report.AddScalar(
          "spearman." + bench::Slug(names[m]) + "." + disciplines[d],
          table[m][d]);
    }
  }
  std::printf(
      "\npaper (Fig. 2, approximate bar heights): SHPE ~.3/.25/.3  Doc2Vec "
      "~.25/.2/.25  BERT ~.1/.1/.1  SEM ~.85/.7/.65\n");
  bench::WriteReport(&report);
  return 0;
}
