#ifndef SUBREC_BENCH_BENCH_COMMON_H_
#define SUBREC_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "graph/academic_graph.h"
#include "labeling/trainer.h"
#include "obs/run_report.h"
#include "rec/candidate_sets.h"
#include "rec/recommender.h"
#include "rec/sampler.h"
#include "rules/expert_rules.h"
#include "subspace/sem_model.h"
#include "text/hashed_ngram_encoder.h"
#include "text/word2vec.h"

namespace subrec::bench {

/// Everything the Sec. III experiments need: a generated corpus, the frozen
/// sentence encoder, keyword word2vec, a sentence-function labeler trained
/// on a gold-role slice (the paper tags 100 abstracts per dataset), the
/// rule engine and per-paper content features computed with PREDICTED
/// roles.
struct SemWorld {
  datagen::GeneratedDataset dataset;
  std::unique_ptr<text::HashedNgramEncoder> encoder;
  std::unique_ptr<text::Word2Vec> keyword_vectors;
  std::unique_ptr<labeling::SentenceLabeler> labeler;
  std::unique_ptr<rules::ExpertRuleEngine> engine;
  std::vector<rules::PaperContentFeatures> features;
  double labeler_accuracy = 0.0;
};

struct SemWorldOptions {
  size_t encoder_dim = 128;
  /// Unigram-only hashing is less noisy for difference analysis.
  bool encoder_bigrams = false;
  /// Gold-labeled abstracts for labeler training (paper: 100 per dataset).
  int labeler_train_docs = 100;
  uint64_t seed = 7;
};

/// Builds the SEM experiment world from generator options.
std::unique_ptr<SemWorld> BuildSemWorld(
    const datagen::CorpusGeneratorOptions& corpus_options,
    const SemWorldOptions& options);

/// Trains a SemModel on `history` within the world (default small config).
std::unique_ptr<subspace::SemModel> TrainSem(
    const SemWorld& world, const std::vector<corpus::PaperId>& history,
    int epochs = 2, uint64_t seed = 21);

/// Everything the Sec. IV experiments need: graph (citations cut at the
/// split year), SEM-derived subspace + fused text embeddings for every
/// paper, users and candidate sets.
struct RecWorld {
  std::unique_ptr<SemWorld> sem;
  std::unique_ptr<subspace::SemModel> sem_model;
  graph::GraphIndex graph;
  rec::SubspaceEmbeddings subspace;
  std::vector<std::vector<double>> text;
  rec::RecContext ctx;
  std::vector<corpus::AuthorId> users;
  std::vector<rec::CandidateSet> sets;
};

struct RecWorldOptions {
  int split_year = 2014;
  int max_users = 100;
  int candidates_per_user = 50;
  int min_train_papers = 2;
  uint64_t seed = 17;
};

/// Builds one candidate set of size `k` per user (the paper's protocol:
/// the candidate-list size IS the k of nDCG@k).
std::vector<rec::CandidateSet> BuildCandidateSets(
    const rec::RecContext& ctx, const std::vector<corpus::AuthorId>& users,
    int k, uint64_t seed);

/// Builds the recommendation experiment world on top of a SemWorld
/// (takes ownership). Trains SEM on the training papers and embeds the
/// whole corpus.
std::unique_ptr<RecWorld> BuildRecWorld(std::unique_ptr<SemWorld> sem,
                                        const RecWorldOptions& options);

/// Formats one table row: name column padded to 12 plus fixed-4 values.
std::string Row(const std::string& name, const std::vector<double>& values);

/// Prints a separator + title header for one experiment.
void PrintHeader(const std::string& title);

/// Lowercases and replaces non-alphanumerics with '_' so a model/dataset
/// name ("KGCN-LS") is safe inside a report scalar key ("kgcn_ls").
std::string Slug(const std::string& name);

/// True when SUBREC_BENCH_SMOKE is set in the environment: benches should
/// shrink to a CI-friendly scale (one seed, small corpus) while exercising
/// the full pipeline.
bool SmokeMode();

/// True when the host exposes a single hardware thread. Thread-scaling
/// numbers measured on such a host say nothing about parallel speedup
/// (extra workers only add contention), so benches must label those
/// sections and CI must not assert scaling targets against them. Every
/// report carries the answer as scalar "host.single_core" (1.0 / 0.0).
bool SingleCoreHost();

/// Starts the standard experiment record for a bench binary: stamps the
/// configure-time git describe, resets the metrics registry so the report
/// covers only this run, and (unless `enable_tracing` is false) turns on
/// the global trace recorder.
obs::RunReport OpenReport(const std::string& name, bool enable_tracing = true);

/// Bench-honesty stamp: records how many papers back the run's numbers as
/// scalar "dataset.num_papers", accumulating across calls so multi-corpus
/// benches stamp once per world. WriteReport refuses reports that never
/// stamped — a throughput or recall figure without its corpus size is not
/// comparable across commits.
void StampCorpus(obs::RunReport* report, size_t num_papers);

/// Finishes a bench report: captures the metrics snapshot + per-span
/// totals, records elapsed wall time as scalar "wall_seconds", writes
/// BENCH_<name>.json (to SUBREC_REPORT_DIR or the working directory), and
/// — when SUBREC_TRACE_DUMP is set — also dumps TRACE_<name>.json in Chrome
/// trace_event format. Checked programmer error if StampCorpus was never
/// called on `report`.
void WriteReport(obs::RunReport* report);

}  // namespace subrec::bench

#endif  // SUBREC_BENCH_BENCH_COMMON_H_
