// Serving load generator: freezes a trained NPRec into a snapshot, serves
// it through RecommendService, and reports (a) frozen-vs-live top-N parity,
// (b) closed-loop throughput scaling from 1 to 4 workers (cache off),
// (c) the pairwise-vs-gemm scorer-mode comparison — per-mode latency
// percentiles at the service level plus scorer-stage mean latency at the
// fixed 4096-candidate acceptance shape, with a counting operator new
// proving the steady-state gemm loop never touches the heap — and
// (d) an open-loop run at a target QPS with the cache on and a mid-run
// snapshot hot reload. Latency percentiles are computed exactly from
// per-request monotonic timestamps. SUBREC_BENCH_SMOKE=1 shrinks the corpus
// and the request counts to CI scale.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/file_util.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/serve_observer.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "rec/nprec.h"
#include "serve/freeze.h"
#include "serve/service.h"
#include "serve/snapshot.h"

// --- Allocation probe -------------------------------------------------------
// Binary-wide counting operator new (same shape as the unit-test probe in
// tests/obs_serving_test.cc): malloc/free pass-through plus a thread-local
// counter bump. The scorer-mode section resets the counter after warmup
// and proves the steady-state gemm scoring loop is allocation-free on the
// measuring thread.

namespace {

thread_local int64_t g_thread_allocs = 0;

void* ProbeAlloc(std::size_t size) {
  g_thread_allocs += 1;
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) std::abort();
  return p;
}

void* ProbeAlignedAlloc(std::size_t size, std::size_t align) {
  g_thread_allocs += 1;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded > 0 ? rounded : align);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return ProbeAlloc(size); }
void* operator new[](std::size_t size) { return ProbeAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return ProbeAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ProbeAlignedAlloc(size, static_cast<std::size_t>(align));
}
// Nothrow variants must be replaced too: pairing the default nothrow new
// with the probe's free-based delete mismatches allocators.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  return std::malloc(size > 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  return std::malloc(size > 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded > 0 ? rounded : a);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded > 0 ? rounded : a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace subrec;

struct LoadConfig {
  datagen::DatasetScale scale = datagen::DatasetScale::kSmall;
  size_t closed_loop_requests = 50000;
  double target_qps = 5000.0;
  double open_loop_seconds = 4.0;
  size_t user_pool = 32;
};

LoadConfig MakeConfig() {
  LoadConfig config;
  if (bench::SmokeMode()) {
    config.scale = datagen::DatasetScale::kTiny;
    config.closed_loop_requests = 20000;
    config.target_qps = 2000.0;
    config.open_loop_seconds = 1.0;
  }
  return config;
}

double PercentileUs(std::vector<int64_t> latencies_ns, double q) {
  SUBREC_CHECK(!latencies_ns.empty());
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const double rank = q * static_cast<double>(latencies_ns.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, latencies_ns.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  const double ns = static_cast<double>(latencies_ns[lo]) * (1.0 - frac) +
                    static_cast<double>(latencies_ns[hi]) * frac;
  return ns / 1e3;
}

/// Sibling path to BENCH_<name>.json: SUBREC_REPORT_DIR when set (the same
/// resolution RunReport::WriteFile uses), else the working directory.
std::string ReportSibling(const std::string& filename) {
  std::string path;
  const char* env = std::getenv("SUBREC_REPORT_DIR");
  if (env != nullptr && env[0] != '\0') {
    path = env;
    if (path.back() != '/') path += '/';
  }
  return path + filename;
}

/// Users with non-empty serving profiles, up to `limit`.
std::vector<int32_t> ServableUsers(const serve::ServingState& state,
                                   size_t limit) {
  std::vector<int32_t> users;
  for (size_t u = 0; u < state.profiles.size() && users.size() < limit; ++u) {
    if (!state.profiles[u].empty()) users.push_back(static_cast<int32_t>(u));
  }
  SUBREC_CHECK(!users.empty()) << "snapshot has no servable users";
  return users;
}

/// Fraction of users whose frozen top-10 equals ranking the live model's
/// scores over the identical candidate list (ties broken by paper id).
double TopNParity(const rec::RecContext& ctx, const rec::NPRec& model,
                  const serve::ServingState& state,
                  const std::vector<int32_t>& users) {
  int matches = 0;
  for (const int32_t user : users) {
    const std::vector<int32_t>& profile =
        state.profiles[static_cast<size_t>(user)];
    const std::vector<int32_t>& candidates = state.index.CandidatesFor(user);
    const auto frozen = state.scorer.TopN(profile, candidates, 10);

    rec::UserQuery query{user, {profile.begin(), profile.end()}};
    const std::vector<corpus::PaperId> live_candidates(candidates.begin(),
                                                       candidates.end());
    const std::vector<double> live =
        model.Score(ctx, query, live_candidates);
    std::vector<serve::ScoredPaper> ranked(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i)
      ranked[i] = {candidates[i], live[i]};
    std::sort(ranked.begin(), ranked.end(),
              [](const serve::ScoredPaper& a, const serve::ScoredPaper& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.paper < b.paper;
              });
    ranked.resize(std::min(ranked.size(), frozen.size()));
    bool equal = ranked.size() == frozen.size();
    for (size_t i = 0; equal && i < ranked.size(); ++i)
      equal = ranked[i].paper == frozen[i].paper &&
              ranked[i].score == frozen[i].score;
    if (equal) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(users.size());
}

/// Closed loop: every request enqueued up front, pool drains at full tilt.
/// Returns {qps, service latencies}.
std::pair<double, std::vector<int64_t>> ClosedLoop(
    serve::RecommendService* service, const std::vector<int32_t>& users,
    size_t num_requests) {
  std::vector<serve::RecRequest> requests;
  requests.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i)
    requests.push_back({users[i % users.size()], 10});
  const int64_t start_ns = obs::NowNs();
  const std::vector<serve::RecResponse> responses =
      service->TopNBatch(requests);
  const int64_t elapsed_ns = obs::NowNs() - start_ns;
  std::vector<int64_t> latencies;
  latencies.reserve(responses.size());
  for (const serve::RecResponse& r : responses) {
    SUBREC_CHECK(r.status.ok()) << r.status.ToString();
    latencies.push_back(r.done_ns - r.enqueue_ns);
  }
  const double qps = static_cast<double>(num_requests) /
                     (static_cast<double>(elapsed_ns) / 1e9);
  return {qps, std::move(latencies)};
}

}  // namespace

int main() {
  const LoadConfig config = MakeConfig();
  obs::RunReport report = bench::OpenReport("serve_throughput");
  report.set_dataset("scopus_like");

  // --- Offline: train, freeze, write the snapshot to disk. ---------------
  bench::PrintHeader("serve_throughput: offline freeze");
  bench::SemWorldOptions sem_options;
  auto sem = bench::BuildSemWorld(
      datagen::ScopusLikeOptions(config.scale, 4242), sem_options);
  bench::RecWorldOptions rec_options;
  auto world = bench::BuildRecWorld(std::move(sem), rec_options);
  bench::StampCorpus(&report, world->ctx.corpus->papers.size());

  rec::NPRecOptions model_options;
  model_options.sampler.max_positives = bench::SmokeMode() ? 300 : 1500;
  rec::NPRec model(model_options, &world->subspace);
  {
    SUBREC_TRACE_SPAN("bench/train");
    const Status fit = model.Fit(world->ctx);
    SUBREC_CHECK(fit.ok()) << fit.ToString();
  }

  const std::string snapshot_path = "serve_snapshot.snap";
  {
    SUBREC_TRACE_SPAN("bench/freeze");
    serve::SnapshotWriter writer(
        serve::FreezeNPRec(world->ctx, model, "scopus_like"));
    SUBREC_CHECK(writer.WriteFile(snapshot_path).ok());
    report.AddScalar("snapshot.bytes",
                     static_cast<double>(writer.bytes().size()));
    std::printf("snapshot: %zu bytes -> %s\n", writer.bytes().size(),
                snapshot_path.c_str());
  }

  // --- Parity: the frozen scorer must reproduce the live model. ----------
  serve::ServeOptions parity_options;
  parity_options.num_threads = 1;
  serve::RecommendService parity_service(parity_options);
  SUBREC_CHECK(parity_service.LoadSnapshotFile(snapshot_path).ok());
  const std::shared_ptr<const serve::ServingState> state =
      parity_service.state();
  const std::vector<int32_t> users = ServableUsers(*state, config.user_pool);
  const double parity = TopNParity(world->ctx, model, *state, users);
  report.AddScalar("parity.topn_match_rate", parity);
  std::printf("parity: frozen top-10 == live top-10 for %.1f%% of %zu users\n",
              parity * 100.0, users.size());
  SUBREC_CHECK(parity == 1.0) << "frozen scorer diverged from live NPRec";

  // --- Scaling: closed loop, cache off, 1 vs 4 workers. ------------------
  bench::PrintHeader("serve_throughput: worker scaling (cache off)");
  double qps_by_threads[2] = {0.0, 0.0};
  const size_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    serve::ServeOptions options;
    options.num_threads = thread_counts[i];
    options.cache_capacity = 0;
    options.batch_size = 64;
    serve::RecommendService service(options);
    SUBREC_CHECK(service.LoadSnapshotFile(snapshot_path).ok());
    auto [qps, latencies] =
        ClosedLoop(&service, users, config.closed_loop_requests);
    qps_by_threads[i] = qps;
    const std::string prefix =
        "scaling.t" + std::to_string(thread_counts[i]);
    report.AddScalar(prefix + ".qps", qps);
    report.AddScalar(prefix + ".p50_us", PercentileUs(latencies, 0.50));
    report.AddScalar(prefix + ".p95_us", PercentileUs(latencies, 0.95));
    report.AddScalar(prefix + ".p99_us", PercentileUs(latencies, 0.99));
    std::printf("%zu worker(s): %10.0f qps  p50 %.1fus  p99 %.1fus\n",
                thread_counts[i], qps, PercentileUs(latencies, 0.50),
                PercentileUs(latencies, 0.99));
  }
  const double speedup = qps_by_threads[1] / qps_by_threads[0];
  report.AddScalar("scaling.speedup", speedup);
  if (bench::SingleCoreHost()) {
    std::printf("speedup 1 -> 4 workers: %.2fx — single-core host, extra "
                "workers only time-slice; not a parallel-scaling result\n",
                speedup);
  } else {
    std::printf("speedup 1 -> 4 workers: %.2fx (host has %u cpus)\n", speedup,
                std::thread::hardware_concurrency());
  }

  // --- Scorer mode: per-pair oracle vs batched GEMM. ---------------------
  bench::PrintHeader("serve_throughput: scorer mode (pairwise vs gemm)");
  const serve::ScorerMode kModes[2] = {serve::ScorerMode::kPairwise,
                                       serve::ScorerMode::kGemm};

  // Service level: the identical closed loop under each mode, cache off and
  // one worker so every request pays the scorer. Fewer requests than the
  // scaling loop — the pairwise oracle is the slow path by design.
  const size_t mode_requests = config.closed_loop_requests / 10;
  double mode_qps[2] = {0.0, 0.0};
  for (int i = 0; i < 2; ++i) {
    serve::ServeOptions options;
    options.num_threads = 1;
    options.cache_capacity = 0;
    options.batch_size = 64;
    options.scorer_mode = kModes[i];
    serve::RecommendService mode_service(options);
    SUBREC_CHECK(mode_service.LoadSnapshotFile(snapshot_path).ok());
    auto [qps, latencies] = ClosedLoop(&mode_service, users, mode_requests);
    mode_qps[i] = qps;
    const std::string prefix =
        std::string("serve.scorer_mode.") + serve::ScorerModeName(kModes[i]);
    report.AddScalar(prefix + ".qps", qps);
    report.AddScalar(prefix + ".p50_us", PercentileUs(latencies, 0.50));
    report.AddScalar(prefix + ".p95_us", PercentileUs(latencies, 0.95));
    report.AddScalar(prefix + ".p99_us", PercentileUs(latencies, 0.99));
    std::printf("mode %-8s: %10.0f qps  p50 %.1fus  p99 %.1fus\n",
                serve::ScorerModeName(kModes[i]), qps,
                PercentileUs(latencies, 0.50), PercentileUs(latencies, 0.99));
  }
  const double mode_speedup = mode_qps[1] / mode_qps[0];
  report.AddScalar("serve.scorer_mode.service_speedup", mode_speedup);
  std::printf("service qps, gemm over pairwise: %.2fx\n", mode_speedup);

  // Scorer stage at the acceptance shape: 16 profile rows x dim x 4096
  // candidates. Profile and candidate-list sizes at bench scale are
  // corpus-dependent, so cycle the snapshot's papers into fixed-size lists
  // (duplicates are fine — the scorer treats every entry independently).
  const size_t kAcceptN = 4096;
  const size_t kAcceptProfile = 16;
  const size_t frozen_papers = state->scorer.num_papers();
  SUBREC_CHECK(frozen_papers > 0);
  std::vector<int32_t> accept_candidates(kAcceptN);
  for (size_t i = 0; i < kAcceptN; ++i)
    accept_candidates[i] = static_cast<int32_t>(i % frozen_papers);
  std::vector<int32_t> accept_profile(kAcceptProfile);
  for (size_t i = 0; i < kAcceptProfile; ++i)
    accept_profile[i] = static_cast<int32_t>(i % frozen_papers);
  std::vector<serve::ScoredPaper> accept_out;
  const size_t stage_reps = bench::SmokeMode() ? 8 : 32;
  double stage_mean_ns[2] = {0.0, 0.0};
  for (int i = 0; i < 2; ++i) {
    // One warm call: scratch buffers grow, metric handles resolve.
    state->scorer.TopNInto(accept_profile, accept_candidates, 10, kModes[i],
                           nullptr, nullptr, &accept_out);
    const int64_t t0 = obs::NowNs();
    for (size_t r = 0; r < stage_reps; ++r) {
      state->scorer.TopNInto(accept_profile, accept_candidates, 10, kModes[i],
                             nullptr, nullptr, &accept_out);
    }
    stage_mean_ns[i] =
        static_cast<double>(obs::NowNs() - t0) / static_cast<double>(stage_reps);
    report.AddScalar(std::string("serve.scorer_stage.") +
                         serve::ScorerModeName(kModes[i]) + ".mean_us_n4096",
                     stage_mean_ns[i] / 1e3);
  }
  const double stage_speedup = stage_mean_ns[0] / stage_mean_ns[1];
  report.AddScalar("serve.scorer_stage.dim",
                   static_cast<double>(state->scorer.dim()));
  report.AddScalar("serve.scorer_stage.gemm_speedup_n4096", stage_speedup);
  std::printf(
      "scorer stage at m=%zu k=%zu n=%zu: pairwise %.1fus  gemm %.1fus  "
      "speedup %.2fx\n",
      kAcceptProfile, state->scorer.dim(), kAcceptN, stage_mean_ns[0] / 1e3,
      stage_mean_ns[1] / 1e3, stage_speedup);

  // Steady-state allocation probe: the calls above warmed every grow-only
  // buffer on this thread, so from here on the gemm scoring loop must not
  // allocate at all.
  g_thread_allocs = 0;
  for (int r = 0; r < 16; ++r) {
    state->scorer.TopNInto(accept_profile, accept_candidates, 10,
                           serve::ScorerMode::kGemm, nullptr, nullptr,
                           &accept_out);
  }
  const int64_t steady_allocs = g_thread_allocs;
  report.AddScalar("serve.scorer_stage.steady_state_allocs",
                   static_cast<double>(steady_allocs));
  std::printf("steady-state gemm scoring loop: %lld heap allocations\n",
              static_cast<long long>(steady_allocs));
  SUBREC_CHECK(steady_allocs == 0)
      << "steady-state gemm scoring allocated " << steady_allocs << " times";
  if (bench::SmokeMode()) {
    // CI-smoke guard: the batched path must not regress below the oracle.
    SUBREC_CHECK(stage_speedup > 1.0)
        << "gemm scorer slower than pairwise oracle: " << stage_speedup << "x";
  }

  // --- Retrieval mode: filtered scan vs ANN graph walk. ------------------
  // The same closed loop under each candidate-retrieval branch, one worker
  // and cache off so every request pays retrieval + scoring on the lists
  // that branch builds. kAnnEmbedding queries the frozen HnswIndex once
  // per user at snapshot load (the per-request cost is the smaller list it
  // produces), so this measures the serving cost profile of ANN retrieval
  // end to end, load included.
  bench::PrintHeader("serve_throughput: retrieval mode (filtered vs ann)");
  const serve::RetrievalMode kRetrievals[2] = {
      serve::RetrievalMode::kFiltered, serve::RetrievalMode::kAnnEmbedding};
  const char* kRetrievalNames[2] = {"filtered", "ann_embedding"};
  for (int i = 0; i < 2; ++i) {
    serve::ServeOptions options;
    options.num_threads = 1;
    options.cache_capacity = 0;
    options.batch_size = 64;
    options.index.retrieval = kRetrievals[i];
    serve::RecommendService retrieval_service(options);
    SUBREC_CHECK(retrieval_service.LoadSnapshotFile(snapshot_path).ok());
    auto [qps, latencies] =
        ClosedLoop(&retrieval_service, users, mode_requests);
    const std::string prefix =
        std::string("serve.retrieval.") + kRetrievalNames[i];
    report.AddScalar(prefix + ".qps", qps);
    report.AddScalar(prefix + ".p50_us", PercentileUs(latencies, 0.50));
    report.AddScalar(prefix + ".p95_us", PercentileUs(latencies, 0.95));
    report.AddScalar(prefix + ".p99_us", PercentileUs(latencies, 0.99));
    std::printf("retrieval %-13s: %10.0f qps  p50 %.1fus  p99 %.1fus\n",
                kRetrievalNames[i], qps, PercentileUs(latencies, 0.50),
                PercentileUs(latencies, 0.99));
  }

  // --- Open loop at target QPS, cache on, hot reload mid-run. ------------
  bench::PrintHeader("serve_throughput: open loop at target QPS (cache on)");
  serve::ServeOptions serve_options;
  serve_options.num_threads = 4;
  // Full serving-path observability for the open-loop run: rolling windows
  // see every request, every 4th request carries a per-stage trace into the
  // flight recorder, and requests slower than 50ms are logged.
  serve_options.observer.enabled = true;
  serve_options.observer.sample_every_n = 4;
  serve_options.observer.recorder.recent_capacity = 64;
  serve_options.observer.recorder.slow_log_threshold_ns = 50'000'000;
  // Bench honesty: which retrieval branch produced these latencies. The
  // ann_embedding path has a different cost profile, so reports must say
  // which one they measured.
  report.AddString(
      "serve.retrieval_mode",
      serve_options.index.retrieval == serve::RetrievalMode::kAnnEmbedding
          ? "ann_embedding"
          : "filtered");
  serve::RecommendService service(serve_options);
  SUBREC_CHECK(service.LoadSnapshotFile(snapshot_path).ok());

  const int64_t period_ns =
      static_cast<int64_t>(1e9 / config.target_qps);
  const int64_t run_ns =
      static_cast<int64_t>(config.open_loop_seconds * 1e9);
  struct Pending {
    int64_t submit_ns;
    std::future<std::vector<serve::RecResponse>> future;
  };
  std::deque<Pending> inflight;
  std::vector<int64_t> latencies;
  size_t completed = 0;
  bool swapped = false;

  auto drain_one = [&](Pending pending) {
    for (serve::RecResponse& r : pending.future.get()) {
      SUBREC_CHECK(r.status.ok()) << r.status.ToString();
      latencies.push_back(r.done_ns - pending.submit_ns);
      ++completed;
    }
  };

  const int64_t start_ns = obs::NowNs();
  int64_t next_ns = start_ns;
  size_t sent = 0;
  while (obs::NowNs() - start_ns < run_ns) {
    // Pace: one single-request batch per period, yielding between slots.
    while (obs::NowNs() < next_ns) std::this_thread::yield();
    next_ns += period_ns;
    const int32_t user = users[sent % users.size()];
    inflight.push_back({obs::NowNs(),
                        service.SubmitBatch({{user, 10}})});
    ++sent;
    if (!swapped && obs::NowNs() - start_ns > run_ns / 2) {
      // Hot reload in the middle of the run: in-flight requests finish on
      // the old generation, the cache restarts cold.
      SUBREC_CHECK(service.LoadSnapshotFile(snapshot_path).ok());
      swapped = true;
      // Mid-run health check straight off the rolling windows — this is the
      // view an operator would poll, taken without pausing the load.
      const obs::WindowSnapshot mid =
          service.observer().window()->Snapshot(obs::NowNs());
      const obs::WindowStats& w1 = mid.Closest(1.0);
      report.AddScalar("obs.midrun.window_1s.qps", w1.qps);
      report.AddScalar("obs.midrun.window_1s.p99_us", w1.p99_us);
      report.AddScalar("obs.midrun.window_1s.cache_hit_rate",
                       w1.cache_hit_rate);
      std::printf(
          "mid-run 1s window: %.0f qps  p50 %.1fus  p99 %.1fus  hit %.2f\n",
          w1.qps, w1.p50_us, w1.p99_us, w1.cache_hit_rate);
    }
    while (inflight.size() > 256) {
      drain_one(std::move(inflight.front()));
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    drain_one(std::move(inflight.front()));
    inflight.pop_front();
  }
  const double span_seconds =
      static_cast<double>(obs::NowNs() - start_ns) / 1e9;
  SUBREC_CHECK(completed == sent);
  SUBREC_CHECK(swapped) << "open-loop run ended before the hot reload";
  SUBREC_CHECK(service.generation() == 2);

  const double achieved_qps = static_cast<double>(completed) / span_seconds;
  const int64_t hits = service.cache_hits();
  const int64_t misses = service.cache_misses();
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  report.AddScalar("load.target_qps", config.target_qps);
  report.AddScalar("load.achieved_qps", achieved_qps);
  report.AddScalar("load.requests", static_cast<double>(completed));
  report.AddScalar("load.p50_us", PercentileUs(latencies, 0.50));
  report.AddScalar("load.p95_us", PercentileUs(latencies, 0.95));
  report.AddScalar("load.p99_us", PercentileUs(latencies, 0.99));
  report.AddScalar("load.cache_hit_rate", hit_rate);
  std::printf(
      "open loop: %zu requests, target %.0f qps, achieved %.0f qps\n"
      "latency: p50 %.1fus  p95 %.1fus  p99 %.1fus  cache hit rate %.2f\n",
      completed, config.target_qps, achieved_qps,
      PercentileUs(latencies, 0.50), PercentileUs(latencies, 0.95),
      PercentileUs(latencies, 0.99), hit_rate);

  // --- Observability: rolling windows, per-stage breakdown, exports. ------
  bench::PrintHeader("serve_throughput: serving-path observability");
  const obs::ServeObserver& observer = service.observer();
  const obs::WindowSnapshot live = observer.window()->Snapshot(obs::NowNs());
  for (const obs::WindowStats& w : live.windows) {
    const std::string prefix =
        "obs.window_" +
        std::to_string(static_cast<int64_t>(w.window_seconds)) + "s";
    report.AddScalar(prefix + ".requests", static_cast<double>(w.requests));
    report.AddScalar(prefix + ".qps", w.qps);
    report.AddScalar(prefix + ".p50_us", w.p50_us);
    report.AddScalar(prefix + ".p95_us", w.p95_us);
    report.AddScalar(prefix + ".p99_us", w.p99_us);
    report.AddScalar(prefix + ".error_rate", w.error_rate);
    report.AddScalar(prefix + ".cache_hit_rate", w.cache_hit_rate);
  }
  const std::vector<obs::StageStat> stages = observer.StageStats();
  for (const obs::StageStat& s : stages) {
    const std::string prefix = std::string("obs.stage.") + s.name;
    report.AddScalar(prefix + ".sampled", static_cast<double>(s.sampled));
    report.AddScalar(prefix + ".mean_us", s.mean_us);
    report.AddScalar(prefix + ".total_us", s.total_us);
    std::printf("stage %-14s sampled %6lld  mean %8.1fus\n", s.name,
                static_cast<long long>(s.sampled), s.mean_us);
  }
  report.AddScalar(
      "obs.traces.recorded",
      static_cast<double>(observer.recorder()->TotalRecorded()));
  report.AddScalar("obs.traces.dropped",
                   static_cast<double>(observer.recorder()->Dropped()));

  // Dump the operator views next to the bench report: the plain-text
  // statusz page and the machine-readable metrics JSON.
  const obs::MetricsSnapshot metrics = obs::MetricsRegistry::Global().Snapshot();
  obs::StatuszData statusz;
  statusz.uptime_ns = obs::NowNs() - start_ns;
  statusz.metrics = &metrics;
  statusz.window = &live;
  statusz.stages = &stages;
  statusz.recorder = observer.recorder();
  const std::string statusz_path = ReportSibling("STATUSZ_serve_throughput.txt");
  SUBREC_CHECK(
      WriteStringToFile(statusz_path, obs::ExportStatusz(statusz)).ok());
  std::printf("statusz: %s\n", statusz_path.c_str());
  const std::string metrics_path =
      ReportSibling("METRICS_serve_throughput.json");
  SUBREC_CHECK(
      WriteStringToFile(metrics_path, obs::ExportMetricsJson(statusz)).ok());
  std::printf("metrics: %s\n", metrics_path.c_str());

  bench::WriteReport(&report);
  return 0;
}
