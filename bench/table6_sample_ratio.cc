// Reproduces Tab. VI: sensitivity to the positive:negative sample ratio
// (1:1, 1:10, 1:50). Applies to every method that samples negatives during
// training (MLP, JTIE, KGCN, KGCN-LS, NPRec); purely neighborhood/
// factorization baselines are retrained unchanged and repeat their value.
// Expected shape: 1:10 is the sweet spot for the sampled methods; NPRec
// leads at every ratio.

#include <cstdio>
#include <algorithm>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "rec/jtie.h"
#include "rec/kgcn.h"
#include "rec/mlp_ncf.h"
#include "rec/nbcf.h"
#include "rec/nprec.h"
#include "rec/ripplenet.h"
#include "rec/wnmf.h"

namespace {

using namespace subrec;

std::unique_ptr<rec::Recommender> MakeModel(const std::string& name, int ratio,
                                            const rec::SubspaceEmbeddings* subs) {
  rec::NPRecOptions base;
  // Keep the 1:10 column consistent with Tab. IV's training budget while
  // bounding the total pair count so the 1:50 column stays tractable.
  base.sampler.max_positives = std::min(1500, std::max(150, 16000 / (1 + ratio)));
  base.sampler.negatives_per_positive = ratio;
  base.epochs = 2;
  if (name == "WNMF") return std::make_unique<rec::WnmfRecommender>();
  if (name == "NBCF") return std::make_unique<rec::NbcfRecommender>();
  if (name == "MLP") {
    rec::MlpNcfOptions o;
    o.negatives = ratio;
    return std::make_unique<rec::MlpRecommender>(o);
  }
  if (name == "JTIE") {
    rec::JtieOptions o;
    o.negatives = ratio;
    return std::make_unique<rec::JtieRecommender>(o);
  }
  if (name == "KGCN")
    return std::make_unique<rec::NPRec>(rec::KgcnOptions(base), subs);
  if (name == "KGCN-LS")
    return std::make_unique<rec::NPRec>(rec::KgcnLsOptions(base), subs);
  if (name == "RippleNet") return std::make_unique<rec::RippleNetRecommender>();
  return std::make_unique<rec::NPRec>(base, subs);
}

void RunDataset(const char* tag, bench::RecWorld* world,
                obs::RunReport* report) {
  std::printf("\n--- %s ---\n%-12s  %8s  %8s  %8s\n", tag, "nDCG@20", "1:1",
              "1:10", "1:50");
  const auto sets =
      bench::BuildCandidateSets(world->ctx, world->users, 20, 11);
  const int ratios[3] = {1, 10, 50};
  for (const char* name : {"WNMF", "NBCF", "MLP", "JTIE", "KGCN", "KGCN-LS",
                           "RippleNet", "NPRec"}) {
    std::vector<double> row;
    for (int ratio : ratios) {
      auto model = MakeModel(name, ratio, &world->subspace);
      const Status status = model->Fit(world->ctx);
      SUBREC_CHECK(status.ok()) << name << ": " << status.ToString();
      row.push_back(
          rec::EvaluateRecommender(world->ctx, *model, sets, 20).ndcg);
    }
    std::printf("%s\n", bench::Row(name, row).c_str());
    for (int i = 0; i < 3; ++i) {
      report->AddScalar("ndcg." + bench::Slug(tag) + "." + bench::Slug(name) +
                            ".ratio" + std::to_string(ratios[i]),
                        row[static_cast<size_t>(i)]);
    }
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table VI: comparison on positive:negative sample ratios");
  obs::RunReport report = bench::OpenReport("table6_sample_ratio");
  report.set_dataset("acm-like+scopus-like/small");

  auto acm = bench::BuildRecWorld(
      bench::BuildSemWorld(
          datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303), {}),
      [] {
        bench::RecWorldOptions o;
        o.max_users = 120;
        return o;
      }());
  RunDataset("ACM-like", acm.get(), &report);
  bench::StampCorpus(&report, acm->ctx.corpus->papers.size());

  auto scopus = bench::BuildRecWorld(
      bench::BuildSemWorld(
          datagen::ScopusLikeOptions(datagen::DatasetScale::kSmall, 404), {}),
      [] {
        bench::RecWorldOptions o;
        o.max_users = 100;
        return o;
      }());
  RunDataset("Scopus-like", scopus.get(), &report);
  bench::StampCorpus(&report, scopus->ctx.corpus->papers.size());

  std::printf(
      "\npaper reports (Tab. VI, ACM 1:1/1:10/1:50): WNMF .76/.79/.77  NBCF "
      ".78/.81/.80  MLP .82/.86/.82  JTIE .87/.91/.89  KGCN .85/.88/.86  "
      "KGCN-LS .88/.90/.88  RippleNet .88/.93/.90  NPRec .95/.97/.96\n");
  bench::WriteReport(&report);
  return 0;
}
