// Reproduces Tab. II: mean subspace LOF (x100, like the paper's percent
// values) of high-cited vs low-cited papers across four ACM CCS fields.
// The paper takes 200 high-cited (>300 cites) and 200 low-cited (<5)
// papers per field; at laptop scale we use the top / bottom citation
// quartiles of each field. Expected shape: the high-cited column exceeds
// the low-cited column in every (field, subspace) cell, with the method
// subspace carrying the largest differences in CS.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cluster/lof.h"
#include "eval/metrics.h"

namespace {

using namespace subrec;

}  // namespace

int main() {
  bench::PrintHeader("Table II: subspace outliers, high vs low citation (ACM)");
  obs::RunReport report = bench::OpenReport("table2_topic_outliers");
  report.set_dataset("acm-like/small");

  auto corpus_options =
      datagen::AcmLikeOptions(datagen::DatasetScale::kSmall, 303);
  corpus_options.papers_per_year = 400;
  auto world = bench::BuildSemWorld(corpus_options, {});
  const corpus::Corpus& corpus = world->dataset.corpus;
  bench::StampCorpus(&report, corpus.papers.size());

  std::vector<corpus::PaperId> history;
  for (const auto& p : corpus.papers)
    if (p.year < 2015) history.push_back(p.id);
  auto sem = bench::TrainSem(*world, history);

  const char* field_names[4] = {"InfoSystems", "TheoryComp", "GeneralLit",
                                "Hardware"};
  std::printf("%-12s  %-10s  %10s  %10s\n", "ACM CCS", "subspace", "low cit.",
              "high cit.");

  for (int field = 0; field < 4; ++field) {
    // 2015 papers of this field, split into citation quartiles.
    std::vector<corpus::PaperId> fresh;
    for (const auto& p : corpus.papers)
      if (p.topic == field && p.year == 2015) fresh.push_back(p.id);
    if (fresh.size() < 12) continue;
    std::sort(fresh.begin(), fresh.end(),
              [&](corpus::PaperId a, corpus::PaperId b) {
                return corpus.paper(a).citation_count <
                       corpus.paper(b).citation_count;
              });
    const size_t quartile = fresh.size() / 4;
    std::vector<corpus::PaperId> low(fresh.begin(),
                                     fresh.begin() + static_cast<long>(quartile));
    std::vector<corpus::PaperId> high(fresh.end() - static_cast<long>(quartile),
                                      fresh.end());

    // Comparison collection: same field, before 2015.
    std::vector<corpus::PaperId> context;
    for (const auto& p : corpus.papers)
      if (p.topic == field && p.year < 2015) context.push_back(p.id);

    std::vector<corpus::PaperId> all = context;
    all.insert(all.end(), low.begin(), low.end());
    all.insert(all.end(), high.begin(), high.end());

    for (int k = 0; k < 3; ++k) {
      const la::Matrix emb =
          sem->SubspaceEmbeddingMatrix(world->features, all, k);
      auto lof = cluster::LocalOutlierFactor(emb, 15);
      SUBREC_CHECK(lof.ok());
      const std::vector<double> norm = cluster::MinMaxNormalize(lof.value());
      const size_t off_low = context.size();
      const size_t off_high = context.size() + low.size();
      double low_mean = 0.0, high_mean = 0.0;
      for (size_t i = 0; i < low.size(); ++i) low_mean += norm[off_low + i];
      for (size_t i = 0; i < high.size(); ++i) high_mean += norm[off_high + i];
      low_mean = 100.0 * low_mean / static_cast<double>(low.size());
      high_mean = 100.0 * high_mean / static_cast<double>(high.size());
      std::printf("%-12s  %-10s  %10.2f  %10.2f%s\n",
                  k == 0 ? field_names[field] : "",
                  corpus::SubspaceRoleName(k), low_mean, high_mean,
                  high_mean > low_mean ? "" : "   (!)");
      const std::string prefix = "lof." + bench::Slug(field_names[field]) +
                                 "." +
                                 bench::Slug(corpus::SubspaceRoleName(k));
      report.AddScalar(prefix + ".low", low_mean);
      report.AddScalar(prefix + ".high", high_mean);
    }
  }

  std::printf(
      "\npaper reports (Tab. II, low->high): InfoSys B 2.07->3.12, M "
      "3.85->4.91, R 1.98->2.15; Theory B 2.65->2.73, M 3.56->4.01, R "
      "1.06->2.58; GenLit B 1.66->2.97, M 3.24->4.15, R 2.45->2.68; Hardware "
      "B 2.53->2.87, M 2.74->3.05, R 1.90->2.71\n");
  bench::WriteReport(&report);
  return 0;
}
