# Empty dependencies file for subrec_tests.
# This may be replaced when dependencies are built.
